#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run every registered test, then a
# ThreadSanitizer pass over the concurrency-sensitive suites (the server
# is multithreaded in two layers: the net event loop and the batch worker
# pool).
#
# Usage: scripts/ci.sh [build-dir]
#   DBPH_TSAN=0       skip the ThreadSanitizer stage
#   DBPH_TSAN_ONLY=1  run only the ThreadSanitizer stage
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

run_tsan_stage() {
  local tsan_dir="${BUILD_DIR}-tsan"
  # Debug build: NDEBUG is off, so the exclusive-dispatcher assert in
  # UntrustedServer::HandleRequest is live here (and only here in CI).
  cmake -B "$tsan_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$tsan_dir" -j "$(nproc)" --target \
    runtime_test runtime_parallel_test net_frame_test net_server_test \
    net_interleave_test protocol_fuzz_test
  ctest --test-dir "$tsan_dir" --output-on-failure --no-tests=error \
    -R 'runtime|net_|protocol_fuzz' -j "$(nproc)"
}

if [ "${DBPH_TSAN_ONLY:-0}" = "1" ]; then
  run_tsan_stage
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$(nproc)"

# Smoke-test the batch runtime bench (tiny workload; asserts that
# batched results and observation logs match the sequential baseline).
if [ -x "$BUILD_DIR/bench_e6_performance" ]; then
  "$BUILD_DIR/bench_e6_performance" --docs=2000 --batch=8 --rounds=1
  # ...and the network mode: real sockets, concurrent clients, results
  # checked against plaintext ground truth.
  "$BUILD_DIR/bench_e6_performance" --network --docs=1000 --clients=2 \
    --batch=4 --rounds=1
fi

if [ "${DBPH_TSAN:-1}" != "0" ]; then
  run_tsan_stage
fi
