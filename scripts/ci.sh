#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run every registered test, then a
# ThreadSanitizer pass over the concurrency-sensitive suites (the server
# is multithreaded in two layers: the net event loop and the batch worker
# pool) and an AddressSanitizer pass over the planner/index suites (the
# index borrows record ids and document bytes across mutations — exactly
# the lifetime bugs ASan catches).
#
# Usage: scripts/ci.sh [build-dir]
#   DBPH_TSAN=0       skip the ThreadSanitizer stage
#   DBPH_TSAN_ONLY=1  run only the ThreadSanitizer stage
#   DBPH_ASAN=0       skip the AddressSanitizer stage
#   DBPH_ASAN_ONLY=1  run only the AddressSanitizer stage
#   DBPH_MATRIX=0     skip the scan-kernel build-matrix stage
#   DBPH_MATRIX_ONLY=1  run only the scan-kernel build-matrix stage
#   DBPH_DOCS_ONLY=1  run only the docs hygiene stage (builds dbph_serverd)
#   DBPH_COVERAGE=1   run the gcov line-coverage stage (off by default;
#                     gates src/crypto + src/protocol against
#                     scripts/coverage_baseline.txt)
#   DBPH_COVERAGE_ONLY=1  run only the coverage stage
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Docs hygiene: every relative markdown link in README.md and docs/ must
# resolve, and every dbph_serverd flag must be documented in
# docs/OPERATIONS.md — so the docs tree cannot silently rot as flags and
# files move.
run_docs_stage() {
  local failed=0
  local md
  for md in README.md docs/*.md; do
    [ -f "$md" ] || continue
    local dir
    dir="$(dirname "$md")"
    # Markdown link targets: [text](target). Skip absolute URLs and
    # pure-fragment links; strip fragments from file links.
    local target
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
      esac
      local path="${target%%#*}"
      [ -n "$path" ] || continue
      if [ ! -e "$dir/$path" ]; then
        echo "docs: broken link in $md -> $target" >&2
        failed=1
      fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" \
               | sed -E 's/^\[[^]]*\]\(//; s/\)$//')
  done

  # Every flag dbph_serverd advertises must appear in OPERATIONS.md.
  local flag
  while IFS= read -r flag; do
    if ! grep -q -- "$flag" docs/OPERATIONS.md; then
      echo "docs: dbph_serverd flag $flag missing from docs/OPERATIONS.md" >&2
      failed=1
    fi
  done < <("$BUILD_DIR/dbph_serverd" --help \
             | grep -oE '^\s+--[a-z-]+' | tr -d ' ' | sort -u)

  if [ "$failed" != "0" ]; then
    echo "docs hygiene stage FAILED" >&2
    return 1
  fi
  echo "docs hygiene stage OK"
}

run_tsan_stage() {
  local tsan_dir="${BUILD_DIR}-tsan"
  # Debug build: NDEBUG is off, so the exclusive-dispatcher assert in
  # UntrustedServer::HandleRequest is live here (and only here in CI).
  # The recovery/differential suites run here too: the durable store's
  # background checkpointer + group-commit thread races the dispatch
  # path, which is exactly what TSan is for. The planner suites ride
  # along: index-path selects interleave with scan waves on the pool.
  cmake -B "$tsan_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  # obs_metrics_test rides along by design: the registry's wait-free
  # recording claims (relaxed atomics, copy-under-write histograms) are
  # worthless unless a data-race detector actually watches them.
  # obs_leakage_test likewise: the auditor claims standalone thread
  # safety (its own mutex around the staging ring and fold), and its
  # concurrent record/report test only means something under TSan.
  # concurrency_race_test is the point of this stage: verified readers
  # race a writer across the snapshot read path while stats are polled —
  # any lock-discipline slip in snapshot publication or observation
  # staging is a hard TSan failure here.
  # swp_match_kernel_test and crypto_hmac_test ride along: the SHA-256
  # kernel dispatch resolves through a function-local static, and the
  # batched scan shares one MatchContext per shard across a pooled scan
  # wave — first-use races in either are TSan's to catch.
  cmake --build "$tsan_dir" -j "$(nproc)" --target \
    runtime_test runtime_parallel_test net_frame_test net_server_test \
    net_interleave_test protocol_fuzz_test wal_recovery_test \
    differential_test server_persistence_test planner_test sql_test \
    obs_metrics_test obs_leakage_test concurrency_race_test \
    swp_match_kernel_test crypto_hmac_test
  ctest --test-dir "$tsan_dir" --output-on-failure --no-tests=error \
    -R 'runtime|net_|protocol_fuzz|wal_recovery|differential|server_persistence|planner|sql|obs_metrics|obs_leakage|concurrency_race|swp_match_kernel|crypto_hmac' \
    -j "$(nproc)"
}

run_asan_stage() {
  local asan_dir="${BUILD_DIR}-asan"
  cmake -B "$asan_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  # The integrity suites ride along: the tamper proxy re-frames
  # envelopes and the proof parser walks attacker-shaped buffers —
  # exactly the code that must be clean under ASan.
  # The scan-kernel suites are mandatory here: MatchMany walks an arena
  # through raw-pointer lane batches and the fuzz case feeds it hostile
  # out-of-bounds WordRefs — any missed bounds check is an ASan failure,
  # not a silent wrong answer.
  # crypto_search_tree_test rides the integrity label: proof verifiers
  # walk attacker-shaped neighbor lists. snapshot_seal_test is explicit:
  # the seal-overflow fallback rebuilds chunks around a discarded arena,
  # exactly where a stale ref would read out of bounds.
  cmake --build "$asan_dir" -j "$(nproc)" --target \
    planner_test sql_test differential_test storage_heapfile_test \
    integrity_test crypto_merkle_test protocol_fuzz_test \
    crypto_search_tree_test snapshot_seal_test \
    swp_match_kernel_test crypto_hmac_test
  ctest --test-dir "$asan_dir" --output-on-failure --no-tests=error \
    -L planner -j "$(nproc)"
  ctest --test-dir "$asan_dir" --output-on-failure --no-tests=error \
    -L integrity -j "$(nproc)"
  ctest --test-dir "$asan_dir" --output-on-failure --no-tests=error \
    -R 'storage_heapfile|swp_match_kernel|crypto_hmac|snapshot_seal' \
    -j "$(nproc)"
}

# Line-coverage gate over the proof-bearing layers. A dedicated
# --coverage -O0 build runs the crypto, protocol, and integrity suites,
# then gcov aggregates executed/total lines per source directory. The
# percentages for src/crypto and src/protocol must not fall below
# scripts/coverage_baseline.txt — the code that decides whether a lying
# server is caught does not get to lose test coverage silently.
coverage_for_dir() {
  local cov_dir="$1"
  local src_dir="$2"
  local obj_dir="CMakeFiles/dbph_core.dir/src/$src_dir"
  (cd "$cov_dir" && gcov --no-output "$obj_dir"/*.cc.gcda 2>/dev/null || true) \
    | awk -v want="src/$src_dir/" '
        /^File / {
          keep = index($0, want) > 0 && index($0, ".cc'\''") > 0
        }
        /^Lines executed:/ && keep {
          line = $0
          sub(/^Lines executed:/, "", line)
          split(line, parts, "% of ")
          executed += parts[1] * parts[2] / 100
          total += parts[2]
        }
        END {
          if (total > 0) printf "%.2f\n", 100 * executed / total
          else print "0.00"
        }'
}

run_coverage_stage() {
  local cov_dir="${BUILD_DIR}-cov"
  cmake -B "$cov_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="--coverage -O0 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="--coverage"
  cmake --build "$cov_dir" -j "$(nproc)" --target \
    crypto_aes_test crypto_chacha20_test crypto_feistel_test \
    crypto_hmac_test crypto_kat_test crypto_merkle_test \
    crypto_random_test crypto_search_tree_test crypto_sha256_test \
    protocol_fuzz_test integrity_test swp_scheme_test swp_property_test \
    dbph_scheme_test dbph_document_test
  # Stale counters from a previous run would inflate the numbers.
  find "$cov_dir" -name '*.gcda' -delete
  ctest --test-dir "$cov_dir" --output-on-failure --no-tests=error \
    -R 'crypto_|protocol_fuzz|integrity|swp_scheme|swp_property|dbph_' \
    -j "$(nproc)"

  local failed=0
  local src_dir pct floor
  for src_dir in crypto protocol; do
    pct="$(coverage_for_dir "$cov_dir" "$src_dir")"
    floor="$(awk -v d="$src_dir" '$1 == d { print $2 }' \
               scripts/coverage_baseline.txt)"
    if [ -z "$floor" ]; then
      echo "coverage: no baseline for src/$src_dir" >&2
      failed=1
      continue
    fi
    echo "coverage: src/$src_dir ${pct}% (baseline ${floor}%)"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
      echo "coverage: src/$src_dir fell below the baseline" >&2
      failed=1
    fi
  done
  if [ "$failed" != "0" ]; then
    echo "coverage stage FAILED" >&2
    return 1
  fi
  echo "coverage stage OK"
}

run_matrix_stage() {
  # Scan-kernel build matrix. Two axes:
  #   (1) compile baseline: the default build (above) vs an explicit
  #       -march=x86-64-v2 job, so the multi-way compression paths are
  #       exercised both when the compiler baseline already includes
  #       SSE4.1 and when only the per-function target attributes
  #       provide it;
  #   (2) runtime dispatch: DBPH_SHA256_KERNEL forces each kernel —
  #       including the portable scalar fallback — through the full
  #       HMAC vector suite and the batched-vs-scalar equivalence
  #       tests. Unsupported values fall back to the best supported
  #       kernel, so the loop is safe on any host.
  local v2_dir="${BUILD_DIR}-v2"
  cmake -B "$v2_dir" -S . \
    -DCMAKE_CXX_FLAGS="-march=x86-64-v2"
  cmake --build "$v2_dir" -j "$(nproc)" --target \
    crypto_hmac_test swp_match_kernel_test
  local kernel
  for kernel in portable sse41 avx2 shani; do
    for dir in "$BUILD_DIR" "$v2_dir"; do
      [ -x "$dir/crypto_hmac_test" ] || continue
      echo "kernel matrix: DBPH_SHA256_KERNEL=$kernel in $dir"
      DBPH_SHA256_KERNEL="$kernel" "$dir/crypto_hmac_test" \
        --gtest_brief=1
      DBPH_SHA256_KERNEL="$kernel" "$dir/swp_match_kernel_test" \
        --gtest_brief=1
    done
  done
  echo "scan-kernel build matrix OK"
}

if [ "${DBPH_TSAN_ONLY:-0}" = "1" ]; then
  run_tsan_stage
  exit 0
fi
if [ "${DBPH_ASAN_ONLY:-0}" = "1" ]; then
  run_asan_stage
  exit 0
fi
if [ "${DBPH_MATRIX_ONLY:-0}" = "1" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
    crypto_hmac_test swp_match_kernel_test
  run_matrix_stage
  exit 0
fi
if [ "${DBPH_COVERAGE_ONLY:-0}" = "1" ]; then
  run_coverage_stage
  exit 0
fi
if [ "${DBPH_DOCS_ONLY:-0}" = "1" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target dbph_serverd
  run_docs_stage
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$(nproc)"
# The labeled durability suites must exist (a glob regression that drops
# them would otherwise pass silently).
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -L recovery
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -L differential
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -L planner
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -L integrity

# Docs must stay honest before anything slower runs.
run_docs_stage

# Smoke-test the batch runtime bench (tiny workload; asserts that
# batched results and observation logs match the sequential baseline).
if [ -x "$BUILD_DIR/bench_e6_performance" ]; then
  "$BUILD_DIR/bench_e6_performance" --docs=2000 --batch=8 --rounds=1
  # ...and the network mode: real sockets, concurrent clients, results
  # checked against plaintext ground truth.
  "$BUILD_DIR/bench_e6_performance" --network --docs=1000 --clients=2 \
    --batch=4 --rounds=1
  # ...and the durability mode: mutation throughput at each fsync policy,
  # asserting every mutation reached the WAL.
  "$BUILD_DIR/bench_e6_performance" --durability --docs=500 --mutations=200
  # ...and the index mode: scan vs trapdoor-index selects over identical
  # ciphertext, asserting byte-identical results and observation logs
  # (tiny sizes — the mode must not rot; real numbers via scripts/bench.sh).
  "$BUILD_DIR/bench_e6_performance" --index --docs=2000 --repeats=5
  # ...and the scan mode: batched-kernel vs scalar matching over
  # identical ciphertext, asserting byte-identical results and
  # observation logs (tiny sizes — real numbers via scripts/bench.sh).
  "$BUILD_DIR/bench_e6_performance" --scan --docs=2000 --repeats=5
  # ...and the integrity mode: proof generation + enforced verification
  # vs the proof-free baseline, asserting identical results.
  "$BUILD_DIR/bench_e6_performance" --integrity --docs=2000 --repeats=5 \
    --mutations=50
  # ...and the stats mode: metrics-on vs metrics-off and leakage-on vs
  # leakage-off point selects, asserting the kStats and kLeakageReport
  # round trips work and results match.
  "$BUILD_DIR/bench_e6_performance" --stats --docs=2000 --repeats=50 \
    --rounds=1
fi

# Metrics smoke + name-drift check: start a daemon with the Prometheus
# endpoint, drive real queries through the SQL REPL, scrape /metrics,
# and (a) assert one series from every instrumented layer is present,
# (b) fail if the daemon exports any dbph_* name that is not documented
# in docs/OPERATIONS.md — new instruments must land with their docs.
METRICS_DIR="$(mktemp -d)"
"$BUILD_DIR/dbph_serverd" --port=17692 --bind=127.0.0.1 \
  --metrics-port=17693 --persist="$METRICS_DIR" --fsync=always &
SERVERD_PID=$!
sleep 1
REPL_OUT="$METRICS_DIR/repl.out"
printf "SELECT * FROM Emp WHERE dept = 'HR';\nLEAKAGE\nSTATS\n\\\\q\n" \
  | "$BUILD_DIR/example_sql_repl" --connect=127.0.0.1:17692 > "$REPL_OUT"
grep -q "dbph_requests_total" "$REPL_OUT"
# The LEAKAGE command must round-trip a kLeakageReport and show the
# query the session just ran against the demo table.
grep -q "leakage report" "$REPL_OUT"
grep -q "Emp" "$REPL_OUT"
SCRAPE="$METRICS_DIR/metrics.prom"
exec 3<>/dev/tcp/127.0.0.1/17693
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > "$SCRAPE"
exec 3<&- 3>&-
kill "$SERVERD_PID"
wait "$SERVERD_PID"
grep -q "HTTP/1.0 200 OK" "$SCRAPE"
for series in dbph_requests_total dbph_select_seconds_bucket \
    dbph_dispatch_lock_wait_seconds_sum dbph_net_frames_in_total \
    dbph_wal_append_records_total dbph_index_trapdoors \
    dbph_integrity_proof_build_seconds_count \
    dbph_leakage_observed_queries_total dbph_leakage_advantage_millis \
    dbph_build_info dbph_process_start_time_seconds; do
  grep -q "^$series" "$SCRAPE" \
    || { echo "metrics smoke: $series missing from scrape" >&2; exit 1; }
done
DRIFT=0
while IFS= read -r name; do
  # Per-op counters are a documented family, not individual rows.
  doc_name="$(echo "$name" \
    | sed -E 's/^dbph_op_[a-z]+_total$/dbph_op_<op>_total/')"
  if ! grep -q -- "$doc_name" docs/OPERATIONS.md; then
    echo "metrics drift: $name exported but not in docs/OPERATIONS.md" >&2
    DRIFT=1
  fi
done < <(grep -oE '^dbph_[a-z_]+' "$SCRAPE" \
           | sed -E 's/_(bucket|sum|count)$//' | sort -u)
[ "$DRIFT" = "0" ]
rm -rf "$METRICS_DIR"
echo "metrics smoke + drift check OK"

# End-to-end crash drill: outsource a relation through a live daemon,
# kill -9 it, and assert the restarted daemon recovers that relation
# from the --persist dir (sql_repl outsources its demo Emp table on
# connect, so one scripted session is a real mutation workload).
PERSIST_DIR="$(mktemp -d)"
"$BUILD_DIR/dbph_serverd" --port=17690 --bind=127.0.0.1 \
  --persist="$PERSIST_DIR" --fsync=always &
SERVERD_PID=$!
sleep 1
printf '\\q\n' | "$BUILD_DIR/example_sql_repl" --connect=127.0.0.1:17690 \
  > /dev/null
kill -9 "$SERVERD_PID" 2>/dev/null || true
wait "$SERVERD_PID" 2>/dev/null || true
RESTART_LOG="$PERSIST_DIR/restart.log"
"$BUILD_DIR/dbph_serverd" --port=17691 --bind=127.0.0.1 \
  --persist="$PERSIST_DIR" --fsync=always 2> "$RESTART_LOG" &
SERVERD_PID=$!
sleep 1
printf '\\q\n' | "$BUILD_DIR/example_sql_repl" --connect=127.0.0.1:17691 \
  | grep -q "already on the server"
kill "$SERVERD_PID"
wait "$SERVERD_PID"
grep -q "recovered 1 relation(s)" "$RESTART_LOG"
rm -rf "$PERSIST_DIR"

if [ "${DBPH_MATRIX:-1}" != "0" ]; then
  run_matrix_stage
fi
if [ "${DBPH_TSAN:-1}" != "0" ]; then
  run_tsan_stage
fi
if [ "${DBPH_ASAN:-1}" != "0" ]; then
  run_asan_stage
fi
if [ "${DBPH_COVERAGE:-0}" = "1" ]; then
  run_coverage_stage
fi
