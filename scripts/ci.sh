#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run every registered test.
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$(nproc)"

# Smoke-test the batch runtime bench (tiny workload; asserts that
# batched results and observation logs match the sequential baseline).
if [ -x "$BUILD_DIR/bench_e6_performance" ]; then
  "$BUILD_DIR/bench_e6_performance" --docs=2000 --batch=8 --rounds=1
fi
