#!/usr/bin/env bash
# Performance trajectory snapshot: runs every bench_e6_performance JSON
# mode — sequential-vs-parallel batch (--threads/--batch), multi-client
# network (--network), mutation durability (--durability), scan-vs-
# trapdoor-index (--index), batched-kernel-vs-scalar scan (--scan),
# Merkle proof overhead (--integrity), and
# metrics overhead + concurrent-reader scaling + lock-wait share
# (--stats; readers=1/2/4 sessions race the snapshot read path) — and
# writes the combined
# results plus run metadata to BENCH_e6.json at the repo root. Committing that file after meaningful perf work is how
# the repo tracks throughput across hardware and revisions. The JSON
# record schema is documented in docs/OPERATIONS.md.
#
# Usage: scripts/bench.sh [build-dir]
#   DBPH_BENCH_DOCS=N    index-mode relation size (default 100000 — the
#                        acceptance-scale run; the index speedup at this
#                        size is the headline number)
#   DBPH_BENCH_SMOKE=1   tiny sizes everywhere (CI rot check, not a
#                        meaningful snapshot; refuses to overwrite
#                        BENCH_e6.json and writes BENCH_e6.smoke.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/bench_e6_performance"

if [ ! -x "$BIN" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_e6_performance
fi

INDEX_DOCS="${DBPH_BENCH_DOCS:-100000}"
INDEX_REPEATS=20
SCAN_DOCS="${DBPH_BENCH_DOCS:-100000}" SCAN_REPEATS=20
PAR_DOCS=20000 PAR_BATCH=16 PAR_ROUNDS=2
NET_DOCS=10000 NET_CLIENTS=2 NET_BATCH=8 NET_ROUNDS=2
DUR_DOCS=1000 DUR_MUTATIONS=300 DUR_ROUNDS=3
INTEG_DOCS="${DBPH_BENCH_DOCS:-100000}" INTEG_REPEATS=20 INTEG_MUTATIONS=300
# Stats mode needs long timed windows: at ~16k point-select qps a few
# hundred repeats is a ~10ms window and scheduler noise swamps the
# sub-1% instrumentation cost being measured.
STATS_DOCS=20000 STATS_REPEATS=2000 STATS_ROUNDS=5
OUT="BENCH_e6.json"
if [ "${DBPH_BENCH_SMOKE:-0}" = "1" ]; then
  INDEX_DOCS=2000 INDEX_REPEATS=5
  SCAN_DOCS=2000 SCAN_REPEATS=5
  PAR_DOCS=2000 PAR_BATCH=8 PAR_ROUNDS=1
  NET_DOCS=1000 NET_BATCH=4 NET_ROUNDS=1
  DUR_DOCS=500 DUR_MUTATIONS=100 DUR_ROUNDS=1
  INTEG_DOCS=2000 INTEG_REPEATS=5 INTEG_MUTATIONS=50
  STATS_DOCS=2000 STATS_REPEATS=50 STATS_ROUNDS=1
  OUT="BENCH_e6.smoke.json"
fi

LINES="$(mktemp)"
trap 'rm -f "$LINES"' EXIT

"$BIN" --docs="$PAR_DOCS" --batch="$PAR_BATCH" --rounds="$PAR_ROUNDS" \
  >> "$LINES"
"$BIN" --network --docs="$NET_DOCS" --clients="$NET_CLIENTS" \
  --batch="$NET_BATCH" --rounds="$NET_ROUNDS" >> "$LINES"
"$BIN" --durability --docs="$DUR_DOCS" --mutations="$DUR_MUTATIONS" \
  --rounds="$DUR_ROUNDS" >> "$LINES"
"$BIN" --index --docs="$INDEX_DOCS" --repeats="$INDEX_REPEATS" >> "$LINES"
"$BIN" --scan --docs="$SCAN_DOCS" --repeats="$SCAN_REPEATS" >> "$LINES"
"$BIN" --integrity --docs="$INTEG_DOCS" --repeats="$INTEG_REPEATS" \
  --mutations="$INTEG_MUTATIONS" >> "$LINES"
"$BIN" --stats --docs="$STATS_DOCS" --repeats="$STATS_REPEATS" \
  --rounds="$STATS_ROUNDS" >> "$LINES"

{
  printf '{\n'
  printf '  "bench": "e6",\n'
  printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "git_revision": "%s",\n' \
    "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "host": {"nproc": %s, "uname": "%s"},\n' \
    "$(nproc)" "$(uname -srm)"
  printf '  "results": [\n'
  sed 's/^/    /' "$LINES" | sed '$!s/$/,/'
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT ($(wc -l < "$LINES") result object(s))"
