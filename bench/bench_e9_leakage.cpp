// Experiment E9 (extension) — cumulative query leakage.
//
// Theorem 2.1 says one query breaks indistinguishability; this experiment
// quantifies how fast Eve's knowledge *accumulates* as Alex keeps
// querying: each executed query splits the encrypted documents into
// matched/unmatched, and the intersection of those patterns refines a
// partition of the table. We report distinguishable classes, partition
// entropy, and fully isolated individuals (singletons — the "John" risk)
// as a function of q.
//
// Expected shape: monotone growth, fast at first (selective queries carve
// the table quickly), saturating toward the table's value-equality
// structure. This is the quantitative justification for the paper's
// q = 0 requirement.

#include <cstdio>

#include "games/hospital.h"
#include "games/leakage.h"

using namespace dbph;

int main() {
  games::HospitalModel model;
  model.patients = 200;
  crypto::HmacDrbg gen_rng("e9-table", 1);
  auto table = games::GenerateHospitalTable(model, &gen_rng);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  const size_t kMaxQueries = 64;
  const int kSeeds = 5;

  std::printf(
      "E9: Eve's partition of %zu encrypted hospital records vs observed "
      "queries\n    (workload: random exact selects on real values; "
      "averaged over %d seeds)\n\n",
      table->size(), kSeeds);
  std::printf("%6s %14s %16s %14s\n", "q", "mean classes", "mean entropy b",
              "mean singletons");

  std::vector<size_t> checkpoints = {0, 1, 2, 4, 8, 16, 32, 64};
  std::vector<double> classes(checkpoints.size(), 0.0);
  std::vector<double> entropy(checkpoints.size(), 0.0);
  std::vector<double> singles(checkpoints.size(), 0.0);

  for (int seed = 0; seed < kSeeds; ++seed) {
    auto workload = games::SampleWorkload(*table, kMaxQueries,
                                          static_cast<uint64_t>(seed));
    auto curve = games::MeasureQueryLeakage(*table, workload, {},
                                            static_cast<uint64_t>(seed));
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < checkpoints.size(); ++i) {
      size_t q = checkpoints[i];
      classes[i] += static_cast<double>(curve->classes[q]);
      entropy[i] += curve->entropy_bits[q];
      singles[i] += static_cast<double>(curve->singletons[q]);
    }
  }

  for (size_t i = 0; i < checkpoints.size(); ++i) {
    std::printf("%6zu %14.1f %16.3f %14.1f\n", checkpoints[i],
                classes[i] / kSeeds, entropy[i] / kSeeds,
                singles[i] / kSeeds);
  }

  std::printf(
      "\nShape check: classes/entropy grow monotonically with q and\n"
      "singletons appear — individuals become re-identifiable exactly as\n"
      "the John attack (E4) exploits. At q = 0 the partition is trivial:\n"
      "one class, zero bits — the construction's security regime.\n");
  return 0;
}
