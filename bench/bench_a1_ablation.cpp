// Ablation A1 — costs of the construction's design choices.
//
//  - SWP variant: what query hiding (pre-encryption) and decryptability
//    (left-part keying) cost per word operation;
//  - check width m: false-positive filtering work vs per-word match cost;
//  - slot shuffling: the price of set semantics;
//  - word length: how match cost scales with the schema's widest value.
//
// Everything here informs the DbphOptions defaults (final scheme, m = 4,
// shuffling on).

#include <benchmark/benchmark.h>

#include <memory>

#include "crypto/random.h"
#include "dbph/scheme.h"
#include "swp/scheme.h"
#include "swp/search.h"

using namespace dbph;

namespace {

constexpr size_t kWordLen = 16;
constexpr size_t kCheckLen = 4;

swp::SchemeVariant VariantOf(int64_t index) {
  switch (index) {
    case 0:
      return swp::SchemeVariant::kBasic;
    case 1:
      return swp::SchemeVariant::kControlled;
    case 2:
      return swp::SchemeVariant::kHidden;
    default:
      return swp::SchemeVariant::kFinal;
  }
}

void BM_Swp_EncryptWord(benchmark::State& state) {
  auto scheme = swp::CreateScheme(VariantOf(state.range(0)),
                                  swp::SwpParams{kWordLen, kCheckLen},
                                  ToBytes("ablation"));
  swp::SwpKeys keys = swp::SwpKeys::Derive(ToBytes("ablation"));
  crypto::StreamGenerator stream(keys.stream_key, ToBytes("n"));
  Bytes word = ToBytes("ablation-word##");
  word.resize(kWordLen, '#');
  uint64_t position = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*scheme)->EncryptWord(stream, position++ % 64, word));
  }
  state.SetLabel((*scheme)->Name());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swp_EncryptWord)->DenseRange(0, 3);

void BM_Swp_MakeTrapdoor(benchmark::State& state) {
  auto scheme = swp::CreateScheme(VariantOf(state.range(0)),
                                  swp::SwpParams{kWordLen, kCheckLen},
                                  ToBytes("ablation"));
  Bytes word = ToBytes("ablation-word##");
  word.resize(kWordLen, '#');
  for (auto _ : state) {
    benchmark::DoNotOptimize((*scheme)->MakeTrapdoor(word));
  }
  state.SetLabel((*scheme)->Name());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swp_MakeTrapdoor)->DenseRange(0, 3);

void BM_Swp_Match(benchmark::State& state) {
  auto scheme = swp::CreateScheme(VariantOf(state.range(0)),
                                  swp::SwpParams{kWordLen, kCheckLen},
                                  ToBytes("ablation"));
  swp::SwpKeys keys = swp::SwpKeys::Derive(ToBytes("ablation"));
  crypto::StreamGenerator stream(keys.stream_key, ToBytes("n"));
  Bytes word = ToBytes("ablation-word##");
  word.resize(kWordLen, '#');
  auto trapdoor = (*scheme)->MakeTrapdoor(word);
  auto cipher = (*scheme)->EncryptWord(stream, 0, word);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*scheme)->Matches(*trapdoor, *cipher));
  }
  state.SetLabel((*scheme)->Name());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swp_Match)->DenseRange(0, 3);

void BM_Swp_MatchByWordLength(benchmark::State& state) {
  size_t word_len = static_cast<size_t>(state.range(0));
  auto scheme = swp::CreateScheme(swp::SchemeVariant::kFinal,
                                  swp::SwpParams{word_len, kCheckLen},
                                  ToBytes("ablation"));
  swp::SwpKeys keys = swp::SwpKeys::Derive(ToBytes("ablation"));
  crypto::StreamGenerator stream(keys.stream_key, ToBytes("n"));
  Bytes word(word_len, 'w');
  auto trapdoor = (*scheme)->MakeTrapdoor(word);
  auto cipher = (*scheme)->EncryptWord(stream, 0, word);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*scheme)->Matches(*trapdoor, *cipher));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swp_MatchByWordLength)->RangeMultiplier(2)->Range(8, 128);

rel::Schema AblationSchema() {
  auto schema = rel::Schema::Create({
      {"key", rel::ValueType::kString, 12},
      {"val", rel::ValueType::kInt64, 10},
  });
  return *schema;
}

void BM_Dbph_SelectFilter_ByCheckLength(benchmark::State& state) {
  // Smaller m => cheaper matching but more false positives shipped to and
  // filtered by the client. This measures the total (server + client)
  // cost per query on a 4096-row table.
  static std::map<int64_t, std::pair<std::unique_ptr<core::DatabasePh>,
                                     core::EncryptedRelation>>
      cache;
  int64_t m = state.range(0);
  if (cache.count(m) == 0) {
    crypto::HmacDrbg rng("a1", static_cast<uint64_t>(m));
    rel::Relation table("T", AblationSchema());
    for (int i = 0; i < 4096; ++i) {
      (void)table.Insert({rel::Value::Str("k" + std::to_string(i)),
                          rel::Value::Int(i % 100)});
    }
    core::DbphOptions options;
    options.check_length = static_cast<size_t>(m);
    auto ph = core::DatabasePh::Create(AblationSchema(), ToBytes("a1"),
                                       options);
    auto enc = ph->EncryptRelation(table, &rng);
    cache.emplace(m, std::make_pair(std::make_unique<core::DatabasePh>(
                                        std::move(*ph)),
                                    std::move(*enc)));
  }
  auto& [ph, enc] = cache[m];
  const rel::Value probe = rel::Value::Int(42);
  for (auto _ : state) {
    auto query = ph->EncryptQuery("T", "val", probe);
    auto hits = ExecuteSelect(enc, *query);
    std::vector<swp::EncryptedDocument> docs;
    for (size_t i : hits) docs.push_back(enc.documents[i]);
    benchmark::DoNotOptimize(ph->DecryptAndFilter(docs, "val", probe));
  }
}
BENCHMARK(BM_Dbph_SelectFilter_ByCheckLength)->DenseRange(1, 4);

void BM_Dbph_EncryptTuple_Shuffle(benchmark::State& state) {
  crypto::HmacDrbg rng("a1-shuffle", 1);
  core::DbphOptions options;
  options.shuffle_slots = state.range(0) != 0;
  auto ph = core::DatabasePh::Create(AblationSchema(), ToBytes("a1"),
                                     options);
  rel::Tuple tuple({rel::Value::Str("k12345"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptTuple(tuple, &rng));
  }
  state.SetLabel(options.shuffle_slots ? "shuffle" : "no-shuffle");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dbph_EncryptTuple_Shuffle)->DenseRange(0, 1);

}  // namespace

BENCHMARK_MAIN();
