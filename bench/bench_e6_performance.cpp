// Experiment E6 — the performance overhead the paper's conclusion weighs
// against security guarantees.
//
// google-benchmark suite comparing, at equal workloads:
//   - tuple encryption throughput: database PH vs bucketization vs
//     Damiani hash index;
//   - exact-select latency vs table size: plaintext B+tree index,
//     plaintext scan, bucketization (label index + filter), Damiani
//     (label index + filter), database PH (trapdoor scan + filter);
//   - decryption and trapdoor generation costs.
//
// Expected shape: plaintext B+tree << bucketization/Damiani (index probe
// + candidate decryption) << database PH (linear trapdoor scan — the
// price of hiding the access pattern per value). Encryption within small
// constant factors across schemes.

// Batch-runtime mode (BENCH_PARALLEL trajectory): invoking with any of
//   --threads=N --batch=M --docs=K --rounds=R
// skips google-benchmark and instead reports sequential-vs-parallel
// batched select throughput as one JSON object on stdout (the seed for
// tracking scan scalability across hardware).
//
// Network mode: adding --network (with optional --clients=N) spins up an
// epoll NetServer on a loopback ephemeral port and hammers it with N
// concurrent socket-backed clients issuing batched selects; reports
// aggregate multi-client queries/sec as JSON.
//
// Durability mode: --durability [--mutations=N] measures single-tuple
// Insert round trips against three deployments — memory-only, WAL with
// group commit (--fsync=batch), WAL with per-mutation fsync
// (--fsync=always) — and reports mutation throughput per policy as JSON
// (the price of crash safety at each durability level).
//
// Index mode: --index [--repeats=N] measures repeated-trapdoor select
// throughput with the trapdoor posting-list index enabled vs disabled
// over the same ciphertext (identical DRBG seeds), asserting that
// results and observation logs stay byte-identical; reports scan vs
// index queries/sec and the speedup as JSON. The acceptance bar for the
// planner work is speedup >= 10 at --docs=100000.
//
// Integrity mode: --integrity [--repeats=N] [--mutations=N] measures the
// price of Merkle result proofs: select and insert throughput with
// integrity off + VerifyMode::kOff (the PR-4 baseline) vs integrity on +
// VerifyMode::kEnforce, over identical ciphertext, splitting server-side
// proof generation from client-side verification; asserts verified
// results match the baseline.
//
// Scan mode: --scan [--repeats=N] measures honest-full-scan select
// throughput with the batched HMAC match kernel enabled vs the scalar
// per-word matcher, over identical ciphertext with the trapdoor index
// off on both sides (every select really scans). Reports point and
// ~1%-selectivity probes, the server-side split, per-query server heap
// allocation counts (via the global operator-new hook below — the
// kernel path's zero-per-word-allocation claim, measured), and the
// kernel side's dbph_scan_match_evals_total delta; asserts results and
// observation logs stay byte-identical across the A/B pair. The
// acceptance bar for the kernel work is kernel point qps >= 5x the
// honest-scan qps in the previously committed BENCH_e6.json at
// --docs=100000 (the precomputed HMAC schedules accelerate the scalar
// side too, so the in-binary A/B understates the total win).
//
// Stats mode: --stats [--repeats=N] measures the observability layer
// itself: point-select throughput with metrics on vs off over identical
// ciphertext (the acceptance bar is qps_on >= 0.98 * qps_off), plus the
// dispatch-lock wait share of select latency and a kStats round-trip
// check, all read back from the live registry.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "baselines/bucket/bucket_scheme.h"
#include "baselines/bucket/bucket_server.h"
#include "baselines/damiani/hash_scheme.h"
#include "baselines/plain/plain_engine.h"
#include "client/client.h"
#include "common/stopwatch.h"
#include "crypto/random.h"
#include "dbph/scheme.h"
#include "net/net_server.h"
#include "net/tcp_transport.h"
#include "server/durable_store.h"
#include "server/untrusted_server.h"

// Global heap-allocation counter, fed by replacing the throwing operator
// new/delete pairs. Every mode pays one relaxed atomic increment per
// allocation (noise-level); --scan reads deltas around server dispatch
// to report allocations per query on each matcher path. The aligned
// overloads are left alone — replaced and default pairs never mix.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace dbph;

namespace {

rel::Schema BenchSchema() {
  auto schema = rel::Schema::Create({
      {"key", rel::ValueType::kString, 12},
      {"val", rel::ValueType::kInt64, 10},
  });
  return *schema;
}

/// `n` rows; val has ~1% selectivity.
rel::Relation BenchTable(size_t n) {
  rel::Relation table("T", BenchSchema());
  for (size_t i = 0; i < n; ++i) {
    (void)table.Insert({rel::Value::Str("k" + std::to_string(i)),
                        rel::Value::Int(static_cast<int64_t>(i % 100))});
  }
  return table;
}

baseline::BucketOptions BucketConfig() {
  baseline::BucketOptions options;
  baseline::BucketAttributeConfig val;
  val.kind = baseline::PartitionKind::kEquiWidth;
  val.lo = 0;
  val.hi = 100;
  val.buckets = 25;
  options.attribute_configs["val"] = val;
  return options;
}

const rel::Value kProbe = rel::Value::Int(42);

// ---------------- encryption throughput ----------------

void BM_EncryptTuple_Dbph(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_Dbph);

void BM_EncryptTuple_DbphVariableLength(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  core::DbphOptions options;
  options.variable_length = true;
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"), options);
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_DbphVariableLength);

void BM_EncryptTuple_Bucket(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto scheme =
      baseline::BucketScheme::Create(BenchSchema(), ToBytes("k"),
                                     BucketConfig());
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_Bucket);

void BM_EncryptTuple_Damiani(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto scheme = baseline::DamianiScheme::Create(BenchSchema(), ToBytes("k"));
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_Damiani);

// ---------------- decryption / trapdoors ----------------

void BM_DecryptTuple_Dbph(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  auto doc = ph->EncryptTuple(tuple, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->DecryptTuple(*doc));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecryptTuple_Dbph);

void BM_QueryEncrypt_Dbph(benchmark::State& state) {
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptQuery("T", "val", kProbe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryEncrypt_Dbph);

// ---------------- exact select latency vs table size ----------------

void BM_Select_PlainBTree(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<baseline::PlainEngine>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    auto engine = baseline::PlainEngine::Create(BenchTable(n));
    cache[n] = std::make_unique<baseline::PlainEngine>(std::move(*engine));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache[n]->Select("val", kProbe));
  }
}
BENCHMARK(BM_Select_PlainBTree)->Range(1 << 10, 1 << 14);

void BM_Select_PlainScan(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<baseline::PlainEngine>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    auto engine = baseline::PlainEngine::Create(BenchTable(n));
    cache[n] = std::make_unique<baseline::PlainEngine>(std::move(*engine));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache[n]->SelectScan("val", kProbe));
  }
}
BENCHMARK(BM_Select_PlainScan)->Range(1 << 10, 1 << 14);

struct BucketDeployment {
  std::unique_ptr<baseline::BucketScheme> scheme;
  std::unique_ptr<baseline::BucketServer> server;
};

void BM_Select_Bucket(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<BucketDeployment>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    crypto::HmacDrbg rng("e6-bucket", n);
    auto deployment = std::make_unique<BucketDeployment>();
    auto scheme = baseline::BucketScheme::Create(BenchSchema(), ToBytes("k"),
                                                 BucketConfig());
    deployment->scheme =
        std::make_unique<baseline::BucketScheme>(std::move(*scheme));
    deployment->server = std::make_unique<baseline::BucketServer>(
        *deployment->scheme->EncryptRelation(BenchTable(n), &rng));
    cache[n] = std::move(deployment);
  }
  auto& d = *cache[n];
  for (auto _ : state) {
    // Server: index probe; client: decrypt candidates + filter.
    Bytes label = *d.scheme->QueryLabel("val", kProbe);
    auto candidates = d.server->SelectByLabel(1, label);
    benchmark::DoNotOptimize(
        d.scheme->DecryptAndFilter(*candidates, "val", kProbe));
  }
}
BENCHMARK(BM_Select_Bucket)->Range(1 << 10, 1 << 14);

struct DamianiDeployment {
  std::unique_ptr<baseline::DamianiScheme> scheme;
  std::unique_ptr<baseline::DamianiServer> server;
};

void BM_Select_Damiani(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<DamianiDeployment>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    crypto::HmacDrbg rng("e6-damiani", n);
    auto deployment = std::make_unique<DamianiDeployment>();
    auto scheme =
        baseline::DamianiScheme::Create(BenchSchema(), ToBytes("k"));
    deployment->scheme =
        std::make_unique<baseline::DamianiScheme>(std::move(*scheme));
    deployment->server = std::make_unique<baseline::DamianiServer>(
        *deployment->scheme->EncryptRelation(BenchTable(n), &rng));
    cache[n] = std::move(deployment);
  }
  auto& d = *cache[n];
  for (auto _ : state) {
    Bytes label = *d.scheme->QueryLabel("val", kProbe);
    auto candidates = d.server->SelectByLabel(1, label);
    benchmark::DoNotOptimize(
        d.scheme->DecryptAndFilter(*candidates, "val", kProbe));
  }
}
BENCHMARK(BM_Select_Damiani)->Range(1 << 10, 1 << 14);

struct DbphDeployment {
  std::unique_ptr<core::DatabasePh> ph;
  core::EncryptedRelation encrypted;
};

void BM_Select_Dbph(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<DbphDeployment>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    crypto::HmacDrbg rng("e6-dbph", n);
    auto deployment = std::make_unique<DbphDeployment>();
    auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
    deployment->ph = std::make_unique<core::DatabasePh>(std::move(*ph));
    deployment->encrypted =
        *deployment->ph->EncryptRelation(BenchTable(n), &rng);
    cache[n] = std::move(deployment);
  }
  auto& d = *cache[n];
  for (auto _ : state) {
    auto query = d.ph->EncryptQuery("T", "val", kProbe);
    auto hits = ExecuteSelect(d.encrypted, *query);
    std::vector<swp::EncryptedDocument> docs;
    for (size_t i : hits) docs.push_back(d.encrypted.documents[i]);
    benchmark::DoNotOptimize(d.ph->DecryptAndFilter(docs, "val", kProbe));
  }
}
BENCHMARK(BM_Select_Dbph)->Range(1 << 10, 1 << 14);

// End-to-end table encryption (items = tuples).
void BM_EncryptRelation_Dbph(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  rel::Relation table = BenchTable(n);
  crypto::HmacDrbg rng("e6-enc", 1);
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptRelation(table, &rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EncryptRelation_Dbph)->Arg(1 << 10);

// ------------- sequential vs parallel batched select (JSON mode) -------------

struct ParallelBenchConfig {
  size_t threads = 0;     // 0 = hardware concurrency
  size_t batch = 32;      // queries per batch round trip
  size_t docs = 100000;   // stored documents
  size_t rounds = 3;      // timed repetitions (best-of)
  size_t clients = 4;     // concurrent socket clients (--network mode)
  bool network = false;   // serve over loopback TCP instead of in-process
  bool durability = false;  // compare mutation throughput per fsync policy
  size_t mutations = 2000;  // insert round trips per policy (--durability)
  bool index = false;       // scan vs trapdoor-index select throughput
  bool scan = false;        // batched-kernel vs scalar scan throughput
  size_t repeats = 50;      // repeated-trapdoor selects per side (--index)
  bool integrity = false;   // Merkle proof generation/verification overhead
  bool stats = false;       // metrics overhead + lock-wait share (--stats)
};

/// One in-process deployment; `options` tunes the server runtime. The
/// transport accumulates time spent inside the server so modes can
/// report server-side cost separately from client crypto.
struct E6Deployment {
  explicit E6Deployment(server::ServerRuntimeOptions options)
      : server(options),
        rng("e6-parallel", 11),
        client(ToBytes("master"),
               [this](const Bytes& request) {
                 uint64_t allocs_before =
                     g_heap_allocs.load(std::memory_order_relaxed);
                 Stopwatch timer;
                 Bytes response = server.HandleRequest(request);
                 server_seconds += timer.ElapsedSeconds();
                 server_allocs +=
                     g_heap_allocs.load(std::memory_order_relaxed) -
                     allocs_before;
                 return response;
               },
               &rng) {}

  server::UntrustedServer server;
  crypto::HmacDrbg rng;
  double server_seconds = 0;
  uint64_t server_allocs = 0;
  client::Client client;
};

int RunParallelBench(const ParallelBenchConfig& config) {
  size_t threads = config.threads != 0 ? config.threads
                                       : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Two deployments over the same DRBG seed hold byte-identical
  // ciphertext, so results and observation logs are directly comparable.
  server::ServerRuntimeOptions seq_options;
  seq_options.num_threads = 1;
  seq_options.num_shards = 1;
  server::ServerRuntimeOptions par_options;
  par_options.num_threads = threads;
  E6Deployment seq(seq_options);
  E6Deployment par(par_options);

  std::fprintf(stderr, "outsourcing %zu documents...\n", config.docs);
  rel::Relation table = BenchTable(config.docs);
  if (!seq.client.Outsource(table).ok() || !par.client.Outsource(table).ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  std::vector<std::pair<std::string, rel::Value>> queries;
  for (size_t i = 0; i < config.batch; ++i) {
    queries.emplace_back(
        "val", rel::Value::Int(static_cast<int64_t>(i % 100)));
  }

  // Warm-up + correctness: batched results must match one-by-one results
  // tuple for tuple, with one observation log entry per query on both
  // sides.
  std::vector<rel::Relation> expected;
  for (const auto& [attribute, value] : queries) {
    auto r = seq.client.Select("T", attribute, value);
    if (!r.ok()) {
      std::fprintf(stderr, "sequential select failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    expected.push_back(std::move(*r));
  }
  auto batched = par.client.SelectBatch("T", queries);
  if (!batched.ok()) {
    std::fprintf(stderr, "batched select failed: %s\n",
                 batched.status().ToString().c_str());
    return 1;
  }
  bool results_match = batched->size() == expected.size();
  for (size_t i = 0; results_match && i < expected.size(); ++i) {
    results_match = (*batched)[i].SameTuples(expected[i]);
  }
  bool log_match =
      seq.server.observations().queries().size() == queries.size() &&
      par.server.observations().queries().size() == queries.size();

  // Timed rounds (best-of): sequential = one Select round trip per
  // query; parallel = one SelectBatch round trip for all of them.
  double seq_best = 0, par_best = 0;
  for (size_t round = 0; round < config.rounds; ++round) {
    Stopwatch timer;
    for (const auto& [attribute, value] : queries) {
      auto r = seq.client.Select("T", attribute, value);
      if (!r.ok()) return 1;
    }
    double elapsed = timer.ElapsedSeconds();
    if (round == 0 || elapsed < seq_best) seq_best = elapsed;
  }
  for (size_t round = 0; round < config.rounds; ++round) {
    Stopwatch timer;
    auto r = par.client.SelectBatch("T", queries);
    if (!r.ok()) return 1;
    double elapsed = timer.ElapsedSeconds();
    if (round == 0 || elapsed < par_best) par_best = elapsed;
  }

  double seq_qps = static_cast<double>(queries.size()) / seq_best;
  double par_qps = static_cast<double>(queries.size()) / par_best;
  std::printf(
      "{\"bench\":\"e6_parallel_batch\",\"docs\":%zu,\"threads\":%zu,"
      "\"batch\":%zu,\"rounds\":%zu,\"seq_seconds\":%.6f,"
      "\"par_seconds\":%.6f,\"seq_qps\":%.2f,\"par_qps\":%.2f,"
      "\"speedup\":%.3f,\"results_match\":%s,\"per_query_log_entry\":%s}\n",
      config.docs, threads, queries.size(), config.rounds, seq_best,
      par_best, seq_qps, par_qps, seq_best / par_best,
      results_match ? "true" : "false", log_match ? "true" : "false");
  return (results_match && log_match) ? 0 : 1;
}

// ---------------- multi-client network throughput (JSON mode) ----------------

int RunNetworkBench(const ParallelBenchConfig& config) {
  size_t threads = config.threads != 0 ? config.threads
                                       : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  server::ServerRuntimeOptions runtime_options;
  runtime_options.num_threads = threads;
  server::UntrustedServer eve(runtime_options);
  net::NetServerOptions net_options;
  net_options.max_connections = config.clients + 4;
  net::NetServer net_server(&eve, net_options);
  if (Status s = net_server.Start(); !s.ok()) {
    std::fprintf(stderr, "NetServer: %s\n", s.ToString().c_str());
    return 1;
  }

  std::fprintf(stderr, "outsourcing %zu documents over the wire...\n",
               config.docs);
  rel::Relation table = BenchTable(config.docs);
  crypto::HmacDrbg main_rng("e6-net", 0);
  auto main_transport =
      net::TcpTransport::Connect("127.0.0.1", net_server.port());
  if (!main_transport.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 main_transport.status().ToString().c_str());
    return 1;
  }
  client::Client main_client(ToBytes("e6 master"),
                             (*main_transport)->AsTransport(), &main_rng);
  if (!main_client.Outsource(table).ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  // Every client issues the same batch; expected answers come from the
  // plaintext table, so correctness is checked against ground truth, not
  // against another deployment.
  std::vector<std::pair<std::string, rel::Value>> queries;
  std::vector<rel::Relation> expected;
  for (size_t i = 0; i < config.batch; ++i) {
    rel::Value value = rel::Value::Int(static_cast<int64_t>(i % 100));
    queries.emplace_back("val", value);
    auto truth = table.Select("val", value);
    if (!truth.ok()) return 1;
    expected.push_back(std::move(*truth));
  }

  std::atomic<size_t> ready{0};
  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (size_t c = 0; c < config.clients; ++c) {
    workers.emplace_back([&, c] {
      crypto::HmacDrbg rng("e6-net", c + 1);
      auto transport =
          net::TcpTransport::Connect("127.0.0.1", net_server.port());
      if (!transport.ok()) {
        failures.fetch_add(1);
        ready.fetch_add(1);
        return;
      }
      client::Client client(ToBytes("e6 master"),
                            (*transport)->AsTransport(), &rng);
      // Shared master key: adopting the relation derives the same scheme
      // the uploader used, with no re-upload.
      if (!client.Adopt("T", BenchSchema()).ok()) {
        failures.fetch_add(1);
        ready.fetch_add(1);
        return;
      }
      ready.fetch_add(1);
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t round = 0; round < config.rounds; ++round) {
        auto results = client.SelectBatch("T", queries);
        if (!results.ok() || results->size() != expected.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          if (!(*results)[i].SameTuples(expected[i])) mismatches.fetch_add(1);
        }
      }
    });
  }

  while (ready.load(std::memory_order_acquire) < config.clients) {
    std::this_thread::yield();
  }
  Stopwatch timer;
  start.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  double elapsed = timer.ElapsedSeconds();
  net_server.Stop();

  size_t total_queries = config.clients * config.rounds * config.batch;
  bool results_match = mismatches.load() == 0 && failures.load() == 0;
  bool log_match =
      eve.observations().queries().size() == total_queries;
  auto stats = net_server.stats();
  std::printf(
      "{\"bench\":\"e6_network\",\"docs\":%zu,\"threads\":%zu,"
      "\"clients\":%zu,\"batch\":%zu,\"rounds\":%zu,\"seconds\":%.6f,"
      "\"qps\":%.2f,\"frames\":%llu,\"connections\":%llu,"
      "\"results_match\":%s,\"per_query_log_entry\":%s}\n",
      config.docs, threads, config.clients, config.batch, config.rounds,
      elapsed, static_cast<double>(total_queries) / elapsed,
      static_cast<unsigned long long>(stats.frames_in),
      static_cast<unsigned long long>(stats.accepted),
      results_match ? "true" : "false", log_match ? "true" : "false");
  return (results_match && log_match) ? 0 : 1;
}

// ------------- scan vs trapdoor-index select throughput (JSON mode) ----------

int RunIndexBench(const ParallelBenchConfig& config) {
  // Identical DRBG seeds: both deployments hold byte-identical
  // ciphertext, so results and observation logs are directly comparable.
  server::ServerRuntimeOptions scan_options;
  scan_options.enable_trapdoor_index = false;
  server::ServerRuntimeOptions index_options;
  index_options.enable_trapdoor_index = true;
  E6Deployment scan(scan_options);
  E6Deployment indexed(index_options);

  std::fprintf(stderr, "outsourcing %zu documents twice...\n", config.docs);
  rel::Relation table = BenchTable(config.docs);
  if (!scan.client.Outsource(table).ok() ||
      !indexed.client.Outsource(table).ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  // Two repeated trapdoors: a unique-key point select (1 match — the
  // OLTP shape, where the index advantage survives end to end) and the
  // ~1%-selectivity probe (1000 matches at 100k docs — here the client
  // decrypting every match dominates both sides, so the access-path win
  // shows in the server-side split). On the indexed side the first
  // select of each probe is the memoizing scan; every repeat after it
  // is a posting-list fetch.
  struct Probe {
    const char* label;
    std::string attribute;
    rel::Value value;
  };
  const Probe probes[] = {
      {"point", "key", rel::Value::Str("k42")},
      {"1pct", "val", kProbe},
  };

  bool all_ok = true;
  for (const Probe& probe : probes) {
    auto expected = scan.client.Select("T", probe.attribute, probe.value);
    auto warm = indexed.client.Select("T", probe.attribute, probe.value);
    if (!expected.ok() || !warm.ok()) {
      std::fprintf(stderr, "warm-up select failed\n");
      return 1;
    }
    bool results_match = expected->SameTuples(*warm);

    // Timed: `repeats` repeated-trapdoor selects per side. End-to-end
    // time includes the client decrypting every match (identical both
    // sides); the server-side split isolates what the access path costs.
    scan.server_seconds = 0;
    Stopwatch scan_timer;
    for (size_t i = 0; i < config.repeats; ++i) {
      auto r = scan.client.Select("T", probe.attribute, probe.value);
      if (!r.ok()) return 1;
      if (i == 0) results_match = results_match && r->SameTuples(*expected);
    }
    double scan_seconds = scan_timer.ElapsedSeconds();
    double scan_server_seconds = scan.server_seconds;
    indexed.server_seconds = 0;
    Stopwatch index_timer;
    for (size_t i = 0; i < config.repeats; ++i) {
      auto r = indexed.client.Select("T", probe.attribute, probe.value);
      if (!r.ok()) return 1;
      if (i == 0) results_match = results_match && r->SameTuples(*expected);
    }
    double index_seconds = index_timer.ElapsedSeconds();
    double index_server_seconds = indexed.server_seconds;

    double scan_qps = static_cast<double>(config.repeats) / scan_seconds;
    double index_qps = static_cast<double>(config.repeats) / index_seconds;
    double server_speedup = scan_server_seconds / index_server_seconds;
    std::printf(
        "{\"bench\":\"e6_index\",\"probe\":\"%s\",\"docs\":%zu,"
        "\"repeats\":%zu,"
        "\"result_size\":%zu,\"scan_seconds\":%.6f,\"index_seconds\":%.6f,"
        "\"scan_qps\":%.2f,\"index_qps\":%.2f,\"speedup\":%.3f,"
        "\"server_scan_seconds\":%.6f,\"server_index_seconds\":%.6f,"
        "\"server_speedup\":%.3f,"
        "\"results_match\":%s}\n",
        probe.label, config.docs, config.repeats, expected->size(),
        scan_seconds, index_seconds, scan_qps, index_qps,
        index_qps / scan_qps, scan_server_seconds, index_server_seconds,
        server_speedup, results_match ? "true" : "false");
    all_ok = all_ok && results_match;
  }

  // Byte-identical observation logs across the whole run, entry by
  // entry: the acceptance property the planner tests assert, checked
  // here at real workload sizes.
  const auto& scan_log = scan.server.observations().queries();
  const auto& index_log = indexed.server.observations().queries();
  bool log_match = scan_log.size() == index_log.size();
  for (size_t i = 0; log_match && i < scan_log.size(); ++i) {
    log_match = scan_log[i].relation == index_log[i].relation &&
                scan_log[i].trapdoor_bytes == index_log[i].trapdoor_bytes &&
                scan_log[i].matched_records == index_log[i].matched_records;
  }
  std::fprintf(stderr, "observation logs %s (%zu entries per side)\n",
               log_match ? "identical" : "DIVERGED", scan_log.size());
  return (all_ok && log_match) ? 0 : 1;
}

// ------------- batched scan kernel vs scalar matcher (JSON mode) -------------

int RunScanBench(const ParallelBenchConfig& config) {
  // Identical DRBG seeds: both deployments hold byte-identical
  // ciphertext. The trapdoor index is off on BOTH sides, so every
  // select is an honest full scan — the access path the kernel
  // accelerates; the only variable is the matcher implementation.
  server::ServerRuntimeOptions scalar_options;
  scalar_options.enable_trapdoor_index = false;
  scalar_options.enable_scan_kernel = false;
  server::ServerRuntimeOptions kernel_options;
  kernel_options.enable_trapdoor_index = false;
  kernel_options.enable_scan_kernel = true;
  E6Deployment scalar(scalar_options);
  E6Deployment kernel(kernel_options);

  std::fprintf(stderr, "outsourcing %zu documents twice...\n", config.docs);
  rel::Relation table = BenchTable(config.docs);
  if (!scalar.client.Outsource(table).ok() ||
      !kernel.client.Outsource(table).ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  // The kernel side's PRF-evaluation counter, read back through the
  // kStats surface — the same number EXPLAIN and the slow-query log
  // report per query.
  auto match_evals_total = [](E6Deployment* side) -> uint64_t {
    auto snapshot = side->client.Stats();
    if (!snapshot.ok()) return 0;
    auto it = snapshot->counters.find("dbph_scan_match_evals_total");
    return it == snapshot->counters.end() ? 0 : it->second;
  };

  struct Probe {
    const char* label;
    std::string attribute;
    rel::Value value;
  };
  const Probe probes[] = {
      {"point", "key", rel::Value::Str("k42")},
      {"1pct", "val", kProbe},
  };

  bool all_ok = true;
  for (const Probe& probe : probes) {
    auto expected = scalar.client.Select("T", probe.attribute, probe.value);
    auto warm = kernel.client.Select("T", probe.attribute, probe.value);
    if (!expected.ok() || !warm.ok()) {
      std::fprintf(stderr, "warm-up select failed\n");
      return 1;
    }
    bool results_match = expected->SameTuples(*warm);

    // Timed: `repeats` selects per side. End-to-end time includes the
    // client decrypting every match (identical both sides); the
    // server-side split isolates the matcher cost. Allocation deltas
    // cover server dispatch only — client crypto allocates identically
    // on both sides and would dilute the comparison.
    scalar.server_seconds = 0;
    scalar.server_allocs = 0;
    Stopwatch scalar_timer;
    for (size_t i = 0; i < config.repeats; ++i) {
      auto r = scalar.client.Select("T", probe.attribute, probe.value);
      if (!r.ok()) return 1;
      if (i == 0) results_match = results_match && r->SameTuples(*expected);
    }
    double scalar_seconds = scalar_timer.ElapsedSeconds();
    double scalar_server_seconds = scalar.server_seconds;
    uint64_t scalar_allocs = scalar.server_allocs;

    uint64_t evals_before = match_evals_total(&kernel);
    kernel.server_seconds = 0;
    kernel.server_allocs = 0;
    Stopwatch kernel_timer;
    for (size_t i = 0; i < config.repeats; ++i) {
      auto r = kernel.client.Select("T", probe.attribute, probe.value);
      if (!r.ok()) return 1;
      if (i == 0) results_match = results_match && r->SameTuples(*expected);
    }
    double kernel_seconds = kernel_timer.ElapsedSeconds();
    double kernel_server_seconds = kernel.server_seconds;
    uint64_t kernel_allocs = kernel.server_allocs;
    uint64_t kernel_evals = match_evals_total(&kernel) - evals_before;

    double scalar_qps = static_cast<double>(config.repeats) / scalar_seconds;
    double kernel_qps = static_cast<double>(config.repeats) / kernel_seconds;
    double repeats_d = static_cast<double>(config.repeats);
    std::printf(
        "{\"bench\":\"e6_scan\",\"probe\":\"%s\",\"docs\":%zu,"
        "\"repeats\":%zu,\"result_size\":%zu,"
        "\"scalar_seconds\":%.6f,\"kernel_seconds\":%.6f,"
        "\"scalar_qps\":%.2f,\"kernel_qps\":%.2f,\"speedup\":%.3f,"
        "\"server_scalar_seconds\":%.6f,\"server_kernel_seconds\":%.6f,"
        "\"server_speedup\":%.3f,"
        "\"scalar_allocs_per_query\":%.1f,\"kernel_allocs_per_query\":%.1f,"
        "\"kernel_match_evals\":%llu,"
        "\"results_match\":%s}\n",
        probe.label, config.docs, config.repeats, expected->size(),
        scalar_seconds, kernel_seconds, scalar_qps, kernel_qps,
        kernel_qps / scalar_qps, scalar_server_seconds, kernel_server_seconds,
        scalar_server_seconds / kernel_server_seconds,
        static_cast<double>(scalar_allocs) / repeats_d,
        static_cast<double>(kernel_allocs) / repeats_d,
        static_cast<unsigned long long>(kernel_evals),
        results_match ? "true" : "false");
    all_ok = all_ok && results_match;
  }

  // Byte-identical observation logs across the whole run, entry by
  // entry — the tentpole's A/B property, checked at real workload size.
  const auto& scalar_log = scalar.server.observations().queries();
  const auto& kernel_log = kernel.server.observations().queries();
  bool log_match = scalar_log.size() == kernel_log.size();
  for (size_t i = 0; log_match && i < scalar_log.size(); ++i) {
    log_match =
        scalar_log[i].relation == kernel_log[i].relation &&
        scalar_log[i].trapdoor_bytes == kernel_log[i].trapdoor_bytes &&
        scalar_log[i].matched_records == kernel_log[i].matched_records;
  }
  std::fprintf(stderr, "observation logs %s (%zu entries per side)\n",
               log_match ? "identical" : "DIVERGED", scalar_log.size());
  return (all_ok && log_match) ? 0 : 1;
}

// ---------------- mutation throughput per fsync policy (JSON mode) -----------

struct DurabilityRun {
  double ops_per_sec = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_records = 0;
  bool ok = false;
};

/// Times `mutations` single-tuple Insert round trips (plus one closing
/// kFlush) against one deployment; `mode` empty = memory-only baseline.
DurabilityRun RunOneDurabilityPolicyOnce(const ParallelBenchConfig& config,
                                         const std::string& mode) {
  DurabilityRun run;
  server::UntrustedServer eve;
  std::unique_ptr<server::DurableStore> store;
  std::string dir;
  if (!mode.empty()) {
    // Per-process dir: concurrent bench invocations on one host must not
    // remove_all each other's live WAL.
    dir = (std::filesystem::temp_directory_path() /
           ("dbph_e6_durability_" + mode + "_" +
            std::to_string(static_cast<long>(::getpid()))))
              .string();
    std::filesystem::remove_all(dir);
    server::DurableStoreOptions options;
    options.sync_mode = mode == "batch" ? storage::WalSyncMode::kBatch
                                        : storage::WalSyncMode::kAlways;
    options.sync_interval_ms = 5;
    options.checkpoint_interval_ms = 1000;
    store = std::make_unique<server::DurableStore>(&eve, dir, options);
    if (!store->Open().ok()) return run;
  }

  crypto::HmacDrbg rng("e6-durability", 21);
  client::Client client(
      ToBytes("e6 master"),
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);
  if (!client.Outsource(BenchTable(config.docs)).ok()) return run;

  Stopwatch timer;
  for (size_t i = 0; i < config.mutations; ++i) {
    rel::Tuple tuple({rel::Value::Str("m" + std::to_string(i)),
                      rel::Value::Int(static_cast<int64_t>(i % 100))});
    if (!client.Insert("T", {tuple}).ok()) return run;
  }
  if (!client.Flush().ok()) return run;  // durability point ends the run
  double elapsed = timer.ElapsedSeconds();

  run.ops_per_sec = static_cast<double>(config.mutations) / elapsed;
  if (store) {
    auto stats = store->stats();
    run.checkpoints = stats.checkpoints;
    run.wal_records = stats.wal_records;
    run.ok = stats.wal_records == config.mutations + 1;  // ops + outsource
    (void)store->Close();
    store.reset();
    std::filesystem::remove_all(dir);
  } else {
    run.ok = true;
  }
  return run;
}

/// Best-of-`rounds` for one policy — fsync throughput is noisy, and the
/// other modes already report best-of; a single run is not a trajectory
/// point. Every round must satisfy the all-mutations-logged invariant.
DurabilityRun RunOneDurabilityPolicy(const ParallelBenchConfig& config,
                                     const std::string& mode) {
  DurabilityRun best;
  best.ok = true;
  for (size_t round = 0; round < config.rounds; ++round) {
    DurabilityRun run = RunOneDurabilityPolicyOnce(config, mode);
    best.ok = best.ok && run.ok;
    if (round == 0 || run.ops_per_sec > best.ops_per_sec) {
      best.ops_per_sec = run.ops_per_sec;
      best.checkpoints = run.checkpoints;
      best.wal_records = run.wal_records;
    }
  }
  return best;
}

int RunDurabilityBench(const ParallelBenchConfig& config) {
  DurabilityRun none = RunOneDurabilityPolicy(config, "");
  DurabilityRun batch = RunOneDurabilityPolicy(config, "batch");
  DurabilityRun always = RunOneDurabilityPolicy(config, "always");
  bool ok = none.ok && batch.ok && always.ok;
  std::printf(
      "{\"bench\":\"e6_durability\",\"docs\":%zu,\"mutations\":%zu,"
      "\"rounds\":%zu,"
      "\"none_ops_per_sec\":%.2f,\"batch_ops_per_sec\":%.2f,"
      "\"always_ops_per_sec\":%.2f,\"batch_checkpoints\":%llu,"
      "\"always_checkpoints\":%llu,\"wal_records_per_run\":%llu,"
      "\"all_mutations_logged\":%s}\n",
      config.docs, config.mutations, config.rounds, none.ops_per_sec,
      batch.ops_per_sec, always.ops_per_sec,
      static_cast<unsigned long long>(batch.checkpoints),
      static_cast<unsigned long long>(always.checkpoints),
      static_cast<unsigned long long>(always.wal_records),
      ok ? "true" : "false");
  return ok ? 0 : 1;
}

// ------------- Merkle proof generation/verification overhead (JSON mode) -----

int RunIntegrityBench(const ParallelBenchConfig& config) {
  // Baseline: the PR-4 wire format (no trees, no proofs, client off).
  // Verified: server builds proofs, client enforces them — the full
  // price of tamper-evidence, end to end, over identical ciphertext
  // (same DRBG seeds).
  server::ServerRuntimeOptions off_options;
  off_options.enable_integrity = false;
  server::ServerRuntimeOptions on_options;
  on_options.enable_integrity = true;
  E6Deployment baseline(off_options);
  E6Deployment verified(on_options);
  verified.client.set_verify_mode(client::VerifyMode::kEnforce);

  std::fprintf(stderr, "outsourcing %zu documents twice...\n", config.docs);
  rel::Relation table = BenchTable(config.docs);
  Stopwatch baseline_outsource_timer;
  if (!baseline.client.Outsource(table).ok()) return 1;
  double baseline_outsource = baseline_outsource_timer.ElapsedSeconds();
  Stopwatch verified_outsource_timer;
  if (!verified.client.Outsource(table).ok()) return 1;
  double verified_outsource = verified_outsource_timer.ElapsedSeconds();

  struct Probe {
    const char* label;
    std::string attribute;
    rel::Value value;
  };
  const Probe probes[] = {
      {"point", "key", rel::Value::Str("k42")},
      {"1pct", "val", kProbe},
  };

  bool all_ok = true;
  for (const Probe& probe : probes) {
    auto expected =
        baseline.client.Select("T", probe.attribute, probe.value);
    auto checked = verified.client.Select("T", probe.attribute, probe.value);
    if (!expected.ok() || !checked.ok()) {
      std::fprintf(stderr, "warm-up select failed: %s\n",
                   (!expected.ok() ? expected.status() : checked.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    bool results_match = expected->SameTuples(*checked);

    baseline.server_seconds = 0;
    Stopwatch baseline_timer;
    for (size_t i = 0; i < config.repeats; ++i) {
      if (!baseline.client.Select("T", probe.attribute, probe.value).ok()) {
        return 1;
      }
    }
    double baseline_seconds = baseline_timer.ElapsedSeconds();
    double baseline_server = baseline.server_seconds;

    verified.server_seconds = 0;
    Stopwatch verified_timer;
    for (size_t i = 0; i < config.repeats; ++i) {
      if (!verified.client.Select("T", probe.attribute, probe.value).ok()) {
        return 1;
      }
    }
    double verified_seconds = verified_timer.ElapsedSeconds();
    double verified_server = verified.server_seconds;

    // Raw per-side splits, not cross-deployment deltas: two independent
    // deployments' timings are each noisy, and a subtraction of noisy
    // numbers can go negative for costs below timer resolution. Readers
    // (and the trajectory) subtract if they want a delta; the committed
    // record stays interpretable either way.
    double baseline_qps = static_cast<double>(config.repeats) /
                          baseline_seconds;
    double verified_qps = static_cast<double>(config.repeats) /
                          verified_seconds;
    std::printf(
        "{\"bench\":\"e6_integrity\",\"probe\":\"%s\",\"docs\":%zu,"
        "\"repeats\":%zu,\"result_size\":%zu,"
        "\"baseline_qps\":%.2f,\"verified_qps\":%.2f,"
        "\"overhead_ratio\":%.4f,"
        "\"server_seconds_per_query_baseline\":%.9f,"
        "\"server_seconds_per_query_verified\":%.9f,"
        "\"client_seconds_per_query_baseline\":%.9f,"
        "\"client_seconds_per_query_verified\":%.9f,"
        "\"results_match\":%s}\n",
        probe.label, config.docs, config.repeats, expected->size(),
        baseline_qps, verified_qps, verified_seconds / baseline_seconds,
        baseline_server / static_cast<double>(config.repeats),
        verified_server / static_cast<double>(config.repeats),
        (baseline_seconds - baseline_server) /
            static_cast<double>(config.repeats),
        (verified_seconds - verified_server) /
            static_cast<double>(config.repeats),
        results_match ? "true" : "false");
    all_ok = all_ok && results_match;
  }

  // Mutation overhead: appends maintain the tree (server + client) and
  // attest the new root (an extra round trip per mutation).
  size_t mutations = std::min<size_t>(config.mutations, 500);
  Stopwatch baseline_insert_timer;
  for (size_t i = 0; i < mutations; ++i) {
    rel::Tuple tuple({rel::Value::Str("m" + std::to_string(i)),
                      rel::Value::Int(static_cast<int64_t>(i % 100))});
    if (!baseline.client.Insert("T", {tuple}).ok()) return 1;
  }
  double baseline_insert = baseline_insert_timer.ElapsedSeconds();
  Stopwatch verified_insert_timer;
  for (size_t i = 0; i < mutations; ++i) {
    rel::Tuple tuple({rel::Value::Str("m" + std::to_string(i)),
                      rel::Value::Int(static_cast<int64_t>(i % 100))});
    if (!verified.client.Insert("T", {tuple}).ok()) return 1;
  }
  double verified_insert = verified_insert_timer.ElapsedSeconds();
  std::printf(
      "{\"bench\":\"e6_integrity_mutation\",\"docs\":%zu,"
      "\"mutations\":%zu,"
      "\"baseline_outsource_seconds\":%.6f,"
      "\"verified_outsource_seconds\":%.6f,"
      "\"baseline_insert_ops_per_sec\":%.2f,"
      "\"verified_insert_ops_per_sec\":%.2f,"
      "\"insert_overhead_ratio\":%.4f}\n",
      config.docs, mutations, baseline_outsource, verified_outsource,
      static_cast<double>(mutations) / baseline_insert,
      static_cast<double>(mutations) / verified_insert,
      verified_insert / baseline_insert);
  return all_ok ? 0 : 1;
}

// ------------- metrics overhead + lock-wait share (JSON mode) ----------------

/// One paired A/B point-select comparison between two deployments over
/// the same data. The two sides alternate in small chunks inside each
/// round, so a scheduler or VM-steal spike lands on both nearly equally
/// instead of skewing whichever ~100ms block it happened to hit; chunk
/// order flips every pair (ABBA) so interference phase-locked to the
/// chunk cadence cannot systematically tax one side. The reported ratio
/// is the MEDIAN of per-pair time ratios (a_chunk / b_chunk, i.e. the
/// B side's relative speed) — each ~6ms pair is an independent paired
/// sample, and the median discards the minority of pairs a burst
/// corrupted.
struct PairedSelectResult {
  double a_qps = 0;
  double b_qps = 0;
  double ratio = 1.0;  ///< median a_time/b_time: >= 1 means B is faster
  bool ok = false;
};

PairedSelectResult PairedPointSelects(E6Deployment* a, E6Deployment* b,
                                      const ParallelBenchConfig& config,
                                      const rel::Value& probe) {
  PairedSelectResult result;
  const size_t chunk = 100;
  double a_best = 0, b_best = 0;
  std::vector<double> pair_ratios;
  for (size_t round = 0; round < config.rounds; ++round) {
    double a_elapsed = 0, b_elapsed = 0;
    bool a_first = true;
    for (size_t done = 0; done < config.repeats;
         done += chunk, a_first = !a_first) {
      const size_t n = std::min(chunk, config.repeats - done);
      double a_chunk = 0, b_chunk = 0;
      const auto run_a = [&]() -> bool {
        Stopwatch timer;
        for (size_t i = 0; i < n; ++i) {
          if (!a->client.Select("T", "key", probe).ok()) return false;
        }
        a_chunk = timer.ElapsedSeconds();
        return true;
      };
      const auto run_b = [&]() -> bool {
        Stopwatch timer;
        for (size_t i = 0; i < n; ++i) {
          if (!b->client.Select("T", "key", probe).ok()) return false;
        }
        b_chunk = timer.ElapsedSeconds();
        return true;
      };
      if (a_first ? !(run_a() && run_b()) : !(run_b() && run_a())) {
        return result;
      }
      a_elapsed += a_chunk;
      b_elapsed += b_chunk;
      if (b_chunk > 0) pair_ratios.push_back(a_chunk / b_chunk);
    }
    if (round == 0 || a_elapsed < a_best) a_best = a_elapsed;
    if (round == 0 || b_elapsed < b_best) b_best = b_elapsed;
  }
  result.a_qps = static_cast<double>(config.repeats) / a_best;
  result.b_qps = static_cast<double>(config.repeats) / b_best;
  if (!pair_ratios.empty()) {
    std::nth_element(pair_ratios.begin(),
                     pair_ratios.begin() + pair_ratios.size() / 2,
                     pair_ratios.end());
    result.ratio = pair_ratios[pair_ratios.size() / 2];
  }
  result.ok = true;
  return result;
}

int RunStatsBench(const ParallelBenchConfig& config) {
  // Identical ciphertext (same DRBG seeds), one deployment with the obs
  // layer's clock reads and atomics, one with the metrics-off fast path.
  server::ServerRuntimeOptions off_options;
  off_options.enable_metrics = false;
  server::ServerRuntimeOptions on_options;
  on_options.enable_metrics = true;
  E6Deployment off(off_options);
  E6Deployment on(on_options);

  std::fprintf(stderr, "outsourcing %zu documents twice...\n", config.docs);
  rel::Relation table = BenchTable(config.docs);
  if (!off.client.Outsource(table).ok() || !on.client.Outsource(table).ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  // Warm-up memoizes the point probe on both sides, so the timed loop
  // measures the index-path point select — the workload where per-request
  // instrumentation overhead is largest relative to the work done.
  const rel::Value probe = rel::Value::Str("k42");
  auto expected = off.client.Select("T", "key", probe);
  auto warm = on.client.Select("T", "key", probe);
  if (!expected.ok() || !warm.ok()) {
    std::fprintf(stderr, "warm-up select failed\n");
    return 1;
  }
  bool results_match = expected->SameTuples(*warm);

  PairedSelectResult metrics_pair = PairedPointSelects(&off, &on, config, probe);
  if (!metrics_pair.ok) return 1;
  double off_qps = metrics_pair.a_qps;
  double on_qps = metrics_pair.b_qps;
  double overhead_ratio = metrics_pair.ratio;

  // Second paired comparison: the leakage auditor's hot-path cost (one
  // SHA-256 digest + a ring append per select) against an
  // --leakage=off deployment, metrics on for both sides so only the
  // auditor differs.
  server::ServerRuntimeOptions leak_off_options;
  leak_off_options.enable_leakage = false;
  server::ServerRuntimeOptions leak_on_options;
  leak_on_options.enable_leakage = true;
  E6Deployment leak_off(leak_off_options);
  E6Deployment leak_on(leak_on_options);
  if (!leak_off.client.Outsource(table).ok() ||
      !leak_on.client.Outsource(table).ok()) {
    std::fprintf(stderr, "leakage-pair outsource failed\n");
    return 1;
  }
  if (!leak_off.client.Select("T", "key", probe).ok() ||
      !leak_on.client.Select("T", "key", probe).ok()) {
    std::fprintf(stderr, "leakage-pair warm-up failed\n");
    return 1;
  }
  PairedSelectResult leakage_pair =
      PairedPointSelects(&leak_off, &leak_on, config, probe);
  if (!leakage_pair.ok) return 1;

  // Read the auditor back through its own wire surface: one
  // kLeakageReport round trip must show the workload we just ran, and
  // the --leakage=off deployment must refuse the same request.
  auto leakage_report = leak_on.client.LeakageReport();
  bool leakage_roundtrip_ok =
      leakage_report.ok() && leakage_report->queries_observed > 0 &&
      leakage_report->relations.size() == 1 &&
      leakage_report->relations[0].relation == "T" &&
      !leak_off.client.LeakageReport().ok();

  // Concurrent-reader scaling: 1, 2, then 4 reader sessions (each its
  // own Client — clients are single-threaded) hammer the same memoized
  // point select against the metrics-on deployment simultaneously.
  // Snapshot reads never take the dispatch lock, so throughput should
  // scale with cores; on a single-core host the witness is the
  // lock-wait share staying ~0 (reads were not serialized on a lock,
  // the core was just busy) with every result byte-identical.
  const size_t reader_counts[3] = {1, 2, 4};
  double reader_qps[3] = {0, 0, 0};
  bool readers_ok = true;
  for (int rc = 0; rc < 3 && readers_ok; ++rc) {
    const size_t readers = reader_counts[rc];
    const size_t per_reader = std::max<size_t>(1, config.repeats / readers);
    std::vector<std::unique_ptr<crypto::HmacDrbg>> reader_rngs;
    std::vector<std::unique_ptr<client::Client>> sessions;
    for (size_t r = 0; r < readers; ++r) {
      reader_rngs.push_back(
          std::make_unique<crypto::HmacDrbg>("e6-reader", 100 + r));
      sessions.push_back(std::make_unique<client::Client>(
          ToBytes("master"),
          [&on](const Bytes& request) {
            return on.server.HandleRequest(request);
          },
          reader_rngs.back().get()));
      if (!sessions.back()->Adopt("T", table.schema()).ok()) {
        readers_ok = false;
      }
    }
    if (!readers_ok) break;
    std::atomic<bool> reader_failed{false};
    Stopwatch timer;
    std::vector<std::thread> reader_threads;
    for (size_t r = 0; r < readers; ++r) {
      reader_threads.emplace_back([&, r] {
        for (size_t i = 0; i < per_reader; ++i) {
          auto rows = sessions[r]->Select("T", "key", probe);
          if (!rows.ok() || !rows->SameTuples(*expected)) {
            reader_failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& thread : reader_threads) thread.join();
    double elapsed = timer.ElapsedSeconds();
    if (reader_failed.load() || elapsed <= 0) {
      readers_ok = false;
      break;
    }
    reader_qps[rc] =
        static_cast<double>(readers * per_reader) / elapsed;
  }
  double reader_scaling =
      reader_qps[0] > 0 ? reader_qps[2] / reader_qps[0] : 0;

  // Read the answer back through the surface under test: one kStats
  // round trip, then the lock-wait share of select latency out of the
  // histograms. The snapshot is taken AFTER the concurrent-reader
  // phase, so the share reflects those racing readers too: on the read
  // path the only lock left is the observation-log mutex, and its wait
  // share staying near zero is the bench's serialization witness.
  auto snapshot = on.client.Stats();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "kStats round trip failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  auto requests = snapshot->counters.find("dbph_requests_total");
  bool stats_roundtrip_ok =
      requests != snapshot->counters.end() && requests->second > 0;
  double lock_wait_share = 0;
  uint64_t select_count = 0;
  auto lock_wait = snapshot->histograms.find("dbph_dispatch_lock_wait_seconds");
  auto selects = snapshot->histograms.find("dbph_select_seconds");
  if (lock_wait != snapshot->histograms.end() &&
      selects != snapshot->histograms.end() && selects->second.sum > 0) {
    select_count = selects->second.count;
    lock_wait_share = static_cast<double>(lock_wait->second.sum) /
                      static_cast<double>(selects->second.sum);
  }

  std::printf(
      "{\"bench\":\"e6_stats\",\"docs\":%zu,\"repeats\":%zu,\"rounds\":%zu,"
      "\"result_size\":%zu,\"qps_metrics_off\":%.2f,\"qps_metrics_on\":%.2f,"
      "\"overhead_ratio\":%.4f,"
      "\"qps_leakage_off\":%.2f,\"qps_leakage_on\":%.2f,"
      "\"leakage_overhead_ratio\":%.4f,\"leakage_roundtrip_ok\":%s,"
      "\"readers_1_qps\":%.2f,\"readers_2_qps\":%.2f,"
      "\"readers_4_qps\":%.2f,\"reader_scaling\":%.4f,"
      "\"readers_results_match\":%s,"
      "\"select_count\":%llu,"
      "\"lock_wait_share\":%.6f,\"stats_roundtrip_ok\":%s,"
      "\"results_match\":%s}\n",
      config.docs, config.repeats, config.rounds, expected->size(), off_qps,
      on_qps, overhead_ratio, leakage_pair.a_qps, leakage_pair.b_qps,
      leakage_pair.ratio, leakage_roundtrip_ok ? "true" : "false",
      reader_qps[0], reader_qps[1], reader_qps[2], reader_scaling,
      readers_ok ? "true" : "false",
      static_cast<unsigned long long>(select_count), lock_wait_share,
      stats_roundtrip_ok ? "true" : "false",
      results_match ? "true" : "false");
  return (stats_roundtrip_ok && results_match && leakage_roundtrip_ok &&
          readers_ok)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ParallelBenchConfig config;
  bool parallel_mode = false;
  auto parse = [&](const char* arg, const char* name, size_t* out) {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    *out = static_cast<size_t>(std::strtoull(arg + len, nullptr, 10));
    return true;
  };
  bool clients_flag = false;
  bool mutations_flag = false;
  bool repeats_flag = false;
  for (int i = 1; i < argc; ++i) {
    if (parse(argv[i], "--threads=", &config.threads) ||
        parse(argv[i], "--batch=", &config.batch) ||
        parse(argv[i], "--docs=", &config.docs) ||
        parse(argv[i], "--rounds=", &config.rounds)) {
      parallel_mode = true;
    } else if (parse(argv[i], "--clients=", &config.clients)) {
      clients_flag = true;
    } else if (parse(argv[i], "--mutations=", &config.mutations)) {
      mutations_flag = true;
    } else if (parse(argv[i], "--repeats=", &config.repeats)) {
      repeats_flag = true;
    } else if (std::strcmp(argv[i], "--network") == 0) {
      config.network = true;
    } else if (std::strcmp(argv[i], "--durability") == 0) {
      config.durability = true;
    } else if (std::strcmp(argv[i], "--index") == 0) {
      config.index = true;
    } else if (std::strcmp(argv[i], "--scan") == 0) {
      config.scan = true;
    } else if (std::strcmp(argv[i], "--integrity") == 0) {
      config.integrity = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      config.stats = true;
    }
  }
  if (clients_flag && !config.network) {
    std::fprintf(stderr, "--clients only applies to --network mode\n");
    return 2;
  }
  if (mutations_flag && !config.durability && !config.integrity) {
    std::fprintf(stderr,
                 "--mutations only applies to --durability/--integrity\n");
    return 2;
  }
  if (repeats_flag && !config.index && !config.scan && !config.integrity &&
      !config.stats) {
    std::fprintf(stderr,
                 "--repeats only applies to --index/--scan/--integrity/"
                 "--stats\n");
    return 2;
  }
  if (config.stats) return RunStatsBench(config);
  if (config.integrity) return RunIntegrityBench(config);
  if (config.scan) return RunScanBench(config);
  if (config.index) return RunIndexBench(config);
  if (config.durability) return RunDurabilityBench(config);
  if (config.network) return RunNetworkBench(config);
  if (parallel_mode) return RunParallelBench(config);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
