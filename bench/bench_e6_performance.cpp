// Experiment E6 — the performance overhead the paper's conclusion weighs
// against security guarantees.
//
// google-benchmark suite comparing, at equal workloads:
//   - tuple encryption throughput: database PH vs bucketization vs
//     Damiani hash index;
//   - exact-select latency vs table size: plaintext B+tree index,
//     plaintext scan, bucketization (label index + filter), Damiani
//     (label index + filter), database PH (trapdoor scan + filter);
//   - decryption and trapdoor generation costs.
//
// Expected shape: plaintext B+tree << bucketization/Damiani (index probe
// + candidate decryption) << database PH (linear trapdoor scan — the
// price of hiding the access pattern per value). Encryption within small
// constant factors across schemes.

// Batch-runtime mode (BENCH_PARALLEL trajectory): invoking with any of
//   --threads=N --batch=M --docs=K --rounds=R
// skips google-benchmark and instead reports sequential-vs-parallel
// batched select throughput as one JSON object on stdout (the seed for
// tracking scan scalability across hardware).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/bucket/bucket_scheme.h"
#include "baselines/bucket/bucket_server.h"
#include "baselines/damiani/hash_scheme.h"
#include "baselines/plain/plain_engine.h"
#include "client/client.h"
#include "common/stopwatch.h"
#include "crypto/random.h"
#include "dbph/scheme.h"
#include "server/untrusted_server.h"

using namespace dbph;

namespace {

rel::Schema BenchSchema() {
  auto schema = rel::Schema::Create({
      {"key", rel::ValueType::kString, 12},
      {"val", rel::ValueType::kInt64, 10},
  });
  return *schema;
}

/// `n` rows; val has ~1% selectivity.
rel::Relation BenchTable(size_t n) {
  rel::Relation table("T", BenchSchema());
  for (size_t i = 0; i < n; ++i) {
    (void)table.Insert({rel::Value::Str("k" + std::to_string(i)),
                        rel::Value::Int(static_cast<int64_t>(i % 100))});
  }
  return table;
}

baseline::BucketOptions BucketConfig() {
  baseline::BucketOptions options;
  baseline::BucketAttributeConfig val;
  val.kind = baseline::PartitionKind::kEquiWidth;
  val.lo = 0;
  val.hi = 100;
  val.buckets = 25;
  options.attribute_configs["val"] = val;
  return options;
}

const rel::Value kProbe = rel::Value::Int(42);

// ---------------- encryption throughput ----------------

void BM_EncryptTuple_Dbph(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_Dbph);

void BM_EncryptTuple_DbphVariableLength(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  core::DbphOptions options;
  options.variable_length = true;
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"), options);
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_DbphVariableLength);

void BM_EncryptTuple_Bucket(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto scheme =
      baseline::BucketScheme::Create(BenchSchema(), ToBytes("k"),
                                     BucketConfig());
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_Bucket);

void BM_EncryptTuple_Damiani(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto scheme = baseline::DamianiScheme::Create(BenchSchema(), ToBytes("k"));
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->EncryptTuple(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptTuple_Damiani);

// ---------------- decryption / trapdoors ----------------

void BM_DecryptTuple_Dbph(benchmark::State& state) {
  crypto::HmacDrbg rng("e6", 1);
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  rel::Tuple tuple({rel::Value::Str("k123456"), rel::Value::Int(42)});
  auto doc = ph->EncryptTuple(tuple, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->DecryptTuple(*doc));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecryptTuple_Dbph);

void BM_QueryEncrypt_Dbph(benchmark::State& state) {
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptQuery("T", "val", kProbe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryEncrypt_Dbph);

// ---------------- exact select latency vs table size ----------------

void BM_Select_PlainBTree(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<baseline::PlainEngine>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    auto engine = baseline::PlainEngine::Create(BenchTable(n));
    cache[n] = std::make_unique<baseline::PlainEngine>(std::move(*engine));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache[n]->Select("val", kProbe));
  }
}
BENCHMARK(BM_Select_PlainBTree)->Range(1 << 10, 1 << 14);

void BM_Select_PlainScan(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<baseline::PlainEngine>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    auto engine = baseline::PlainEngine::Create(BenchTable(n));
    cache[n] = std::make_unique<baseline::PlainEngine>(std::move(*engine));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache[n]->SelectScan("val", kProbe));
  }
}
BENCHMARK(BM_Select_PlainScan)->Range(1 << 10, 1 << 14);

struct BucketDeployment {
  std::unique_ptr<baseline::BucketScheme> scheme;
  std::unique_ptr<baseline::BucketServer> server;
};

void BM_Select_Bucket(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<BucketDeployment>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    crypto::HmacDrbg rng("e6-bucket", n);
    auto deployment = std::make_unique<BucketDeployment>();
    auto scheme = baseline::BucketScheme::Create(BenchSchema(), ToBytes("k"),
                                                 BucketConfig());
    deployment->scheme =
        std::make_unique<baseline::BucketScheme>(std::move(*scheme));
    deployment->server = std::make_unique<baseline::BucketServer>(
        *deployment->scheme->EncryptRelation(BenchTable(n), &rng));
    cache[n] = std::move(deployment);
  }
  auto& d = *cache[n];
  for (auto _ : state) {
    // Server: index probe; client: decrypt candidates + filter.
    Bytes label = *d.scheme->QueryLabel("val", kProbe);
    auto candidates = d.server->SelectByLabel(1, label);
    benchmark::DoNotOptimize(
        d.scheme->DecryptAndFilter(*candidates, "val", kProbe));
  }
}
BENCHMARK(BM_Select_Bucket)->Range(1 << 10, 1 << 14);

struct DamianiDeployment {
  std::unique_ptr<baseline::DamianiScheme> scheme;
  std::unique_ptr<baseline::DamianiServer> server;
};

void BM_Select_Damiani(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<DamianiDeployment>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    crypto::HmacDrbg rng("e6-damiani", n);
    auto deployment = std::make_unique<DamianiDeployment>();
    auto scheme =
        baseline::DamianiScheme::Create(BenchSchema(), ToBytes("k"));
    deployment->scheme =
        std::make_unique<baseline::DamianiScheme>(std::move(*scheme));
    deployment->server = std::make_unique<baseline::DamianiServer>(
        *deployment->scheme->EncryptRelation(BenchTable(n), &rng));
    cache[n] = std::move(deployment);
  }
  auto& d = *cache[n];
  for (auto _ : state) {
    Bytes label = *d.scheme->QueryLabel("val", kProbe);
    auto candidates = d.server->SelectByLabel(1, label);
    benchmark::DoNotOptimize(
        d.scheme->DecryptAndFilter(*candidates, "val", kProbe));
  }
}
BENCHMARK(BM_Select_Damiani)->Range(1 << 10, 1 << 14);

struct DbphDeployment {
  std::unique_ptr<core::DatabasePh> ph;
  core::EncryptedRelation encrypted;
};

void BM_Select_Dbph(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<DbphDeployment>> cache;
  size_t n = static_cast<size_t>(state.range(0));
  if (cache.count(n) == 0) {
    crypto::HmacDrbg rng("e6-dbph", n);
    auto deployment = std::make_unique<DbphDeployment>();
    auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
    deployment->ph = std::make_unique<core::DatabasePh>(std::move(*ph));
    deployment->encrypted =
        *deployment->ph->EncryptRelation(BenchTable(n), &rng);
    cache[n] = std::move(deployment);
  }
  auto& d = *cache[n];
  for (auto _ : state) {
    auto query = d.ph->EncryptQuery("T", "val", kProbe);
    auto hits = ExecuteSelect(d.encrypted, *query);
    std::vector<swp::EncryptedDocument> docs;
    for (size_t i : hits) docs.push_back(d.encrypted.documents[i]);
    benchmark::DoNotOptimize(d.ph->DecryptAndFilter(docs, "val", kProbe));
  }
}
BENCHMARK(BM_Select_Dbph)->Range(1 << 10, 1 << 14);

// End-to-end table encryption (items = tuples).
void BM_EncryptRelation_Dbph(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  rel::Relation table = BenchTable(n);
  crypto::HmacDrbg rng("e6-enc", 1);
  auto ph = core::DatabasePh::Create(BenchSchema(), ToBytes("k"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph->EncryptRelation(table, &rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EncryptRelation_Dbph)->Arg(1 << 10);

// ------------- sequential vs parallel batched select (JSON mode) -------------

struct ParallelBenchConfig {
  size_t threads = 0;     // 0 = hardware concurrency
  size_t batch = 32;      // queries per batch round trip
  size_t docs = 100000;   // stored documents
  size_t rounds = 3;      // timed repetitions (best-of)
};

/// One in-process deployment; `options` tunes the server runtime.
struct E6Deployment {
  explicit E6Deployment(server::ServerRuntimeOptions options)
      : server(options),
        rng("e6-parallel", 11),
        client(ToBytes("master"),
               [this](const Bytes& request) {
                 return server.HandleRequest(request);
               },
               &rng) {}

  server::UntrustedServer server;
  crypto::HmacDrbg rng;
  client::Client client;
};

int RunParallelBench(const ParallelBenchConfig& config) {
  size_t threads = config.threads != 0 ? config.threads
                                       : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Two deployments over the same DRBG seed hold byte-identical
  // ciphertext, so results and observation logs are directly comparable.
  server::ServerRuntimeOptions seq_options;
  seq_options.num_threads = 1;
  seq_options.num_shards = 1;
  server::ServerRuntimeOptions par_options;
  par_options.num_threads = threads;
  E6Deployment seq(seq_options);
  E6Deployment par(par_options);

  std::fprintf(stderr, "outsourcing %zu documents...\n", config.docs);
  rel::Relation table = BenchTable(config.docs);
  if (!seq.client.Outsource(table).ok() || !par.client.Outsource(table).ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  std::vector<std::pair<std::string, rel::Value>> queries;
  for (size_t i = 0; i < config.batch; ++i) {
    queries.emplace_back(
        "val", rel::Value::Int(static_cast<int64_t>(i % 100)));
  }

  // Warm-up + correctness: batched results must match one-by-one results
  // tuple for tuple, with one observation log entry per query on both
  // sides.
  std::vector<rel::Relation> expected;
  for (const auto& [attribute, value] : queries) {
    auto r = seq.client.Select("T", attribute, value);
    if (!r.ok()) {
      std::fprintf(stderr, "sequential select failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    expected.push_back(std::move(*r));
  }
  auto batched = par.client.SelectBatch("T", queries);
  if (!batched.ok()) {
    std::fprintf(stderr, "batched select failed: %s\n",
                 batched.status().ToString().c_str());
    return 1;
  }
  bool results_match = batched->size() == expected.size();
  for (size_t i = 0; results_match && i < expected.size(); ++i) {
    results_match = (*batched)[i].SameTuples(expected[i]);
  }
  bool log_match =
      seq.server.observations().queries().size() == queries.size() &&
      par.server.observations().queries().size() == queries.size();

  // Timed rounds (best-of): sequential = one Select round trip per
  // query; parallel = one SelectBatch round trip for all of them.
  double seq_best = 0, par_best = 0;
  for (size_t round = 0; round < config.rounds; ++round) {
    Stopwatch timer;
    for (const auto& [attribute, value] : queries) {
      auto r = seq.client.Select("T", attribute, value);
      if (!r.ok()) return 1;
    }
    double elapsed = timer.ElapsedSeconds();
    if (round == 0 || elapsed < seq_best) seq_best = elapsed;
  }
  for (size_t round = 0; round < config.rounds; ++round) {
    Stopwatch timer;
    auto r = par.client.SelectBatch("T", queries);
    if (!r.ok()) return 1;
    double elapsed = timer.ElapsedSeconds();
    if (round == 0 || elapsed < par_best) par_best = elapsed;
  }

  double seq_qps = static_cast<double>(queries.size()) / seq_best;
  double par_qps = static_cast<double>(queries.size()) / par_best;
  std::printf(
      "{\"bench\":\"e6_parallel_batch\",\"docs\":%zu,\"threads\":%zu,"
      "\"batch\":%zu,\"rounds\":%zu,\"seq_seconds\":%.6f,"
      "\"par_seconds\":%.6f,\"seq_qps\":%.2f,\"par_qps\":%.2f,"
      "\"speedup\":%.3f,\"results_match\":%s,\"per_query_log_entry\":%s}\n",
      config.docs, threads, queries.size(), config.rounds, seq_best,
      par_best, seq_qps, par_qps, seq_best / par_best,
      results_match ? "true" : "false", log_match ? "true" : "false");
  return (results_match && log_match) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ParallelBenchConfig config;
  bool parallel_mode = false;
  auto parse = [&](const char* arg, const char* name, size_t* out) {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    *out = static_cast<size_t>(std::strtoull(arg + len, nullptr, 10));
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (parse(argv[i], "--threads=", &config.threads) ||
        parse(argv[i], "--batch=", &config.batch) ||
        parse(argv[i], "--docs=", &config.docs) ||
        parse(argv[i], "--rounds=", &config.rounds)) {
      parallel_mode = true;
    }
  }
  if (parallel_mode) return RunParallelBench(config);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
