// Experiment E2 — Theorem 2.1: any database PH is insecure under
// Definition 2.1 once q > 0.
//
// Runs the theorem's adversary against our own construction for
// q in {0, 1, 2, 4, 8} and several table sizes. Expected shape: advantage
// ~0 at q = 0 (the construction's security regime) and ~1 for every
// q >= 1 — a single encrypted query flips the scheme from secure to
// broken, which is the paper's impossibility result.

#include <cstdio>

#include "games/kc_game.h"
#include "games/stats.h"
#include "games/theorem21_attack.h"

using namespace dbph;

int main() {
  const size_t kTrials = 300;
  std::printf(
      "E2: Definition 2.1 game vs our database PH (swp-final, m=4)\n"
      "    adversary of Theorem 2.1; %zu trials/row, fresh key per trial\n\n",
      kTrials);
  std::printf("%-22s %4s %6s %-30s %9s\n", "adversary", "q", "tuples",
              "success (95% Wilson CI)", "advantage");

  for (size_t table_size : {4u, 16u, 64u}) {
    for (size_t q : {0u, 1u, 2u, 4u, 8u}) {
      games::Theorem21Adversary adversary(table_size);
      auto outcome = games::RunDefinition21Game({}, q, &adversary, kTrials,
                                                1000 + q);
      if (!outcome.ok()) {
        std::printf("failed: %s\n", outcome.status().ToString().c_str());
        return 1;
      }
      std::printf("%-22s %4zu %6zu %-30s %9.3f\n", adversary.Name().c_str(),
                  q, table_size, outcome->ToString().c_str(),
                  outcome->Advantage());
    }
  }

  // The passive variant: Eve merely observes Alex's fixed workload.
  for (size_t q : {0u, 1u}) {
    games::PassiveResultSizeAdversary adversary(16);
    auto outcome =
        games::RunDefinition21Game({}, q, &adversary, kTrials, 2000 + q);
    if (!outcome.ok()) return 1;
    std::printf("%-22s %4zu %6u %-30s %9.3f\n", adversary.Name().c_str(), q,
                16u, outcome->ToString().c_str(), outcome->Advantage());
  }

  // --- The Kantarcıoğlu–Clifton relaxation (paper Section 2, ref [5]):
  // equal result cardinalities enforced on every query. Satisfiable
  // (size-only adversary blind) yet insufficient (intersection adversary
  // wins) — both claims in one table.
  std::printf("\nKC game (equal result sizes enforced by the referee):\n");
  std::printf("%-22s %4s %6s %-30s %9s\n", "adversary", "q", "tuples",
              "success (95% Wilson CI)", "advantage");
  {
    games::KcSizeOnlyAdversary size_only;
    auto outcome = games::RunKcGame({}, 2, &size_only, kTrials, 3000);
    if (!outcome.ok()) return 1;
    std::printf("%-22s %4u %6u %-30s %9.3f\n", size_only.Name().c_str(), 2u,
                2u, outcome->ToString().c_str(), outcome->Advantage());
  }
  {
    games::IntersectionPatternAdversary intersection;
    auto outcome = games::RunKcGame({}, 2, &intersection, kTrials, 3001);
    if (!outcome.ok()) return 1;
    std::printf("%-22s %4u %6u %-30s %9.3f\n", intersection.Name().c_str(),
                2u, 2u, outcome->ToString().c_str(), outcome->Advantage());
  }

  std::printf(
      "\nShape check (paper): advantage jumps from ~0 to ~1 between q = 0\n"
      "and q = 1, independent of table size — Theorem 2.1 reproduced.\n"
      "The KC relaxation is satisfiable for size-only adversaries but is\n"
      "defeated by result-set intersections, as Section 2 argues.\n");
  return 0;
}
