// Experiment E7 — the construction's security claim at q = 0.
//
// Runs a battery of passive adversaries (natural ciphertext statistics:
// repeat detection, byte frequency, Hamming weight, cross-document XOR)
// through the Definition 2.1 game with q = 0 against our database PH,
// across the SWP variants and check widths.
//
// Expected shape: every adversary's 95% interval contains 1/2 — no
// statistic beats guessing, the empirical counterpart of the formal
// security proof sketched in the paper.

#include <cstdio>

#include "games/q0_adversaries.h"
#include "games/stats.h"

using namespace dbph;

int main() {
  const size_t kTrials = 1000;
  std::printf(
      "E7: Definition 2.1 game at q = 0 vs our database PH, %zu trials "
      "per cell\n\n",
      kTrials);
  std::printf("%-22s %-22s %-30s %10s %8s\n", "adversary", "options",
              "success (95% Wilson CI)", "advantage", "verdict");

  struct Config {
    const char* label;
    core::DbphOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"final m=4 (default)", {}});
  {
    core::DbphOptions o;
    o.check_length = 1;
    configs.push_back({"final m=1", o});
  }
  {
    core::DbphOptions o;
    o.variable_length = true;
    configs.push_back({"final var-len", o});
  }
  {
    core::DbphOptions o;
    o.shuffle_slots = false;
    configs.push_back({"final no-shuffle", o});
  }

  bool all_hold = true;
  for (const auto& config : configs) {
    auto battery = games::MakeQ0AdversaryBattery();
    for (const auto& adversary : battery) {
      auto outcome = games::RunDefinition21Game(config.options, /*q=*/0,
                                                adversary.get(), kTrials,
                                                777);
      if (!outcome.ok()) {
        std::printf("failed: %s\n", outcome.status().ToString().c_str());
        return 1;
      }
      bool holds = !outcome->BeatsGuessing();
      all_hold = all_hold && holds;
      std::printf("%-22s %-22s %-30s %10.3f %8s\n",
                  adversary->Name().c_str(), config.label,
                  outcome->ToString().c_str(), outcome->Advantage(),
                  holds ? "holds" : "BROKEN");
    }
  }

  std::printf(
      "\nShape check (paper Section 3): the construction is secure in the\n"
      "relaxed q = 0 sense — %s.\n",
      all_hold ? "confirmed: no adversary beats guessing"
               : "VIOLATED: see rows marked BROKEN");
  return all_hold ? 0 : 1;
}
