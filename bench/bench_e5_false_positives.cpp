// Experiment E5 — "the error rate is relatively small for all practical
// purposes" (paper Section 3).
//
// Measures the SWP false-positive rate of the final scheme against the
// theoretical 2^(-8m) for check widths m = 1..4, and shows the effect at
// the database-PH level: raw server results vs the client's filtered
// results.
//
// Expected shape: measured per-word FP rate tracks 2^(-8m); the filter
// restores exactness at every m.

#include <cmath>
#include <cstdio>
#include <string>

#include "crypto/random.h"
#include "dbph/scheme.h"
#include "swp/search.h"

using namespace dbph;

namespace {

// Per-word false positive measurement on raw SWP words.
void MeasureWordRate(size_t check_len, size_t trials) {
  Bytes master = ToBytes("e5 master " + std::to_string(check_len));
  swp::SwpParams params{8, check_len};
  auto scheme = swp::CreateScheme(swp::SchemeVariant::kFinal, params, master);
  if (!scheme.ok()) return;
  swp::SwpKeys keys = swp::SwpKeys::Derive(master);
  crypto::StreamGenerator stream(keys.stream_key, ToBytes("e5-nonce"));

  Bytes needle = ToBytes("needle##");
  auto trapdoor = (*scheme)->MakeTrapdoor(needle);
  if (!trapdoor.ok()) return;

  size_t hits = 0;
  for (size_t i = 0; i < trials; ++i) {
    Bytes other = ToBytes("w" + std::to_string(i));
    other.resize(8, '#');
    if (other == needle) continue;
    auto cipher = (*scheme)->EncryptWord(stream, i, other);
    if (!cipher.ok()) return;
    if ((*scheme)->Matches(*trapdoor, *cipher)) ++hits;
  }
  double measured = static_cast<double>(hits) / static_cast<double>(trials);
  double theory = std::pow(2.0, -8.0 * static_cast<double>(check_len));
  std::printf("%6zu %10zu %12zu %14.3e %14.3e\n", check_len, trials, hits,
              measured, theory);
}

}  // namespace

int main() {
  std::printf("E5a: per-word false-positive rate, SWP final scheme\n\n");
  std::printf("%6s %10s %12s %14s %14s\n", "m", "trials", "false hits",
              "measured", "theory 2^-8m");
  MeasureWordRate(1, 200000);
  MeasureWordRate(2, 400000);
  MeasureWordRate(3, 400000);
  MeasureWordRate(4, 400000);

  // ---- E5b: effect at the query level, with and without the filter ----
  std::printf(
      "\nE5b: database-PH query results, raw vs filtered (m = 1, a "
      "deliberately weak check so false positives are visible)\n\n");
  crypto::HmacDrbg rng("e5b", 1);
  auto schema = rel::Schema::Create({
      {"key", rel::ValueType::kString, 8},
      {"val", rel::ValueType::kInt64, 10},
  });
  rel::Relation table("T", *schema);
  const int kRows = 3000;
  for (int i = 0; i < kRows; ++i) {
    (void)table.Insert({rel::Value::Str("k" + std::to_string(i)),
                        rel::Value::Int(i)});
  }
  core::DbphOptions options;
  options.check_length = 1;
  auto ph = core::DatabasePh::Create(*schema, ToBytes("e5b key"), options);
  if (!ph.ok()) return 1;
  auto enc = ph->EncryptRelation(table, &rng);
  if (!enc.ok()) return 1;

  std::printf("%-24s %10s %10s %10s\n", "query", "raw hits", "filtered",
              "exact");
  size_t total_raw = 0, total_exact = 0;
  for (int probe = 0; probe < 10; ++probe) {
    std::string key = "k" + std::to_string(probe * 250);
    auto query = ph->EncryptQuery("T", "key", rel::Value::Str(key));
    if (!query.ok()) return 1;
    auto hits = ExecuteSelect(*enc, *query);
    std::vector<swp::EncryptedDocument> docs;
    for (size_t i : hits) docs.push_back(enc->documents[i]);
    auto filtered = ph->DecryptAndFilter(docs, "key", rel::Value::Str(key));
    if (!filtered.ok()) return 1;
    auto exact = table.Select("key", rel::Value::Str(key));
    std::printf("%-24s %10zu %10zu %10zu\n",
                ("key='" + key + "'").c_str(), hits.size(),
                filtered->size(), exact->size());
    total_raw += hits.size();
    total_exact += exact->size();
  }
  std::printf(
      "\nraw server hits across probes: %zu, exact matches: %zu\n"
      "=> %zu false positives reached the client and were filtered; the\n"
      "   filtered results are exact at every check width (paper: \"Alex\n"
      "   needs to run a filter on the output ... this does not affect\n"
      "   the efficiency of our construction\").\n",
      total_raw, total_exact, total_raw - total_exact);
  return 0;
}
