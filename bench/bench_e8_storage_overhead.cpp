// Experiment E8 — ciphertext expansion of the construction and the
// full-version variable-length optimization.
//
// For several schema shapes, measures plaintext bytes vs ciphertext bytes
// for: the database PH with the paper's globally fixed word length, the
// variable-length word classes, and the bucketization/Damiani baselines.
//
// Expected shape: the fixed-length rule pays (max attribute length) x
// (number of attributes) per tuple; variable-length classes shrink that
// toward the plaintext size (trading a length-class leak); the baselines
// add only labels on top of a compact payload.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/bucket/bucket_scheme.h"
#include "baselines/damiani/hash_scheme.h"
#include "crypto/random.h"
#include "dbph/scheme.h"

using namespace dbph;

namespace {

struct Shape {
  const char* label;
  rel::Schema schema;
  rel::Relation table;
};

size_t PlaintextBytes(const rel::Relation& table) {
  size_t total = 0;
  for (const auto& t : table.tuples()) {
    for (const auto& v : t.values()) total += v.EncodeForWord().size();
  }
  return total;
}

Shape MakeShape(const char* label, std::vector<rel::Attribute> attrs,
                size_t rows, crypto::Rng* rng) {
  auto schema = rel::Schema::Create(std::move(attrs));
  rel::Relation table("T", *schema);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<rel::Value> values;
    for (const auto& attr : schema->attributes()) {
      switch (attr.type) {
        case rel::ValueType::kString: {
          // Random-length strings up to the attribute bound.
          size_t len = 1 + rng->NextBelow(attr.max_length);
          std::string s;
          for (size_t c = 0; c < len; ++c) {
            s += static_cast<char>('a' + rng->NextBelow(26));
          }
          values.push_back(rel::Value::Str(s));
          break;
        }
        case rel::ValueType::kInt64:
          values.push_back(rel::Value::Int(
              static_cast<int64_t>(rng->NextBelow(100000))));
          break;
        case rel::ValueType::kBool:
          values.push_back(rel::Value::Boolean(rng->NextBool()));
          break;
        case rel::ValueType::kDouble:
          values.push_back(rel::Value::Real(rng->NextDouble()));
          break;
      }
    }
    (void)table.Insert(rel::Tuple(std::move(values)));
  }
  return Shape{label, *schema, std::move(table)};
}

}  // namespace

int main() {
  crypto::HmacDrbg rng("e8", 1);
  const size_t kRows = 500;

  std::vector<Shape> shapes;
  shapes.push_back(MakeShape(
      "uniform (3 x string[10])",
      {{"a", rel::ValueType::kString, 10},
       {"b", rel::ValueType::kString, 10},
       {"c", rel::ValueType::kString, 10}},
      kRows, &rng));
  shapes.push_back(MakeShape(
      "skewed (string[64] + 2 short)",
      {{"blob", rel::ValueType::kString, 64},
       {"flag", rel::ValueType::kBool, 1},
       {"code", rel::ValueType::kString, 4}},
      kRows, &rng));
  shapes.push_back(MakeShape(
      "wide (8 x int)",
      {{"c0", rel::ValueType::kInt64, 6},
       {"c1", rel::ValueType::kInt64, 6},
       {"c2", rel::ValueType::kInt64, 6},
       {"c3", rel::ValueType::kInt64, 6},
       {"c4", rel::ValueType::kInt64, 6},
       {"c5", rel::ValueType::kInt64, 6},
       {"c6", rel::ValueType::kInt64, 6},
       {"c7", rel::ValueType::kInt64, 6}},
      kRows, &rng));

  std::printf(
      "E8: ciphertext expansion, %zu rows per shape (expansion = cipher "
      "bytes / plaintext value bytes)\n\n",
      kRows);
  std::printf("%-30s %-22s %12s %12s %10s\n", "schema shape", "scheme",
              "plain B", "cipher B", "expansion");

  auto print_row = [](const char* shape, const char* scheme, size_t plain,
                      size_t cipher) {
    std::printf("%-30s %-22s %12zu %12zu %9.2fx\n", shape, scheme, plain,
                cipher,
                static_cast<double>(cipher) / static_cast<double>(plain));
  };

  for (const auto& shape : shapes) {
    size_t plain = PlaintextBytes(shape.table);

    // One check byte keeps the shortest variable-length words legal
    // (a bool word is value + id = 2 bytes) and comparable across rows.
    core::DbphOptions fixed_options;
    fixed_options.check_length = 1;
    core::DbphOptions variable_options = fixed_options;
    variable_options.variable_length = true;

    // Database PH, fixed word length (the paper's rule).
    {
      auto ph =
          core::DatabasePh::Create(shape.schema, ToBytes("e8"), fixed_options);
      if (!ph.ok()) {
        std::printf("dbph create failed: %s\n",
                    ph.status().ToString().c_str());
        return 1;
      }
      auto enc = ph->EncryptRelation(shape.table, &rng);
      if (!enc.ok()) return 1;
      print_row(shape.label, "dbph fixed-length", plain,
                enc->CiphertextBytes());
    }
    // Database PH, variable-length classes (full-version optimization).
    {
      auto ph = core::DatabasePh::Create(shape.schema, ToBytes("e8"),
                                         variable_options);
      if (!ph.ok()) {
        std::printf("dbph create failed: %s\n",
                    ph.status().ToString().c_str());
        return 1;
      }
      auto enc = ph->EncryptRelation(shape.table, &rng);
      if (!enc.ok()) return 1;
      print_row(shape.label, "dbph variable-length", plain,
                enc->CiphertextBytes());
    }
    // Bucketization.
    {
      auto scheme =
          baseline::BucketScheme::Create(shape.schema, ToBytes("e8"));
      if (!scheme.ok()) return 1;
      auto enc = scheme->EncryptRelation(shape.table, &rng);
      if (!enc.ok()) return 1;
      print_row(shape.label, "bucketization", plain, enc->CiphertextBytes());
    }
    // Damiani.
    {
      auto scheme =
          baseline::DamianiScheme::Create(shape.schema, ToBytes("e8"));
      if (!scheme.ok()) return 1;
      auto enc = scheme->EncryptRelation(shape.table, &rng);
      if (!enc.ok()) return 1;
      print_row(shape.label, "damiani", plain, enc->CiphertextBytes());
    }
  }

  std::printf(
      "\nShape check: fixed-length words cost ~(max attr length x #attrs)\n"
      "per tuple, so skewed schemas inflate most; variable-length classes\n"
      "recover most of the gap, at the cost of leaking each slot's length\n"
      "class. Baselines are compact but leak value equality outright (E1).\n"
      "Note: dbph rows include the 16 B nonce and the 32 B integrity tag\n"
      "per tuple (authenticate_documents defaults to on); disable the tag\n"
      "to recover 32 B/tuple in the honest-but-curious model.\n");
  return 0;
}
