// Experiment E3 — the Section 2 hospital example (passive adversary).
//
// Eve knows the schema, the number of hospitals, the patient-flow
// distribution (0.2, 0.3, 0.5) and the outcome ratio (0.08/0.92). Alex
// runs his four reporting queries over the encrypted table. Eve matches
// observed result sizes to the priors to identify the queries, then
// intersects result sets to estimate the fatal ratio of hospital 1.
//
// Expected shape: identification rate ~1 for realistic table sizes, and
// the intersection estimate equals the true in-table ratio exactly (the
// leak is exact, not approximate — result sets are sets of record ids).

#include <cmath>
#include <cstdio>

#include "games/hospital.h"

using namespace dbph;

int main() {
  const uint64_t kRuns = 20;
  std::printf(
      "E3: hospital inference, %llu independent runs per table size\n"
      "    (fresh key, fresh synthetic table per run)\n\n",
      static_cast<unsigned long long>(kRuns));
  std::printf("%9s %12s %16s %16s %14s\n", "patients", "identified",
              "mean |est-true|", "max |est-true|", "mean true p1");

  for (size_t patients : {100u, 300u, 1000u, 3000u, 10000u}) {
    games::HospitalModel model;
    model.patients = patients;

    size_t identified = 0;
    double err_sum = 0, err_max = 0, true_sum = 0;
    for (uint64_t seed = 0; seed < kRuns; ++seed) {
      auto inference = games::RunHospitalScenario(model, seed);
      if (!inference.ok()) {
        std::printf("failed: %s\n", inference.status().ToString().c_str());
        return 1;
      }
      if (inference->queries_identified) ++identified;
      double err = inference->AbsoluteError();
      err_sum += err;
      err_max = std::max(err_max, err);
      true_sum += inference->true_fatal_ratio_h1;
    }
    std::printf("%9zu %9zu/%llu %16.6f %16.6f %14.4f\n", patients,
                identified, static_cast<unsigned long long>(kRuns),
                err_sum / kRuns, err_max, true_sum / kRuns);
  }

  std::printf(
      "\nShape check (paper): \"by intersecting the answers to the first\n"
      "and the fourth query, Eve can infer the ratio of lethal to\n"
      "successful outcomes in hospital 1\" — the estimate is exact\n"
      "(error 0) whenever the queries are identified, and identification\n"
      "from sizes succeeds at every realistic scale.\n");
  return 0;
}
