// Experiment E4 — the Section 2 "John" example (active adversary).
//
// Eve holds the query-encryption oracle: she obtains trapdoors for
// sigma_{name:John}, sigma_{hospital:X} (X = 1,2,3) and
// sigma_{outcome:fatal}, executes them on the stored ciphertext and
// intersects the result sets to learn John's hospital and outcome.
//
// Expected shape: success probability ~1 at every table size (failures
// would require SWP false positives, ~2^-32 per word at m = 4).

#include <cstdio>

#include "games/hospital.h"

using namespace dbph;

int main() {
  const uint64_t kRuns = 25;
  std::printf(
      "E4: John attack (active adversary, 5 chosen trapdoors), %llu runs "
      "per size\n\n",
      static_cast<unsigned long long>(kRuns));
  std::printf("%9s %12s %18s %18s\n", "patients", "found John",
              "hospital correct", "outcome correct");

  for (size_t patients : {50u, 200u, 1000u, 5000u}) {
    games::HospitalModel model;
    model.patients = patients;

    size_t found = 0, hospital_ok = 0, outcome_ok = 0;
    for (uint64_t seed = 0; seed < kRuns; ++seed) {
      auto inference = games::RunJohnAttack(model, seed);
      if (!inference.ok()) {
        std::printf("failed: %s\n", inference.status().ToString().c_str());
        return 1;
      }
      if (inference->found_john) ++found;
      if (inference->inferred_hospital == inference->true_hospital) {
        ++hospital_ok;
      }
      if (inference->inferred_outcome == inference->true_outcome) {
        ++outcome_ok;
      }
    }
    std::printf("%9zu %9zu/%llu %15zu/%llu %15zu/%llu\n", patients, found,
                static_cast<unsigned long long>(kRuns), hospital_ok,
                static_cast<unsigned long long>(kRuns), outcome_ok,
                static_cast<unsigned long long>(kRuns));
  }

  std::printf(
      "\nShape check (paper): \"by intersecting the results of the four\n"
      "queries issued, Eve can determine the hospital where John was\n"
      "treated. Analogously, she can find his status.\" — success rate 1\n"
      "across all sizes.\n");
  return 0;
}
