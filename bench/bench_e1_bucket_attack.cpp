// Experiment E1 — the paper's Section 1 inline tables:
// IND distinguishing attack against deterministic-index schemes.
//
// Reproduces: "Eve can determine with high probability to which table
// corresponds the received ciphertext" for the Hacıgümüş bucketization
// scheme (sweeping the bucket count, i.e. the interval width) and the
// Damiani hash-index scheme, with our database PH as the control.
//
// Expected shape: success probability ~1 whenever 1200 and 4900 fall in
// different buckets (bucket width < 3700), ~1 for the exact-value hash
// labels at any usable width, and ~1/2 for the database PH.

#include <cstdio>

#include "common/macros.h"
#include "dbph/scheme.h"
#include "games/ind_game.h"
#include "games/salary_attack.h"
#include "games/stats.h"

using namespace dbph;
using games::TrialEncryptor;

namespace {

Result<games::BinomialSummary> RunBucket(size_t buckets, size_t trials) {
  baseline::BucketOptions options;
  baseline::BucketAttributeConfig salary;
  salary.kind = baseline::PartitionKind::kEquiWidth;
  salary.lo = 0;
  salary.hi = 10000;
  salary.buckets = buckets;
  options.attribute_configs["salary"] = salary;

  games::BucketSalaryAdversary adversary;
  TrialEncryptor<baseline::BucketRelation> encrypt =
      [&](const rel::Relation& table, size_t trial,
          crypto::Rng* rng) -> Result<baseline::BucketRelation> {
    DBPH_ASSIGN_OR_RETURN(
        baseline::BucketScheme scheme,
        baseline::BucketScheme::Create(
            games::SalarySchema(),
            ToBytes("e1 key " + std::to_string(trial)), options));
    return scheme.EncryptRelation(table, rng);
  };
  return games::RunIndGame<baseline::BucketRelation>(encrypt, &adversary,
                                                     trials, buckets);
}

Result<games::BinomialSummary> RunDamiani(size_t label_length,
                                          size_t trials) {
  games::DamianiSalaryAdversary adversary;
  TrialEncryptor<baseline::HashedRelation> encrypt =
      [&](const rel::Relation& table, size_t trial,
          crypto::Rng* rng) -> Result<baseline::HashedRelation> {
    baseline::DamianiOptions options;
    options.label_length = label_length;
    DBPH_ASSIGN_OR_RETURN(
        baseline::DamianiScheme scheme,
        baseline::DamianiScheme::Create(
            games::SalarySchema(),
            ToBytes("e1 key " + std::to_string(trial)), options));
    return scheme.EncryptRelation(table, rng);
  };
  return games::RunIndGame<baseline::HashedRelation>(encrypt, &adversary,
                                                     trials, label_length);
}

Result<games::BinomialSummary> RunDbph(size_t trials) {
  games::DbphSalaryAdversary adversary;
  TrialEncryptor<core::EncryptedRelation> encrypt =
      [](const rel::Relation& table, size_t trial,
         crypto::Rng* rng) -> Result<core::EncryptedRelation> {
    DBPH_ASSIGN_OR_RETURN(
        core::DatabasePh ph,
        core::DatabasePh::Create(games::SalarySchema(),
                                 ToBytes("e1 key " + std::to_string(trial))));
    return ph.EncryptRelation(table, rng);
  };
  return games::RunIndGame<core::EncryptedRelation>(encrypt, &adversary,
                                                    trials, 99);
}

void PrintRow(const char* scheme, const char* config,
              const games::BinomialSummary& outcome) {
  std::printf("%-26s %-18s %-30s %9.3f  %s\n", scheme, config,
              outcome.ToString().c_str(), outcome.Advantage(),
              outcome.BeatsGuessing() ? "BROKEN" : "holds");
}

}  // namespace

int main() {
  const size_t kTrials = 400;
  std::printf(
      "E1: IND game (Definition 1.2) with the paper's salary tables\n"
      "    T1 = {(171,4900),(481,1200)}  T2 = {(171,4900),(481,4900)}\n"
      "    domain [0,10000], %zu trials per row, fresh key per trial\n\n",
      kTrials);
  std::printf("%-26s %-18s %-30s %9s  %s\n", "scheme", "config",
              "success (95% Wilson CI)", "advantage", "verdict");

  // Bucketization: sweep the interval width. 1200 vs 4900 differ by 3700:
  // 2 buckets (width 5000) may put them together; >= 3 buckets separates
  // them and the attack becomes deterministic.
  for (size_t buckets : {2u, 3u, 5u, 10u, 20u, 50u, 100u}) {
    auto outcome = RunBucket(buckets, kTrials);
    if (!outcome.ok()) {
      std::printf("bucketization failed: %s\n",
                  outcome.status().ToString().c_str());
      return 1;
    }
    char config[32];
    std::snprintf(config, sizeof(config), "%zu buckets", buckets);
    PrintRow("bucketization (Hacigumus)", config, *outcome);
  }

  for (size_t label_len : {1u, 2u, 4u, 8u}) {
    auto outcome = RunDamiani(label_len, kTrials);
    if (!outcome.ok()) return 1;
    char config[32];
    std::snprintf(config, sizeof(config), "%zu-byte labels", label_len);
    PrintRow("hash index (Damiani)", config, *outcome);
  }

  auto dbph = RunDbph(kTrials);
  if (!dbph.ok()) return 1;
  PrintRow("database PH (this work)", "swp-final m=4", *dbph);

  std::printf(
      "\nShape check (paper): deterministic attribute-level encryption is\n"
      "insecure in the sense of Definition 1.2; the attack fails only when\n"
      "the partition happens to merge 1200 and 4900 into one interval.\n");
  return 0;
}
