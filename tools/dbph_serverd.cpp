// dbph_serverd — Eve as a standalone network daemon.
//
// Hosts one UntrustedServer behind the epoll frame protocol so any number
// of Alex processes (sql_repl --connect, bench_e6 --network, or a
// TcpTransport-backed Client) can reach it over TCP.
//
// Usage:
//   dbph_serverd --port=7690 [--bind=ADDR] [--threads=N] [--shards=N]
//                [--persist=DIR] [--fsync=always|batch]
//                [--max-conns=N] [--idle-timeout-ms=N] [--read-workers=N]
//                [--index=on|off] [--integrity=on|off]
//                [--observation=full|aggregate]
//                [--metrics=on|off] [--metrics-port=N] [--slow-query-ms=N]
//                [--leakage=on|off] [--leakage-topk=N]
//                [--leakage-alert-millis=N]
//
// Full flag reference (kept in lockstep with --help and CI's docs
// check): docs/OPERATIONS.md.
//
//   --read-workers=N  dispatch worker threads for the frame loop
//                   (default 0 = dispatch inline on the event loop).
//                   With N > 0, snapshot reads — selects, all-select
//                   batches, EXPLAIN, fetch, stats, leakage, ping —
//                   execute concurrently against the published snapshot
//                   while mutations serialize on the single-writer
//                   dispatch lock. Per-connection response order is
//                   preserved either way.
//   --index=on      (default) trapdoor posting-list index: repeated
//                   trapdoors are answered from memoized match sets
//                   instead of an O(n) scan. Results and observation
//                   logging are byte-identical either way; off disables
//                   the memo entirely.
//   --index-capacity=N  distinct trapdoors memoized per relation
//                   (default 65536, 0 = unlimited). Bounds index memory
//                   and per-append maintenance under heavy traffic; at
//                   capacity new trapdoors keep scanning.
//   --index-append-budget=N  trapdoor evaluations an append may spend
//                   maintaining the memo (default 16384, 0 = unlimited);
//                   entries beyond the budget are evicted, not served
//                   stale. Raise for bulk-append workloads.
//   --integrity=on  (default) result integrity: maintain per-relation
//                   Merkle trees over the stored ciphertext and attach
//                   a result proof to every select / fetch / delete
//                   response, so a verifying client (VerifyMode Warn or
//                   Enforce) detects dropped, substituted, reordered, or
//                   replayed rows. Proofs are identical on both planner
//                   access paths. off restores the PR-4 wire format.
//   --observation=full       keep every query observation verbatim
//                   (trapdoor bytes + matched ids) — the Section 2
//                   games' input; memory grows with query count.
//   --observation=aggregate  bounded transcript: counts + result-size
//                   histogram only, so a long-running daemon under heavy
//                   traffic does not grow without bound.
//   --metrics=on    (default) per-op counters, stage latency histograms,
//                   dispatch-lock wait tracking (src/obs). off skips the
//                   clock reads; kStats still answers with zeroed series.
//   --metrics-port=N  serve the metrics snapshot as Prometheus text over
//                   plain HTTP on port N (same event loop, same bind
//                   address). Off unless given. The page leaks only
//                   sizes/counts/timings — Eve's own view — but expose
//                   it to operators, not the internet.
//   --slow-query-ms=N  log requests slower than N ms at Warning with
//                   their per-stage trace. The line carries metadata only
//                   (op, relation name, timings, result count) — never
//                   trapdoor or ciphertext bytes. 0 (default) disables.
//   --leakage=on    (default) online leakage auditor: per-relation
//                   trapdoor-tag frequency sketches (salted digests),
//                   empirical entropy, per-path result-size histograms,
//                   and a live frequency-attack advantage estimate,
//                   surfaced as dbph_leakage_* metrics, kLeakageReport,
//                   and the LEAKAGE REPL command. off disables the
//                   auditor; kLeakageReport then fails with
//                   FailedPrecondition.
//   --leakage-topk=N  distinct tag digests tracked per relation before
//                   the sketch degrades to heavy-hitters (default 128).
//   --leakage-alert-millis=N  log a redacted Warning (and count an
//                   alert) when a relation's observed frequency-attack
//                   advantage reaches N/1000 (default 500).
//
//   --persist=DIR   continuous durability: every mutation is appended to
//                   DIR/wal.log (CRC-guarded, length-prefixed) before it
//                   is applied; a background checkpointer rewrites
//                   DIR/snapshot.dbph atomically and trims the log. On
//                   start the daemon recovers snapshot + WAL replay
//                   (truncating a torn tail), so a kill -9 loses at most
//                   the unsynced log suffix — nothing with --fsync=always.
//   --fsync=always  fsync per mutation (default): acknowledged writes
//                   survive any crash.
//   --fsync=batch   group commit: acks before fsync, syncs on a timer
//                   and on kFlush; bounded loss window, higher mutation
//                   throughput.
//
// The observation log is volatile by design: restarting Eve forgets her
// transcript but never Alex's ciphertext.

#include <errno.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/net_server.h"
#include "server/durable_store.h"
#include "server/untrusted_server.h"

using namespace dbph;

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

/// Matches `--name=N` and validates the number strictly; a matching flag
/// with a malformed value is fatal (silently listening on a wrong port is
/// worse than refusing to start).
bool ParseSizeFlag(const char* arg, const char* name, size_t* out,
                   bool* bad_value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  const char* text = arg + len;
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE) {
    *bad_value = true;
    return true;
  }
  *out = static_cast<size_t>(value);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

/// Printed by --help and on an unknown flag. Every flag listed here must
/// be documented in docs/OPERATIONS.md — scripts/ci.sh cross-checks the
/// two and fails the build on drift.
const char kUsage[] =
    "usage: dbph_serverd [flags]\n"
    "  --port=N                listen port (default 7690)\n"
    "  --bind=ADDR             bind address (default 0.0.0.0)\n"
    "  --threads=N             batch worker threads (0 = hardware)\n"
    "  --shards=N              shards per relation scan (0 = 4x workers)\n"
    "  --max-conns=N           concurrent connection cap\n"
    "  --idle-timeout-ms=N     reap idle connections after N ms\n"
    "  --read-workers=N        dispatch workers; reads run off-lock (0 = inline)\n"
    "  --persist=DIR           continuous durability (WAL + snapshots)\n"
    "  --fsync=always|batch    WAL sync policy (with --persist)\n"
    "  --index=on|off          trapdoor posting-list index (default on)\n"
    "  --scan-kernel=on|off    batched HMAC scan kernel (default on)\n"
    "  --index-capacity=N      memoized trapdoors per relation\n"
    "  --index-append-budget=N index maintenance budget per append\n"
    "  --integrity=on|off      Merkle result proofs (default on)\n"
    "  --observation=full|aggregate  observation log mode\n"
    "  --metrics=on|off        metrics + query tracing (default on)\n"
    "  --metrics-port=N        Prometheus text endpoint on port N\n"
    "  --slow-query-ms=N       log queries slower than N ms (0 = off)\n"
    "  --leakage=on|off        online leakage auditor (default on)\n"
    "  --leakage-topk=N        tag digests tracked per relation\n"
    "  --leakage-alert-millis=N  advantage alert budget in thousandths\n"
    "  --help                  print this and exit\n"
    "full reference: docs/OPERATIONS.md\n";

}  // namespace

int main(int argc, char** argv) {
  net::NetServerOptions net_options;
  net_options.port = 7690;
  net_options.bind_address = "0.0.0.0";
  server::ServerRuntimeOptions runtime_options;
  std::string persist_dir;
  std::string fsync_mode;
  std::string index_mode;
  std::string scan_kernel_mode;
  std::string integrity_mode;
  std::string observation_mode;
  std::string metrics_mode;
  std::string leakage_mode;

  size_t port = net_options.port;
  size_t max_conns = net_options.max_connections;
  size_t idle_ms = static_cast<size_t>(net_options.idle_timeout_ms);
  size_t metrics_port = 0;
  bool have_metrics_port = false;
  size_t slow_query_ms = 0;
  size_t leakage_alert_millis = runtime_options.leakage_alert_millis;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    bool bad_value = false;
    if (ParseSizeFlag(argv[i], "--metrics-port=", &metrics_port, &bad_value)) {
      if (bad_value) {
        std::fprintf(stderr, "bad numeric value in '%s'\n", argv[i]);
        return 2;
      }
      have_metrics_port = true;
      continue;
    }
    if (ParseSizeFlag(argv[i], "--port=", &port, &bad_value) ||
        ParseSizeFlag(argv[i], "--threads=", &runtime_options.num_threads,
                      &bad_value) ||
        ParseSizeFlag(argv[i], "--shards=", &runtime_options.num_shards,
                      &bad_value) ||
        ParseSizeFlag(argv[i], "--max-conns=", &max_conns, &bad_value) ||
        ParseSizeFlag(argv[i], "--idle-timeout-ms=", &idle_ms, &bad_value) ||
        ParseSizeFlag(argv[i], "--read-workers=", &net_options.read_workers,
                      &bad_value) ||
        ParseSizeFlag(argv[i], "--index-capacity=",
                      &runtime_options.max_indexed_trapdoors, &bad_value) ||
        ParseSizeFlag(argv[i], "--index-append-budget=",
                      &runtime_options.max_index_append_evals, &bad_value) ||
        ParseSizeFlag(argv[i], "--slow-query-ms=", &slow_query_ms,
                      &bad_value) ||
        ParseSizeFlag(argv[i], "--leakage-topk=",
                      &runtime_options.leakage_topk, &bad_value) ||
        ParseSizeFlag(argv[i], "--leakage-alert-millis=",
                      &leakage_alert_millis, &bad_value) ||
        ParseStringFlag(argv[i], "--leakage=", &leakage_mode) ||
        ParseStringFlag(argv[i], "--metrics=", &metrics_mode) ||
        ParseStringFlag(argv[i], "--bind=", &net_options.bind_address) ||
        ParseStringFlag(argv[i], "--fsync=", &fsync_mode) ||
        ParseStringFlag(argv[i], "--index=", &index_mode) ||
        ParseStringFlag(argv[i], "--scan-kernel=", &scan_kernel_mode) ||
        ParseStringFlag(argv[i], "--integrity=", &integrity_mode) ||
        ParseStringFlag(argv[i], "--observation=", &observation_mode) ||
        ParseStringFlag(argv[i], "--persist=", &persist_dir)) {
      if (bad_value) {
        std::fprintf(stderr, "bad numeric value in '%s'\n", argv[i]);
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "unknown flag '%s'\n%s", argv[i], kUsage);
    return 2;
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [1, 65535], got %zu\n", port);
    return 2;
  }
  if (!fsync_mode.empty() && persist_dir.empty()) {
    // Silently ignoring --fsync would let an operator believe writes are
    // durable while running memory-only.
    std::fprintf(stderr, "--fsync only applies with --persist=DIR\n");
    return 2;
  }
  if (fsync_mode.empty()) fsync_mode = "always";
  if (fsync_mode != "always" && fsync_mode != "batch") {
    std::fprintf(stderr, "--fsync must be 'always' or 'batch', got '%s'\n",
                 fsync_mode.c_str());
    return 2;
  }
  if (index_mode.empty()) index_mode = "on";
  if (index_mode != "on" && index_mode != "off") {
    std::fprintf(stderr, "--index must be 'on' or 'off', got '%s'\n",
                 index_mode.c_str());
    return 2;
  }
  runtime_options.enable_trapdoor_index = index_mode == "on";
  if (scan_kernel_mode.empty()) scan_kernel_mode = "on";
  if (scan_kernel_mode != "on" && scan_kernel_mode != "off") {
    std::fprintf(stderr, "--scan-kernel must be 'on' or 'off', got '%s'\n",
                 scan_kernel_mode.c_str());
    return 2;
  }
  runtime_options.enable_scan_kernel = scan_kernel_mode == "on";
  if (integrity_mode.empty()) integrity_mode = "on";
  if (integrity_mode != "on" && integrity_mode != "off") {
    std::fprintf(stderr, "--integrity must be 'on' or 'off', got '%s'\n",
                 integrity_mode.c_str());
    return 2;
  }
  runtime_options.enable_integrity = integrity_mode == "on";
  if (observation_mode.empty()) observation_mode = "full";
  if (observation_mode != "full" && observation_mode != "aggregate") {
    std::fprintf(stderr,
                 "--observation must be 'full' or 'aggregate', got '%s'\n",
                 observation_mode.c_str());
    return 2;
  }
  if (metrics_mode.empty()) metrics_mode = "on";
  if (metrics_mode != "on" && metrics_mode != "off") {
    std::fprintf(stderr, "--metrics must be 'on' or 'off', got '%s'\n",
                 metrics_mode.c_str());
    return 2;
  }
  runtime_options.enable_metrics = metrics_mode == "on";
  runtime_options.slow_query_ms = static_cast<int>(slow_query_ms);
  if (leakage_mode.empty()) leakage_mode = "on";
  if (leakage_mode != "on" && leakage_mode != "off") {
    std::fprintf(stderr, "--leakage must be 'on' or 'off', got '%s'\n",
                 leakage_mode.c_str());
    return 2;
  }
  runtime_options.enable_leakage = leakage_mode == "on";
  if (runtime_options.leakage_topk == 0) {
    std::fprintf(stderr, "--leakage-topk must be positive\n");
    return 2;
  }
  runtime_options.leakage_alert_millis = leakage_alert_millis;
  if (have_metrics_port) {
    if (metrics_port == 0 || metrics_port > 65535) {
      std::fprintf(stderr, "--metrics-port must be in [1, 65535], got %zu\n",
                   metrics_port);
      return 2;
    }
    net_options.metrics_port = static_cast<int>(metrics_port);
  }
  net_options.port = static_cast<uint16_t>(port);
  net_options.max_connections = max_conns;
  net_options.idle_timeout_ms = static_cast<int>(idle_ms);

  server::UntrustedServer eve(runtime_options);
  if (observation_mode == "aggregate") {
    // Bounded transcript before any traffic arrives: a long-running
    // daemon keeps counts and a result-size histogram, not per-query
    // vectors.
    eve.mutable_observations()->SetMode(server::ObservationMode::kAggregate);
  }

  // Recovery before the first socket opens: snapshot + WAL replay, then
  // the durability hooks route every further mutation through the log.
  std::unique_ptr<server::DurableStore> store;
  if (!persist_dir.empty()) {
    server::DurableStoreOptions store_options;
    store_options.sync_mode = fsync_mode == "batch"
                                  ? storage::WalSyncMode::kBatch
                                  : storage::WalSyncMode::kAlways;
    store_options.checkpoint_interval_ms = 5000;
    store = std::make_unique<server::DurableStore>(&eve, persist_dir,
                                                   store_options);
    if (Status opened = store->Open(); !opened.ok()) {
      std::fprintf(stderr, "dbph_serverd: refusing to start: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    auto stats = store->stats();
    std::fprintf(stderr,
                 "dbph_serverd: recovered %zu relation(s) from %s"
                 " (replayed %llu WAL record(s)%s), fsync=%s\n",
                 eve.num_relations(), persist_dir.c_str(),
                 static_cast<unsigned long long>(stats.replayed_records),
                 stats.recovered_torn_tail ? ", truncated torn tail" : "",
                 fsync_mode.c_str());
  }

  net::NetServer server(&eve, net_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "dbph_serverd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dbph_serverd: listening on %s:%u\n",
               net_options.bind_address.c_str(), server.port());
  if (have_metrics_port) {
    std::fprintf(stderr, "dbph_serverd: metrics on http://%s:%u/metrics\n",
                 net_options.bind_address.c_str(), server.metrics_http_port());
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::fprintf(stderr, "dbph_serverd: shutting down...\n");
  server.Stop();
  auto stats = server.stats();
  std::fprintf(stderr,
               "dbph_serverd: served %llu frame(s) over %llu connection(s)"
               " (%llu rejected, %llu idle-reaped, %llu framing errors)\n",
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.timed_out),
               static_cast<unsigned long long>(stats.framing_errors));

  if (store) {
    // Graceful exit: final checkpoint, empty WAL — restart replays
    // nothing.
    if (Status closed = store->Close(); !closed.ok()) {
      std::fprintf(stderr, "dbph_serverd: final checkpoint failed: %s\n",
                   closed.ToString().c_str());
      return 1;
    }
    auto durable = store->stats();
    std::fprintf(stderr,
                 "dbph_serverd: checkpointed %zu relation(s) to %s"
                 " (%llu WAL record(s), %llu checkpoint(s))\n",
                 eve.num_relations(), persist_dir.c_str(),
                 static_cast<unsigned long long>(durable.wal_records),
                 static_cast<unsigned long long>(durable.checkpoints));
  }
  return 0;
}
