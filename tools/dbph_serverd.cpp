// dbph_serverd — Eve as a standalone network daemon.
//
// Hosts one UntrustedServer behind the epoll frame protocol so any number
// of Alex processes (sql_repl --connect, bench_e6 --network, or a
// TcpTransport-backed Client) can reach it over TCP.
//
// Usage:
//   dbph_serverd --port=7690 [--bind=ADDR] [--threads=N] [--shards=N]
//                [--persist=PATH] [--max-conns=N] [--idle-timeout-ms=N]
//
//   --persist=PATH  load PATH on start if it exists, save on shutdown
//                   (SIGINT/SIGTERM trigger a graceful stop + save).
//
// The observation log is volatile by design: restarting Eve forgets her
// transcript but never Alex's ciphertext.

#include <errno.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/net_server.h"
#include "server/untrusted_server.h"

using namespace dbph;

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

/// Matches `--name=N` and validates the number strictly; a matching flag
/// with a malformed value is fatal (silently listening on a wrong port is
/// worse than refusing to start).
bool ParseSizeFlag(const char* arg, const char* name, size_t* out,
                   bool* bad_value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  const char* text = arg + len;
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE) {
    *bad_value = true;
    return true;
  }
  *out = static_cast<size_t>(value);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::NetServerOptions net_options;
  net_options.port = 7690;
  net_options.bind_address = "0.0.0.0";
  server::ServerRuntimeOptions runtime_options;
  std::string persist_path;

  size_t port = net_options.port;
  size_t max_conns = net_options.max_connections;
  size_t idle_ms = static_cast<size_t>(net_options.idle_timeout_ms);
  for (int i = 1; i < argc; ++i) {
    bool bad_value = false;
    if (ParseSizeFlag(argv[i], "--port=", &port, &bad_value) ||
        ParseSizeFlag(argv[i], "--threads=", &runtime_options.num_threads,
                      &bad_value) ||
        ParseSizeFlag(argv[i], "--shards=", &runtime_options.num_shards,
                      &bad_value) ||
        ParseSizeFlag(argv[i], "--max-conns=", &max_conns, &bad_value) ||
        ParseSizeFlag(argv[i], "--idle-timeout-ms=", &idle_ms, &bad_value) ||
        ParseStringFlag(argv[i], "--bind=", &net_options.bind_address) ||
        ParseStringFlag(argv[i], "--persist=", &persist_path)) {
      if (bad_value) {
        std::fprintf(stderr, "bad numeric value in '%s'\n", argv[i]);
        return 2;
      }
      continue;
    }
    std::fprintf(stderr,
                 "unknown flag '%s'\n"
                 "usage: dbph_serverd [--port=N] [--bind=ADDR] [--threads=N]"
                 " [--shards=N] [--persist=PATH] [--max-conns=N]"
                 " [--idle-timeout-ms=N]\n",
                 argv[i]);
    return 2;
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [1, 65535], got %zu\n", port);
    return 2;
  }
  net_options.port = static_cast<uint16_t>(port);
  net_options.max_connections = max_conns;
  net_options.idle_timeout_ms = static_cast<int>(idle_ms);

  server::UntrustedServer eve(runtime_options);
  if (!persist_path.empty()) {
    Status loaded = eve.LoadFrom(persist_path);
    if (loaded.ok()) {
      std::fprintf(stderr, "dbph_serverd: loaded %zu relation(s) from %s\n",
                   eve.num_relations(), persist_path.c_str());
    } else if (loaded.code() == StatusCode::kNotFound) {
      std::fprintf(stderr, "dbph_serverd: %s absent, starting empty\n",
                   persist_path.c_str());
    } else {
      std::fprintf(stderr, "dbph_serverd: refusing to start: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
  }

  net::NetServer server(&eve, net_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "dbph_serverd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dbph_serverd: listening on %s:%u\n",
               net_options.bind_address.c_str(), server.port());

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::fprintf(stderr, "dbph_serverd: shutting down...\n");
  server.Stop();
  auto stats = server.stats();
  std::fprintf(stderr,
               "dbph_serverd: served %llu frame(s) over %llu connection(s)"
               " (%llu rejected, %llu idle-reaped, %llu framing errors)\n",
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.timed_out),
               static_cast<unsigned long long>(stats.framing_errors));

  if (!persist_path.empty()) {
    if (Status saved = eve.SaveTo(persist_path); !saved.ok()) {
      std::fprintf(stderr, "dbph_serverd: save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "dbph_serverd: saved %zu relation(s) to %s\n",
                 eve.num_relations(), persist_path.c_str());
  }
  return 0;
}
