#include "crypto/random.h"

#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "crypto/prf.h"

namespace dbph {
namespace crypto {
namespace {

TEST(HmacDrbgTest, DeterministicForSameSeed) {
  HmacDrbg a("exp", 42);
  HmacDrbg b("exp", 42);
  EXPECT_EQ(a.NextBytes(64), b.NextBytes(64));
}

TEST(HmacDrbgTest, DifferentSeedsDiverge) {
  HmacDrbg a("exp", 1);
  HmacDrbg b("exp", 2);
  HmacDrbg c("other", 1);
  Bytes x = a.NextBytes(32);
  EXPECT_NE(x, b.NextBytes(32));
  HmacDrbg a2("exp", 1);
  a2.NextBytes(32);
  EXPECT_NE(a2.NextBytes(32), x);  // stream advances
  EXPECT_NE(c.NextBytes(32), x);   // label matters
}

TEST(HmacDrbgTest, ReseedChangesStream) {
  HmacDrbg a("exp", 5);
  HmacDrbg b("exp", 5);
  b.Reseed(ToBytes("extra"));
  EXPECT_NE(a.NextBytes(32), b.NextBytes(32));
}

TEST(RngTest, NextBelowRespectsBound) {
  HmacDrbg rng("bound", 0);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  HmacDrbg rng("uniform", 0);
  std::map<uint64_t, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) counts[rng.NextBelow(6)]++;
  for (uint64_t v = 0; v < 6; ++v) {
    double freq = static_cast<double>(counts[v]) / trials;
    EXPECT_NEAR(freq, 1.0 / 6, 0.01) << "value " << v;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  HmacDrbg rng("double", 0);
  double sum = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(SystemRngTest, ProducesBytes) {
  SystemRng rng;
  Bytes a = rng.NextBytes(32);
  Bytes b = rng.NextBytes(32);
  EXPECT_NE(a, b);  // 2^-256 failure probability
}

TEST(PrfTest, DeterministicAndKeyed) {
  Prf f(ToBytes("prf key"));
  Prf g(ToBytes("other key"));
  Bytes x = f.Eval(ToBytes("input"), 24);
  EXPECT_EQ(x.size(), 24u);
  EXPECT_EQ(x, f.Eval(ToBytes("input"), 24));
  EXPECT_NE(x, g.Eval(ToBytes("input"), 24));
  EXPECT_NE(x, f.Eval(ToBytes("inpux"), 24));
}

TEST(StreamGeneratorTest, RandomAccessBlocks) {
  StreamGenerator gen(ToBytes("stream key"), ToBytes("nonce-1"));
  Bytes s0 = gen.Block(0, 11);
  Bytes s1 = gen.Block(1, 11);
  EXPECT_EQ(s0.size(), 11u);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0, gen.Block(0, 11));  // stateless: same index, same block

  StreamGenerator other(ToBytes("stream key"), ToBytes("nonce-2"));
  EXPECT_NE(other.Block(0, 11), s0);  // nonce separation
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
