#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/ctr.h"
#include "crypto/random.h"

namespace dbph {
namespace crypto {
namespace {

Bytes Hex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// FIPS 197 Appendix C.1: AES-128.
TEST(AesTest, Fips197Aes128) {
  auto aes = Aes::Create(Hex("000102030405060708090a0b0c0d0e0f"));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  Bytes ct = aes->EncryptBlock(pt);
  EXPECT_EQ(HexEncode(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes->DecryptBlock(ct), pt);
}

// FIPS 197 Appendix C.2: AES-192.
TEST(AesTest, Fips197Aes192) {
  auto aes =
      Aes::Create(Hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  Bytes ct = aes->EncryptBlock(pt);
  EXPECT_EQ(HexEncode(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(aes->DecryptBlock(ct), pt);
}

// FIPS 197 Appendix C.3: AES-256.
TEST(AesTest, Fips197Aes256) {
  auto aes = Aes::Create(
      Hex("000102030405060708090a0b0c0d0e0f"
          "101112131415161718191a1b1c1d1e1f"));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  Bytes ct = aes->EncryptBlock(pt);
  EXPECT_EQ(HexEncode(ct), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(aes->DecryptBlock(ct), pt);
}

// FIPS 197 Appendix B example vector.
TEST(AesTest, Fips197AppendixB) {
  auto aes = Aes::Create(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  ASSERT_TRUE(aes.ok());
  Bytes ct = aes->EncryptBlock(Hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(HexEncode(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(17, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(0, 0)).ok());
}

TEST(AesTest, RandomRoundTrips) {
  HmacDrbg rng("aes-roundtrip", 7);
  for (size_t key_len : {16u, 24u, 32u}) {
    auto aes = Aes::Create(rng.NextBytes(key_len));
    ASSERT_TRUE(aes.ok());
    for (int i = 0; i < 50; ++i) {
      Bytes pt = rng.NextBytes(16);
      EXPECT_EQ(aes->DecryptBlock(aes->EncryptBlock(pt)), pt);
    }
  }
}

// SP 800-38A F.5.1: AES-128 CTR. The SP vector uses a full 16-byte initial
// counter block; our implementation fixes a 12-byte nonce and a 32-bit
// counter starting at zero, so we check our own invariants instead and pin
// a golden value for regression.
TEST(AesCtrTest, KeystreamDeterministicAndSeekable) {
  auto ctr = AesCtr::Create(Hex("2b7e151628aed2a6abf7158809cf4f3c"),
                            Hex("000102030405060708090a0b"));
  ASSERT_TRUE(ctr.ok());
  Bytes full = ctr->Keystream(0, 100);
  // Random access must agree with the prefix stream.
  for (uint64_t off : {0u, 1u, 15u, 16u, 17u, 31u, 64u}) {
    Bytes part = ctr->Keystream(off, 20);
    EXPECT_EQ(part, Bytes(full.begin() + static_cast<long>(off),
                          full.begin() + static_cast<long>(off + 20)));
  }
}

TEST(AesCtrTest, ProcessIsItsOwnInverse) {
  HmacDrbg rng("ctr", 1);
  auto ctr = AesCtr::Create(rng.NextBytes(16), rng.NextBytes(12));
  ASSERT_TRUE(ctr.ok());
  Bytes msg = ToBytes("counter mode is an involution given the same nonce");
  Bytes ct = ctr->Process(msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(ctr->Process(ct), msg);
}

TEST(AesCtrTest, DifferentNoncesDifferentStreams) {
  Bytes key(16, 0x42);
  auto a = AesCtr::Create(key, Bytes(12, 0x00));
  auto b = AesCtr::Create(key, Bytes(12, 0x01));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->Keystream(0, 32), b->Keystream(0, 32));
}

TEST(AesCtrTest, RejectsBadNonce) {
  EXPECT_FALSE(AesCtr::Create(Bytes(16, 0), Bytes(11, 0)).ok());
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
