// The frame codec is the trust boundary of the network layer: its length
// prefix is attacker-controlled, so oversized declarations must be
// rejected before any allocation, and any chunking of the byte stream
// must reassemble into exactly the frames that were sent.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include "crypto/random.h"
#include "net/frame.h"
#include "protocol/messages.h"

namespace dbph {
namespace {

Bytes Frame(const Bytes& body) {
  Bytes wire;
  EXPECT_TRUE(net::AppendFrame(&wire, body).ok());
  return wire;
}

TEST(FrameCodecTest, RoundtripSingleFrame) {
  Bytes body = ToBytes("hello eve");
  Bytes wire = Frame(body);
  ASSERT_EQ(wire.size(), body.size() + 4);

  net::FrameReader reader;
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size()).ok());
  auto frame = reader.NextFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, body);
  EXPECT_FALSE(reader.NextFrame().has_value());
  EXPECT_EQ(reader.partial_bytes(), 0u);
}

TEST(FrameCodecTest, EmptyBodyIsAValidFrame) {
  Bytes wire = Frame(Bytes{});
  net::FrameReader reader;
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size()).ok());
  auto frame = reader.NextFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(FrameCodecTest, ByteByByteFeedReassemblesPipelinedFrames) {
  std::vector<Bytes> bodies = {ToBytes("first"), Bytes{}, ToBytes("second"),
                               Bytes(1000, 0xab)};
  Bytes wire;
  for (const auto& body : bodies) {
    ASSERT_TRUE(net::AppendFrame(&wire, body).ok());
  }

  net::FrameReader reader;
  std::vector<Bytes> got;
  for (uint8_t byte : wire) {
    ASSERT_TRUE(reader.Feed(&byte, 1).ok());
    while (auto frame = reader.NextFrame()) got.push_back(std::move(*frame));
  }
  ASSERT_EQ(got.size(), bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) EXPECT_EQ(got[i], bodies[i]);
}

TEST(FrameCodecTest, ArbitraryChunkingsReassembleIdentically) {
  crypto::HmacDrbg rng("frame-chunks", 1);
  std::vector<Bytes> bodies;
  Bytes wire;
  for (int i = 0; i < 20; ++i) {
    bodies.push_back(rng.NextBytes(rng.NextBelow(300)));
    ASSERT_TRUE(net::AppendFrame(&wire, bodies.back()).ok());
  }
  for (int trial = 0; trial < 50; ++trial) {
    net::FrameReader reader;
    std::vector<Bytes> got;
    size_t pos = 0;
    while (pos < wire.size()) {
      size_t take = 1 + rng.NextBelow(97);
      take = std::min(take, wire.size() - pos);
      ASSERT_TRUE(reader.Feed(wire.data() + pos, take).ok());
      pos += take;
      while (auto frame = reader.NextFrame()) got.push_back(std::move(*frame));
    }
    ASSERT_EQ(got.size(), bodies.size()) << "trial " << trial;
    for (size_t i = 0; i < bodies.size(); ++i) EXPECT_EQ(got[i], bodies[i]);
  }
}

TEST(FrameCodecTest, OversizedDeclaredLengthPoisonsBeforeAllocation) {
  // Header claims cap+1 bytes; the reader must fail on the 4th header
  // byte, before reserving a body buffer, and stay failed.
  net::FrameReader reader(/*max_frame_bytes=*/4096);
  Bytes header;
  AppendUint32(&header, 4097);
  EXPECT_FALSE(reader.Feed(header.data(), header.size()).ok());
  EXPECT_TRUE(reader.poisoned());
  uint8_t more = 0;
  EXPECT_FALSE(reader.Feed(&more, 1).ok());
  EXPECT_FALSE(reader.NextFrame().has_value());
}

TEST(FrameCodecTest, LengthAtExactlyTheCapIsAccepted) {
  net::FrameReader reader(/*max_frame_bytes=*/64);
  Bytes wire;
  ASSERT_TRUE(net::AppendFrame(&wire, Bytes(64, 0x01), /*max*/ 64).ok());
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size()).ok());
  auto frame = reader.NextFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 64u);
}

TEST(FrameCodecTest, WriterRefusesBodiesOverTheCap) {
  Bytes wire;
  EXPECT_FALSE(net::AppendFrame(&wire, Bytes(65, 0), /*max*/ 64).ok());
  EXPECT_TRUE(wire.empty()) << "nothing may be emitted for a rejected body";
  net::FrameWriter writer(/*max_frame_bytes=*/64);
  EXPECT_FALSE(writer.Enqueue(Bytes(65, 0)).ok());
  EXPECT_FALSE(writer.HasPending());
}

TEST(FrameCodecTest, WriterFlushesQueuedFramesThroughASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  net::FrameWriter writer;
  std::vector<Bytes> bodies = {ToBytes("a"), ToBytes("bb"), Bytes(5000, 0x7f)};
  for (const auto& body : bodies) ASSERT_TRUE(writer.Enqueue(body).ok());
  while (writer.HasPending()) ASSERT_TRUE(writer.FlushTo(fds[0]).ok());

  net::FrameReader reader;
  uint8_t buf[4096];
  std::vector<Bytes> got;
  while (got.size() < bodies.size()) {
    ssize_t n = ::recv(fds[1], buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)).ok());
    while (auto frame = reader.NextFrame()) got.push_back(std::move(*frame));
  }
  for (size_t i = 0; i < bodies.size(); ++i) EXPECT_EQ(got[i], bodies[i]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameCodecTest, DefaultCapIsTheSharedProtocolConstant) {
  // The satellite hardening contract: one constant governs both the
  // envelope parser and the stream framing.
  net::FrameReader reader;
  Bytes header;
  AppendUint32(&header, protocol::kMaxFrameBytes + 1);
  EXPECT_FALSE(reader.Feed(header.data(), header.size()).ok());
}

}  // namespace
}  // namespace dbph
