#include <gtest/gtest.h>

#include "client/client.h"
#include "crypto/random.h"
#include "protocol/messages.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema EmpSchema() {
  auto s = Schema::Create({
      {"name", ValueType::kString, 10},
      {"dept", ValueType::kString, 5},
      {"salary", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation SampleEmp() {
  Relation emp("Emp", EmpSchema());
  EXPECT_TRUE(emp.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                          Value::Int(7500)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Smith"), Value::Str("IT"),
                          Value::Int(4900)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Jones"), Value::Str("HR"),
                          Value::Int(4900)}).ok());
  return emp;
}

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<crypto::HmacDrbg>("runtime", 1);
    client_ = std::make_unique<client::Client>(
        ToBytes("alex's master key"),
        [this](const Bytes& request) {
          return server_.HandleRequest(request);
        },
        rng_.get());
  }

  server::UntrustedServer server_;
  std::unique_ptr<crypto::HmacDrbg> rng_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(RuntimeTest, OutsourceAndSelectEndToEnd) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  EXPECT_EQ(server_.num_relations(), 1u);
  EXPECT_EQ(*server_.RelationSize("Emp"), 3u);

  auto hr = client_->Select("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(hr.ok()) << hr.status();
  EXPECT_EQ(hr->size(), 2u);

  auto expected = SampleEmp().Select("dept", Value::Str("HR"));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(hr->SameTuples(*expected));

  auto none = client_->Select("Emp", "name", Value::Str("Nobody"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(RuntimeTest, SelectConjunctionEndToEnd) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  auto result = client_->SelectConjunction(
      "Emp", {{"dept", Value::Str("HR")}, {"salary", Value::Int(4900)}});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuple(0).at(0), Value::Str("Jones"));
}

TEST_F(RuntimeTest, ErrorsPropagateThroughWire) {
  // Select before outsourcing: local NotFound.
  EXPECT_FALSE(client_->Select("Emp", "dept", Value::Str("HR")).ok());
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  // Double outsource: server-side AlreadyExists crosses the wire.
  Status status = client_->Outsource(SampleEmp());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
  // Unknown attribute: client-side InvalidArgument/NotFound.
  EXPECT_FALSE(client_->Select("Emp", "bogus", Value::Str("x")).ok());
}

TEST_F(RuntimeTest, DropRelation) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  ASSERT_TRUE(client_->Drop("Emp").ok());
  EXPECT_EQ(server_.num_relations(), 0u);
  EXPECT_FALSE(client_->Drop("Emp").ok());
  // Can re-outsource after a drop.
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  auto hr = client_->Select("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(hr.ok());
  EXPECT_EQ(hr->size(), 2u);
}

TEST_F(RuntimeTest, MultipleRelationsIndependentKeys) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  Relation dept("Dept", EmpSchema());
  ASSERT_TRUE(dept.Insert({Value::Str("HR"), Value::Str("HQ"),
                           Value::Int(10)}).ok());
  ASSERT_TRUE(client_->Outsource(dept).ok());
  EXPECT_EQ(server_.num_relations(), 2u);
  auto a = client_->Select("Emp", "dept", Value::Str("HR"));
  auto b = client_->Select("Dept", "name", Value::Str("HR"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), 2u);
  EXPECT_EQ(b->size(), 1u);
}

TEST_F(RuntimeTest, ServerObservesQueriesAndResultSizes) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  ASSERT_TRUE(client_->Select("Emp", "dept", Value::Str("HR")).ok());
  ASSERT_TRUE(client_->Select("Emp", "dept", Value::Str("IT")).ok());

  const auto& log = server_.observations();
  ASSERT_EQ(log.stores().size(), 1u);
  EXPECT_EQ(log.stores()[0].num_documents, 3u);
  ASSERT_EQ(log.queries().size(), 2u);
  EXPECT_EQ(log.queries()[0].result_size(), 2u);  // HR
  EXPECT_EQ(log.queries()[1].result_size(), 1u);  // IT
  // Eve can intersect result sets without keys.
  auto common = server::ObservationLog::Intersect(log.queries()[0],
                                                  log.queries()[1]);
  EXPECT_TRUE(common.empty());
}

TEST_F(RuntimeTest, EveSeesNoPlaintext) {
  Relation emp = SampleEmp();
  ASSERT_TRUE(client_->Outsource(emp).ok());
  ASSERT_TRUE(client_->Select("Emp", "dept", Value::Str("HR")).ok());
  const auto& log = server_.observations();
  // The trapdoor bytes must not contain the padded plaintext word.
  std::string trapdoor = ToString(log.queries()[0].trapdoor_bytes);
  EXPECT_EQ(trapdoor.find("HR"), std::string::npos);
}

TEST_F(RuntimeTest, InsertAppendsToOutsourcedRelation) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  std::vector<Tuple> fresh = {
      Tuple({Value::Str("Nguyen"), Value::Str("HR"), Value::Int(5100)}),
      Tuple({Value::Str("Okafor"), Value::Str("IT"), Value::Int(6100)}),
  };
  ASSERT_TRUE(client_->Insert("Emp", fresh).ok());
  EXPECT_EQ(*server_.RelationSize("Emp"), 5u);

  auto hr = client_->Select("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(hr.ok());
  EXPECT_EQ(hr->size(), 3u);  // 2 original + Nguyen

  // Inserting into a never-outsourced relation fails locally.
  EXPECT_FALSE(client_->Insert("Nope", fresh).ok());
  // Inserting a tuple violating the schema fails before any wire traffic.
  EXPECT_FALSE(
      client_->Insert("Emp", {Tuple({Value::Int(1)})}).ok());
}

TEST_F(RuntimeTest, DeleteWhereRemovesMatchesOnServer) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  auto removed = client_->DeleteWhere("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 2u);
  EXPECT_EQ(*server_.RelationSize("Emp"), 1u);

  auto hr = client_->Select("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(hr.ok());
  EXPECT_TRUE(hr->empty());
  auto it = client_->Select("Emp", "dept", Value::Str("IT"));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->size(), 1u);

  // Deleting again removes nothing.
  auto again = client_->DeleteWhere("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST_F(RuntimeTest, RecallReturnsExactPlaintext) {
  Relation emp = SampleEmp();
  ASSERT_TRUE(client_->Outsource(emp).ok());
  // Mutate remotely, then recall.
  ASSERT_TRUE(client_
                  ->Insert("Emp", {Tuple({Value::Str("Patel"),
                                          Value::Str("IT"),
                                          Value::Int(3000)})})
                  .ok());
  ASSERT_TRUE(
      client_->DeleteWhere("Emp", "name", Value::Str("Smith")).ok());

  auto recalled = client_->Recall("Emp");
  ASSERT_TRUE(recalled.ok()) << recalled.status();
  Relation expected("Emp", EmpSchema());
  ASSERT_TRUE(expected.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                               Value::Int(7500)}).ok());
  ASSERT_TRUE(expected.Insert({Value::Str("Jones"), Value::Str("HR"),
                               Value::Int(4900)}).ok());
  ASSERT_TRUE(expected.Insert({Value::Str("Patel"), Value::Str("IT"),
                               Value::Int(3000)}).ok());
  EXPECT_TRUE(recalled->SameTuples(expected));
}

TEST_F(RuntimeTest, DeletionsAreObservedLikeSelects) {
  ASSERT_TRUE(client_->Outsource(SampleEmp()).ok());
  ASSERT_TRUE(client_->DeleteWhere("Emp", "dept", Value::Str("HR")).ok());
  const auto& queries = server_.observations().queries();
  ASSERT_EQ(queries.size(), 1u);
  // Eve saw which (and how many) documents the deletion touched.
  EXPECT_EQ(queries[0].result_size(), 2u);
}

TEST(ProtocolTest, EnvelopeRoundTrip) {
  protocol::Envelope env;
  env.type = protocol::MessageType::kSelect;
  env.payload = ToBytes("payload");
  auto back = protocol::Envelope::Parse(env.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, env.type);
  EXPECT_EQ(back->payload, env.payload);
}

TEST(ProtocolTest, ParseRejectsGarbage) {
  EXPECT_FALSE(protocol::Envelope::Parse(Bytes{}).ok());
  EXPECT_FALSE(protocol::Envelope::Parse(Bytes{0x00, 0x01}).ok());
  EXPECT_FALSE(protocol::Envelope::Parse(Bytes{99, 0, 0, 0, 0}).ok());
  // Trailing junk.
  protocol::Envelope env;
  env.type = protocol::MessageType::kStoreOk;
  Bytes wire = env.Serialize();
  wire.push_back(0xff);
  EXPECT_FALSE(protocol::Envelope::Parse(wire).ok());
}

TEST(ProtocolTest, ErrorEnvelopeCarriesStatus) {
  Status original = Status::NotFound("relation 'X' not stored");
  auto env = protocol::MakeErrorEnvelope(original);
  Status status = protocol::ParseErrorEnvelope(env);
  EXPECT_EQ(status, original);
}

TEST(ServerTest, MalformedRequestsAnsweredWithError) {
  server::UntrustedServer server;
  Bytes response = server.HandleRequest(ToBytes("garbage"));
  auto env = protocol::Envelope::Parse(response);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->type, protocol::MessageType::kError);
}

}  // namespace
}  // namespace dbph
