#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "client/client.h"
#include "crypto/random.h"
#include "net/net_server.h"
#include "net/tcp_transport.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace dbph {
namespace sql {
namespace {

using rel::Value;
using rel::ValueType;

// ---------- lexer ----------

TEST(LexerTest, TokenizesSelect) {
  auto tokens = Lex("SELECT * FROM Emp WHERE dept = 'HR';");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const auto& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kKeyword, TokenType::kStar,
                       TokenType::kKeyword, TokenType::kIdentifier,
                       TokenType::kKeyword, TokenType::kIdentifier,
                       TokenType::kEquals, TokenType::kString,
                       TokenType::kSemicolon, TokenType::kEnd}));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select * from t where a = 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[4].text, "WHERE");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 -17 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].text, "-17");
  EXPECT_EQ((*tokens)[2].type, TokenType::kDouble);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("a = -").ok());
}

// ---------- parser ----------

TEST(ParserTest, SingleCondition) {
  auto stmt = ParseSelect("SELECT * FROM Emp WHERE dept = 'HR'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->table, "Emp");
  ASSERT_EQ(stmt->conditions.size(), 1u);
  EXPECT_EQ(stmt->conditions[0].attribute, "dept");
  EXPECT_EQ(stmt->conditions[0].literal.text, "HR");
  EXPECT_EQ(stmt->conditions[0].literal.kind, Literal::Kind::kString);
}

TEST(ParserTest, Conjunction) {
  auto stmt = ParseSelect(
      "SELECT * FROM Emp WHERE dept = 'HR' AND salary = 4900;");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->conditions.size(), 2u);
  EXPECT_EQ(stmt->conditions[1].attribute, "salary");
  EXPECT_EQ(stmt->conditions[1].literal.kind, Literal::Kind::kInteger);
}

TEST(ParserTest, NoWhereParses) {
  auto stmt = ParseSelect("SELECT * FROM Emp");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->conditions.empty());
}

TEST(ParserTest, BoolLiterals) {
  auto stmt = ParseSelect("SELECT * FROM T WHERE flag = true");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->conditions[0].literal.kind, Literal::Kind::kBool);
}

TEST(ParserTest, RejectsUnsupportedSyntax) {
  // Projection.
  EXPECT_FALSE(ParseSelect("SELECT name FROM Emp").ok());
  // Non-equality predicate.
  EXPECT_FALSE(ParseSelect("SELECT * FROM Emp WHERE a , 1").ok());
  // Unquoted string.
  EXPECT_FALSE(ParseSelect("SELECT * FROM Emp WHERE dept = HR").ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseSelect("SELECT * FROM Emp WHERE a = 1 extra").ok());
  // Missing table.
  EXPECT_FALSE(ParseSelect("SELECT * FROM WHERE a = 1").ok());
}

// ---------- executor ----------

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<crypto::HmacDrbg>("sql-exec", 1);
    client_ = std::make_unique<client::Client>(
        ToBytes("sql master key"),
        [this](const Bytes& request) {
          return server_.HandleRequest(request);
        },
        rng_.get());
    auto schema = rel::Schema::Create({
        {"name", ValueType::kString, 10},
        {"dept", ValueType::kString, 5},
        {"salary", ValueType::kInt64, 10},
    });
    ASSERT_TRUE(schema.ok());
    rel::Relation emp("Emp", *schema);
    ASSERT_TRUE(emp.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                            Value::Int(7500)}).ok());
    ASSERT_TRUE(emp.Insert({Value::Str("Smith"), Value::Str("IT"),
                            Value::Int(4900)}).ok());
    ASSERT_TRUE(emp.Insert({Value::Str("Jones"), Value::Str("HR"),
                            Value::Int(4900)}).ok());
    ASSERT_TRUE(client_->Outsource(emp).ok());
  }

  server::UntrustedServer server_;
  std::unique_ptr<crypto::HmacDrbg> rng_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(SqlExecutorTest, SingleSelectOverEncryptedData) {
  auto result =
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE dept = 'HR'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(SqlExecutorTest, ConjunctionOverEncryptedData) {
  auto result = ExecuteSql(
      client_.get(),
      "SELECT * FROM Emp WHERE dept = 'HR' AND salary = 4900;");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuple(0).at(0), Value::Str("Jones"));
}

TEST_F(SqlExecutorTest, HelpfulErrors) {
  // Full scan not expressible on the encrypted server.
  auto scan = ExecuteSql(client_.get(), "SELECT * FROM Emp");
  EXPECT_FALSE(scan.ok());
  // Unknown table / attribute.
  EXPECT_FALSE(
      ExecuteSql(client_.get(), "SELECT * FROM Nope WHERE a = 1").ok());
  EXPECT_FALSE(
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE nope = 1").ok());
  // Type mismatch: salary is an int.
  EXPECT_FALSE(
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE salary = 'x'").ok());
  EXPECT_FALSE(
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE dept = 42").ok());
}

TEST_F(SqlExecutorTest, FormatResultRendersTable) {
  auto result =
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE dept = 'IT'");
  ASSERT_TRUE(result.ok());
  std::string text = FormatResult(*result);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("Smith"), std::string::npos);
  EXPECT_NE(text.find("1 row(s)"), std::string::npos);
}

// ---------- SQL over a real socket ----------

/// The executor tests above run over the in-process transport; these run
/// the identical statements through a TcpTransport against a NetServer —
/// the deployment the REPL's --connect mode uses — including EXPLAIN and
/// a two-client pipelined case.
class SqlOverSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_server_ = std::make_unique<net::NetServer>(&server_);
    ASSERT_TRUE(net_server_->Start().ok());
    rng_ = std::make_unique<crypto::HmacDrbg>("sql-socket", 1);
    auto transport = net::TcpTransport::Connect("127.0.0.1",
                                                net_server_->port());
    ASSERT_TRUE(transport.ok()) << transport.status();
    client_ = std::make_unique<client::Client>(
        ToBytes("sql socket master"), (*transport)->AsTransport(),
        rng_.get());
    auto schema = rel::Schema::Create({
        {"name", ValueType::kString, 10},
        {"dept", ValueType::kString, 5},
        {"salary", ValueType::kInt64, 10},
    });
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<rel::Schema>(*schema);
    rel::Relation emp("Emp", *schema);
    ASSERT_TRUE(emp.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                            Value::Int(7500)}).ok());
    ASSERT_TRUE(emp.Insert({Value::Str("Smith"), Value::Str("IT"),
                            Value::Int(4900)}).ok());
    ASSERT_TRUE(emp.Insert({Value::Str("Jones"), Value::Str("HR"),
                            Value::Int(4900)}).ok());
    ASSERT_TRUE(client_->Outsource(emp).ok());
  }

  void TearDown() override {
    client_.reset();
    if (net_server_) net_server_->Stop();
  }

  server::UntrustedServer server_;
  std::unique_ptr<net::NetServer> net_server_;
  std::unique_ptr<crypto::HmacDrbg> rng_;
  std::unique_ptr<rel::Schema> schema_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(SqlOverSocketTest, SelectAndConjunctionOverTheWire) {
  auto result =
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE dept = 'HR'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);

  auto conjunction = ExecuteSql(
      client_.get(),
      "SELECT * FROM Emp WHERE dept = 'HR' AND salary = 4900;");
  ASSERT_TRUE(conjunction.ok());
  ASSERT_EQ(conjunction->size(), 1u);
  EXPECT_EQ(conjunction->tuple(0).at(0), Value::Str("Jones"));

  // Errors travel the wire as kError envelopes and surface unchanged.
  EXPECT_FALSE(
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE nope = 1").ok());
}

TEST_F(SqlOverSocketTest, ExplainOverTheWireSeesTheIndexWarm) {
  auto cold = sql::ExplainSql(
      client_.get(), "EXPLAIN SELECT * FROM Emp WHERE dept = 'IT'");
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_NE(cold->find("FullScan"), std::string::npos);

  ASSERT_TRUE(
      ExecuteSql(client_.get(), "SELECT * FROM Emp WHERE dept = 'IT'").ok());

  auto warm = sql::ExplainSql(
      client_.get(), "EXPLAIN SELECT * FROM Emp WHERE dept = 'IT'");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("IndexLookup"), std::string::npos);
}

TEST_F(SqlOverSocketTest, TwoPipelinedClientsGetConsistentAnswers) {
  // A second session attaches to the stored relation with the same
  // master key over its own connection; both clients then issue
  // interleaved statements concurrently. The server's single-writer
  // dispatch must serve both byte-correctly (NetServer pipelines frames
  // per connection; two connections interleave at the event loop).
  auto run_session = [this](uint64_t seed, int* failures) {
    crypto::HmacDrbg rng("sql-socket-session", seed);
    auto transport =
        net::TcpTransport::Connect("127.0.0.1", net_server_->port());
    if (!transport.ok()) {
      ++*failures;
      return;
    }
    client::Client session(ToBytes("sql socket master"),
                           (*transport)->AsTransport(), &rng);
    if (!session.Adopt("Emp", *schema_).ok()) {
      ++*failures;
      return;
    }
    for (int round = 0; round < 20; ++round) {
      auto hr = ExecuteSql(&session, "SELECT * FROM Emp WHERE dept = 'HR'");
      auto it = ExecuteSql(&session, "SELECT * FROM Emp WHERE dept = 'IT'");
      auto conj = ExecuteSql(
          &session,
          "SELECT * FROM Emp WHERE dept = 'HR' AND salary = 4900");
      if (!hr.ok() || hr->size() != 2 || !it.ok() || it->size() != 1 ||
          !conj.ok() || conj->size() != 1) {
        ++*failures;
        return;
      }
    }
  };
  int failures_a = 0;
  int failures_b = 0;
  std::thread peer(run_session, 2, &failures_b);
  run_session(3, &failures_a);
  peer.join();
  EXPECT_EQ(failures_a, 0);
  EXPECT_EQ(failures_b, 0);

  // One observation per executed remote select: 20 rounds × 2 sessions ×
  // (1 + 1 + 2 conjunction terms) = 160.
  EXPECT_EQ(server_.observations().queries().size(), 160u);
}

TEST(TypeLiteralTest, CoercionRules) {
  rel::Attribute int_attr{"n", ValueType::kInt64, 10};
  rel::Attribute dbl_attr{"d", ValueType::kDouble, 10};
  rel::Attribute bool_attr{"b", ValueType::kBool, 1};

  Literal int_lit{Literal::Kind::kInteger, "42"};
  Literal dbl_lit{Literal::Kind::kDouble, "2.5"};
  Literal bool_lit{Literal::Kind::kBool, "true"};

  EXPECT_EQ(*TypeLiteral(int_lit, int_attr), Value::Int(42));
  // Integer literal usable for a double column.
  EXPECT_EQ(*TypeLiteral(int_lit, dbl_attr), Value::Real(42));
  EXPECT_EQ(*TypeLiteral(dbl_lit, dbl_attr), Value::Real(2.5));
  EXPECT_EQ(*TypeLiteral(bool_lit, bool_attr), Value::Boolean(true));
  // Double literal NOT usable for an int column.
  EXPECT_FALSE(TypeLiteral(dbl_lit, int_attr).ok());
}

}  // namespace
}  // namespace sql
}  // namespace dbph
