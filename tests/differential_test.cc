// Differential testing: a seeded random workload of Insert / DeleteWhere
// / Select / SelectBatch runs against the encrypted deployment (Client +
// UntrustedServer over the wire protocol) and against the plaintext
// baselines/plain::PlainEngine oracle in lockstep. Decrypted results must
// match the oracle at every step — including after a save/load round trip
// mid-workload, and after a crash + WAL recovery at the end.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/plain/plain_engine.h"
#include "client/client.h"
#include "crypto/random.h"
#include "server/durable_store.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

const char* const kNames[] = {"ada",  "bob",  "carol", "dave", "eve",
                              "frank", "gina", "hal",   "ivy",  "jack"};
constexpr size_t kNameCount = sizeof(kNames) / sizeof(kNames[0]);
constexpr int64_t kGroupCount = 7;

Schema TableSchema() {
  auto s = Schema::Create({
      {"name", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation SeedTable(crypto::HmacDrbg* rng, size_t n) {
  Relation table("T", TableSchema());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        table
            .Insert({Value::Str(kNames[rng->NextBelow(kNameCount)]),
                     Value::Int(static_cast<int64_t>(
                         rng->NextBelow(kGroupCount)))})
            .ok());
  }
  return table;
}

Tuple RandomTuple(crypto::HmacDrbg* rng) {
  return Tuple({Value::Str(kNames[rng->NextBelow(kNameCount)]),
                Value::Int(static_cast<int64_t>(rng->NextBelow(kGroupCount)))});
}

std::pair<std::string, Value> RandomPredicate(crypto::HmacDrbg* rng) {
  if (rng->NextBelow(2) == 0) {
    return {"name", Value::Str(kNames[rng->NextBelow(kNameCount)])};
  }
  return {"grp",
          Value::Int(static_cast<int64_t>(rng->NextBelow(kGroupCount)))};
}

/// Asserts that the encrypted deployment and the oracle agree on one
/// exact-match select.
void ExpectSameSelect(client::Client* client, baseline::PlainEngine* oracle,
                      const std::string& attribute, const Value& value,
                      const std::string& context) {
  auto encrypted = client->Select("T", attribute, value);
  auto plain = oracle->SelectScan(attribute, value);
  ASSERT_TRUE(encrypted.ok()) << context << ": " << encrypted.status();
  ASSERT_TRUE(plain.ok()) << context << ": " << plain.status();
  EXPECT_EQ(encrypted->size(), plain->size()) << context;
  EXPECT_TRUE(encrypted->SameTuples(*plain)) << context;
}

/// Sweeps the whole value domain — every name and every group — so a
/// divergence anywhere in the stored state is caught, not only at the
/// most recently touched value.
void ExpectFullDomainMatch(client::Client* client,
                           baseline::PlainEngine* oracle,
                           const std::string& context) {
  for (size_t n = 0; n < kNameCount; ++n) {
    ExpectSameSelect(client, oracle, "name", Value::Str(kNames[n]),
                     context + " name=" + kNames[n]);
  }
  for (int64_t g = 0; g < kGroupCount; ++g) {
    ExpectSameSelect(client, oracle, "grp", Value::Int(g),
                     context + " grp=" + std::to_string(g));
  }
}

/// Zero-result probes: values outside the workload's generator domain,
/// so they have never existed in the table. Under VerifyMode::kEnforce
/// these exercise the non-membership side of the completeness proof —
/// the server must PROVE the empty result, not merely assert it — on
/// the scan path (first call) and the index/memo path (repeat) alike.
void ExpectVerifiedAbsence(client::Client* client,
                           baseline::PlainEngine* oracle,
                           const std::string& context) {
  for (int repeat = 0; repeat < 2; ++repeat) {
    std::string tag = context + " repeat=" + std::to_string(repeat);
    ExpectSameSelect(client, oracle, "name", Value::Str("zelda"),
                     tag + " absent-name");
    ExpectSameSelect(client, oracle, "grp", Value::Int(999),
                     tag + " absent-grp");
  }
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// One random step against both sides; returns false on fatal failure.
void RunStep(crypto::HmacDrbg* rng, client::Client* client,
             baseline::PlainEngine* oracle, size_t step) {
  std::string context = "step " + std::to_string(step);
  size_t dice = rng->NextBelow(100);
  if (dice < 40) {
    // Insert 1–3 random tuples on both sides.
    size_t count = 1 + rng->NextBelow(3);
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < count; ++i) tuples.push_back(RandomTuple(rng));
    ASSERT_TRUE(client->Insert("T", tuples).ok()) << context;
    for (const Tuple& tuple : tuples) {
      ASSERT_TRUE(oracle->Insert(tuple).ok()) << context;
    }
    ExpectSameSelect(client, oracle, "name", tuples[0].at(0), context);
  } else if (dice < 60) {
    auto [attribute, value] = RandomPredicate(rng);
    auto removed = client->DeleteWhere("T", attribute, value);
    auto plain_removed = oracle->DeleteWhere(attribute, value);
    ASSERT_TRUE(removed.ok()) << context << ": " << removed.status();
    ASSERT_TRUE(plain_removed.ok()) << context;
    EXPECT_EQ(*removed, *plain_removed) << context;
    ExpectSameSelect(client, oracle, attribute, value, context);
  } else if (dice < 85) {
    auto [attribute, value] = RandomPredicate(rng);
    ExpectSameSelect(client, oracle, attribute, value, context);
  } else {
    // Batched selects: one round trip, per-query result alignment.
    std::vector<std::pair<std::string, Value>> queries;
    for (size_t i = 0; i < 4; ++i) queries.push_back(RandomPredicate(rng));
    auto batched = client->SelectBatch("T", queries);
    ASSERT_TRUE(batched.ok()) << context << ": " << batched.status();
    ASSERT_EQ(batched->size(), queries.size()) << context;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto plain = oracle->SelectScan(queries[i].first, queries[i].second);
      ASSERT_TRUE(plain.ok()) << context;
      EXPECT_TRUE((*batched)[i].SameTuples(*plain))
          << context << " batch query " << i;
    }
  }
}

TEST(DifferentialTest, RandomWorkloadMatchesPlainOracleEveryStep) {
  for (uint64_t seed : {1u, 7u}) {
    crypto::HmacDrbg workload_rng("differential-workload", seed);
    crypto::HmacDrbg client_rng("differential-client", seed);

    // The transport indirects through `current` so the same client can be
    // pointed at a reloaded server mid-workload.
    auto server = std::make_unique<server::UntrustedServer>();
    server::UntrustedServer* current = server.get();
    client::Client client(
        ToBytes("differential master"),
        [&current](const Bytes& request) {
          return current->HandleRequest(request);
        },
        &client_rng);

    Relation seed_table = SeedTable(&workload_rng, 30);
    ASSERT_TRUE(client.Outsource(seed_table).ok());
    auto oracle = baseline::PlainEngine::Create(seed_table);
    ASSERT_TRUE(oracle.ok());

    constexpr size_t kSteps = 120;
    std::unique_ptr<server::UntrustedServer> reloaded;
    for (size_t step = 0; step < kSteps; ++step) {
      RunStep(&workload_rng, &client, &*oracle, step);
      if (::testing::Test::HasFatalFailure()) return;
      if (step % 10 == 9) {
        ExpectFullDomainMatch(&client, &*oracle,
                              "seed " + std::to_string(seed) + " sweep@" +
                                  std::to_string(step));
        if (::testing::Test::HasFatalFailure()) return;
      }
      if (step == kSteps / 2) {
        // Save/load round trip mid-workload: the restarted server must be
        // indistinguishable, and the workload keeps running against it.
        std::string path = ::testing::TempDir() + "/differential_state.dbph";
        ASSERT_TRUE(current->SaveTo(path).ok());
        reloaded = std::make_unique<server::UntrustedServer>();
        ASSERT_TRUE(reloaded->LoadFrom(path).ok());
        current = reloaded.get();
        std::remove(path.c_str());
        ExpectFullDomainMatch(&client, &*oracle, "post-reload");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    ExpectFullDomainMatch(&client, &*oracle, "final");
  }
}

TEST(DifferentialTest, TrapdoorIndexOnAndOffAreByteIdenticalUnderWorkload) {
  // The planner contract, differentially: the same seeded random
  // workload (inserts, deletes, selects, batches) against an
  // index-enabled and an index-disabled server — identical DRBG streams,
  // so identical ciphertext and identical request bytes — must produce
  // byte-identical wire responses and identical observation logs at
  // every step, including across a crash + WAL recovery restart on both
  // sides (after which the enabled server's index is cold and rebuilds).
  struct Side {
    std::string dir;
    std::unique_ptr<server::UntrustedServer> server;
    std::unique_ptr<server::DurableStore> store;
    std::vector<Bytes> responses;
  };
  server::DurableStoreOptions store_options;
  store_options.background_thread = false;

  auto make_server = [](bool enable_index) {
    server::ServerRuntimeOptions options;
    options.num_threads = 2;
    options.enable_trapdoor_index = enable_index;
    return std::make_unique<server::UntrustedServer>(options);
  };

  Side sides[2];
  bool enabled[2] = {true, false};
  for (int s = 0; s < 2; ++s) {
    sides[s].dir =
        FreshDir(std::string("differential_index_") + (enabled[s] ? "on"
                                                                  : "off"));
    sides[s].server = make_server(enabled[s]);
    sides[s].store = std::make_unique<server::DurableStore>(
        sides[s].server.get(), sides[s].dir, store_options);
    ASSERT_TRUE(sides[s].store->Open().ok());
  }

  // Phase 1: identical random workload against both sides. The index-on
  // side repeatedly re-hits earlier predicates (the workload draws from
  // a small domain), so posting lists genuinely serve queries here.
  for (int s = 0; s < 2; ++s) {
    crypto::HmacDrbg workload_rng("differential-index", 11);
    crypto::HmacDrbg client_rng("differential-index-client", 11);
    server::UntrustedServer* raw = sides[s].server.get();
    std::vector<Bytes>* responses = &sides[s].responses;
    client::Client client(
        ToBytes("differential master"),
        [raw, responses](const Bytes& request) {
          Bytes response = raw->HandleRequest(request);
          responses->push_back(response);
          return response;
        },
        &client_rng);
    Relation seed_table = SeedTable(&workload_rng, 25);
    ASSERT_TRUE(client.Outsource(seed_table).ok());
    auto oracle = baseline::PlainEngine::Create(seed_table);
    ASSERT_TRUE(oracle.ok());
    for (size_t step = 0; step < 80; ++step) {
      RunStep(&workload_rng, &client, &*oracle, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    ExpectFullDomainMatch(&client, &*oracle,
                          enabled[s] ? "index-on final" : "index-off final");
    if (::testing::Test::HasFatalFailure()) return;
  }

  ASSERT_EQ(sides[0].responses.size(), sides[1].responses.size());
  for (size_t i = 0; i < sides[0].responses.size(); ++i) {
    ASSERT_EQ(sides[0].responses[i], sides[1].responses[i])
        << "wire response " << i << " differs between index on and off";
  }
  const auto& on_log = sides[0].server->observations();
  const auto& off_log = sides[1].server->observations();
  ASSERT_EQ(on_log.queries().size(), off_log.queries().size());
  for (size_t i = 0; i < on_log.queries().size(); ++i) {
    EXPECT_EQ(on_log.queries()[i].relation, off_log.queries()[i].relation);
    EXPECT_EQ(on_log.queries()[i].trapdoor_bytes,
              off_log.queries()[i].trapdoor_bytes)
        << "observation " << i;
    EXPECT_EQ(on_log.queries()[i].matched_records,
              off_log.queries()[i].matched_records)
        << "observation " << i;
  }

  // Phase 2: crash both sides (no Close — live WAL abandoned), recover,
  // and re-run an identical select sweep. Recovery must agree byte for
  // byte again; the recovered index-on server warms its cold index as
  // the sweep repeats trapdoors.
  for (int s = 0; s < 2; ++s) {
    sides[s].store.reset();  // crash-equivalent teardown
    sides[s].server = make_server(enabled[s]);
    sides[s].store = std::make_unique<server::DurableStore>(
        sides[s].server.get(), sides[s].dir, store_options);
    ASSERT_TRUE(sides[s].store->Open().ok());
    sides[s].responses.clear();
  }
  for (int s = 0; s < 2; ++s) {
    crypto::HmacDrbg client_rng("differential-index-recovered", 13);
    server::UntrustedServer* raw = sides[s].server.get();
    std::vector<Bytes>* responses = &sides[s].responses;
    client::Client client(
        ToBytes("differential master"),
        [raw, responses](const Bytes& request) {
          Bytes response = raw->HandleRequest(request);
          responses->push_back(response);
          return response;
        },
        &client_rng);
    ASSERT_TRUE(client.Adopt("T", TableSchema()).ok());
    for (int round = 0; round < 2; ++round) {  // round 2 hits the memo
      for (size_t n = 0; n < kNameCount; ++n) {
        ASSERT_TRUE(client.Select("T", "name", Value::Str(kNames[n])).ok());
      }
      for (int64_t g = 0; g < kGroupCount; ++g) {
        ASSERT_TRUE(client.Select("T", "grp", Value::Int(g)).ok());
      }
    }
  }
  ASSERT_EQ(sides[0].responses.size(), sides[1].responses.size());
  for (size_t i = 0; i < sides[0].responses.size(); ++i) {
    ASSERT_EQ(sides[0].responses[i], sides[1].responses[i])
        << "post-recovery response " << i
        << " differs between index on and off";
  }
  const auto& on_rec = sides[0].server->observations();
  const auto& off_rec = sides[1].server->observations();
  ASSERT_EQ(on_rec.queries().size(), off_rec.queries().size());
  for (size_t i = 0; i < on_rec.queries().size(); ++i) {
    EXPECT_EQ(on_rec.queries()[i].trapdoor_bytes,
              off_rec.queries()[i].trapdoor_bytes);
    EXPECT_EQ(on_rec.queries()[i].matched_records,
              off_rec.queries()[i].matched_records)
        << "post-recovery observation " << i;
  }
}

TEST(DifferentialTest, ScanKernelOnAndOffAreByteIdenticalUnderWorkload) {
  // The scan-kernel contract, differentially: the same seeded random
  // workload against a kernel-enabled and a kernel-disabled server —
  // identical DRBG streams, so identical ciphertext and request bytes —
  // must produce byte-identical wire responses (documents, order, AND
  // Merkle ResultProofs; integrity is on) and identical observation
  // logs at every step. The trapdoor index is disabled on both sides so
  // every select and every delete actually runs the scan path under
  // test, never a posting-list fetch.
  struct Side {
    std::unique_ptr<server::UntrustedServer> server;
    std::vector<Bytes> responses;
  };
  Side sides[2];
  bool kernel[2] = {true, false};
  for (int s = 0; s < 2; ++s) {
    server::ServerRuntimeOptions options;
    options.num_threads = 2;
    options.enable_trapdoor_index = false;
    options.enable_scan_kernel = kernel[s];
    sides[s].server = std::make_unique<server::UntrustedServer>(options);
  }

  for (int s = 0; s < 2; ++s) {
    crypto::HmacDrbg workload_rng("differential-kernel", 23);
    crypto::HmacDrbg client_rng("differential-kernel-client", 23);
    server::UntrustedServer* raw = sides[s].server.get();
    std::vector<Bytes>* responses = &sides[s].responses;
    client::Client client(
        ToBytes("differential master"),
        [raw, responses](const Bytes& request) {
          Bytes response = raw->HandleRequest(request);
          responses->push_back(response);
          return response;
        },
        &client_rng);
    Relation seed_table = SeedTable(&workload_rng, 25);
    ASSERT_TRUE(client.Outsource(seed_table).ok());
    auto oracle = baseline::PlainEngine::Create(seed_table);
    ASSERT_TRUE(oracle.ok());
    for (size_t step = 0; step < 80; ++step) {
      RunStep(&workload_rng, &client, &*oracle, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    ExpectFullDomainMatch(&client, &*oracle,
                          kernel[s] ? "kernel-on final" : "kernel-off final");
    if (::testing::Test::HasFatalFailure()) return;
  }

  ASSERT_EQ(sides[0].responses.size(), sides[1].responses.size());
  for (size_t i = 0; i < sides[0].responses.size(); ++i) {
    ASSERT_EQ(sides[0].responses[i], sides[1].responses[i])
        << "wire response " << i << " differs between kernel on and off";
  }
  const auto& on_log = sides[0].server->observations();
  const auto& off_log = sides[1].server->observations();
  ASSERT_EQ(on_log.queries().size(), off_log.queries().size());
  for (size_t i = 0; i < on_log.queries().size(); ++i) {
    EXPECT_EQ(on_log.queries()[i].relation, off_log.queries()[i].relation);
    EXPECT_EQ(on_log.queries()[i].trapdoor_bytes,
              off_log.queries()[i].trapdoor_bytes)
        << "observation " << i;
    EXPECT_EQ(on_log.queries()[i].matched_records,
              off_log.queries()[i].matched_records)
        << "observation " << i;
  }
}

TEST(DifferentialTest, IntegrityEnforcedWorkloadStaysVerifiable) {
  // The PR-5 acceptance workload: the same seeded random mutation/select
  // stream, but with VerifyMode::kEnforce — every response's Merkle
  // proof must verify at every step (a single corrupt proof fails the
  // step and the oracle comparison), across checkpoints, a kill -9
  // crash, WAL recovery, and a fresh reattaching session that anchors
  // from the recovered signed root.
  std::string dir = FreshDir("differential_integrity");
  crypto::HmacDrbg workload_rng("differential-integrity", 17);
  crypto::HmacDrbg client_rng("differential-integrity-client", 17);

  Relation seed_table = SeedTable(&workload_rng, 25);
  auto oracle = baseline::PlainEngine::Create(seed_table);
  ASSERT_TRUE(oracle.ok());

  server::DurableStoreOptions options;
  options.background_thread = false;
  {
    server::UntrustedServer server;
    server::DurableStore store(&server, dir, options);
    ASSERT_TRUE(store.Open().ok());
    client::Client client(
        ToBytes("differential master"),
        [&server](const Bytes& request) { return server.HandleRequest(request); },
        &client_rng);
    client.set_verify_mode(client::VerifyMode::kEnforce);
    ASSERT_TRUE(client.Outsource(seed_table).ok());
    ExpectVerifiedAbsence(&client, &*oracle, "integrity seed");
    if (::testing::Test::HasFatalFailure()) return;

    for (size_t step = 0; step < 60; ++step) {
      RunStep(&workload_rng, &client, &*oracle, step);
      if (::testing::Test::HasFatalFailure()) return;
      if (step % 20 == 19) {
        // Mid-workload absent probes: the non-membership proof must keep
        // verifying as appends and deletes churn the committed tag tree.
        ExpectVerifiedAbsence(&client, &*oracle,
                              "integrity step " + std::to_string(step));
        if (::testing::Test::HasFatalFailure()) return;
      }
      if (workload_rng.NextBelow(10) == 0) {
        ASSERT_TRUE(store.Checkpoint().ok()) << "step " << step;
      }
    }
    ExpectFullDomainMatch(&client, &*oracle, "integrity pre-crash");
    ExpectVerifiedAbsence(&client, &*oracle, "integrity pre-crash");
    if (::testing::Test::HasFatalFailure()) return;
  }  // kill -9: live WAL abandoned

  server::UntrustedServer restarted;
  server::DurableStore recovered(&restarted, dir, options);
  ASSERT_TRUE(recovered.Open().ok());
  crypto::HmacDrbg fresh_rng("differential-integrity-reattach", 17);
  client::Client reattached(
      ToBytes("differential master"),
      [&restarted](const Bytes& request) {
        return restarted.HandleRequest(request);
      },
      &fresh_rng);
  reattached.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(reattached.Adopt("T", TableSchema()).ok());
  // The recovered state must still carry the owner's signed root (it
  // rode the snapshot/WAL round trip) — a fresh session refuses to
  // anchor without it.
  Status synced = reattached.SyncIntegrity("T", /*require_signature=*/true);
  ASSERT_TRUE(synced.ok()) << synced;
  ExpectFullDomainMatch(&reattached, &*oracle, "integrity post-crash");
  // The recovered search tree must still prove absences to the fresh
  // session (the WAL round trip rebuilt the exact committed tag tree).
  ExpectVerifiedAbsence(&reattached, &*oracle, "integrity post-crash");
  if (::testing::Test::HasFatalFailure()) return;

  // And the reattached session keeps mutating verifiably — insert and
  // delete both run their proof/manifest checks under Enforce.
  Tuple extra = RandomTuple(&workload_rng);
  ASSERT_TRUE(reattached.Insert("T", {extra}).ok());
  ASSERT_TRUE(oracle->Insert(extra).ok());
  auto removed = reattached.DeleteWhere("T", "grp", Value::Int(0));
  auto oracle_removed = oracle->DeleteWhere("grp", Value::Int(0));
  ASSERT_TRUE(removed.ok()) << removed.status();
  ASSERT_TRUE(oracle_removed.ok());
  EXPECT_EQ(*removed, *oracle_removed);
  ExpectFullDomainMatch(&reattached, &*oracle, "integrity final");
  ExpectVerifiedAbsence(&reattached, &*oracle, "integrity final");
}

TEST(DifferentialTest, CrashRecoveryServesExactlyTheOracleState) {
  // The acceptance scenario: a durable deployment is killed mid-stream
  // (no Close, no final checkpoint) after a random mutation workload with
  // checkpoints sprinkled in; the restarted store must serve exactly the
  // state the plaintext oracle predicts.
  std::string dir = FreshDir("differential_crash");
  crypto::HmacDrbg workload_rng("differential-crash", 3);
  crypto::HmacDrbg client_rng("differential-crash-client", 3);

  Relation seed_table = SeedTable(&workload_rng, 25);
  auto oracle = baseline::PlainEngine::Create(seed_table);
  ASSERT_TRUE(oracle.ok());

  server::DurableStoreOptions options;
  options.background_thread = false;
  {
    server::UntrustedServer server;
    server::DurableStore store(&server, dir, options);
    ASSERT_TRUE(store.Open().ok());
    client::Client client(
        ToBytes("differential master"),
        [&server](const Bytes& request) { return server.HandleRequest(request); },
        &client_rng);
    ASSERT_TRUE(client.Outsource(seed_table).ok());

    for (size_t step = 0; step < 60; ++step) {
      RunStep(&workload_rng, &client, &*oracle, step);
      if (::testing::Test::HasFatalFailure()) return;
      if (workload_rng.NextBelow(10) == 0) {
        ASSERT_TRUE(store.Checkpoint().ok()) << "step " << step;
      }
    }
  }  // kill -9: the store is abandoned with a live WAL

  server::UntrustedServer restarted;
  server::DurableStore recovered(&restarted, dir, options);
  ASSERT_TRUE(recovered.Open().ok());
  crypto::HmacDrbg fresh_rng("differential-crash-reattach", 3);
  client::Client reattached(
      ToBytes("differential master"),
      [&restarted](const Bytes& request) {
        return restarted.HandleRequest(request);
      },
      &fresh_rng);
  ASSERT_TRUE(reattached.Adopt("T", TableSchema()).ok());
  ExpectFullDomainMatch(&reattached, &*oracle, "post-crash");

  // Recall (the contract-cancelled path) returns every surviving tuple;
  // its total must equal the oracle's per-group totals.
  auto recalled = reattached.Recall("T");
  ASSERT_TRUE(recalled.ok());
  size_t oracle_total = 0;
  for (int64_t g = 0; g < kGroupCount; ++g) {
    auto group = oracle->SelectScan("grp", Value::Int(g));
    ASSERT_TRUE(group.ok());
    oracle_total += group->size();
  }
  EXPECT_EQ(recalled->size(), oracle_total);
}

}  // namespace
}  // namespace dbph
