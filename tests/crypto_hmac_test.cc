#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hkdf.h"

namespace dbph {
namespace crypto {
namespace {

Bytes Hex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok());
  return *r;
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = ToBytes("Hi There");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes msg = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key larger than block size.
TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes msg = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ExpandTruncates) {
  Bytes key = ToBytes("k");
  Bytes out = HmacSha256Expand(key, ToBytes("m"), 16);
  EXPECT_EQ(out.size(), 16u);
  Bytes full = HmacSha256Expand(key, ToBytes("m"), 32);
  EXPECT_EQ(Bytes(full.begin(), full.begin() + 16), out);
}

TEST(HmacTest, ExpandExtends) {
  Bytes key = ToBytes("k");
  Bytes out = HmacSha256Expand(key, ToBytes("m"), 100);
  EXPECT_EQ(out.size(), 100u);
  // Deterministic.
  EXPECT_EQ(out, HmacSha256Expand(key, ToBytes("m"), 100));
  // Different messages diverge.
  EXPECT_NE(out, HmacSha256Expand(key, ToBytes("n"), 100));
}

// RFC 5869 test case 1 (SHA-256).
TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = Hex("000102030405060708090a0b0c");
  Bytes info = Hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (zero-length salt and info).
TEST(HkdfTest, Rfc5869Case3) {
  Bytes ikm(22, 0x0b);
  Bytes okm = Hkdf(Bytes(), ikm, Bytes(), 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, SubkeysAreIndependent) {
  Bytes master = ToBytes("master key material");
  Bytes a = DeriveSubkey(master, "swp/pre-encryption");
  Bytes b = DeriveSubkey(master, "swp/word-key");
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveSubkey(master, "swp/pre-encryption"));
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
