#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/hkdf.h"
#include "crypto/sha256_compress.h"

namespace dbph {
namespace crypto {
namespace {

Bytes Hex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok());
  return *r;
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = ToBytes("Hi There");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes msg = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key larger than block size.
TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes msg = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ExpandTruncates) {
  Bytes key = ToBytes("k");
  Bytes out = HmacSha256Expand(key, ToBytes("m"), 16);
  EXPECT_EQ(out.size(), 16u);
  Bytes full = HmacSha256Expand(key, ToBytes("m"), 32);
  EXPECT_EQ(Bytes(full.begin(), full.begin() + 16), out);
}

TEST(HmacTest, ExpandExtends) {
  Bytes key = ToBytes("k");
  Bytes out = HmacSha256Expand(key, ToBytes("m"), 100);
  EXPECT_EQ(out.size(), 100u);
  // Deterministic.
  EXPECT_EQ(out, HmacSha256Expand(key, ToBytes("m"), 100));
  // Different messages diverge.
  EXPECT_NE(out, HmacSha256Expand(key, ToBytes("n"), 100));
}

// The precomputed schedule must agree with HmacSha256 on every RFC 4231
// vector (and hence with the RFC): one-shot, streaming, and batched
// evaluation all share the same ipad/opad midstates.
TEST(HmacPrecomputedTest, Rfc4231Vectors) {
  struct Case {
    Bytes key;
    Bytes msg;
    const char* expected;
  };
  const Case cases[] = {
      {Bytes(20, 0x0b), ToBytes("Hi There"),
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      {ToBytes("Jefe"), ToBytes("what do ya want for nothing?"),
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
      {Bytes(20, 0xaa), Bytes(50, 0xdd),
       "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
      {Bytes(131, 0xaa),
       ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"),
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
  };
  for (const Case& c : cases) {
    HmacSha256Precomputed schedule(c.key);
    EXPECT_EQ(HexEncode(schedule.Eval(c.msg)), c.expected);

    // Streaming, byte-at-a-time, must land on the same digest.
    HmacSha256Stream stream(&schedule);
    for (uint8_t byte : c.msg) stream.Update(&byte, 1);
    EXPECT_EQ(HexEncode(stream.Finish()), c.expected);

    // Reset rewinds for the next message over the same schedule.
    stream.Reset();
    stream.Update(c.msg);
    EXPECT_EQ(HexEncode(stream.Finish()), c.expected);
  }
}

// Batched evaluation must be bit-identical to scalar evaluation for
// every lane, across lengths that exercise the one-block fast path,
// block-straddling padding, and multi-block messages — and for every
// partial batch width around the 8-lane kernel.
TEST(HmacPrecomputedTest, EvalManyMatchesScalar) {
  HmacSha256Precomputed schedule(ToBytes("batch key"));
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  const auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (size_t msg_len : {0u, 1u, 16u, 20u, 55u, 56u, 63u, 64u, 100u, 128u}) {
    for (size_t n : {1u, 2u, 3u, 7u, 8u, 9u, 17u}) {
      std::vector<Bytes> msgs(n, Bytes(msg_len));
      std::vector<const uint8_t*> ptrs(n);
      for (size_t i = 0; i < n; ++i) {
        for (auto& b : msgs[i]) b = static_cast<uint8_t>(next());
        ptrs[i] = msgs[i].data();
      }
      std::vector<uint8_t> batched(n * 32);
      schedule.EvalMany(ptrs.data(), msg_len, n, batched.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(Bytes(batched.begin() + static_cast<long>(32 * i),
                        batched.begin() + static_cast<long>(32 * i + 32)),
                  schedule.Eval(msgs[i]))
            << "lane " << i << " of " << n << ", msg_len " << msg_len;
      }
    }
  }
}

// The runtime dispatcher must honor DBPH_SHA256_KERNEL when the forced
// kernel is supported (ci.sh runs this test under each forced value as
// the dispatch smoke) and must never pick an unsupported kernel.
TEST(Sha256KernelTest, DispatchHonorsEnvironmentOverride) {
  const Sha256Kernel active = ActiveSha256Kernel();
  const char* forced = std::getenv("DBPH_SHA256_KERNEL");
  if (forced != nullptr) {
    const std::string want(forced);
    // The dispatcher only grants a supported kernel; portable is always
    // supported, so forcing it must always take effect.
    if (want == "portable") {
      EXPECT_EQ(active, Sha256Kernel::kPortable);
    }
    if (want == std::string(Sha256KernelName(active))) {
      SUCCEED();  // forced kernel granted
    }
  }
  // Whatever was selected must produce correct digests (the RFC/NIST
  // vector tests in this binary already ran against it) and a name.
  EXPECT_NE(std::string(Sha256KernelName(active)), "unknown");
  EXPECT_GE(Sha256CompressLanes(), 1u);
}

// RFC 5869 test case 1 (SHA-256).
TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = Hex("000102030405060708090a0b0c");
  Bytes info = Hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (zero-length salt and info).
TEST(HkdfTest, Rfc5869Case3) {
  Bytes ikm(22, 0x0b);
  Bytes okm = Hkdf(Bytes(), ikm, Bytes(), 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, SubkeysAreIndependent) {
  Bytes master = ToBytes("master key material");
  Bytes a = DeriveSubkey(master, "swp/pre-encryption");
  Bytes b = DeriveSubkey(master, "swp/word-key");
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveSubkey(master, "swp/pre-encryption"));
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
