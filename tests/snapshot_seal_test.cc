// SnapshotChunk::Seal builds the contiguous scan-kernel arena with
// 32-bit word refs; when a chunk's ciphertext would push an offset (or
// the ref count) past the uint32 limit, Seal must ship the chunk with
// arena_built = false and scans must take the per-document scalar path
// with bit-identical results. Materializing 4 GiB to hit the real limit
// is out of the question, so these tests lower the injectable cap
// (SetArenaCapForTesting) to force every branch of the fallback and
// assert scalar/kernel parity.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/random.h"
#include "dbph/scheme.h"
#include "server/snapshot.h"
#include "swp/search.h"

namespace dbph {
namespace {

using core::DatabasePh;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;
using server::RelationSnapshot;
using server::SnapshotChunk;
using server::SnapshotMatch;

constexpr uint64_t kDefaultArenaCap = 0xffffffffull;

/// Restores the production cap no matter how the test exits.
struct ArenaCapGuard {
  explicit ArenaCapGuard(uint64_t cap) {
    SnapshotChunk::SetArenaCapForTesting(cap);
  }
  ~ArenaCapGuard() { SnapshotChunk::SetArenaCapForTesting(kDefaultArenaCap); }
};

class SnapshotSealTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = Schema::Create({
        {"name", ValueType::kString, 8},
        {"grp", ValueType::kInt64, 10},
    });
    ASSERT_TRUE(schema.ok());
    crypto::HmacDrbg rng("seal-test", 3);
    master_ = core::GenerateMasterKey(&rng);
    auto ph = DatabasePh::Create(*schema, master_);
    ASSERT_TRUE(ph.ok()) << ph.status();
    ph_ = std::make_unique<DatabasePh>(std::move(*ph));

    // 30 rows, grp cycling 0..2 — the grp=1 select matches the ten
    // positions congruent to 1 mod 3 (plus any SWP false positives,
    // which both paths must report identically).
    for (uint64_t i = 0; i < 30; ++i) {
      Tuple tuple({Value::Str("r" + std::to_string(i)),
                   Value::Int(static_cast<int64_t>(i % 3))});
      auto doc = ph_->EncryptTuple(tuple, &rng);
      ASSERT_TRUE(doc.ok()) << doc.status();
      Bytes bytes;
      doc->AppendTo(&bytes);
      doc_bytes_.push_back(std::move(bytes));
    }

    auto query = ph_->EncryptQuery("T", "grp", Value::Int(1));
    ASSERT_TRUE(query.ok()) << query.status();
    trapdoor_ = query->trapdoor;
  }

  /// Builds a snapshot over doc_bytes_ split into chunks of
  /// `docs_per_chunk`, sealing each under the CURRENT arena cap.
  std::shared_ptr<RelationSnapshot> BuildSnapshot(size_t docs_per_chunk) {
    auto snapshot = std::make_shared<RelationSnapshot>();
    snapshot->check_length = ph_->options().check_length;
    snapshot->num_docs = doc_bytes_.size();
    for (size_t first = 0; first < doc_bytes_.size();
         first += docs_per_chunk) {
      auto chunk = std::make_shared<SnapshotChunk>();
      const size_t end = std::min(first + docs_per_chunk, doc_bytes_.size());
      for (size_t i = first; i < end; ++i) {
        chunk->docs.push_back({/*rid_packed=*/i + 1, doc_bytes_[i]});
      }
      chunk->Seal();
      snapshot->chunk_first.push_back(first);
      snapshot->chunks.push_back(std::move(chunk));
    }
    return snapshot;
  }

  /// Runs the sharded scan and returns (position, rid) pairs in order.
  std::vector<std::pair<uint64_t, uint64_t>> ScanMatches(
      const RelationSnapshot& snapshot, size_t num_shards) {
    std::vector<SnapshotMatch> matches;
    Status status =
        snapshot.Scan(trapdoor_, num_shards, /*pool=*/nullptr, &matches);
    EXPECT_TRUE(status.ok()) << status;
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (const SnapshotMatch& match : matches) {
      out.emplace_back(match.position, match.rid_packed);
    }
    return out;
  }

  std::unique_ptr<DatabasePh> ph_;
  Bytes master_;
  std::vector<Bytes> doc_bytes_;
  swp::Trapdoor trapdoor_;
};

TEST_F(SnapshotSealTest, DefaultCapBuildsArenasAndFindsEveryMatch) {
  auto snapshot = BuildSnapshot(/*docs_per_chunk=*/7);
  for (const auto& chunk : snapshot->chunks) {
    EXPECT_TRUE(chunk->arena_built);
    EXPECT_EQ(chunk->word_first.size(), chunk->docs.size() + 1);
  }
  auto matches = ScanMatches(*snapshot, /*num_shards=*/3);
  // Every true match must be present (SWP guarantees no false
  // negatives); extras can only be false positives.
  size_t found = 0;
  for (uint64_t i = 1; i < doc_bytes_.size(); i += 3) {
    bool present = false;
    for (const auto& [position, rid] : matches) {
      if (position == i) {
        EXPECT_EQ(rid, i + 1);
        present = true;
      }
    }
    EXPECT_TRUE(present) << "position " << i;
    if (present) ++found;
  }
  EXPECT_EQ(found, doc_bytes_.size() / 3);
}

TEST_F(SnapshotSealTest, TinyCapForcesScalarFallbackWithIdenticalResults) {
  auto kernel_snapshot = BuildSnapshot(/*docs_per_chunk=*/7);
  std::vector<std::pair<uint64_t, uint64_t>> kernel_matches =
      ScanMatches(*kernel_snapshot, /*num_shards=*/3);

  std::shared_ptr<RelationSnapshot> fallback_snapshot;
  {
    // Far below one document's word bytes: the very first ref overflows,
    // so every chunk ships arena-less.
    ArenaCapGuard guard(/*cap=*/4);
    fallback_snapshot = BuildSnapshot(/*docs_per_chunk=*/7);
  }
  for (const auto& chunk : fallback_snapshot->chunks) {
    EXPECT_FALSE(chunk->arena_built);
    EXPECT_TRUE(chunk->word_arena.empty());
    EXPECT_TRUE(chunk->word_refs.empty());
    EXPECT_TRUE(chunk->word_first.empty());
    // The rid lookup side of Seal is unaffected by the overflow.
    EXPECT_EQ(chunk->pos_in_chunk.size(), chunk->docs.size());
  }
  for (size_t num_shards : {1u, 3u, 8u}) {
    EXPECT_EQ(ScanMatches(*fallback_snapshot, num_shards), kernel_matches)
        << "num_shards=" << num_shards;
  }
}

TEST_F(SnapshotSealTest, MidBuildOverflowDiscardsThePartialArena) {
  // Cap sized so the first documents fit and a later ref crosses the
  // limit mid-build: the partially filled arena must be discarded, not
  // shipped half-complete.
  auto reference = BuildSnapshot(/*docs_per_chunk=*/30);
  ASSERT_EQ(reference->chunks.size(), 1u);
  ASSERT_TRUE(reference->chunks[0]->arena_built);
  const uint64_t full_arena = reference->chunks[0]->word_arena.size();
  ASSERT_GT(full_arena, 16u);

  std::shared_ptr<RelationSnapshot> snapshot;
  {
    ArenaCapGuard guard(/*cap=*/full_arena / 2);
    snapshot = BuildSnapshot(/*docs_per_chunk=*/30);
  }
  ASSERT_EQ(snapshot->chunks.size(), 1u);
  EXPECT_FALSE(snapshot->chunks[0]->arena_built);
  EXPECT_TRUE(snapshot->chunks[0]->word_arena.empty());
  EXPECT_TRUE(snapshot->chunks[0]->word_refs.empty());
  EXPECT_EQ(ScanMatches(*snapshot, /*num_shards=*/2),
            ScanMatches(*reference, /*num_shards=*/2));
}

TEST_F(SnapshotSealTest, MixedArenaAndFallbackChunksScanConsistently) {
  // One relation, three chunks, the middle one sealed over the cap: the
  // kernel sweep must drop to the scalar path for exactly that chunk and
  // the combined result must match an all-kernel snapshot. This is the
  // shape a real overflow produces — old chunks keep their arenas, the
  // oversized newcomer scans scalar.
  auto reference = BuildSnapshot(/*docs_per_chunk=*/10);
  ASSERT_EQ(reference->chunks.size(), 3u);

  auto mixed = std::make_shared<RelationSnapshot>();
  mixed->check_length = ph_->options().check_length;
  mixed->num_docs = doc_bytes_.size();
  for (size_t c = 0; c < 3; ++c) {
    auto chunk = std::make_shared<SnapshotChunk>();
    for (size_t i = c * 10; i < (c + 1) * 10; ++i) {
      chunk->docs.push_back({/*rid_packed=*/i + 1, doc_bytes_[i]});
    }
    if (c == 1) {
      ArenaCapGuard guard(/*cap=*/4);
      chunk->Seal();
      EXPECT_FALSE(chunk->arena_built);
    } else {
      chunk->Seal();
      EXPECT_TRUE(chunk->arena_built);
    }
    mixed->chunk_first.push_back(c * 10);
    mixed->chunks.push_back(std::move(chunk));
  }
  for (size_t num_shards : {1u, 2u, 5u}) {
    EXPECT_EQ(ScanMatches(*mixed, num_shards),
              ScanMatches(*reference, num_shards))
        << "num_shards=" << num_shards;
  }
}

TEST_F(SnapshotSealTest, FallbackPreservesParseErrorsExactly) {
  // A corrupted document must surface the same parse failure through the
  // scalar fallback as through the kernel path's wellformed gate.
  doc_bytes_[4] = ToBytes("not a document");
  auto kernel_snapshot = BuildSnapshot(/*docs_per_chunk=*/30);
  std::shared_ptr<RelationSnapshot> fallback_snapshot;
  {
    ArenaCapGuard guard(/*cap=*/4);
    fallback_snapshot = BuildSnapshot(/*docs_per_chunk=*/30);
  }
  std::vector<SnapshotMatch> kernel_matches;
  Status kernel_status = kernel_snapshot->Scan(trapdoor_, 1, nullptr,
                                               &kernel_matches);
  std::vector<SnapshotMatch> fallback_matches;
  Status fallback_status = fallback_snapshot->Scan(trapdoor_, 1, nullptr,
                                                   &fallback_matches);
  EXPECT_FALSE(kernel_status.ok());
  EXPECT_FALSE(fallback_status.ok());
  EXPECT_EQ(kernel_status.code(), fallback_status.code());
  EXPECT_EQ(kernel_status.message(), fallback_status.message());
}

}  // namespace
}  // namespace dbph
