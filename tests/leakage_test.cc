#include "games/leakage.h"

#include <gtest/gtest.h>

#include "games/hospital.h"

namespace dbph {
namespace games {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema FlagSchema() {
  auto schema = Schema::Create({{"flag", ValueType::kString, 6}});
  return *schema;
}

TEST(LeakageTest, TrivialPartitionAtQZero) {
  Relation table("T", FlagSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert({Value::Str("v" + std::to_string(i))}).ok());
  }
  auto curve = MeasureQueryLeakage(table, {}, {}, 1);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->documents, 10u);
  ASSERT_EQ(curve->classes.size(), 1u);
  EXPECT_EQ(curve->classes[0], 1u);
  EXPECT_DOUBLE_EQ(curve->entropy_bits[0], 0.0);
  EXPECT_EQ(curve->singletons[0], 0u);
}

TEST(LeakageTest, OneSelectiveQuerySplitsOnce) {
  Relation table("T", FlagSchema());
  ASSERT_TRUE(table.Insert({Value::Str("red")}).ok());
  ASSERT_TRUE(table.Insert({Value::Str("red")}).ok());
  ASSERT_TRUE(table.Insert({Value::Str("blue")}).ok());
  ASSERT_TRUE(table.Insert({Value::Str("blue")}).ok());

  auto curve = MeasureQueryLeakage(table, {{"flag", Value::Str("red")}},
                                   {}, 2);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->classes[1], 2u);         // {red, red} | {blue, blue}
  EXPECT_DOUBLE_EQ(curve->entropy_bits[1], 1.0);  // perfectly balanced
  EXPECT_EQ(curve->singletons[1], 0u);
}

TEST(LeakageTest, ClassesAreMonotoneNonDecreasing) {
  crypto::HmacDrbg gen("leak-mono", 1);
  HospitalModel model;
  model.patients = 60;
  auto table = GenerateHospitalTable(model, &gen);
  ASSERT_TRUE(table.ok());
  auto workload = SampleWorkload(*table, 20, 7);
  auto curve = MeasureQueryLeakage(*table, workload, {}, 7);
  ASSERT_TRUE(curve.ok());
  for (size_t k = 1; k < curve->classes.size(); ++k) {
    EXPECT_GE(curve->classes[k], curve->classes[k - 1]) << k;
    EXPECT_GE(curve->entropy_bits[k] + 1e-9, curve->entropy_bits[k - 1])
        << k;
  }
}

TEST(LeakageTest, DistinctValuesFullyIsolatedByExhaustiveWorkload) {
  Relation table("T", FlagSchema());
  std::vector<std::pair<std::string, Value>> workload;
  for (int i = 0; i < 8; ++i) {
    Value v = Value::Str("v" + std::to_string(i));
    ASSERT_TRUE(table.Insert({v}).ok());
    workload.emplace_back("flag", v);
  }
  auto curve = MeasureQueryLeakage(table, workload, {}, 3);
  ASSERT_TRUE(curve.ok());
  // Querying every value isolates every document.
  EXPECT_EQ(curve->classes.back(), 8u);
  EXPECT_EQ(curve->singletons.back(), 8u);
  EXPECT_NEAR(curve->entropy_bits.back(), 3.0, 1e-9);
}

TEST(LeakageTest, IdenticalTuplesNeverSeparate) {
  Relation table("T", FlagSchema());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(table.Insert({Value::Str("same")}).ok());
  }
  auto workload = SampleWorkload(table, 10, 5);
  auto curve = MeasureQueryLeakage(table, workload, {}, 5);
  ASSERT_TRUE(curve.ok());
  // Exact selects cannot split equal tuples (modulo the ~2^-32 false
  // positive rate): one class forever.
  EXPECT_EQ(curve->classes.back(), 1u);
  EXPECT_EQ(curve->singletons.back(), 0u);
}

TEST(LeakageTest, SampledWorkloadUsesExistingValues) {
  Relation table("T", FlagSchema());
  ASSERT_TRUE(table.Insert({Value::Str("only")}).ok());
  auto workload = SampleWorkload(table, 5, 9);
  ASSERT_EQ(workload.size(), 5u);
  for (const auto& [attr, value] : workload) {
    EXPECT_EQ(attr, "flag");
    EXPECT_EQ(value, Value::Str("only"));
  }
  // Empty table: empty workload, no crash.
  Relation empty("E", FlagSchema());
  EXPECT_TRUE(SampleWorkload(empty, 5, 9).empty());
}

}  // namespace
}  // namespace games
}  // namespace dbph
