#include "games/leakage.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "client/client.h"
#include "games/hospital.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace games {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema FlagSchema() {
  auto schema = Schema::Create({{"flag", ValueType::kString, 6}});
  return *schema;
}

TEST(LeakageTest, TrivialPartitionAtQZero) {
  Relation table("T", FlagSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert({Value::Str("v" + std::to_string(i))}).ok());
  }
  auto curve = MeasureQueryLeakage(table, {}, {}, 1);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->documents, 10u);
  ASSERT_EQ(curve->classes.size(), 1u);
  EXPECT_EQ(curve->classes[0], 1u);
  EXPECT_DOUBLE_EQ(curve->entropy_bits[0], 0.0);
  EXPECT_EQ(curve->singletons[0], 0u);
}

TEST(LeakageTest, OneSelectiveQuerySplitsOnce) {
  Relation table("T", FlagSchema());
  ASSERT_TRUE(table.Insert({Value::Str("red")}).ok());
  ASSERT_TRUE(table.Insert({Value::Str("red")}).ok());
  ASSERT_TRUE(table.Insert({Value::Str("blue")}).ok());
  ASSERT_TRUE(table.Insert({Value::Str("blue")}).ok());

  auto curve = MeasureQueryLeakage(table, {{"flag", Value::Str("red")}},
                                   {}, 2);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->classes[1], 2u);         // {red, red} | {blue, blue}
  EXPECT_DOUBLE_EQ(curve->entropy_bits[1], 1.0);  // perfectly balanced
  EXPECT_EQ(curve->singletons[1], 0u);
}

TEST(LeakageTest, ClassesAreMonotoneNonDecreasing) {
  crypto::HmacDrbg gen("leak-mono", 1);
  HospitalModel model;
  model.patients = 60;
  auto table = GenerateHospitalTable(model, &gen);
  ASSERT_TRUE(table.ok());
  auto workload = SampleWorkload(*table, 20, 7);
  auto curve = MeasureQueryLeakage(*table, workload, {}, 7);
  ASSERT_TRUE(curve.ok());
  for (size_t k = 1; k < curve->classes.size(); ++k) {
    EXPECT_GE(curve->classes[k], curve->classes[k - 1]) << k;
    EXPECT_GE(curve->entropy_bits[k] + 1e-9, curve->entropy_bits[k - 1])
        << k;
  }
}

TEST(LeakageTest, DistinctValuesFullyIsolatedByExhaustiveWorkload) {
  Relation table("T", FlagSchema());
  std::vector<std::pair<std::string, Value>> workload;
  for (int i = 0; i < 8; ++i) {
    Value v = Value::Str("v" + std::to_string(i));
    ASSERT_TRUE(table.Insert({v}).ok());
    workload.emplace_back("flag", v);
  }
  auto curve = MeasureQueryLeakage(table, workload, {}, 3);
  ASSERT_TRUE(curve.ok());
  // Querying every value isolates every document.
  EXPECT_EQ(curve->classes.back(), 8u);
  EXPECT_EQ(curve->singletons.back(), 8u);
  EXPECT_NEAR(curve->entropy_bits.back(), 3.0, 1e-9);
}

TEST(LeakageTest, IdenticalTuplesNeverSeparate) {
  Relation table("T", FlagSchema());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(table.Insert({Value::Str("same")}).ok());
  }
  auto workload = SampleWorkload(table, 10, 5);
  auto curve = MeasureQueryLeakage(table, workload, {}, 5);
  ASSERT_TRUE(curve.ok());
  // Exact selects cannot split equal tuples (modulo the ~2^-32 false
  // positive rate): one class forever.
  EXPECT_EQ(curve->classes.back(), 1u);
  EXPECT_EQ(curve->singletons.back(), 0u);
}

TEST(LeakageTest, SampledWorkloadUsesExistingValues) {
  Relation table("T", FlagSchema());
  ASSERT_TRUE(table.Insert({Value::Str("only")}).ok());
  auto workload = SampleWorkload(table, 5, 9);
  ASSERT_EQ(workload.size(), 5u);
  for (const auto& [attr, value] : workload) {
    EXPECT_EQ(attr, "flag");
    EXPECT_EQ(value, Value::Str("only"));
  }
  // Empty table: empty workload, no crash.
  Relation empty("E", FlagSchema());
  EXPECT_TRUE(SampleWorkload(empty, 5, 9).empty());
}

// ---------------- online auditor vs the offline estimator ----------------

// A server + client pair with a fixed leakage salt, so the auditor's
// reports are a deterministic function of the query stream.
struct AuditedDeployment {
  explicit AuditedDeployment(const std::string& seed) {
    server::ServerRuntimeOptions options;
    options.leakage_salt = ToBytes("leakage-test-salt");
    server = std::make_unique<server::UntrustedServer>(options);
    rng = std::make_unique<crypto::HmacDrbg>(seed, 1);
    client = std::make_unique<client::Client>(
        ToBytes("alex's master key"),
        [this](const Bytes& request) {
          return server->HandleRequest(request);
        },
        rng.get());
  }

  std::unique_ptr<server::UntrustedServer> server;
  std::unique_ptr<crypto::HmacDrbg> rng;
  std::unique_ptr<client::Client> client;
};

Relation SkewTable() {
  Relation table("T", FlagSchema());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(table.Insert({Value::Str("v" + std::to_string(i))}).ok());
  }
  return table;
}

// The skewed workload from the acceptance criterion: 10x v0, 6x v1,
// 4x v2 — modal rate 0.5, advantage 1/2 - 1/3.
void RunSkewedWorkload(client::Client* client) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->Select("T", "flag", Value::Str("v0")).ok());
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client->Select("T", "flag", Value::Str("v1")).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->Select("T", "flag", Value::Str("v2")).ok());
  }
}

TEST(LeakageAuditTest, OnlineAdvantageMatchesOfflineEstimatorEndToEnd) {
  AuditedDeployment deployment("audit-online");
  ASSERT_TRUE(deployment.client->Outsource(SkewTable()).ok());
  RunSkewedWorkload(deployment.client.get());

  // Offline side: tally the exact trapdoor-byte multiset Eve logged and
  // summarize it with the games estimator.
  std::map<Bytes, uint64_t> tally;
  for (const auto& q : deployment.server->observations().queries()) {
    ++tally[q.trapdoor_bytes];
  }
  std::vector<uint64_t> counts;
  for (const auto& [bytes, count] : tally) counts.push_back(count);
  SpectrumSummary offline = SummarizeTagSpectrum(counts);
  EXPECT_EQ(offline.total, 20u);
  EXPECT_EQ(offline.distinct, 3u);

  // Online side: the live auditor, through the same fold the daemon
  // serves. Distinct tags fit the sketch, so the match is exact.
  ASSERT_NE(deployment.server->leakage_auditor(), nullptr);
  obs::leakage::LeakageReport report =
      deployment.server->leakage_auditor()->Report();
  ASSERT_EQ(report.relations.size(), 1u);
  EXPECT_EQ(report.relations[0].relation, "T");
  EXPECT_EQ(report.relations[0].queries, 20u);
  EXPECT_EQ(report.relations[0].distinct_tags, offline.distinct);
  EXPECT_EQ(report.relations[0].advantage_millis,
            static_cast<uint64_t>(std::llround(offline.advantage * 1000)));
  EXPECT_EQ(report.relations[0].modal_rate_millis,
            static_cast<uint64_t>(std::llround(offline.modal_rate * 1000)));
  EXPECT_EQ(report.relations[0].entropy_millibits,
            static_cast<uint64_t>(std::llround(offline.entropy_bits * 1000)));
}

TEST(LeakageAuditTest, SameWorkloadSameSaltSameReport) {
  // Determinism through the full stack: two independent deployments with
  // the same salt, keys, and query stream must freeze identical reports.
  AuditedDeployment first("audit-determinism");
  AuditedDeployment second("audit-determinism");
  ASSERT_TRUE(first.client->Outsource(SkewTable()).ok());
  ASSERT_TRUE(second.client->Outsource(SkewTable()).ok());
  RunSkewedWorkload(first.client.get());
  RunSkewedWorkload(second.client.get());

  obs::leakage::LeakageReport a = first.server->leakage_auditor()->Report();
  obs::leakage::LeakageReport b = second.server->leakage_auditor()->Report();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.queries_observed, 20u);
  ASSERT_EQ(a.relations.size(), 1u);
  EXPECT_FALSE(a.relations[0].top_tags.empty());
}

}  // namespace
}  // namespace games
}  // namespace dbph
