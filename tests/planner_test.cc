// Planner-layer coverage: the trapdoor posting-list index must be purely
// a performance decision. Whatever access path the planner picks, the
// documents returned (bytes and order) and the observation-log entries
// recorded must be identical to a sequential full scan — across selects,
// batches with duplicate trapdoors, appends, deletes, and recovery. Also
// covers EXPLAIN (kExplain / PlanReport) and the bounded observation
// mode.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "dbph/scheme.h"
#include "server/planner/planner.h"
#include "server/planner/trapdoor_index.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"
#include "storage/heapfile.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;
using server::planner::AccessPath;
using server::planner::ExecutionContext;
using server::planner::PlanExecutor;
using server::planner::SelectTask;
using server::planner::TrapdoorIndex;

Schema TableSchema() {
  auto s = Schema::Create({
      {"name", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation BuildTable(size_t n) {
  Relation table("T", TableSchema());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(table.Insert({Value::Str("n" + std::to_string(i)),
                              Value::Int(static_cast<int64_t>(i % 5))})
                    .ok());
  }
  return table;
}

Bytes SerializeDoc(const swp::EncryptedDocument& doc) {
  Bytes out;
  doc.AppendTo(&out);
  return out;
}

/// Byte-level equality of two match lists: same rids, same documents,
/// same order.
void ExpectSameMatches(const std::vector<server::runtime::ShardMatch>& a,
                       const std::vector<server::runtime::ShardMatch>& b,
                       const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rid.Pack(), b[i].rid.Pack()) << context << " match " << i;
    EXPECT_EQ(SerializeDoc(a[i].doc), SerializeDoc(b[i].doc))
        << context << " match " << i;
  }
}

/// Full equality of two observation logs, entry by entry.
void ExpectSameLogs(const server::ObservationLog& a,
                    const server::ObservationLog& b,
                    const std::string& context) {
  ASSERT_EQ(a.queries().size(), b.queries().size()) << context;
  for (size_t i = 0; i < a.queries().size(); ++i) {
    const auto& qa = a.queries()[i];
    const auto& qb = b.queries()[i];
    EXPECT_EQ(qa.relation, qb.relation) << context << " query " << i;
    EXPECT_EQ(qa.trapdoor_bytes, qb.trapdoor_bytes) << context << " query "
                                                    << i;
    EXPECT_EQ(qa.matched_records, qb.matched_records) << context << " query "
                                                      << i;
  }
  ASSERT_EQ(a.stores().size(), b.stores().size()) << context;
  for (size_t i = 0; i < a.stores().size(); ++i) {
    EXPECT_EQ(a.stores()[i].relation, b.stores()[i].relation) << context;
    EXPECT_EQ(a.stores()[i].num_documents, b.stores()[i].num_documents)
        << context;
    EXPECT_EQ(a.stores()[i].ciphertext_bytes, b.stores()[i].ciphertext_bytes)
        << context;
  }
}

// ---------------- planner + index against raw storage ----------------

/// A tiny relation materialized into a heap file, driven through the
/// PlanExecutor directly (no server), with an index-enabled and an
/// index-free context over the same storage.
class PlannerStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::HmacDrbg rng("planner-storage", 7);
    auto ph = core::DatabasePh::Create(TableSchema(), ToBytes("planner key"));
    ASSERT_TRUE(ph.ok());
    ph_ = std::make_unique<core::DatabasePh>(std::move(*ph));
    auto encrypted = ph_->EncryptRelation(BuildTable(40), &rng);
    ASSERT_TRUE(encrypted.ok());
    check_length_ = encrypted->check_length;
    for (const auto& doc : encrypted->documents) {
      records_.push_back(heap_.Insert(SerializeDoc(doc)));
    }
  }

  ExecutionContext Context(bool with_index) {
    ExecutionContext ctx;
    ctx.heap = &heap_;
    ctx.records = &records_;
    ctx.check_length = check_length_;
    ctx.num_shards = 3;
    ctx.index = with_index ? &index_ : nullptr;
    return ctx;
  }

  core::EncryptedQuery Query(const std::string& attribute,
                             const Value& value) {
    auto q = ph_->EncryptQuery("T", attribute, value);
    EXPECT_TRUE(q.ok());
    return *q;
  }

  server::planner::PlannedOutcome RunOne(const core::EncryptedQuery& query,
                                         bool with_index) {
    SelectTask task;
    task.ctx = Context(with_index);
    task.query = &query;
    PlanExecutor executor(nullptr);  // inline scans
    auto outcomes = executor.Execute({task});
    EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status;
    return std::move(outcomes[0]);
  }

  std::unique_ptr<core::DatabasePh> ph_;
  storage::HeapFile heap_;
  std::vector<storage::RecordId> records_;
  uint32_t check_length_ = 4;
  TrapdoorIndex index_;
};

TEST_F(PlannerStorageTest, FirstScanMemoizesSecondHitsIndexIdentically) {
  core::EncryptedQuery query = Query("grp", Value::Int(2));

  auto first = RunOne(query, true);
  EXPECT_EQ(first.plan.path, AccessPath::kFullScan);
  EXPECT_TRUE(first.plan.will_memoize);
  EXPECT_EQ(index_.num_trapdoors(), 1u);
  EXPECT_FALSE(first.matches.empty());

  auto second = RunOne(query, true);
  EXPECT_EQ(second.plan.path, AccessPath::kIndexLookup);
  EXPECT_EQ(second.plan.posting_size, first.matches.size());
  ExpectSameMatches(first.matches, second.matches, "scan vs index");

  // And both equal an index-free scan of the same storage.
  auto scan = RunOne(query, false);
  EXPECT_EQ(scan.plan.path, AccessPath::kFullScan);
  ExpectSameMatches(scan.matches, second.matches, "no-index vs index");

  // Plan-only inspection (EXPLAIN) sees the same plan but leaves the
  // hit/miss stats untouched — they measure queries served, not plans
  // printed.
  uint64_t hits_before = index_.stats().hits;
  Bytes trapdoor_bytes;
  query.trapdoor.AppendTo(&trapdoor_bytes);
  auto explained = server::planner::PlanSelect(
      Context(true), trapdoor_bytes, nullptr, /*record_stats=*/false);
  EXPECT_EQ(explained.path, AccessPath::kIndexLookup);
  EXPECT_EQ(index_.stats().hits, hits_before);
}

TEST_F(PlannerStorageTest, EmptyResultIsMemoizedAsARealAnswer) {
  core::EncryptedQuery query = Query("name", Value::Str("nobody"));
  auto first = RunOne(query, true);
  EXPECT_TRUE(first.matches.empty());
  auto second = RunOne(query, true);
  EXPECT_EQ(second.plan.path, AccessPath::kIndexLookup);
  EXPECT_TRUE(second.matches.empty());
  EXPECT_EQ(index_.stats().hits, 1u);
}

TEST_F(PlannerStorageTest, DuplicateTrapdoorsInOneWaveMemoizeOnce) {
  core::EncryptedQuery query = Query("grp", Value::Int(1));
  SelectTask a, b;
  a.ctx = b.ctx = Context(true);
  a.query = b.query = &query;
  PlanExecutor executor(nullptr);
  auto outcomes = executor.Execute({a, b});
  ASSERT_TRUE(outcomes[0].status.ok());
  ASSERT_TRUE(outcomes[1].status.ok());
  // Both planned before either scanned: both full scans, identical
  // results, exactly one memo entry afterwards.
  EXPECT_EQ(outcomes[0].plan.path, AccessPath::kFullScan);
  EXPECT_EQ(outcomes[1].plan.path, AccessPath::kFullScan);
  ExpectSameMatches(outcomes[0].matches, outcomes[1].matches, "dup wave");
  EXPECT_EQ(index_.num_trapdoors(), 1u);

  auto repeat = RunOne(query, true);
  EXPECT_EQ(repeat.plan.path, AccessPath::kIndexLookup);
  ExpectSameMatches(outcomes[0].matches, repeat.matches, "dup repeat");
}

TEST_F(PlannerStorageTest, OnAppendExtendsPostingListsExactly) {
  core::EncryptedQuery query = Query("grp", Value::Int(3));
  auto before = RunOne(query, true);  // memoize

  // Append 10 more documents (two of each group) the way the server
  // does: heap insert + records push + OnAppend with the new pairs.
  crypto::HmacDrbg rng("planner-append", 9);
  auto extra = ph_->EncryptRelation(BuildTable(10), &rng);
  ASSERT_TRUE(extra.ok());
  std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>> added;
  for (const auto& doc : extra->documents) {
    storage::RecordId rid = heap_.Insert(SerializeDoc(doc));
    records_.push_back(rid);
    added.emplace_back(rid.Pack(), &doc);
  }
  index_.OnAppend(check_length_, added);

  auto indexed = RunOne(query, true);
  EXPECT_EQ(indexed.plan.path, AccessPath::kIndexLookup);
  EXPECT_GT(indexed.matches.size(), before.matches.size());
  auto scanned = RunOne(query, false);
  ExpectSameMatches(scanned.matches, indexed.matches, "post-append");
}

TEST_F(PlannerStorageTest, OnDeleteDropsRemovedRecordsExactly) {
  core::EncryptedQuery query = Query("grp", Value::Int(4));
  auto before = RunOne(query, true);  // memoize
  ASSERT_GE(before.matches.size(), 2u);

  // Delete every second match, server-style.
  std::vector<uint64_t> removed;
  std::vector<storage::RecordId> kept;
  for (size_t i = 0; i < records_.size(); ++i) kept.push_back(records_[i]);
  for (size_t i = 0; i < before.matches.size(); i += 2) {
    storage::RecordId rid = before.matches[i].rid;
    removed.push_back(rid.Pack());
    ASSERT_TRUE(heap_.Delete(rid).ok());
    kept.erase(std::find(kept.begin(), kept.end(), rid));
  }
  records_ = std::move(kept);
  index_.OnDelete(removed);

  auto indexed = RunOne(query, true);
  EXPECT_EQ(indexed.plan.path, AccessPath::kIndexLookup);
  auto scanned = RunOne(query, false);
  ExpectSameMatches(scanned.matches, indexed.matches, "post-delete");
}

TEST_F(PlannerStorageTest, OverBudgetAppendInvalidatesInsteadOfStalling) {
  index_.set_max_append_evals(4);
  core::EncryptedQuery query = Query("grp", Value::Int(2));
  (void)RunOne(query, true);  // memoize (1 trapdoor)
  ASSERT_EQ(index_.num_trapdoors(), 1u);

  // 1 memoized trapdoor x 10 new documents = 10 evaluations > budget 4:
  // the memo is dropped rather than maintained under the lock.
  crypto::HmacDrbg rng("planner-budget", 3);
  auto extra = ph_->EncryptRelation(BuildTable(10), &rng);
  ASSERT_TRUE(extra.ok());
  std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>> added;
  for (const auto& doc : extra->documents) {
    storage::RecordId rid = heap_.Insert(SerializeDoc(doc));
    records_.push_back(rid);
    added.emplace_back(rid.Pack(), &doc);
  }
  index_.OnAppend(check_length_, added);
  EXPECT_EQ(index_.num_trapdoors(), 0u);
  EXPECT_EQ(index_.stats().invalidations, 1u);

  // Cold again, still correct: the next select rescans and re-memoizes.
  auto rebuilt = RunOne(query, true);
  EXPECT_EQ(rebuilt.plan.path, AccessPath::kFullScan);
  ExpectSameMatches(RunOne(query, false).matches,
                    RunOne(query, true).matches, "post-invalidation");
}

TEST_F(PlannerStorageTest, AppendBudgetMaintainsWhatItCanEvictsTheRest) {
  // Two memoized trapdoors, budget 12, append 10 documents: the first
  // entry is maintained (10 <= 12), the second would exceed the budget
  // and is evicted instead of served stale.
  core::EncryptedQuery q0 = Query("grp", Value::Int(0));
  core::EncryptedQuery q1 = Query("grp", Value::Int(1));
  (void)RunOne(q0, true);
  (void)RunOne(q1, true);
  ASSERT_EQ(index_.num_trapdoors(), 2u);
  index_.set_max_append_evals(12);

  crypto::HmacDrbg rng("planner-partial", 4);
  auto extra = ph_->EncryptRelation(BuildTable(10), &rng);
  ASSERT_TRUE(extra.ok());
  std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>> added;
  for (const auto& doc : extra->documents) {
    storage::RecordId rid = heap_.Insert(SerializeDoc(doc));
    records_.push_back(rid);
    added.emplace_back(rid.Pack(), &doc);
  }
  index_.OnAppend(check_length_, added);
  EXPECT_EQ(index_.num_trapdoors(), 1u);
  EXPECT_EQ(index_.stats().invalidations, 1u);

  // Whichever entry survived serves exactly; the evicted one rescans
  // exactly. Both must equal the index-free scan post-append.
  for (const core::EncryptedQuery* q : {&q0, &q1}) {
    auto with = RunOne(*q, true);
    auto without = RunOne(*q, false);
    ExpectSameMatches(without.matches, with.matches, "partial maintenance");
  }
}

TEST_F(PlannerStorageTest, CapacityBoundsMemoizationWithoutBreakingResults) {
  index_.set_max_trapdoors(2);
  core::EncryptedQuery q0 = Query("grp", Value::Int(0));
  core::EncryptedQuery q1 = Query("grp", Value::Int(1));
  core::EncryptedQuery q2 = Query("grp", Value::Int(2));
  (void)RunOne(q0, true);
  (void)RunOne(q1, true);
  EXPECT_TRUE(index_.AtCapacity());

  // The third trapdoor is not memoized: it plans as a non-memoizing
  // scan, repeats keep scanning, and results still match the
  // index-free scan exactly.
  auto third = RunOne(q2, true);
  EXPECT_EQ(third.plan.path, AccessPath::kFullScan);
  EXPECT_FALSE(third.plan.will_memoize);
  EXPECT_EQ(index_.num_trapdoors(), 2u);
  auto repeat = RunOne(q2, true);
  EXPECT_EQ(repeat.plan.path, AccessPath::kFullScan);
  ExpectSameMatches(RunOne(q2, false).matches, repeat.matches, "at capacity");

  // Entries memoized before the cap hit keep serving.
  auto cached = RunOne(q0, true);
  EXPECT_EQ(cached.plan.path, AccessPath::kIndexLookup);
}

// ---------------- whole-server differential: index on vs off -------------

/// Two deployments over identical DRBG streams hold byte-identical
/// ciphertext and receive byte-identical requests; one runs with the
/// trapdoor index, one without. Every transport response and the whole
/// observation log must match byte for byte.
struct Deployment {
  explicit Deployment(bool enable_index)
      : server(MakeOptions(enable_index)),
        rng("planner-differential", 5),
        client(ToBytes("planner master"),
               [this](const Bytes& request) {
                 Bytes response = server.HandleRequest(request);
                 responses.push_back(response);
                 return response;
               },
               &rng) {}

  static server::ServerRuntimeOptions MakeOptions(bool enable_index) {
    server::ServerRuntimeOptions options;
    options.num_threads = 2;
    options.enable_trapdoor_index = enable_index;
    return options;
  }

  server::UntrustedServer server;
  crypto::HmacDrbg rng;
  std::vector<Bytes> responses;
  client::Client client;
};

TEST(PlannerDifferentialTest, IndexOnAndOffAreByteIdenticalEverywhere) {
  Deployment on(true);
  Deployment off(false);

  Relation table = BuildTable(60);
  auto drive = [&table](Deployment* d) {
    ASSERT_TRUE(d->client.Outsource(table).ok());
    // Repeated trapdoors (index hits), fresh trapdoors (scans),
    // batches, conjunctions, mutations in between.
    for (int round = 0; round < 3; ++round) {
      for (int64_t g = 0; g < 5; ++g) {
        ASSERT_TRUE(d->client.Select("T", "grp", Value::Int(g)).ok());
      }
      auto batch = d->client.SelectBatch(
          "T", {{"grp", Value::Int(2)}, {"grp", Value::Int(2)},
                {"name", Value::Str("n1")}});
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE(
          d->client
              .SelectConjunction("T", {{"grp", Value::Int(1)},
                                       {"name", Value::Str("n6")}})
              .ok());
      if (round == 0) {
        ASSERT_TRUE(
            d->client
                .Insert("T", {rel::Tuple({Value::Str("xtra"),
                                          Value::Int(2)})})
                .ok());
      }
      if (round == 1) {
        ASSERT_TRUE(d->client.DeleteWhere("T", "grp", Value::Int(3)).ok());
        // The deleted trapdoor is memoized empty; select it again.
        ASSERT_TRUE(d->client.Select("T", "grp", Value::Int(3)).ok());
      }
    }
  };
  drive(&on);
  if (::testing::Test::HasFatalFailure()) return;
  drive(&off);
  if (::testing::Test::HasFatalFailure()) return;

  // Byte-identical wire responses, request by request.
  ASSERT_EQ(on.responses.size(), off.responses.size());
  for (size_t i = 0; i < on.responses.size(); ++i) {
    EXPECT_EQ(on.responses[i], off.responses[i]) << "response " << i;
  }
  ExpectSameLogs(on.server.observations(), off.server.observations(),
                 "index on vs off");

  // The index really was in play: repeated trapdoors report the index
  // path on the enabled server and the scan path on the disabled one.
  auto plan_on = on.client.Explain("T", "grp", Value::Int(2));
  ASSERT_TRUE(plan_on.ok());
  EXPECT_EQ(plan_on->access_path, protocol::PlanAccessPath::kIndexLookup);
  EXPECT_TRUE(plan_on->index_enabled);
  EXPECT_GT(plan_on->indexed_trapdoors, 0u);
  auto plan_off = off.client.Explain("T", "grp", Value::Int(2));
  ASSERT_TRUE(plan_off.ok());
  EXPECT_EQ(plan_off->access_path, protocol::PlanAccessPath::kFullScan);
  EXPECT_FALSE(plan_off->index_enabled);
  EXPECT_FALSE(plan_off->will_memoize);
}

TEST(PlannerDifferentialTest, RestoreStateStartsColdButStaysIdentical) {
  Deployment on(true);
  Relation table = BuildTable(30);
  ASSERT_TRUE(on.client.Outsource(table).ok());
  ASSERT_TRUE(on.client.Select("T", "grp", Value::Int(1)).ok());
  auto warm = on.client.Explain("T", "grp", Value::Int(1));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->access_path, protocol::PlanAccessPath::kIndexLookup);

  // Save/restore: recovery deterministically rebuilds — the index
  // restarts cold and the first repeat is a (memoizing) scan again.
  auto image = on.server.SerializeState();
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(on.server.RestoreState(*image).ok());
  auto cold = on.client.Explain("T", "grp", Value::Int(1));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->access_path, protocol::PlanAccessPath::kFullScan);
  EXPECT_TRUE(cold->will_memoize);
  EXPECT_EQ(cold->indexed_trapdoors, 0u);

  auto result = on.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(result.ok());
  auto rewarmed = on.client.Explain("T", "grp", Value::Int(1));
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_EQ(rewarmed->access_path, protocol::PlanAccessPath::kIndexLookup);
  EXPECT_EQ(rewarmed->posting_size, warm->posting_size);
}

// ---------------- EXPLAIN plumbing ----------------

TEST(ExplainTest, UnknownRelationAndSqlFrontEnd) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("explain-sql", 3);
  client::Client client(
      ToBytes("explain master"),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  Relation table = BuildTable(10);
  ASSERT_TRUE(client.Outsource(table).ok());

  EXPECT_FALSE(client.Explain("Nope", "grp", Value::Int(1)).ok());

  auto text = sql::ExplainSql(&client,
                              "EXPLAIN SELECT * FROM T WHERE grp = 1");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("FullScan"), std::string::npos);

  ASSERT_TRUE(client.Select("T", "grp", Value::Int(1)).ok());
  text = sql::ExplainSql(&client, "explain SELECT * FROM T WHERE grp = 1");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("IndexLookup"), std::string::npos);

  // Conjunctions explain one plan per term.
  auto conj = sql::ExplainSql(
      &client, "EXPLAIN SELECT * FROM T WHERE grp = 1 AND name = 'n1'");
  ASSERT_TRUE(conj.ok());
  EXPECT_NE(conj->find("term 1"), std::string::npos);
  EXPECT_NE(conj->find("term 2"), std::string::npos);

  // EXPLAIN left no query observations (plan-only).
  EXPECT_EQ(server.observations().queries().size(), 1u);
}

TEST(ExplainTest, PlanReportRoundTripsOnTheWire) {
  protocol::PlanReport report;
  report.relation = "R";
  report.access_path = protocol::PlanAccessPath::kIndexLookup;
  report.num_records = 1234;
  report.posting_size = 56;
  report.num_shards = 8;
  report.will_memoize = false;
  report.index_enabled = true;
  report.indexed_trapdoors = 3;
  report.match_evals = 9876543210ull;  // exceeds uint32 to pin the width
  Bytes wire;
  report.AppendTo(&wire);
  ByteReader reader(wire);
  auto parsed = protocol::PlanReport::ReadFrom(&reader);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(parsed->relation, "R");
  EXPECT_EQ(parsed->access_path, protocol::PlanAccessPath::kIndexLookup);
  EXPECT_EQ(parsed->num_records, 1234u);
  EXPECT_EQ(parsed->posting_size, 56u);
  EXPECT_EQ(parsed->num_shards, 8u);
  EXPECT_FALSE(parsed->will_memoize);
  EXPECT_TRUE(parsed->index_enabled);
  EXPECT_EQ(parsed->indexed_trapdoors, 3u);
  EXPECT_EQ(parsed->match_evals, 9876543210ull);
}

// ---------------- bounded observation mode ----------------

TEST(ObservationModeTest, AggregateKeepsCountsNotTranscripts) {
  server::ServerRuntimeOptions options;
  server::UntrustedServer full_server(options);
  server::UntrustedServer aggregate_server(options);
  aggregate_server.mutable_observations()->SetMode(
      server::ObservationMode::kAggregate);

  Relation table = BuildTable(20);
  auto drive = [&table](server::UntrustedServer* s, uint64_t seed) {
    crypto::HmacDrbg rng("observation-mode", seed);
    client::Client client(
        ToBytes("observation master"),
        [s](const Bytes& request) { return s->HandleRequest(request); },
        &rng);
    ASSERT_TRUE(client.Outsource(table).ok());
    for (int round = 0; round < 4; ++round) {
      for (int64_t g = 0; g < 5; ++g) {
        ASSERT_TRUE(client.Select("T", "grp", Value::Int(g)).ok());
      }
    }
    ASSERT_TRUE(client.DeleteWhere("T", "grp", Value::Int(0)).ok());
  };
  drive(&full_server, 1);
  if (::testing::Test::HasFatalFailure()) return;
  drive(&aggregate_server, 1);
  if (::testing::Test::HasFatalFailure()) return;

  const auto& full = full_server.observations();
  const auto& aggregate = aggregate_server.observations();
  // Aggregate mode retains no per-event vectors...
  EXPECT_EQ(aggregate.queries().size(), 0u);
  EXPECT_EQ(aggregate.stores().size(), 0u);
  EXPECT_EQ(full.queries().size(), 21u);
  // ...but its counters equal the full deployment's.
  EXPECT_EQ(aggregate.aggregate().num_queries, 21u);
  EXPECT_EQ(aggregate.aggregate().num_stores,
            full.aggregate().num_stores);
  EXPECT_EQ(aggregate.aggregate().matched_total,
            full.aggregate().matched_total);
  EXPECT_EQ(aggregate.aggregate().result_size_histogram.Snapshot(),
            full.aggregate().result_size_histogram.Snapshot());

  // The histogram is a real summary of the full transcript: one sample
  // per query, and its sum is the total number of matched documents.
  auto histogram = aggregate.aggregate().result_size_histogram.Snapshot();
  EXPECT_EQ(histogram.count, 21u);
  EXPECT_EQ(histogram.sum, aggregate.aggregate().matched_total);
}

}  // namespace
}  // namespace dbph
