#include "dbph/scheme.h"

#include <gtest/gtest.h>

#include <set>

#include "crypto/random.h"
#include "swp/search.h"

namespace dbph {
namespace core {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema EmpSchema() {
  auto s = Schema::Create({
      {"name", ValueType::kString, 10},
      {"dept", ValueType::kString, 5},
      {"salary", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation SampleEmp() {
  Relation emp("Emp", EmpSchema());
  EXPECT_TRUE(emp.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                          Value::Int(7500)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Smith"), Value::Str("IT"),
                          Value::Int(4900)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Jones"), Value::Str("HR"),
                          Value::Int(4900)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Brown"), Value::Str("IT"),
                          Value::Int(1200)}).ok());
  return emp;
}

class DatabasePhTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<crypto::HmacDrbg>("dbph-test", 1);
    master_ = GenerateMasterKey(rng_.get());
    auto ph = DatabasePh::Create(EmpSchema(), master_);
    ASSERT_TRUE(ph.ok()) << ph.status();
    ph_ = std::make_unique<DatabasePh>(std::move(*ph));
  }

  std::unique_ptr<crypto::HmacDrbg> rng_;
  Bytes master_;
  std::unique_ptr<DatabasePh> ph_;
};

TEST_F(DatabasePhTest, EncryptDecryptRelationRoundTrip) {
  Relation emp = SampleEmp();
  auto enc = ph_->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok()) << enc.status();
  EXPECT_EQ(enc->size(), emp.size());  // tuple-by-tuple (Definition 1.1)
  auto dec = ph_->DecryptRelation(*enc);
  ASSERT_TRUE(dec.ok()) << dec.status();
  EXPECT_TRUE(dec->SameTuples(emp));
}

// The paper's central correctness property (Definition 1.1, condition 2):
// executing the encrypted query on the ciphertext and decrypting gives
// exactly the plaintext select (after the false-positive filter).
TEST_F(DatabasePhTest, HomomorphismProperty) {
  Relation emp = SampleEmp();
  auto enc = ph_->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok());

  struct Case {
    std::string attr;
    Value value;
  };
  std::vector<Case> cases = {
      {"dept", Value::Str("HR")},      {"dept", Value::Str("IT")},
      {"salary", Value::Int(4900)},    {"salary", Value::Int(7500)},
      {"name", Value::Str("Smith")},   {"dept", Value::Str("XX")},
      {"salary", Value::Int(999999)},
  };
  for (const auto& c : cases) {
    // Plaintext side: sigma(R).
    auto expected = emp.Select(c.attr, c.value);
    ASSERT_TRUE(expected.ok());

    // Ciphertext side: psi(Eq(sigma), E(R)), then D + filter.
    auto query = ph_->EncryptQuery("Emp", c.attr, c.value);
    ASSERT_TRUE(query.ok());
    std::vector<size_t> hits = ExecuteSelect(*enc, *query);
    std::vector<swp::EncryptedDocument> docs;
    for (size_t i : hits) docs.push_back(enc->documents[i]);
    auto actual = ph_->DecryptAndFilter(docs, c.attr, c.value);
    ASSERT_TRUE(actual.ok());

    EXPECT_TRUE(actual->SameTuples(*expected))
        << "sigma_{" << c.attr << "=" << c.value.ToDisplayString() << "}";
  }
}

TEST_F(DatabasePhTest, QueriesAreHidden) {
  auto q1 = ph_->EncryptQuery("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(q1.ok());
  // The trapdoor must not contain the plaintext word "HR####...D".
  std::string target = ToString(q1->trapdoor.target);
  EXPECT_EQ(target.find("HR"), std::string::npos);

  // Same query twice => same trapdoor (Eq is deterministic)...
  auto q2 = ph_->EncryptQuery("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->trapdoor.target, q2->trapdoor.target);
  // ...different value => different trapdoor.
  auto q3 = ph_->EncryptQuery("Emp", "dept", Value::Str("IT"));
  ASSERT_TRUE(q3.ok());
  EXPECT_NE(q1->trapdoor.target, q3->trapdoor.target);
}

TEST_F(DatabasePhTest, EqualTuplesEncryptDifferently) {
  // Tuple-level semantic hiding: identical tuples yield unrelated
  // ciphertext documents (fresh nonce + stream).
  Tuple t({Value::Str("Same"), Value::Str("HR"), Value::Int(1)});
  auto a = ph_->EncryptTuple(t, rng_.get());
  auto b = ph_->EncryptTuple(t, rng_.get());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->nonce, b->nonce);
  for (const auto& wa : a->words) {
    for (const auto& wb : b->words) EXPECT_NE(wa, wb);
  }
}

TEST_F(DatabasePhTest, WrongKeyCannotDecryptOrQuery) {
  Relation emp = SampleEmp();
  auto enc = ph_->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok());

  auto other = DatabasePh::Create(EmpSchema(), ToBytes("wrong master key"));
  ASSERT_TRUE(other.ok());
  // Decryption under the wrong key must fail (garbled ids/types), not
  // silently return plausible tuples.
  size_t failures = 0;
  for (const auto& doc : enc->documents) {
    if (!other->DecryptTuple(doc).ok()) ++failures;
  }
  EXPECT_EQ(failures, enc->documents.size());

  // Queries under the wrong key find nothing.
  auto query = other->EncryptQuery("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(ExecuteSelect(*enc, *query).empty());
}

TEST_F(DatabasePhTest, SchemaMismatchRejected) {
  auto other_schema = Schema::Create({{"x", ValueType::kInt64, 5}});
  ASSERT_TRUE(other_schema.ok());
  Relation r("Other", *other_schema);
  ASSERT_TRUE(r.Insert({Value::Int(1)}).ok());
  EXPECT_FALSE(ph_->EncryptRelation(r, rng_.get()).ok());
  EXPECT_FALSE(ph_->EncryptQuery("Emp", "missing", Value::Int(1)).ok());
  EXPECT_FALSE(ph_->EncryptQuery("Emp", "dept", Value::Int(1)).ok());
}

TEST_F(DatabasePhTest, ConjunctionSelect) {
  Relation emp = SampleEmp();
  auto enc = ph_->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok());
  auto q = ph_->EncryptConjunction(
      "Emp", {{"dept", Value::Str("HR")}, {"salary", Value::Int(4900)}});
  ASSERT_TRUE(q.ok());
  auto hits = ExecuteConjunction(*enc, *q);
  ASSERT_EQ(hits.size(), 1u);
  auto tuple = ph_->DecryptTuple(enc->documents[hits[0]]);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(0), Value::Str("Jones"));
  EXPECT_FALSE(ph_->EncryptConjunction("Emp", {}).ok());
}

TEST_F(DatabasePhTest, SerializationRoundTrip) {
  Relation emp = SampleEmp();
  auto enc = ph_->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok());
  Bytes buf;
  enc->AppendTo(&buf);
  ByteReader reader(buf);
  auto back = EncryptedRelation::ReadFrom(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(reader.AtEnd());
  auto dec = ph_->DecryptRelation(*back);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->SameTuples(emp));

  auto query = ph_->EncryptQuery("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(query.ok());
  Bytes qbuf;
  query->AppendTo(&qbuf);
  ByteReader qreader(qbuf);
  auto qback = EncryptedQuery::ReadFrom(&qreader);
  ASSERT_TRUE(qback.ok());
  EXPECT_EQ(ExecuteSelect(*enc, *qback), ExecuteSelect(*enc, *query));
}

TEST_F(DatabasePhTest, CreateValidatesOptions) {
  EXPECT_FALSE(DatabasePh::Create(EmpSchema(), Bytes{}).ok());
  DbphOptions bad_nonce;
  bad_nonce.nonce_length = 4;
  EXPECT_FALSE(DatabasePh::Create(EmpSchema(), master_, bad_nonce).ok());
  DbphOptions bad_check;
  bad_check.check_length = 50;  // >= word length 11
  EXPECT_FALSE(DatabasePh::Create(EmpSchema(), master_, bad_check).ok());
}

TEST_F(DatabasePhTest, TamperedDocumentsRejected) {
  Relation emp = SampleEmp();
  auto enc = ph_->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok());

  // Flip one ciphertext bit.
  auto tampered = enc->documents[0];
  tampered.words[0][0] ^= 0x01;
  auto dec = ph_->DecryptTuple(tampered);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kDataLoss);

  // Splice: words from one document with another document's nonce+tag.
  auto spliced = enc->documents[0];
  spliced.words = enc->documents[1].words;
  EXPECT_FALSE(ph_->DecryptTuple(spliced).ok());

  // Strip the tag entirely.
  auto stripped = enc->documents[0];
  stripped.tag.clear();
  EXPECT_FALSE(ph_->DecryptTuple(stripped).ok());

  // Untampered documents still decrypt.
  EXPECT_TRUE(ph_->DecryptTuple(enc->documents[0]).ok());
}

TEST_F(DatabasePhTest, AuthenticationCanBeDisabled) {
  DbphOptions options;
  options.authenticate_documents = false;
  auto ph = DatabasePh::Create(EmpSchema(), master_, options);
  ASSERT_TRUE(ph.ok());
  Relation emp = SampleEmp();
  auto enc = ph->EncryptRelation(emp, rng_.get());
  ASSERT_TRUE(enc.ok());
  EXPECT_TRUE(enc->documents[0].tag.empty());
  EXPECT_TRUE(ph->DecryptTuple(enc->documents[0]).ok());
}

// Parameterized over options: the homomorphism must hold for the
// variable-length optimization, unshuffled documents, every usable
// scheme variant, and different check widths.
struct OptionCase {
  std::string name;
  DbphOptions options;
};

class DatabasePhOptions : public ::testing::TestWithParam<OptionCase> {};

TEST_P(DatabasePhOptions, HomomorphismHolds) {
  crypto::HmacDrbg rng("dbph-options", 7);
  Bytes master = GenerateMasterKey(&rng);
  auto ph = DatabasePh::Create(EmpSchema(), master, GetParam().options);
  ASSERT_TRUE(ph.ok()) << ph.status();

  Relation emp = SampleEmp();
  auto enc = ph->EncryptRelation(emp, &rng);
  ASSERT_TRUE(enc.ok());

  auto expected = emp.Select("dept", Value::Str("HR"));
  ASSERT_TRUE(expected.ok());
  auto query = ph->EncryptQuery("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(query.ok());
  std::vector<swp::EncryptedDocument> docs;
  for (size_t i : ExecuteSelect(*enc, *query)) {
    docs.push_back(enc->documents[i]);
  }
  auto actual = ph->DecryptAndFilter(docs, "dept", Value::Str("HR"));
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(actual->SameTuples(*expected));

  // Full decryption must also round-trip.
  auto dec = ph->DecryptRelation(*enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->SameTuples(emp));
}

INSTANTIATE_TEST_SUITE_P(
    Options, DatabasePhOptions,
    ::testing::Values(
        OptionCase{"default", {}},
        OptionCase{"variable_length",
                   {.check_length = 4,
                    .variant = swp::SchemeVariant::kFinal,
                    .variable_length = true}},
        OptionCase{"no_shuffle",
                   {.check_length = 4,
                    .variant = swp::SchemeVariant::kFinal,
                    .variable_length = false,
                    .shuffle_slots = false}},
        OptionCase{"basic_variant",
                   {.check_length = 4,
                    .variant = swp::SchemeVariant::kBasic}},
        OptionCase{"check1", {.check_length = 1}},
        OptionCase{"check8", {.check_length = 8}},
        OptionCase{"variable_no_shuffle_check2",
                   {.check_length = 2,
                    .variant = swp::SchemeVariant::kFinal,
                    .variable_length = true,
                    .shuffle_slots = false}}),
    [](const ::testing::TestParamInfo<OptionCase>& info) {
      return info.param.name;
    });

// Scheme variants II and III cannot decrypt; the database PH must refuse
// to decrypt (not corrupt data) when configured with them.
TEST(DatabasePhVariants, NonDecryptableVariantsFailDecryptionCleanly) {
  crypto::HmacDrbg rng("dbph-variants", 3);
  Bytes master = GenerateMasterKey(&rng);
  for (auto variant :
       {swp::SchemeVariant::kControlled, swp::SchemeVariant::kHidden}) {
    DbphOptions options;
    options.variant = variant;
    auto ph = DatabasePh::Create(EmpSchema(), master, options);
    ASSERT_TRUE(ph.ok());
    Relation emp = SampleEmp();
    auto enc = ph->EncryptRelation(emp, &rng);
    ASSERT_TRUE(enc.ok());
    // Search still works...
    auto query = ph->EncryptQuery("Emp", "dept", Value::Str("HR"));
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(ExecuteSelect(*enc, *query).size(), 2u);
    // ...but decryption reports kUnimplemented.
    auto dec = ph->DecryptTuple(enc->documents[0]);
    EXPECT_FALSE(dec.ok());
    EXPECT_EQ(dec.status().code(), StatusCode::kUnimplemented);
  }
}

// With shuffling enabled the slot order of attributes must actually vary
// across encryptions (documents are sets, not sequences).
TEST(DatabasePhShuffle, SlotOrderVariesAcrossTuples) {
  crypto::HmacDrbg rng("dbph-shuffle", 11);
  Bytes master = GenerateMasterKey(&rng);
  // Variable-length mode makes slot classes visible through lengths, so
  // we can observe the permutation without keys.
  DbphOptions options;
  options.variable_length = true;
  auto ph = DatabasePh::Create(EmpSchema(), master, options);
  ASSERT_TRUE(ph.ok());

  Tuple t({Value::Str("Montgomery"), Value::Str("HR"), Value::Int(7500)});
  std::set<std::vector<size_t>> seen_orders;
  for (int i = 0; i < 64; ++i) {
    auto doc = ph->EncryptTuple(t, &rng);
    ASSERT_TRUE(doc.ok());
    std::vector<size_t> lengths;
    for (const auto& w : doc->words) lengths.push_back(w.size());
    seen_orders.insert(lengths);
  }
  // dept (length 6) can occupy any of 3 slots.
  EXPECT_GE(seen_orders.size(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace dbph
