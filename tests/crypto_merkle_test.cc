// MerkleTree: shape invariants, append/rebuild equivalence, and the
// proof machinery the result-integrity layer stands on. Proof tampering
// must fail closed — these are the primitives the tamper-injection suite
// (tests/integrity_test.cc) exercises end to end.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/random.h"
#include "crypto/sha256.h"

namespace dbph {
namespace {

using crypto::MerkleTree;
using Hash = MerkleTree::Hash;

std::vector<Hash> MakeLeaves(size_t n) {
  std::vector<Hash> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(MerkleTree::LeafHash(ToBytes("leaf-" + std::to_string(i))));
  }
  return leaves;
}

TEST(MerkleTreeTest, EmptyRootIsSha256OfNothing) {
  crypto::Sha256 sha;
  Bytes empty_digest = sha.Finish();
  EXPECT_EQ(MerkleTree::ToBytes(MerkleTree::EmptyRoot()), empty_digest);
  MerkleTree tree;
  EXPECT_EQ(tree.Root(), MerkleTree::EmptyRoot());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(MerkleTreeTest, SingleLeafRootIsTheLeaf) {
  MerkleTree tree;
  Hash leaf = MerkleTree::LeafHash(ToBytes("only"));
  tree.AppendLeaf(leaf);
  EXPECT_EQ(tree.Root(), leaf);
}

TEST(MerkleTreeTest, LeafAndNodeDomainsAreSeparated) {
  // An interior value must not be forgeable as a leaf of concatenated
  // children: LeafHash(l | r) != NodeHash(l, r).
  Hash l = MerkleTree::LeafHash(ToBytes("l"));
  Hash r = MerkleTree::LeafHash(ToBytes("r"));
  Bytes concat;
  concat.insert(concat.end(), l.begin(), l.end());
  concat.insert(concat.end(), r.begin(), r.end());
  EXPECT_NE(MerkleTree::LeafHash(concat), MerkleTree::NodeHash(l, r));
}

TEST(MerkleTreeTest, AppendMatchesBulkAssignAtEverySize) {
  MerkleTree incremental;
  for (size_t n = 1; n <= 40; ++n) {
    std::vector<Hash> leaves = MakeLeaves(n);
    incremental.AppendLeaf(leaves.back());
    MerkleTree bulk;
    bulk.Assign(leaves);
    ASSERT_EQ(incremental.size(), n);
    ASSERT_EQ(incremental.Root(), bulk.Root()) << "n=" << n;
  }
}

TEST(MerkleTreeTest, DistinctLeafSequencesHaveDistinctRoots) {
  // The promotion rule must not let [a, b, c] collide with [a, b, c, c]
  // (the classic duplicate-last-leaf pitfall).
  std::vector<Hash> leaves = MakeLeaves(3);
  MerkleTree three;
  three.Assign(leaves);
  leaves.push_back(leaves.back());
  MerkleTree four;
  four.Assign(leaves);
  EXPECT_NE(three.Root(), four.Root());
}

TEST(MerkleTreeTest, RemoveSortedMatchesRebuildOfSurvivors) {
  std::vector<Hash> leaves = MakeLeaves(17);
  MerkleTree tree;
  tree.Assign(leaves);
  std::vector<uint64_t> removed = {0, 3, 4, 11, 16};
  tree.RemoveSorted(removed);

  std::vector<Hash> survivors;
  size_t next = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (next < removed.size() && removed[next] == i) {
      ++next;
      continue;
    }
    survivors.push_back(leaves[i]);
  }
  MerkleTree rebuilt;
  rebuilt.Assign(survivors);
  EXPECT_EQ(tree.size(), survivors.size());
  EXPECT_EQ(tree.Root(), rebuilt.Root());
}

TEST(MerkleTreeTest, InclusionProofsVerifyForEveryLeafAtEverySize) {
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 33u}) {
    std::vector<Hash> leaves = MakeLeaves(n);
    MerkleTree tree;
    tree.Assign(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto path = tree.InclusionProof(i);
      EXPECT_TRUE(MerkleTree::VerifyInclusion(tree.Root(), n, i, leaves[i],
                                              path)
                      .ok())
          << "n=" << n << " i=" << i;
      // The same path must not vouch for a different leaf or position.
      Hash other = MerkleTree::LeafHash(ToBytes("not-a-leaf"));
      EXPECT_FALSE(
          MerkleTree::VerifyInclusion(tree.Root(), n, i, other, path).ok());
      if (n > 1) {
        EXPECT_FALSE(MerkleTree::VerifyInclusion(tree.Root(), n, (i + 1) % n,
                                                 leaves[i], path)
                         .ok());
      }
    }
  }
}

TEST(MerkleTreeTest, SubsetProofsVerifyAcrossSizesAndSelections) {
  crypto::HmacDrbg rng("merkle-subset", 7);
  for (size_t n : {1u, 2u, 7u, 16u, 31u, 64u, 100u}) {
    std::vector<Hash> leaves = MakeLeaves(n);
    MerkleTree tree;
    tree.Assign(leaves);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<uint64_t> positions;
      std::vector<Hash> selected;
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextBelow(3) == 0) {
          positions.push_back(i);
          selected.push_back(leaves[i]);
        }
      }
      auto proof = tree.SubsetProof(positions);
      auto root =
          MerkleTree::RootFromSubset(n, positions, selected, proof);
      ASSERT_TRUE(root.ok()) << root.status();
      EXPECT_EQ(*root, tree.Root()) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(MerkleTreeTest, FullRangeSubsetProofIsEmptyAndComplete) {
  // positions = [0, n): the completeness shape — no siblings needed, the
  // fold IS the rebuild, and any withheld leaf changes the root.
  size_t n = 23;
  std::vector<Hash> leaves = MakeLeaves(n);
  MerkleTree tree;
  tree.Assign(leaves);
  std::vector<uint64_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  auto proof = tree.SubsetProof(all);
  EXPECT_TRUE(proof.empty());
  auto root = MerkleTree::RootFromSubset(n, all, leaves, proof);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, tree.Root());
}

TEST(MerkleTreeTest, TamperedSubsetsFailClosed) {
  size_t n = 20;
  std::vector<Hash> leaves = MakeLeaves(n);
  MerkleTree tree;
  tree.Assign(leaves);
  std::vector<uint64_t> positions = {2, 5, 9, 13};
  std::vector<Hash> selected = {leaves[2], leaves[5], leaves[9], leaves[13]};
  auto proof = tree.SubsetProof(positions);
  ASSERT_EQ(*MerkleTree::RootFromSubset(n, positions, selected, proof),
            tree.Root());

  // Dropped row (leaf + position removed, proof untouched).
  {
    std::vector<uint64_t> p = {2, 5, 9};
    std::vector<Hash> s = {leaves[2], leaves[5], leaves[9]};
    auto r = MerkleTree::RootFromSubset(n, p, s, proof);
    EXPECT_TRUE(!r.ok() || *r != tree.Root());
  }
  // Substituted row.
  {
    std::vector<Hash> s = selected;
    s[1] = MerkleTree::LeafHash(ToBytes("forged"));
    auto r = MerkleTree::RootFromSubset(n, positions, s, proof);
    EXPECT_TRUE(!r.ok() || *r != tree.Root());
  }
  // Reordered rows (leaves swapped under the same positions).
  {
    std::vector<Hash> s = selected;
    std::swap(s[0], s[3]);
    auto r = MerkleTree::RootFromSubset(n, positions, s, proof);
    EXPECT_TRUE(!r.ok() || *r != tree.Root());
  }
  // Truncated / padded proof.
  {
    auto short_proof = proof;
    short_proof.pop_back();
    EXPECT_FALSE(
        MerkleTree::RootFromSubset(n, positions, selected, short_proof).ok());
    auto long_proof = proof;
    long_proof.push_back(MerkleTree::EmptyRoot());
    EXPECT_FALSE(
        MerkleTree::RootFromSubset(n, positions, selected, long_proof).ok());
  }
  // Unsorted or out-of-range positions are rejected before any hashing.
  {
    std::vector<uint64_t> p = {5, 2, 9, 13};
    EXPECT_FALSE(MerkleTree::RootFromSubset(n, p, selected, proof).ok());
    p = {2, 5, 9, 99};
    EXPECT_FALSE(MerkleTree::RootFromSubset(n, p, selected, proof).ok());
  }
}

TEST(MerkleTreeTest, HostileTreeSizeCannotCauseBlowup) {
  // tree_size is attacker-controlled at verification time: a huge claim
  // with a tiny proof must fail fast (no allocation scales with it).
  std::vector<uint64_t> positions = {0};
  std::vector<Hash> leaves = {MerkleTree::LeafHash(ToBytes("x"))};
  std::vector<Hash> proof;  // far too few siblings for 2^60 leaves
  auto r = MerkleTree::RootFromSubset(uint64_t{1} << 60, positions, leaves,
                                      proof);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dbph
