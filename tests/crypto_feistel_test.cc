#include "crypto/feistel.h"

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "crypto/random.h"

namespace dbph {
namespace crypto {
namespace {

TEST(FeistelTest, RoundTripAllSmallLengths) {
  FeistelPrp prp(ToBytes("feistel key"));
  HmacDrbg rng("feistel-roundtrip", 11);
  for (size_t len = 2; len <= 64; ++len) {
    Bytes pt = rng.NextBytes(len);
    auto ct = prp.Encrypt(pt);
    ASSERT_TRUE(ct.ok()) << "len " << len;
    EXPECT_EQ(ct->size(), len);
    auto back = prp.Decrypt(*ct);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, pt) << "len " << len;
  }
}

TEST(FeistelTest, RejectsTooShort) {
  FeistelPrp prp(ToBytes("k"));
  EXPECT_FALSE(prp.Encrypt(Bytes{0x01}).ok());
  EXPECT_FALSE(prp.Encrypt(Bytes{}).ok());
  EXPECT_FALSE(prp.Decrypt(Bytes{0x01}).ok());
}

TEST(FeistelTest, Deterministic) {
  FeistelPrp prp(ToBytes("k"));
  Bytes pt = ToBytes("determinism!");
  EXPECT_EQ(*prp.Encrypt(pt), *prp.Encrypt(pt));
}

TEST(FeistelTest, KeySeparation) {
  FeistelPrp a(ToBytes("key-a"));
  FeistelPrp b(ToBytes("key-b"));
  Bytes pt = ToBytes("same plaintext");
  EXPECT_NE(*a.Encrypt(pt), *b.Encrypt(pt));
}

// A permutation on a tiny domain must be injective: enumerate all 2-byte
// inputs over a restricted alphabet and require distinct outputs.
TEST(FeistelTest, InjectiveOnSampledDomain) {
  FeistelPrp prp(ToBytes("injectivity"));
  std::set<Bytes> images;
  int count = 0;
  for (int a = 0; a < 64; ++a) {
    for (int b = 0; b < 64; ++b) {
      Bytes pt = {static_cast<uint8_t>(a), static_cast<uint8_t>(b)};
      auto ct = prp.Encrypt(pt);
      ASSERT_TRUE(ct.ok());
      images.insert(*ct);
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(images.size()), count);
}

// Avalanche: flipping one plaintext bit should change roughly half the
// ciphertext bits on average. We accept a generous band.
TEST(FeistelTest, Avalanche) {
  FeistelPrp prp(ToBytes("avalanche"));
  HmacDrbg rng("avalanche", 3);
  const size_t len = 16;
  int total_bits = 0;
  int flipped_bits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes pt = rng.NextBytes(len);
    Bytes pt2 = pt;
    size_t byte = rng.NextBelow(len);
    pt2[byte] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    Bytes d = Xor(*prp.Encrypt(pt), *prp.Encrypt(pt2));
    for (uint8_t x : d) flipped_bits += __builtin_popcount(x);
    total_bits += static_cast<int>(len) * 8;
  }
  double ratio = static_cast<double>(flipped_bits) / total_bits;
  EXPECT_GT(ratio, 0.40);
  EXPECT_LT(ratio, 0.60);
}

TEST(FeistelTest, OddLengthsRoundTrip) {
  FeistelPrp prp(ToBytes("odd"));
  for (size_t len : {3u, 5u, 7u, 9u, 11u, 13u, 33u, 63u}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) pt[i] = static_cast<uint8_t>(i * 7 + 1);
    auto ct = prp.Encrypt(pt);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(*prp.Decrypt(*ct), pt);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
