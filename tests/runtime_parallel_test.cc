// The parallel batch runtime must be a pure performance feature: batched
// and sharded execution has to produce byte-identical results and an
// unchanged observation log relative to one-at-a-time selects, under any
// thread/shard configuration and under concurrent clients.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "dbph/scheme.h"
#include "protocol/messages.h"
#include "server/runtime/batch_executor.h"
#include "server/runtime/sharded_relation.h"
#include "server/runtime/thread_pool.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema TableSchema() {
  auto s = Schema::Create({
      {"key", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

/// `n` rows, grp = i % 10 (each group matches n/10 rows).
Relation BuildTable(size_t n) {
  Relation table("T", TableSchema());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(table.Insert({Value::Str("k" + std::to_string(i)),
                              Value::Int(static_cast<int64_t>(i % 10))})
                    .ok());
  }
  return table;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  server::runtime::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForFromWithinATaskDoesNotDeadlock) {
  server::runtime::ThreadPool pool(2);
  std::atomic<int> total{0};
  // Nested waves: the outer caller participates, so even a fully busy
  // pool makes progress.
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ShardedRelationTest, AnyShardCountReproducesSequentialScan) {
  crypto::HmacDrbg rng("sharded", 1);
  auto ph = core::DatabasePh::Create(TableSchema(), ToBytes("key"));
  ASSERT_TRUE(ph.ok());
  auto encrypted = ph->EncryptRelation(BuildTable(101), &rng);
  ASSERT_TRUE(encrypted.ok());

  storage::HeapFile heap;
  std::vector<storage::RecordId> records;
  for (const auto& doc : encrypted->documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    records.push_back(heap.Insert(serialized));
  }
  auto query = ph->EncryptQuery("T", "grp", Value::Int(3));
  ASSERT_TRUE(query.ok());

  // Baseline: a single shard is by construction the sequential scan.
  server::runtime::ShardedRelation whole(&heap, &records,
                                         encrypted->check_length, 1);
  std::vector<server::runtime::ShardMatch> expected;
  ASSERT_TRUE(whole.ScanShard(0, query->trapdoor, &expected).ok());
  ASSERT_FALSE(expected.empty());

  for (size_t shards : {2u, 3u, 7u, 101u, 500u}) {
    server::runtime::ShardedRelation view(&heap, &records,
                                          encrypted->check_length, shards);
    EXPECT_LE(view.num_shards(), records.size());
    std::vector<server::runtime::ShardMatch> got;
    for (size_t s = 0; s < view.num_shards(); ++s) {
      ASSERT_TRUE(view.ScanShard(s, query->trapdoor, &got).ok());
    }
    ASSERT_EQ(got.size(), expected.size()) << shards << " shards";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].rid, expected[i].rid);
      Bytes a, b;
      got[i].doc.AppendTo(&a);
      expected[i].doc.AppendTo(&b);
      EXPECT_EQ(a, b);
    }
  }
}

/// Deploys one (server, client) pair over deterministic randomness so two
/// deployments hold byte-identical ciphertext.
struct Deployment {
  explicit Deployment(server::ServerRuntimeOptions options = {})
      : server(options),
        rng("parallel-fixture", 7),
        client(ToBytes("master"),
               [this](const Bytes& request) {
                 return server.HandleRequest(request);
               },
               &rng) {}

  server::UntrustedServer server;
  crypto::HmacDrbg rng;
  client::Client client;
};

TEST(BatchSelectTest, BatchedResultsAndLogMatchSequential) {
  server::ServerRuntimeOptions parallel;
  parallel.num_threads = 4;
  Deployment seq;        // default runtime
  Deployment par(parallel);
  Relation table = BuildTable(200);
  ASSERT_TRUE(seq.client.Outsource(table).ok());
  ASSERT_TRUE(par.client.Outsource(table).ok());

  std::vector<std::pair<std::string, Value>> queries;
  for (int g = 0; g < 10; ++g) queries.emplace_back("grp", Value::Int(g));

  // Sequential baseline: one Select per query.
  std::vector<Relation> expected;
  for (const auto& [attribute, value] : queries) {
    auto r = seq.client.Select("T", attribute, value);
    ASSERT_TRUE(r.ok()) << r.status();
    expected.push_back(std::move(*r));
  }
  // One batched round trip.
  auto got = par.client.SelectBatch("T", queries);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i].size(), expected[i].size()) << "query " << i;
    EXPECT_TRUE((*got)[i].SameTuples(expected[i])) << "query " << i;
  }

  // Eve's view is unchanged: same number of query observations, and the
  // matched identities per query are identical (ciphertexts are
  // byte-identical across the two deployments by DRBG construction).
  const auto& seq_log = seq.server.observations().queries();
  const auto& par_log = par.server.observations().queries();
  ASSERT_EQ(par_log.size(), seq_log.size());
  for (size_t i = 0; i < seq_log.size(); ++i) {
    EXPECT_EQ(par_log[i].relation, seq_log[i].relation);
    EXPECT_EQ(par_log[i].trapdoor_bytes, seq_log[i].trapdoor_bytes);
    EXPECT_EQ(par_log[i].matched_records, seq_log[i].matched_records);
  }
}

TEST(BatchSelectTest, UnknownRelationFailsBatchWithoutLogging) {
  Deployment d;
  ASSERT_TRUE(d.client.Outsource(BuildTable(10)).ok());
  size_t before = d.server.observations().queries().size();
  EXPECT_FALSE(d.client.SelectBatch("Nope", {{"grp", Value::Int(1)}}).ok());
  EXPECT_EQ(d.server.observations().queries().size(), before);
}

TEST(BatchSelectTest, MixedBatchExecutesInOrder) {
  // A delete between two selects of the same value must act as a
  // barrier: the first select sees the rows, the second does not.
  Deployment d;
  ASSERT_TRUE(d.client.Outsource(BuildTable(50)).ok());
  auto scheme = d.client.SchemeFor("T");
  ASSERT_TRUE(scheme.ok());
  auto query = (*scheme)->EncryptQuery("T", "grp", Value::Int(4));
  ASSERT_TRUE(query.ok());

  protocol::Envelope select;
  select.type = protocol::MessageType::kSelect;
  query->AppendTo(&select.payload);
  protocol::Envelope del;
  del.type = protocol::MessageType::kDeleteWhere;
  query->AppendTo(&del.payload);

  protocol::Envelope batch;
  batch.type = protocol::MessageType::kBatchRequest;
  batch.payload = protocol::SerializeBatchPayload({select, del, select});
  auto response = protocol::Envelope::Parse(
      d.server.HandleRequest(batch.Serialize()));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->type, protocol::MessageType::kBatchResponse);
  auto replies = protocol::ParseBatchPayload(response->payload);
  ASSERT_TRUE(replies.ok()) << replies.status();
  ASSERT_EQ(replies->size(), 3u);

  EXPECT_EQ((*replies)[0].type, protocol::MessageType::kSelectResult);
  EXPECT_EQ((*replies)[1].type, protocol::MessageType::kDeleteResult);
  EXPECT_EQ((*replies)[2].type, protocol::MessageType::kSelectResult);
  ByteReader first((*replies)[0].payload);
  ByteReader last((*replies)[2].payload);
  EXPECT_EQ(*first.ReadUint32(), 5u);  // 50 rows, grp = i % 10
  EXPECT_EQ(*last.ReadUint32(), 0u);   // deleted in between
}

TEST(BatchSelectTest, ConcurrentBatchedClientsMatchSequentialBaseline) {
  // N threads x M batched selects against one server; every result must
  // equal the sequential baseline and the log must hold exactly one
  // entry per executed query.
  constexpr size_t kThreads = 4;
  constexpr size_t kBatchesPerThread = 3;

  server::ServerRuntimeOptions options;
  options.num_threads = 2;
  Deployment d(options);
  Relation table = BuildTable(120);
  ASSERT_TRUE(d.client.Outsource(table).ok());

  std::vector<std::pair<std::string, Value>> queries;
  for (int g = 0; g < 10; ++g) queries.emplace_back("grp", Value::Int(g));
  std::vector<Relation> baseline;
  for (const auto& [attribute, value] : queries) {
    auto r = table.Select(attribute, value);
    ASSERT_TRUE(r.ok());
    baseline.push_back(std::move(*r));
  }
  size_t queries_before = d.server.observations().queries().size();

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t m = 0; m < kBatchesPerThread; ++m) {
        auto got = d.client.SelectBatch("T", queries);
        if (!got.ok() || got->size() != baseline.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < baseline.size(); ++i) {
          if (!(*got)[i].SameTuples(baseline[i])) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(d.server.observations().queries().size(),
            queries_before + kThreads * kBatchesPerThread * queries.size());
}

TEST(BatchExecutorTest, NullPoolRunsInlineAndNullViewsAreSkipped) {
  crypto::HmacDrbg rng("executor", 2);
  auto ph = core::DatabasePh::Create(TableSchema(), ToBytes("key"));
  ASSERT_TRUE(ph.ok());
  auto encrypted = ph->EncryptRelation(BuildTable(30), &rng);
  ASSERT_TRUE(encrypted.ok());
  storage::HeapFile heap;
  std::vector<storage::RecordId> records;
  for (const auto& doc : encrypted->documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    records.push_back(heap.Insert(serialized));
  }
  server::runtime::ShardedRelation view(&heap, &records,
                                        encrypted->check_length, 3);
  auto query = ph->EncryptQuery("T", "grp", Value::Int(1));
  ASSERT_TRUE(query.ok());

  server::runtime::BatchExecutor executor(nullptr);
  std::vector<server::runtime::SelectJob> jobs(2);
  jobs[0].view = &view;
  jobs[0].trapdoor = &query->trapdoor;
  // jobs[1] stays unresolved (null view).
  auto outcomes = executor.ExecuteSelects(jobs);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].matches.size(), 3u);  // 30 rows, grp = i % 10
  EXPECT_TRUE(outcomes[1].matches.empty());
}

}  // namespace
}  // namespace dbph
