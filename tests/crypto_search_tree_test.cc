// SearchTree: the sorted (trapdoor-tag -> posting-list) commitment that
// select completeness proofs are built from. Model-based property tests:
// random Assign / append-delta / delete sequences are mirrored into a
// std::map reference model, and after every edit the tree must stay
// sorted, equal the model entry for entry, and produce membership and
// non-membership proofs that verify — while every forged shape (tampered
// digests, non-adjacent neighbors, brackets around a present tag) fails
// closed. These are the invariants the Enforce-mode client stakes its
// completeness verdicts on (tests/integrity_test.cc exercises them end
// to end through a dishonest server).

#include "crypto/search_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/random.h"

namespace dbph {
namespace {

using crypto::SearchTree;
using Entry = SearchTree::Entry;
using Hash = SearchTree::Hash;
using Neighbor = SearchTree::Neighbor;

/// Reference model: tag -> posting list. std::map's std::less on
/// std::array is the same lexicographic order SearchTree sorts by.
using Model = std::map<Hash, std::vector<uint64_t>>;

/// Deterministic tag universe. Ids below kAbsentBase are candidates for
/// insertion; ids at or above it are never inserted, so they make
/// guaranteed-absent probes.
constexpr uint64_t kAbsentBase = 1u << 20;

Hash TagFor(uint64_t id) {
  return SearchTree::TagDigest(ToBytes("tag-" + std::to_string(id)));
}

std::vector<Entry> ModelEntries(const Model& model) {
  std::vector<Entry> entries;
  entries.reserve(model.size());
  for (const auto& [tag, positions] : model) {
    entries.push_back({tag, positions});
  }
  return entries;
}

/// The tree must equal the model entry for entry, stay strictly sorted,
/// and carry the same root a from-scratch Assign of the model would —
/// i.e. incremental edits and bulk rebuild commit to identical state.
void ExpectTreeMatchesModel(const SearchTree& tree, const Model& model,
                            uint64_t num_positions) {
  ASSERT_EQ(tree.size(), model.size());
  size_t i = 0;
  for (const auto& [tag, positions] : model) {
    ASSERT_EQ(tree.entry(i).tag, tag) << "entry " << i;
    ASSERT_EQ(tree.entry(i).positions, positions) << "entry " << i;
    ++i;
  }
  for (size_t j = 1; j < tree.size(); ++j) {
    ASSERT_TRUE(tree.entry(j - 1).tag < tree.entry(j).tag) << "entry " << j;
  }
  SearchTree bulk;
  ASSERT_TRUE(bulk.Assign(ModelEntries(model), num_positions).ok());
  EXPECT_EQ(tree.Root(), bulk.Root());
}

/// Every committed entry must prove membership against the root, and the
/// proof must not vouch for a tampered posting digest or another index.
void ExpectMembershipProofsVerify(const SearchTree& tree) {
  const Hash root = tree.Root();
  const uint64_t n = tree.size();
  for (size_t i = 0; i < n; ++i) {
    const Entry& entry = tree.entry(i);
    const Hash digest = SearchTree::PostingDigest(entry.positions);
    auto path = tree.MembershipPath(i);
    EXPECT_TRUE(
        SearchTree::VerifyMember(root, n, i, entry.tag, digest, path).ok())
        << "entry " << i;

    Hash forged = digest;
    forged[0] ^= 0x01;
    EXPECT_FALSE(
        SearchTree::VerifyMember(root, n, i, entry.tag, forged, path).ok());
    if (n > 1) {
      EXPECT_FALSE(SearchTree::VerifyMember(root, n, (i + 1) % n, entry.tag,
                                            digest, path)
                       .ok());
    }
  }
}

/// Absent tags must carry verifying non-membership proofs; present tags
/// must have none (the empty shape is rejected for a non-empty tree).
void ExpectNonMembershipProofsVerify(const SearchTree& tree,
                                     const Model& model, crypto::Rng* rng) {
  const Hash root = tree.Root();
  const uint64_t n = tree.size();
  for (int probe = 0; probe < 8; ++probe) {
    Hash absent = TagFor(kAbsentBase + rng->NextBelow(1000));
    if (model.count(absent) != 0) continue;  // unreachable by construction
    auto neighbors = tree.NonMembershipProof(absent);
    EXPECT_TRUE(SearchTree::VerifyNonMember(root, n, absent, neighbors).ok())
        << "absent probe " << probe;
  }
  for (const auto& [tag, positions] : model) {
    auto neighbors = tree.NonMembershipProof(tag);
    EXPECT_TRUE(neighbors.empty());
    if (n > 0) {
      EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, tag, neighbors).ok());
    }
  }
}

/// One random edit: an append delta (fresh position range, mix of new
/// and already-present tags) or a delete (random sorted position
/// subset), applied to tree and model alike.
void RandomEdit(SearchTree* tree, Model* model, uint64_t* num_positions,
                crypto::Rng* rng) {
  const bool append = model->empty() || *num_positions == 0 || rng->NextBool();
  if (append) {
    const uint64_t begin = *num_positions;
    const uint64_t appended = 1 + rng->NextBelow(6);
    const uint64_t end = begin + appended;
    Model delta_model;
    for (uint64_t position = begin; position < end; ++position) {
      // Each appended position lands in 1-3 posting lists (a row matches
      // one tag per attribute in the real mapping).
      const uint64_t tags = 1 + rng->NextBelow(3);
      for (uint64_t t = 0; t < tags; ++t) {
        Hash tag = TagFor(rng->NextBelow(40));
        auto& positions = delta_model[tag];
        if (positions.empty() || positions.back() != position) {
          positions.push_back(position);
        }
      }
    }
    ASSERT_TRUE(
        tree->ApplyAppendDelta(ModelEntries(delta_model), begin, end).ok());
    for (auto& [tag, positions] : delta_model) {
      auto& committed = (*model)[tag];
      committed.insert(committed.end(), positions.begin(), positions.end());
    }
    *num_positions = end;
    return;
  }

  std::vector<uint64_t> removed;
  for (uint64_t position = 0; position < *num_positions; ++position) {
    if (rng->NextBelow(4) == 0) removed.push_back(position);
  }
  tree->ApplyDelete(removed);
  Model survivors;
  for (auto& [tag, positions] : *model) {
    std::vector<uint64_t> kept;
    for (uint64_t position : positions) {
      auto it = std::lower_bound(removed.begin(), removed.end(), position);
      if (it != removed.end() && *it == position) continue;
      kept.push_back(position - static_cast<uint64_t>(it - removed.begin()));
    }
    if (!kept.empty()) survivors[tag] = std::move(kept);
  }
  *model = std::move(survivors);
  *num_positions -= removed.size();
}

TEST(SearchTreeTest, EmptyTreeProvesAbsenceWithTheRootAlone) {
  SearchTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Root(), crypto::MerkleTree::EmptyRoot());
  Hash tag = TagFor(kAbsentBase);
  auto neighbors = tree.NonMembershipProof(tag);
  EXPECT_TRUE(neighbors.empty());
  EXPECT_TRUE(SearchTree::VerifyNonMember(tree.Root(), 0, tag, neighbors).ok());
  // Claiming a neighbor inside an empty tree is a forgery.
  neighbors.push_back(Neighbor{});
  EXPECT_FALSE(
      SearchTree::VerifyNonMember(tree.Root(), 0, tag, neighbors).ok());
}

TEST(SearchTreeTest, ZeroTreeSizeAgainstNonEmptyRootIsRejected) {
  // tree_size travels on the wire unsigned; only the root is covered by
  // the owner's attestation. A server replaying a genuinely signed
  // non-empty root with tree_size=0 and no neighbors must not get
  // "absent" accepted for a committed tag.
  Model model;
  model[TagFor(1)] = {0};
  model[TagFor(2)] = {1, 2};
  SearchTree tree;
  ASSERT_TRUE(tree.Assign(ModelEntries(model), 3).ok());
  ASSERT_NE(tree.Root(), crypto::MerkleTree::EmptyRoot());
  EXPECT_FALSE(
      SearchTree::VerifyNonMember(tree.Root(), 0, TagFor(1), {}).ok());
  EXPECT_FALSE(
      SearchTree::VerifyNonMember(tree.Root(), 0, TagFor(kAbsentBase), {})
          .ok());
}

TEST(SearchTreeTest, RandomAssignKeepsSortedOrderAndAllProofsVerify) {
  crypto::HmacDrbg rng("search-tree-assign", 11);
  for (int trial = 0; trial < 12; ++trial) {
    const uint64_t num_positions = 1 + rng.NextBelow(48);
    Model model;
    for (uint64_t position = 0; position < num_positions; ++position) {
      Hash tag = TagFor(rng.NextBelow(24));
      auto& positions = model[tag];
      if (positions.empty() || positions.back() != position) {
        positions.push_back(position);
      }
    }
    SearchTree tree;
    ASSERT_TRUE(tree.Assign(ModelEntries(model), num_positions).ok());
    ExpectTreeMatchesModel(tree, model, num_positions);
    ExpectMembershipProofsVerify(tree);
    ExpectNonMembershipProofsVerify(tree, model, &rng);
    // Find agrees with the model on presence and contents.
    for (const auto& [tag, positions] : model) {
      const Entry* found = tree.Find(tag);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->positions, positions);
    }
    EXPECT_EQ(tree.Find(TagFor(kAbsentBase + trial)), nullptr);
  }
}

TEST(SearchTreeTest, RandomEditSequencesTrackTheModel) {
  // The workload shape the client mirror and the server tree both see:
  // interleaved appends and deletes from empty, with full proof checks
  // at every committed state.
  crypto::HmacDrbg rng("search-tree-edits", 23);
  for (int trial = 0; trial < 4; ++trial) {
    SearchTree tree;
    Model model;
    uint64_t num_positions = 0;
    for (int op = 0; op < 32; ++op) {
      RandomEdit(&tree, &model, &num_positions, &rng);
      ASSERT_NO_FATAL_FAILURE(
          ExpectTreeMatchesModel(tree, model, num_positions))
          << "trial " << trial << " op " << op;
      ExpectMembershipProofsVerify(tree);
      ExpectNonMembershipProofsVerify(tree, model, &rng);
    }
  }
}

TEST(SearchTreeTest, NonMembershipShapesAndForgeriesFailClosed) {
  // Fixed five-entry tree; probe tags land before the first entry, after
  // the last, and between two committed entries.
  std::vector<uint64_t> ids = {10, 20, 30, 40, 50};
  Model model;
  for (size_t i = 0; i < ids.size(); ++i) model[TagFor(ids[i])] = {i};
  SearchTree tree;
  ASSERT_TRUE(tree.Assign(ModelEntries(model), ids.size()).ok());
  const Hash root = tree.Root();
  const uint64_t n = tree.size();

  // A probe below the smallest committed tag: one boundary neighbor.
  // The all-zero hash sorts below any SHA-256 tag the tree can hold.
  Hash before{};
  ASSERT_TRUE(before < tree.entry(0).tag);
  auto low_proof = tree.NonMembershipProof(before);
  ASSERT_EQ(low_proof.size(), 1u);
  EXPECT_EQ(low_proof[0].index, 0u);
  EXPECT_TRUE(SearchTree::VerifyNonMember(root, n, before, low_proof).ok());

  // A probe above the largest: one boundary neighbor at the far end.
  Hash after;
  after.fill(0xff);
  ASSERT_TRUE(tree.entry(n - 1).tag < after);
  auto high_proof = tree.NonMembershipProof(after);
  ASSERT_EQ(high_proof.size(), 1u);
  EXPECT_EQ(high_proof[0].index, n - 1);
  EXPECT_TRUE(SearchTree::VerifyNonMember(root, n, after, high_proof).ok());

  // A probe strictly between two committed tags: adjacent pair.
  Hash between = tree.entry(2).tag;
  size_t byte = 31;
  while (byte > 0 && between[byte] == 0xff) --byte;
  between[byte] += 1;
  ASSERT_TRUE(tree.entry(2).tag < between);
  ASSERT_TRUE(tree.Find(between) == nullptr);
  auto mid_proof = tree.NonMembershipProof(between);
  if (between < tree.entry(n - 1).tag) {
    ASSERT_EQ(mid_proof.size(), 2u);
    EXPECT_EQ(mid_proof[0].index + 1, mid_proof[1].index);
  }
  EXPECT_TRUE(SearchTree::VerifyNonMember(root, n, between, mid_proof).ok());

  // Forgeries around a PRESENT tag. The honest brackets are (i-1, i) and
  // (i, i+1) — both contain the tag itself, so a lying server must either
  // break adjacency or break the strict ordering. Both must fail.
  const Hash present = tree.entry(2).tag;
  const auto neighbor_at = [&](size_t i) {
    Neighbor neighbor;
    neighbor.index = i;
    neighbor.tag = tree.entry(i).tag;
    neighbor.posting_digest = SearchTree::PostingDigest(tree.entry(i).positions);
    neighbor.path = tree.MembershipPath(i);
    return neighbor;
  };
  {
    // Skip over the entry: genuine leaves, indices 1 and 3 not adjacent.
    std::vector<Neighbor> skip = {neighbor_at(1), neighbor_at(3)};
    EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, present, skip).ok());
  }
  {
    // Adjacent pair (1, 2): high.tag == present breaks strict ordering.
    std::vector<Neighbor> touch = {neighbor_at(1), neighbor_at(2)};
    EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, present, touch).ok());
  }
  {
    // Boundary claim for an interior tag.
    std::vector<Neighbor> boundary = {neighbor_at(0)};
    EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, present, boundary).ok());
    std::vector<Neighbor> tail = {neighbor_at(n - 1)};
    EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, present, tail).ok());
  }
  {
    // Over-long neighbor lists are rejected outright.
    std::vector<Neighbor> three = {neighbor_at(1), neighbor_at(2),
                                   neighbor_at(3)};
    EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, present, three).ok());
  }
  {
    // A genuine absent-tag proof whose neighbor leaf was tampered.
    auto forged = mid_proof;
    ASSERT_FALSE(forged.empty());
    forged[0].posting_digest[0] ^= 0x01;
    EXPECT_FALSE(SearchTree::VerifyNonMember(root, n, between, forged).ok());
  }
}

TEST(SearchTreeTest, MalformedInputIsRejectedWithoutStateChange) {
  Model model;
  model[TagFor(1)] = {0, 2};
  model[TagFor(2)] = {1};
  SearchTree tree;
  ASSERT_TRUE(tree.Assign(ModelEntries(model), 3).ok());
  const Hash root = tree.Root();

  // Assign: unsorted tags, duplicate tags, empty posting list, position
  // out of range, positions not strictly increasing.
  {
    SearchTree fresh;
    std::vector<Entry> unsorted = ModelEntries(model);
    std::swap(unsorted[0], unsorted[1]);
    EXPECT_FALSE(fresh.Assign(unsorted, 3).ok());
    std::vector<Entry> duplicate = {{TagFor(1), {0}}, {TagFor(1), {1}}};
    EXPECT_FALSE(fresh.Assign(duplicate, 3).ok());
    std::vector<Entry> empty_list = {{TagFor(1), {}}};
    EXPECT_FALSE(fresh.Assign(empty_list, 3).ok());
    std::vector<Entry> out_of_range = {{TagFor(1), {3}}};
    EXPECT_FALSE(fresh.Assign(out_of_range, 3).ok());
    std::vector<Entry> not_increasing = {{TagFor(1), {1, 1}}};
    EXPECT_FALSE(fresh.Assign(not_increasing, 3).ok());
  }

  // Deltas: same malformations plus positions outside [begin, end). A
  // rejected delta must leave the committed state untouched.
  {
    std::vector<Entry> below = {{TagFor(3), {2}}};
    EXPECT_FALSE(tree.ApplyAppendDelta(below, 3, 5).ok());
    std::vector<Entry> above = {{TagFor(3), {5}}};
    EXPECT_FALSE(tree.ApplyAppendDelta(above, 3, 5).ok());
    std::vector<Entry> unsorted = {{TagFor(2), {3}}, {TagFor(1), {4}}};
    if (TagFor(1) < TagFor(2)) {
      EXPECT_FALSE(tree.ApplyAppendDelta(unsorted, 3, 5).ok());
    } else {
      std::swap(unsorted[0], unsorted[1]);
      EXPECT_FALSE(tree.ApplyAppendDelta(unsorted, 3, 5).ok());
    }
    std::vector<Entry> empty_list = {{TagFor(3), {}}};
    EXPECT_FALSE(tree.ApplyAppendDelta(empty_list, 3, 5).ok());
    EXPECT_EQ(tree.Root(), root);
    EXPECT_EQ(tree.size(), 2u);
  }

  // And a well-formed delta still applies after the rejections.
  {
    std::vector<Entry> good = {{TagFor(5), {3, 4}}};
    ASSERT_TRUE(tree.ApplyAppendDelta(good, 3, 5).ok());
    const Entry* found = tree.Find(TagFor(5));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->positions, (std::vector<uint64_t>{3, 4}));
    EXPECT_NE(tree.Root(), root);
  }
}

TEST(SearchTreeTest, TagAndPostingDomainsAreSeparated) {
  // TagDigest and PostingDigest over "the same bytes" must never agree —
  // a tag cannot be replayed as a posting commitment or vice versa.
  Bytes bytes = ToBytes("identical-input");
  Hash tag = SearchTree::TagDigest(bytes);
  std::vector<uint64_t> as_positions(bytes.begin(), bytes.end());
  EXPECT_NE(tag, SearchTree::PostingDigest(as_positions));
  // Posting digests are length-prefixed: {1} and {1, anything-prefix}
  // style ambiguities cannot collide.
  EXPECT_NE(SearchTree::PostingDigest({1}), SearchTree::PostingDigest({1, 2}));
}

}  // namespace
}  // namespace dbph
