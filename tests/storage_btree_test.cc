#include "storage/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bytes.h"
#include "crypto/random.h"

namespace dbph {
namespace storage {
namespace {

Bytes Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return ToBytes(buf);
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree(4);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Lookup(Key(1)).empty());
  EXPECT_FALSE(tree.Contains(Key(1)));
  EXPECT_FALSE(tree.Delete(Key(1), 0));
  EXPECT_TRUE(tree.Validate());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) tree.Insert(Key(i), static_cast<uint64_t>(i));
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.num_keys(), 100u);
  EXPECT_TRUE(tree.Validate());
  for (int i = 0; i < 100; ++i) {
    auto vals = tree.Lookup(Key(i));
    ASSERT_EQ(vals.size(), 1u) << i;
    EXPECT_EQ(vals[0], static_cast<uint64_t>(i));
  }
  EXPECT_TRUE(tree.Lookup(Key(100)).empty());
  EXPECT_GT(tree.height(), 1u);  // must actually have split
}

TEST(BPlusTreeTest, PostingListsAccumulate) {
  BPlusTree tree(4);
  for (uint64_t v = 0; v < 10; ++v) tree.Insert(Key(7), v);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.num_keys(), 1u);
  EXPECT_EQ(tree.Lookup(Key(7)).size(), 10u);
  EXPECT_TRUE(tree.Validate());
}

TEST(BPlusTreeTest, ReverseInsertionOrder) {
  BPlusTree tree(4);
  for (int i = 499; i >= 0; --i) tree.Insert(Key(i), static_cast<uint64_t>(i));
  EXPECT_TRUE(tree.Validate());
  auto all = tree.ScanAll();
  ASSERT_EQ(all.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(all[i].first, Key(i));
}

TEST(BPlusTreeTest, DeleteSingleValues) {
  BPlusTree tree(4);
  for (int i = 0; i < 200; ++i) tree.Insert(Key(i), static_cast<uint64_t>(i));
  for (int i = 0; i < 200; i += 2) {
    EXPECT_TRUE(tree.Delete(Key(i), static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.Validate());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(tree.Contains(Key(i)), i % 2 == 1) << i;
  }
  // Deleting again fails.
  EXPECT_FALSE(tree.Delete(Key(0), 0));
}

TEST(BPlusTreeTest, DeleteEverythingCollapsesToEmptyRoot) {
  BPlusTree tree(4);
  for (int i = 0; i < 300; ++i) tree.Insert(Key(i), static_cast<uint64_t>(i));
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(tree.Delete(Key(i), static_cast<uint64_t>(i))) << i;
    EXPECT_TRUE(tree.Validate()) << "after deleting " << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(BPlusTreeTest, DeleteAllRemovesPostingList) {
  BPlusTree tree(4);
  for (uint64_t v = 0; v < 5; ++v) tree.Insert(Key(3), v);
  tree.Insert(Key(4), 99);
  EXPECT_EQ(tree.DeleteAll(Key(3)), 5u);
  EXPECT_EQ(tree.DeleteAll(Key(3)), 0u);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.Contains(Key(3)));
  EXPECT_TRUE(tree.Contains(Key(4)));
}

TEST(BPlusTreeTest, RangeScan) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) tree.Insert(Key(i), static_cast<uint64_t>(i));
  auto hits = tree.Scan(Key(10), Key(19));
  ASSERT_EQ(hits.size(), 10u);
  EXPECT_EQ(hits.front().first, Key(10));
  EXPECT_EQ(hits.back().first, Key(19));

  // Empty range.
  EXPECT_TRUE(tree.Scan(Key(200), Key(300)).empty());
  // Range covering everything.
  EXPECT_EQ(tree.Scan(Key(0), Key(99)).size(), 100u);
}

class BPlusTreeFanout : public ::testing::TestWithParam<size_t> {};

// Property test: the tree must behave exactly like std::map<Bytes,
// multiset> under a random workload, and its invariants must hold after
// every mutation, for several fanouts.
TEST_P(BPlusTreeFanout, MatchesReferenceModelUnderRandomWorkload) {
  const size_t fanout = GetParam();
  BPlusTree tree(fanout);
  std::map<Bytes, std::multiset<uint64_t>> model;
  crypto::HmacDrbg rng("btree-property", fanout);

  const int kOps = 3000;
  const int kKeySpace = 150;
  for (int op = 0; op < kOps; ++op) {
    int key_num = static_cast<int>(rng.NextBelow(kKeySpace));
    Bytes key = Key(key_num);
    uint64_t value = rng.NextBelow(5);
    double action = rng.NextDouble();
    if (action < 0.55) {
      tree.Insert(key, value);
      model[key].insert(value);
    } else if (action < 0.9) {
      bool tree_removed = tree.Delete(key, value);
      auto it = model.find(key);
      bool model_removed = false;
      if (it != model.end()) {
        auto vit = it->second.find(value);
        if (vit != it->second.end()) {
          it->second.erase(vit);
          model_removed = true;
          if (it->second.empty()) model.erase(it);
        }
      }
      ASSERT_EQ(tree_removed, model_removed) << "op " << op;
    } else {
      size_t removed = tree.DeleteAll(key);
      size_t expected = 0;
      auto it = model.find(key);
      if (it != model.end()) {
        expected = it->second.size();
        model.erase(it);
      }
      ASSERT_EQ(removed, expected) << "op " << op;
    }
    if (op % 100 == 0) {
      ASSERT_TRUE(tree.Validate()) << "op " << op;
    }
  }

  ASSERT_TRUE(tree.Validate());
  size_t model_size = 0;
  for (const auto& [key, values] : model) {
    model_size += values.size();
    auto got = tree.Lookup(key);
    std::multiset<uint64_t> got_set(got.begin(), got.end());
    ASSERT_EQ(got_set, values) << HexEncode(key);
  }
  EXPECT_EQ(tree.size(), model_size);
  EXPECT_EQ(tree.num_keys(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BPlusTreeFanout,
                         ::testing::Values(3, 4, 5, 8, 16, 64));

}  // namespace
}  // namespace storage
}  // namespace dbph
