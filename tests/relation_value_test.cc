#include "relation/value.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace dbph {
namespace rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Boolean(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Real(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
  EXPECT_TRUE(Value::Boolean(true).AsBool());
  EXPECT_DOUBLE_EQ(Value::Real(1.5).AsDouble(), 1.5);
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Int(-7).ToDisplayString(), "-7");
  EXPECT_EQ(Value::Str("hello").ToDisplayString(), "hello");
  EXPECT_EQ(Value::Boolean(false).ToDisplayString(), "false");
  EXPECT_EQ(Value::Real(2.5).ToDisplayString(), "2.5");
}

TEST(ValueTest, WordEncodingIsStable) {
  EXPECT_EQ(Value::Int(7500).EncodeForWord(), "7500");
  EXPECT_EQ(Value::Str("HR").EncodeForWord(), "HR");
  EXPECT_EQ(Value::Boolean(true).EncodeForWord(), "1");
  EXPECT_EQ(Value::Boolean(false).EncodeForWord(), "0");
}

TEST(ValueTest, ParseRoundTrips) {
  auto i = Value::Parse(ValueType::kInt64, "-123");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt(), -123);

  auto s = Value::Parse(ValueType::kString, "Montgomery");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->AsString(), "Montgomery");

  auto b = Value::Parse(ValueType::kBool, "true");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->AsBool());

  auto d = Value::Parse(ValueType::kDouble, "3.25");
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 3.25);
}

TEST(ValueTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Value::Parse(ValueType::kInt64, "12x").ok());
  EXPECT_FALSE(Value::Parse(ValueType::kInt64, "").ok());
  EXPECT_FALSE(Value::Parse(ValueType::kBool, "maybe").ok());
  EXPECT_FALSE(Value::Parse(ValueType::kDouble, "1.2.3").ok());
}

TEST(ValueTest, ComparisonWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
}

TEST(ValueTest, BinaryRoundTrip) {
  std::vector<Value> values = {Value::Int(-99), Value::Str("x,y\nz"),
                               Value::Boolean(true), Value::Real(-0.125)};
  Bytes buf;
  for (const auto& v : values) v.AppendTo(&buf);
  ByteReader reader(buf);
  for (const auto& expected : values) {
    auto v = Value::ReadFrom(&reader);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ValueTest, HashDistinguishesTypeAndContent) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Str("1").Hash());
  EXPECT_NE(Value::Str("a").Hash(), Value::Str("b").Hash());
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
}

}  // namespace
}  // namespace rel
}  // namespace dbph
