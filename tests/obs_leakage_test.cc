// The leakage auditor's own contract: the space-saving sketch stays
// bounded and exact-until-saturated under adversarial tag streams, the
// online advantage estimate agrees with the offline games estimator,
// reports are deterministic under a fixed salt, raw trapdoor bytes never
// leak into any surface, and concurrent record/report is race-free (run
// under TSan in CI).

#include "obs/leakage/auditor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "games/leakage.h"
#include "obs/leakage/report.h"
#include "obs/leakage/sketch.h"
#include "obs/metrics.h"

namespace dbph {
namespace obs {
namespace leakage {
namespace {

// ------------------------------------------------------------- sketch

TEST(SpaceSavingSketchTest, ExactWhileUnderCapacity) {
  SpaceSavingSketch sketch(8);
  for (int i = 0; i < 5; ++i) sketch.Record(100);
  for (int i = 0; i < 3; ++i) sketch.Record(200);
  sketch.Record(300);

  EXPECT_EQ(sketch.total(), 9u);
  EXPECT_EQ(sketch.size(), 3u);
  EXPECT_EQ(sketch.evictions(), 0u);
  EXPECT_FALSE(sketch.saturated());
  EXPECT_EQ(sketch.ModalCount(), 5u);

  std::vector<SpaceSavingSketch::Entry> entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 100u);
  EXPECT_EQ(entries[0].count, 5u);
  EXPECT_EQ(entries[0].error, 0u);
  EXPECT_EQ(entries[1].key, 200u);
  EXPECT_EQ(entries[1].count, 3u);
  EXPECT_EQ(entries[2].key, 300u);
  EXPECT_EQ(entries[2].count, 1u);
}

TEST(SpaceSavingSketchTest, AdversarialAllDistinctStreamStaysBounded) {
  // Eve's worst case for a counting sketch: every observation is a new
  // key. Memory must stay at `capacity` entries while the total remains
  // exact and every displacement is visible in evictions().
  constexpr size_t kCapacity = 64;
  constexpr uint64_t kStream = 10000;
  SpaceSavingSketch sketch(kCapacity);
  for (uint64_t key = 0; key < kStream; ++key) sketch.Record(key);

  EXPECT_EQ(sketch.size(), kCapacity);
  EXPECT_EQ(sketch.total(), kStream);
  EXPECT_EQ(sketch.evictions(), kStream - kCapacity);
  EXPECT_TRUE(sketch.saturated());
  // The space-saving invariant: no estimate exceeds the stream length,
  // and count - error is a valid lower bound (>= 1 occurrence happened).
  for (const auto& entry : sketch.Entries()) {
    EXPECT_LE(entry.count, kStream);
    EXPECT_GE(entry.count, entry.error);
    EXPECT_GE(entry.count - entry.error, 1u);
  }
}

TEST(SpaceSavingSketchTest, HeavyHitterSurvivesAdversarialNoise) {
  // One genuinely hot key interleaved with a flood of singletons: the
  // heavy hitter must stay tracked with count >= its true frequency
  // (space-saving never undercounts a tracked key).
  constexpr uint64_t kHot = 0xdeadbeef;
  constexpr uint64_t kHotCount = 500;
  SpaceSavingSketch sketch(32);
  uint64_t noise = 1;
  for (uint64_t i = 0; i < kHotCount; ++i) {
    sketch.Record(kHot);
    for (int j = 0; j < 4; ++j) sketch.Record(noise++);
  }
  std::vector<SpaceSavingSketch::Entry> entries = sketch.Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].key, kHot);
  EXPECT_GE(entries[0].count, kHotCount);
  EXPECT_GE(entries[0].count - entries[0].error, kHotCount);
}

TEST(SpaceSavingSketchTest, SameStreamSameState) {
  // Determinism is what makes leakage reports reproducible: identical
  // key streams must produce identical entries, including tie-breaks.
  std::vector<uint64_t> stream;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    stream.push_back(x % 97);  // heavy collisions => plenty of ties
  }
  SpaceSavingSketch a(16);
  SpaceSavingSketch b(16);
  for (uint64_t key : stream) a.Record(key);
  for (uint64_t key : stream) b.Record(key);

  std::vector<SpaceSavingSketch::Entry> ea = a.Entries();
  std::vector<SpaceSavingSketch::Entry> eb = b.Entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].key, eb[i].key);
    EXPECT_EQ(ea[i].count, eb[i].count);
    EXPECT_EQ(ea[i].error, eb[i].error);
  }
  EXPECT_EQ(a.Counts(), b.Counts());
}

// ------------------------------------------------------------- auditor

LeakageOptions DeterministicOptions() {
  LeakageOptions options;
  options.salt = ToBytes("fixed-test-salt");
  return options;
}

// A skewed three-tag workload: 50x A, 30x B, 20x C.
void FeedSkewedWorkload(LeakageAuditor* auditor) {
  const Bytes tag_a = ToBytes("trapdoor-bytes-A");
  const Bytes tag_b = ToBytes("trapdoor-bytes-B");
  const Bytes tag_c = ToBytes("trapdoor-bytes-C");
  for (int i = 0; i < 50; ++i) {
    auditor->RecordQuery("people", tag_a, 4, /*used_index=*/true);
  }
  for (int i = 0; i < 30; ++i) {
    auditor->RecordQuery("people", tag_b, 2, /*used_index=*/true);
  }
  for (int i = 0; i < 20; ++i) {
    auditor->RecordQuery("people", tag_c, 7, /*used_index=*/false);
  }
}

TEST(LeakageAuditorTest, OnlineAdvantageMatchesOfflineEstimator) {
  // The acceptance bar: the live auditor and the offline games harness
  // must report the same frequency-attack numbers for the same workload.
  // With distinct tags <= top_k the sketch is exact, so the match is
  // exact too (both sides round identically to integer millis).
  LeakageAuditor auditor(DeterministicOptions(), /*registry=*/nullptr);
  FeedSkewedWorkload(&auditor);
  LeakageReport report = auditor.Report();

  ASSERT_EQ(report.relations.size(), 1u);
  const RelationLeakage& people = report.relations[0];
  EXPECT_EQ(people.relation, "people");
  EXPECT_EQ(people.queries, 100u);
  EXPECT_EQ(people.distinct_tags, 3u);
  EXPECT_EQ(people.sketch_evictions, 0u);

  games::SpectrumSummary offline =
      games::SummarizeTagSpectrum({50, 30, 20});
  EXPECT_EQ(people.modal_rate_millis,
            static_cast<uint64_t>(std::llround(offline.modal_rate * 1000)));
  EXPECT_EQ(people.advantage_millis,
            static_cast<uint64_t>(std::llround(offline.advantage * 1000)));
  EXPECT_EQ(people.entropy_millibits,
            static_cast<uint64_t>(std::llround(offline.entropy_bits * 1000)));
  // Sanity on the actual numbers: modal 50/100, advantage 1/2 - 1/3.
  EXPECT_EQ(people.modal_rate_millis, 500u);
  EXPECT_EQ(people.advantage_millis, 167u);

  // Result sizes split by access path: 80 indexed, 20 scanned.
  EXPECT_EQ(people.index_result_sizes.count, 80u);
  EXPECT_EQ(people.scan_result_sizes.count, 20u);
  EXPECT_EQ(people.scan_result_sizes.max, 7u);
}

TEST(LeakageAuditorTest, SameSaltSameWorkloadSameReport) {
  LeakageAuditor first(DeterministicOptions(), nullptr);
  LeakageAuditor second(DeterministicOptions(), nullptr);
  FeedSkewedWorkload(&first);
  FeedSkewedWorkload(&second);
  EXPECT_TRUE(first.Report() == second.Report());
}

TEST(LeakageAuditorTest, DifferentSaltsUnlinkDigests) {
  // The whole point of the salt: two auditors seeing identical trapdoor
  // bytes must publish different digests, so a report reader cannot join
  // reports against wire captures (or other reports) by tag.
  LeakageOptions other = DeterministicOptions();
  other.salt = ToBytes("a-different-salt");
  LeakageAuditor first(DeterministicOptions(), nullptr);
  LeakageAuditor second(other, nullptr);
  FeedSkewedWorkload(&first);
  FeedSkewedWorkload(&second);

  LeakageReport a = first.Report();
  LeakageReport b = second.Report();
  ASSERT_FALSE(a.relations[0].top_tags.empty());
  ASSERT_EQ(a.relations[0].top_tags.size(), b.relations[0].top_tags.size());
  for (size_t i = 0; i < a.relations[0].top_tags.size(); ++i) {
    EXPECT_NE(a.relations[0].top_tags[i].digest,
              b.relations[0].top_tags[i].digest);
    // Counts are salt-independent; only identities are blinded.
    EXPECT_EQ(a.relations[0].top_tags[i].count,
              b.relations[0].top_tags[i].count);
  }
}

TEST(LeakageAuditorTest, NoTrapdoorBytesOnAnySurface) {
  // Redaction contract: a distinctive trapdoor byte pattern must appear
  // neither in the report's wire form nor in its text rendering.
  Bytes trapdoor;
  for (int i = 0; i < 24; ++i) trapdoor.push_back(0xA0 + (i % 16));
  LeakageAuditor auditor(DeterministicOptions(), nullptr);
  for (int i = 0; i < 64; ++i) {
    auditor.RecordQuery("secrets", trapdoor, 1, /*used_index=*/true);
  }
  LeakageReport report = auditor.Report();

  Bytes wire;
  report.AppendTo(&wire);
  EXPECT_EQ(std::search(wire.begin(), wire.end(), trapdoor.begin(),
                        trapdoor.end()),
            wire.end())
      << "raw trapdoor bytes leaked into the report wire form";

  std::string text = report.RenderText();
  std::string hex = HexEncode(trapdoor);
  EXPECT_EQ(text.find(hex), std::string::npos)
      << "trapdoor hex leaked into the report text";
  // The digest itself must also not be the identity: the salted digest of
  // these bytes differs from their own prefix.
  ASSERT_EQ(report.relations.size(), 1u);
  ASSERT_FALSE(report.relations[0].top_tags.empty());
  uint64_t prefix = 0;
  for (int i = 0; i < 8; ++i) {
    prefix = (prefix << 8) | trapdoor[static_cast<size_t>(i)];
  }
  EXPECT_NE(report.relations[0].top_tags[0].digest, prefix);
}

TEST(LeakageAuditorTest, QueriesObservedCountsStagedEntries) {
  // Fewer observations than the staging ring: the count must still be
  // visible without waiting for a fold.
  LeakageAuditor auditor(DeterministicOptions(), nullptr);
  auditor.RecordQuery("people", ToBytes("t1"), 1, true);
  auditor.RecordQuery("people", ToBytes("t2"), 1, true);
  auditor.RecordQuery("orders", ToBytes("t3"), 1, false);
  EXPECT_EQ(auditor.queries_observed(), 3u);
  LeakageReport report = auditor.Report();
  EXPECT_EQ(report.queries_observed, 3u);
  EXPECT_EQ(report.relations.size(), 2u);
  // Relations come out sorted by name for deterministic reports.
  EXPECT_EQ(report.relations[0].relation, "orders");
  EXPECT_EQ(report.relations[1].relation, "people");
}

TEST(LeakageAuditorTest, AlertLatchesOncePerRelation) {
  // A heavily skewed stream (28:1:1 over three tags has advantage
  // 28/30 - 1/3 = 0.6, past the 0.5 budget) must not alert below the
  // min_alert_queries floor, must alert once it crosses it, and the
  // alert must latch (fire once), not repeat per fold.
  LeakageOptions options = DeterministicOptions();
  options.alert_advantage_millis = 500;
  options.min_alert_queries = 32;
  MetricsRegistry registry;
  LeakageAuditor auditor(options, &registry);

  const Bytes hot_tag = ToBytes("the-hot-trapdoor");
  for (int i = 0; i < 28; ++i) {
    auditor.RecordQuery("people", hot_tag, 1, true);
  }
  auditor.RecordQuery("people", ToBytes("rare-trapdoor-b"), 1, true);
  auditor.RecordQuery("people", ToBytes("rare-trapdoor-c"), 1, true);
  EXPECT_EQ(auditor.Report().alerts, 0u);  // below the sample floor

  for (int i = 0; i < 1000; ++i) {
    auditor.RecordQuery("people", hot_tag, 1, true);
  }
  LeakageReport report = auditor.Report();
  EXPECT_EQ(report.alerts, 1u);
  EXPECT_EQ(report.advantage_budget_millis, 500u);

  auditor.RefreshMetrics();
  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("dbph_leakage_alerts_total"), 1u);
}

TEST(LeakageAuditorTest, RefreshMetricsExportsTheWorstRelation) {
  MetricsRegistry registry;
  LeakageAuditor auditor(DeterministicOptions(), &registry);
  FeedSkewedWorkload(&auditor);  // "people": advantage 167 millis
  // A second, uniform relation with lower advantage must not mask the
  // worst one in the exported gauges.
  for (int i = 0; i < 25; ++i) {
    auditor.RecordQuery("orders", ToBytes("o1-" + std::to_string(i % 5)), 1,
                        false);
  }
  auditor.RefreshMetrics();

  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("dbph_leakage_observed_queries_total"), 125u);
  EXPECT_EQ(snap.gauges.at("dbph_leakage_relations"), 2);
  EXPECT_EQ(snap.gauges.at("dbph_leakage_distinct_tags"), 8);  // 3 + 5
  EXPECT_EQ(snap.gauges.at("dbph_leakage_advantage_millis"), 167);
  EXPECT_EQ(snap.counters.at("dbph_leakage_sketch_evictions_total"), 0u);
  // Histograms flow into the registry as queries fold.
  EXPECT_EQ(snap.histograms.at("dbph_leakage_result_size_index").count, 80u);
  EXPECT_EQ(snap.histograms.at("dbph_leakage_result_size_scan").count, 45u);
}

TEST(LeakageAuditorTest, SaturatedSketchIsFlaggedInTheReport) {
  LeakageOptions options = DeterministicOptions();
  options.top_k = 8;
  LeakageAuditor auditor(options, nullptr);
  for (int i = 0; i < 300; ++i) {
    auditor.RecordQuery("wide", ToBytes("tag-" + std::to_string(i)), 1, true);
  }
  LeakageReport report = auditor.Report();
  ASSERT_EQ(report.relations.size(), 1u);
  EXPECT_GT(report.relations[0].sketch_evictions, 0u);
  EXPECT_EQ(report.relations[0].distinct_tags, 8u);  // capacity, lower bound
  EXPECT_EQ(report.relations[0].queries, 300u);
}

TEST(LeakageAuditorTest, ConcurrentRecordAndReportAreRaceFree) {
  // The auditor must be standalone thread-safe (its own mutex): writer
  // threads hammer RecordQuery across relations while readers fold via
  // Report/RefreshMetrics. Run under TSan in CI; the post-condition is
  // that no observation is lost.
  MetricsRegistry registry;
  LeakageAuditor auditor(DeterministicOptions(), &registry);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&auditor, t] {
      const std::string relation = t % 2 == 0 ? "people" : "orders";
      for (int i = 0; i < kPerWriter; ++i) {
        auditor.RecordQuery(relation, ToBytes("tag-" + std::to_string(i % 64)),
                            static_cast<uint64_t>(i % 9), i % 3 == 0);
      }
    });
  }
  threads.emplace_back([&auditor] {
    for (int i = 0; i < 200; ++i) {
      LeakageReport report = auditor.Report();
      (void)report.queries_observed;
      auditor.RefreshMetrics();
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(auditor.queries_observed(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  LeakageReport report = auditor.Report();
  EXPECT_EQ(report.queries_observed,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  uint64_t per_relation = 0;
  for (const auto& relation : report.relations) {
    per_relation += relation.queries;
  }
  EXPECT_EQ(per_relation, static_cast<uint64_t>(kWriters) * kPerWriter);
}

// ----------------------------------------------------------- wire form

TEST(LeakageReportWireTest, RoundTripIsLossless) {
  LeakageAuditor auditor(DeterministicOptions(), nullptr);
  FeedSkewedWorkload(&auditor);
  for (int i = 0; i < 10; ++i) {
    auditor.RecordQuery("orders", ToBytes("order-tag"), 3, false);
  }
  LeakageReport original = auditor.Report();

  Bytes wire;
  original.AppendTo(&wire);
  ByteReader reader(wire);
  auto parsed = LeakageReport::ReadFrom(&reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(*parsed == original);
}

TEST(LeakageReportWireTest, RenderTextNamesEveryRelation) {
  LeakageAuditor auditor(DeterministicOptions(), nullptr);
  FeedSkewedWorkload(&auditor);
  std::string text = auditor.Report().RenderText();
  EXPECT_NE(text.find("people"), std::string::npos);
  EXPECT_NE(text.find("advantage"), std::string::npos);
  EXPECT_NE(text.find("salted"), std::string::npos);
}

}  // namespace
}  // namespace leakage
}  // namespace obs
}  // namespace dbph
