#include "swp/scheme.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/prf.h"
#include "crypto/random.h"
#include "swp/search.h"

namespace dbph {
namespace swp {
namespace {

constexpr size_t kWordLen = 12;
constexpr size_t kCheckLen = 4;

Bytes Word(const std::string& s) {
  Bytes w = ToBytes(s);
  w.resize(kWordLen, '#');
  return w;
}

crypto::StreamGenerator MakeStream(const Bytes& master, const Bytes& nonce) {
  SwpKeys keys = SwpKeys::Derive(master);
  return crypto::StreamGenerator(keys.stream_key, nonce);
}

class AllSchemes : public ::testing::TestWithParam<SchemeVariant> {
 protected:
  void SetUp() override {
    master_ = ToBytes("test master key for swp");
    SwpParams params{kWordLen, kCheckLen};
    auto scheme = CreateScheme(GetParam(), params, master_);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::move(*scheme);
    stream_ = std::make_unique<crypto::StreamGenerator>(
        MakeStream(master_, ToBytes("doc-nonce-1")));
  }

  Bytes master_;
  std::unique_ptr<SearchableScheme> scheme_;
  std::unique_ptr<crypto::StreamGenerator> stream_;
};

TEST_P(AllSchemes, EncryptProducesWordSizedCipher) {
  auto c = scheme_->EncryptWord(*stream_, 0, Word("hello"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), kWordLen);
  EXPECT_NE(*c, Word("hello"));
}

TEST_P(AllSchemes, RejectsWrongWordLength) {
  EXPECT_FALSE(scheme_->EncryptWord(*stream_, 0, ToBytes("short")).ok());
  EXPECT_FALSE(scheme_->MakeTrapdoor(ToBytes("short")).ok());
}

TEST_P(AllSchemes, TrapdoorMatchesOwnWord) {
  Bytes word = Word("target");
  for (uint64_t pos = 0; pos < 8; ++pos) {
    auto c = scheme_->EncryptWord(*stream_, pos, word);
    ASSERT_TRUE(c.ok());
    auto t = scheme_->MakeTrapdoor(word);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(scheme_->Matches(*t, *c)) << "position " << pos;
  }
}

TEST_P(AllSchemes, TrapdoorRejectsOtherWords) {
  auto t = scheme_->MakeTrapdoor(Word("needle"));
  ASSERT_TRUE(t.ok());
  // With a 4-byte check the false-positive probability is 2^-32; 200
  // non-matching words must therefore all be rejected.
  crypto::HmacDrbg rng("swp-negative", 5);
  for (int i = 0; i < 200; ++i) {
    Bytes other = Word("w" + std::to_string(i));
    auto c = scheme_->EncryptWord(*stream_, rng.NextBelow(16), other);
    ASSERT_TRUE(c.ok());
    EXPECT_FALSE(scheme_->Matches(*t, *c)) << i;
  }
}

TEST_P(AllSchemes, SamePositionSameWordIsDeterministic) {
  auto a = scheme_->EncryptWord(*stream_, 3, Word("again"));
  auto b = scheme_->EncryptWord(*stream_, 3, Word("again"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_P(AllSchemes, DifferentPositionsHideEquality) {
  // The stream pad differs per position, so equal words encrypt
  // differently — the server cannot see repeats without a trapdoor.
  auto a = scheme_->EncryptWord(*stream_, 0, Word("same"));
  auto b = scheme_->EncryptWord(*stream_, 1, Word("same"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST_P(AllSchemes, DifferentNoncesHideEquality) {
  auto stream2 = MakeStream(master_, ToBytes("doc-nonce-2"));
  auto a = scheme_->EncryptWord(*stream_, 0, Word("same"));
  auto b = scheme_->EncryptWord(stream2, 0, Word("same"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST_P(AllSchemes, DecryptionAgreesWithCapability) {
  Bytes word = Word("roundtrip");
  auto c = scheme_->EncryptWord(*stream_, 7, word);
  ASSERT_TRUE(c.ok());
  auto back = scheme_->DecryptWord(*stream_, 7, *c);
  if (scheme_->SupportsDecryption()) {
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, word);
  } else {
    EXPECT_FALSE(back.ok());
    EXPECT_EQ(back.status().code(), StatusCode::kUnimplemented);
  }
}

TEST_P(AllSchemes, QueryHidingMatchesContract) {
  Bytes word = Word("secretquery");
  auto t = scheme_->MakeTrapdoor(word);
  ASSERT_TRUE(t.ok());
  if (scheme_->HidesQueries()) {
    // The trapdoor must not contain the plaintext word.
    EXPECT_NE(t->target, word);
  } else {
    EXPECT_EQ(t->target, word);
  }
}

TEST_P(AllSchemes, SearchDocumentFindsAllSlots) {
  EncryptedDocument doc;
  doc.nonce = ToBytes("doc-nonce-1");
  Bytes needle = Word("needle");
  std::vector<Bytes> words = {Word("alpha"), needle, Word("gamma"), needle};
  for (size_t i = 0; i < words.size(); ++i) {
    auto c = scheme_->EncryptWord(*stream_, i, words[i]);
    ASSERT_TRUE(c.ok());
    doc.words.push_back(*c);
  }
  auto t = scheme_->MakeTrapdoor(needle);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(SearchDocument(*scheme_, *t, doc), (std::vector<size_t>{1, 3}));
  EXPECT_TRUE(DocumentContains(*scheme_, *t, doc));
  auto none = scheme_->MakeTrapdoor(Word("missing"));
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(DocumentContains(*scheme_, *none, doc));
}

TEST_P(AllSchemes, WrongMasterKeyFindsNothing) {
  auto other = CreateScheme(GetParam(), SwpParams{kWordLen, kCheckLen},
                            ToBytes("a different master key"));
  ASSERT_TRUE(other.ok());
  Bytes word = Word("needle");
  auto c = scheme_->EncryptWord(*stream_, 0, word);
  ASSERT_TRUE(c.ok());
  auto t = (*other)->MakeTrapdoor(word);
  ASSERT_TRUE(t.ok());
  // Basic scheme trapdoors carry the (wrong) global check key; all other
  // schemes derive wrong word keys. Either way: no match.
  EXPECT_FALSE(scheme_->Matches(*t, *c));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AllSchemes,
    ::testing::Values(SchemeVariant::kBasic, SchemeVariant::kControlled,
                      SchemeVariant::kHidden, SchemeVariant::kFinal),
    [](const ::testing::TestParamInfo<SchemeVariant>& info) {
      std::string name = SchemeVariantName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SwpParamsTest, Validation) {
  EXPECT_TRUE((SwpParams{12, 4}).Validate().ok());
  EXPECT_FALSE((SwpParams{1, 1}).Validate().ok());
  EXPECT_FALSE((SwpParams{8, 0}).Validate().ok());
  EXPECT_FALSE((SwpParams{8, 8}).Validate().ok());
  EXPECT_FALSE((SwpParams{8, 9}).Validate().ok());
}

TEST(SwpParamsTest, FalsePositiveProbability) {
  EXPECT_DOUBLE_EQ((SwpParams{12, 1}).FalsePositiveProbability(), 1.0 / 256);
  EXPECT_DOUBLE_EQ((SwpParams{12, 2}).FalsePositiveProbability(),
                   1.0 / 65536);
}

TEST(SwpKeysTest, SubkeysDistinct) {
  SwpKeys keys = SwpKeys::Derive(ToBytes("m"));
  EXPECT_NE(keys.preencrypt_key, keys.word_key_key);
  EXPECT_NE(keys.word_key_key, keys.check_key);
  EXPECT_NE(keys.check_key, keys.stream_key);
}

TEST(CreateSchemeTest, RejectsBadInputs) {
  EXPECT_FALSE(
      CreateScheme(SchemeVariant::kFinal, SwpParams{1, 1}, ToBytes("k")).ok());
  EXPECT_FALSE(
      CreateScheme(SchemeVariant::kFinal, SwpParams{12, 4}, Bytes{}).ok());
}

TEST(TrapdoorTest, SerializationRoundTrip) {
  Trapdoor t;
  t.target = ToBytes("target-bytes");
  t.key = ToBytes("key-bytes");
  Bytes buf;
  t.AppendTo(&buf);
  ByteReader reader(buf);
  auto back = Trapdoor::ReadFrom(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->target, t.target);
  EXPECT_EQ(back->key, t.key);
}

TEST(EncryptedDocumentTest, SerializationRoundTrip) {
  EncryptedDocument doc;
  doc.nonce = ToBytes("nonce");
  doc.words = {ToBytes("w1"), ToBytes("word-two")};
  Bytes buf;
  doc.AppendTo(&buf);
  ByteReader reader(buf);
  auto back = EncryptedDocument::ReadFrom(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->nonce, doc.nonce);
  EXPECT_EQ(back->words, doc.words);
}

// The basic scheme's documented weakness: its trapdoor key is the global
// check key, so after one query the server can recognize *other* words it
// guesses. The controlled scheme's per-word keys prevent this. This test
// pins down the distinction the SWP paper draws between schemes I and II.
TEST(BasicVsControlled, BasicLeaksGlobalCheckCapability) {
  Bytes master = ToBytes("leak test master");
  SwpParams params{kWordLen, kCheckLen};
  auto basic = CreateScheme(SchemeVariant::kBasic, params, master);
  auto controlled = CreateScheme(SchemeVariant::kControlled, params, master);
  ASSERT_TRUE(basic.ok() && controlled.ok());
  auto stream = MakeStream(master, ToBytes("n"));

  // Server receives a trapdoor for "alpha" and then *guesses* "beta".
  Bytes alpha = Word("alpha"), beta = Word("beta");

  {
    auto t_alpha = (*basic)->MakeTrapdoor(alpha);
    ASSERT_TRUE(t_alpha.ok());
    auto c_beta = (*basic)->EncryptWord(stream, 0, beta);
    ASSERT_TRUE(c_beta.ok());
    // Forge a trapdoor for beta using the leaked key.
    Trapdoor forged;
    forged.target = beta;
    forged.key = t_alpha->key;  // global k'' — works for any word!
    EXPECT_TRUE((*basic)->Matches(forged, *c_beta));
  }
  {
    auto t_alpha = (*controlled)->MakeTrapdoor(alpha);
    ASSERT_TRUE(t_alpha.ok());
    auto c_beta = (*controlled)->EncryptWord(stream, 0, beta);
    ASSERT_TRUE(c_beta.ok());
    Trapdoor forged;
    forged.target = beta;
    forged.key = t_alpha->key;  // k_alpha is useless for beta
    EXPECT_FALSE((*controlled)->Matches(forged, *c_beta));
  }
}

// Statistical test of the false-positive knob: with a 1-byte check the
// per-word FP rate must be ~2^-8.
TEST(FalsePositiveTest, OneByteCheckRateNearTheory) {
  Bytes master = ToBytes("fp master");
  SwpParams params{8, 1};
  auto scheme = CreateScheme(SchemeVariant::kFinal, params, master);
  ASSERT_TRUE(scheme.ok());
  auto stream = MakeStream(master, ToBytes("fp-nonce"));

  // Build the needle word explicitly at 8 bytes.
  Bytes needle = ToBytes("needle");
  needle.resize(8, '#');
  auto t = (*scheme)->MakeTrapdoor(needle);
  ASSERT_TRUE(t.ok());

  int false_hits = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    Bytes other = ToBytes("w" + std::to_string(i));
    other.resize(8, '#');
    if (other == needle) continue;
    auto c = (*scheme)->EncryptWord(stream, static_cast<uint64_t>(i), other);
    ASSERT_TRUE(c.ok());
    if ((*scheme)->Matches(*t, *c)) ++false_hits;
  }
  double rate = static_cast<double>(false_hits) / kTrials;
  double expected = 1.0 / 256;
  // ~156 expected hits, sd ~12.5; accept +/- 5 sd.
  EXPECT_NEAR(rate, expected, 5 * 12.5 / kTrials);
  EXPECT_GT(false_hits, 0);  // with 40k trials, zero hits would be wrong too
}

}  // namespace
}  // namespace swp
}  // namespace dbph
