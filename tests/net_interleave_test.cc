// Writers racing readers over real sockets: AppendTuples and DeleteWhere
// interleaving with SelectBatch from concurrent client threads must be
// linearizable (every observed result is consistent with SOME serial
// order of the completed operations), and Eve's ObservationLog must hold
// exactly one entry per executed query no matter how the wire traffic
// raced.
//
// The invariants exploit monotonicity: inserts only ever add rows with
// grp = 7, and the single delete removes ALL rows with grp = 5 at once.
// Requests from one thread are strictly sequential and the server
// serializes whole requests, so per-thread match counts for grp 7 must be
// non-decreasing and for grp 5 non-increasing over time.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "net/net_server.h"
#include "net/tcp_transport.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

constexpr size_t kInitialGrp5 = 12;
constexpr size_t kInitialGrp7 = 3;
constexpr size_t kFiller = 30;
constexpr size_t kWriters = 2;
constexpr size_t kInsertsPerWriter = 5;
constexpr size_t kReaders = 3;
constexpr size_t kReadsPerReader = 6;

Schema TableSchema() {
  auto s = Schema::Create({
      {"key", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation BuildTable() {
  Relation table("T", TableSchema());
  size_t row = 0;
  auto add = [&](int64_t grp, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(table
                      .Insert({Value::Str("k" + std::to_string(row++)),
                               Value::Int(grp)})
                      .ok());
    }
  };
  add(5, kInitialGrp5);
  add(7, kInitialGrp7);
  add(1, kFiller);
  return table;
}

/// A socket-backed Alex session. Worker sessions share the master key and
/// Adopt the relation: keys derive from the master, so they can address
/// ciphertext another session outsourced.
struct Session {
  Session(uint16_t port, const std::string& seed)
      : rng("interleave-" + seed, 1) {
    auto transport = net::TcpTransport::Connect("127.0.0.1", port);
    EXPECT_TRUE(transport.ok()) << transport.status();
    client = std::make_unique<client::Client>(
        ToBytes("interleave master"), (*transport)->AsTransport(), &rng);
    EXPECT_TRUE(client->Adopt("T", TableSchema()).ok());
  }

  crypto::HmacDrbg rng;
  std::unique_ptr<client::Client> client;
};

TEST(NetInterleaveTest, WritersRacingReadersStayLinearizable) {
  server::ServerRuntimeOptions runtime;
  runtime.num_threads = 2;
  server::UntrustedServer eve(runtime);
  net::NetServer net_server(&eve);
  ASSERT_TRUE(net_server.Start().ok());

  Relation table = BuildTable();
  Session main_session(net_server.port(), "main");
  ASSERT_TRUE(main_session.client->Outsource(table).ok());

  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Session session(net_server.port(), "writer" + std::to_string(w));
      for (size_t i = 0; i < kInsertsPerWriter; ++i) {
        Status s = session.client->Insert(
            "T", {Tuple({Value::Str("w" + std::to_string(w * 100 + i)),
                         Value::Int(7)})});
        if (!s.ok()) failures.fetch_add(1);
      }
    });
  }

  threads.emplace_back([&] {
    Session session(net_server.port(), "deleter");
    auto removed = session.client->DeleteWhere("T", "grp", Value::Int(5));
    if (!removed.ok() || *removed != kInitialGrp5) failures.fetch_add(1);
  });

  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Session session(net_server.port(), "reader" + std::to_string(r));
      size_t last7 = 0;
      size_t last5 = kInitialGrp5;
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        auto results = session.client->SelectBatch(
            "T", {{"grp", Value::Int(7)}, {"grp", Value::Int(5)}});
        if (!results.ok() || results->size() != 2) {
          failures.fetch_add(1);
          continue;
        }
        size_t got7 = (*results)[0].size();
        size_t got5 = (*results)[1].size();
        // grp 7 only grows; grp 5 only drops (to zero, in one step).
        if (got7 < last7 ||
            got7 > kInitialGrp7 + kWriters * kInsertsPerWriter) {
          violations.fetch_add(1);
        }
        if (got5 > last5 || (got5 != 0 && got5 != kInitialGrp5)) {
          violations.fetch_add(1);
        }
        last7 = got7;
        last5 = got5;
      }
    });
  }

  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);

  // Final state equals the one serial outcome all orders converge to.
  auto final_state = main_session.client->Recall("T");
  ASSERT_TRUE(final_state.ok()) << final_state.status();
  EXPECT_EQ(final_state->size(), kInitialGrp7 + kFiller +
                                     kWriters * kInsertsPerWriter);
  auto grp7 = final_state->Select("grp", Value::Int(7));
  ASSERT_TRUE(grp7.ok());
  EXPECT_EQ(grp7->size(), kInitialGrp7 + kWriters * kInsertsPerWriter);
  auto grp5 = final_state->Select("grp", Value::Int(5));
  ASSERT_TRUE(grp5.ok());
  EXPECT_EQ(grp5->size(), 0u);

  net_server.Stop();

  // One ObservationLog entry per executed query — never more (a batch of
  // k is k), never fewer (raced queries may not coalesce or vanish).
  size_t expected_queries =
      kReaders * kReadsPerReader * 2  // each SelectBatch logs 2
      + 1;                            // the DeleteWhere
  EXPECT_EQ(eve.observations().queries().size(), expected_queries);
  // Stores: the initial upload plus one per successful append; Adopt is
  // purely client-local and leaves no trace on the server.
  EXPECT_EQ(eve.observations().stores().size(),
            1 + kWriters * kInsertsPerWriter);
}

}  // namespace
}  // namespace dbph
