// Loopback integration for the network layer: a NetServer-hosted
// UntrustedServer must be observationally identical to the in-process
// transport — byte-identical results and stored state — under single and
// concurrent clients, with pipelining, health checks, connection limits,
// idle reaping, and framing violations all behaving as specified.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "protocol/messages.h"
#include "server/durable_store.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema TableSchema() {
  auto s = Schema::Create({
      {"key", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation BuildTable(const std::string& name, size_t n) {
  Relation table(name, TableSchema());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(table.Insert({Value::Str("k" + std::to_string(i)),
                              Value::Int(static_cast<int64_t>(i % 10))})
                    .ok());
  }
  return table;
}

Bytes ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return Bytes((std::istreambuf_iterator<char>(file)),
               std::istreambuf_iterator<char>());
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// The Outsource → Select → SelectBatch → Insert → DeleteWhere → Recall
/// sequence every comparison runs; deterministic given (master, seed).
struct OpResults {
  Status outsource;
  Relation select;
  std::vector<Relation> batch;
  Status insert;
  Result<size_t> deleted = Status::Internal("unset");
  Result<Relation> recall = Status::Internal("unset");
  bool all_ok = false;
};

OpResults RunCanonicalOps(client::Client* client, const std::string& name) {
  OpResults out;
  out.outsource = client->Outsource(BuildTable(name, 120));
  auto select = client->Select(name, "grp", Value::Int(4));
  std::vector<std::pair<std::string, Value>> queries;
  for (int g = 0; g < 10; ++g) queries.emplace_back("grp", Value::Int(g));
  auto batch = client->SelectBatch(name, queries);
  out.insert = client->Insert(
      name, {rel::Tuple({Value::Str("new1"), Value::Int(3)}),
             rel::Tuple({Value::Str("new2"), Value::Int(3)})});
  out.deleted = client->DeleteWhere(name, "grp", Value::Int(7));
  out.recall = client->Recall(name);

  out.all_ok = out.outsource.ok() && select.ok() && batch.ok() &&
               out.insert.ok() && out.deleted.ok() && out.recall.ok();
  if (select.ok()) out.select = std::move(*select);
  if (batch.ok()) out.batch = std::move(*batch);
  return out;
}

void ExpectSameResults(const OpResults& a, const OpResults& b) {
  ASSERT_TRUE(a.all_ok);
  ASSERT_TRUE(b.all_ok);
  EXPECT_TRUE(a.select.SameTuples(b.select));
  ASSERT_EQ(a.batch.size(), b.batch.size());
  for (size_t i = 0; i < a.batch.size(); ++i) {
    EXPECT_TRUE(a.batch[i].SameTuples(b.batch[i])) << "batch query " << i;
  }
  EXPECT_EQ(*a.deleted, *b.deleted);
  EXPECT_TRUE(a.recall->SameTuples(*b.recall));
  EXPECT_EQ(a.recall->size(), b.recall->size());
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(net::NetServerOptions options = {},
                   server::ServerRuntimeOptions runtime = {}) {
    served_server_ = std::make_unique<server::UntrustedServer>(runtime);
    net_server_ =
        std::make_unique<net::NetServer>(served_server_.get(), options);
    ASSERT_TRUE(net_server_->Start().ok());
    ASSERT_NE(net_server_->port(), 0);
  }

  std::shared_ptr<net::TcpTransport> Transport() {
    auto t = net::TcpTransport::Connect("127.0.0.1", net_server_->port());
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  std::unique_ptr<server::UntrustedServer> served_server_;
  std::unique_ptr<net::NetServer> net_server_;
};

TEST_F(NetServerTest, SocketDeploymentMatchesInProcessByteForByte) {
  StartServer();

  // Same master key + DRBG seed on both sides: ciphertexts, trapdoors and
  // therefore every result and the stored server state must agree to the
  // byte, proving the wire carries envelopes unchanged.
  crypto::HmacDrbg remote_rng("net-e2e", 1);
  client::Client remote(ToBytes("net master"), Transport()->AsTransport(),
                        &remote_rng);
  OpResults remote_results = RunCanonicalOps(&remote, "T");

  server::UntrustedServer twin_server;
  crypto::HmacDrbg local_rng("net-e2e", 1);
  client::Client local(
      ToBytes("net master"),
      [&](const Bytes& request) { return twin_server.HandleRequest(request); },
      &local_rng);
  OpResults local_results = RunCanonicalOps(&local, "T");

  ExpectSameResults(remote_results, local_results);

  // Byte-level: both servers persist to identical files.
  net_server_->Stop();
  std::string remote_path = TempPath("net_e2e_remote.dbph");
  std::string local_path = TempPath("net_e2e_local.dbph");
  ASSERT_TRUE(served_server_->SaveTo(remote_path).ok());
  ASSERT_TRUE(twin_server.SaveTo(local_path).ok());
  EXPECT_EQ(ReadFileBytes(remote_path), ReadFileBytes(local_path));
  std::remove(remote_path.c_str());
  std::remove(local_path.c_str());
}

TEST_F(NetServerTest, FourConcurrentClientsMatchInProcessBaseline) {
  server::ServerRuntimeOptions runtime;
  runtime.num_threads = 2;
  StartServer({}, runtime);

  constexpr size_t kClients = 4;
  std::vector<OpResults> remote_results(kClients);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &remote_results] {
      crypto::HmacDrbg rng("net-multi", i);
      client::Client client(ToBytes("master-" + std::to_string(i)),
                            Transport()->AsTransport(), &rng);
      remote_results[i] =
          RunCanonicalOps(&client, "T" + std::to_string(i));
    });
  }
  for (auto& thread : threads) thread.join();

  // The same four clients, sequentially, against an in-process twin.
  server::UntrustedServer twin_server(runtime);
  std::vector<OpResults> local_results(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    crypto::HmacDrbg rng("net-multi", i);
    client::Client client(
        ToBytes("master-" + std::to_string(i)),
        [&](const Bytes& request) {
          return twin_server.HandleRequest(request);
        },
        &rng);
    local_results[i] = RunCanonicalOps(&client, "T" + std::to_string(i));
  }
  for (size_t i = 0; i < kClients; ++i) {
    ExpectSameResults(remote_results[i], local_results[i]);
  }

  // Per-relation state is independent of how the four sessions interleaved
  // on the wire, so the persisted images must still be byte-identical.
  net_server_->Stop();
  std::string remote_path = TempPath("net_multi_remote.dbph");
  std::string local_path = TempPath("net_multi_local.dbph");
  ASSERT_TRUE(served_server_->SaveTo(remote_path).ok());
  ASSERT_TRUE(twin_server.SaveTo(local_path).ok());
  EXPECT_EQ(ReadFileBytes(remote_path), ReadFileBytes(local_path));
  std::remove(remote_path.c_str());
  std::remove(local_path.c_str());
}

TEST_F(NetServerTest, PingPongHealthCheck) {
  StartServer();
  auto transport = Transport();
  EXPECT_TRUE(transport->Ping().ok());
  EXPECT_TRUE(transport->Ping().ok());
  auto stats = net_server_->stats();
  EXPECT_EQ(stats.frames_in, 2u);
  EXPECT_EQ(stats.frames_out, 2u);
}

TEST_F(NetServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  // Fire 20 pings with distinct cookies in one burst, then collect; the
  // responses must come back in request order.
  constexpr uint64_t kCount = 20;
  Bytes burst;
  for (uint64_t i = 0; i < kCount; ++i) {
    protocol::Envelope ping;
    ping.type = protocol::MessageType::kPing;
    AppendUint64(&ping.payload, i);
    ASSERT_TRUE(net::AppendFrame(&burst, ping.Serialize()).ok());
  }
  ASSERT_TRUE(net::SendAll(fd->get(), burst.data(), burst.size()).ok());

  net::FrameReader reader;
  uint8_t buf[4096];
  std::vector<Bytes> frames;
  while (frames.size() < kCount) {
    ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)).ok());
    while (auto frame = reader.NextFrame()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    auto envelope = protocol::Envelope::Parse(frames[i]);
    ASSERT_TRUE(envelope.ok());
    EXPECT_EQ(envelope->type, protocol::MessageType::kPong);
    ByteReader cookie(envelope->payload);
    EXPECT_EQ(*cookie.ReadUint64(), i);
  }
}

TEST_F(NetServerTest, HalfCloseStillDeliversPipelinedResponsesThenEof) {
  StartServer();
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  // Pipeline a burst, then shut down our write side before reading
  // anything: the server must answer everything queued, then close.
  constexpr uint64_t kCount = 10;
  Bytes burst;
  for (uint64_t i = 0; i < kCount; ++i) {
    protocol::Envelope ping;
    ping.type = protocol::MessageType::kPing;
    AppendUint64(&ping.payload, i);
    ASSERT_TRUE(net::AppendFrame(&burst, ping.Serialize()).ok());
  }
  ASSERT_TRUE(net::SendAll(fd->get(), burst.data(), burst.size()).ok());
  ASSERT_EQ(::shutdown(fd->get(), SHUT_WR), 0);

  net::FrameReader reader;
  uint8_t buf[4096];
  std::vector<Bytes> frames;
  bool eof = false;
  while (!eof) {
    ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    if (n == 0) {
      eof = true;
      break;
    }
    ASSERT_GT(n, 0);
    ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)).ok());
    while (auto frame = reader.NextFrame()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    auto envelope = protocol::Envelope::Parse(frames[i]);
    ASSERT_TRUE(envelope.ok());
    EXPECT_EQ(envelope->type, protocol::MessageType::kPong);
  }
}

TEST_F(NetServerTest, WriteBackpressurePausesReadsWithoutLosingFrames) {
  // A tiny write budget forces the pause/resume path: the server may
  // hold at most ~one response of budget, yet every pipelined request
  // must still be answered, in order, as the client drains.
  net::NetServerOptions options;
  options.max_pending_write_bytes = 64;  // a pong frame is ~17 bytes
  StartServer(options);
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  constexpr uint64_t kCount = 200;
  Bytes burst;
  for (uint64_t i = 0; i < kCount; ++i) {
    protocol::Envelope ping;
    ping.type = protocol::MessageType::kPing;
    AppendUint64(&ping.payload, i);
    ASSERT_TRUE(net::AppendFrame(&burst, ping.Serialize()).ok());
  }
  ASSERT_TRUE(net::SendAll(fd->get(), burst.data(), burst.size()).ok());

  net::FrameReader reader;
  uint8_t buf[512];  // drain slowly to keep the server paused at times
  std::vector<Bytes> frames;
  while (frames.size() < kCount) {
    ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)).ok());
    while (auto frame = reader.NextFrame()) frames.push_back(std::move(*frame));
  }
  for (uint64_t i = 0; i < kCount; ++i) {
    auto envelope = protocol::Envelope::Parse(frames[i]);
    ASSERT_TRUE(envelope.ok());
    ASSERT_EQ(envelope->type, protocol::MessageType::kPong);
    ByteReader cookie(envelope->payload);
    EXPECT_EQ(*cookie.ReadUint64(), i);
  }
}

TEST_F(NetServerTest, MalformedEnvelopeGetsErrorAndConnectionSurvives) {
  StartServer();
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  Bytes wire;
  ASSERT_TRUE(net::AppendFrame(&wire, ToBytes("not an envelope")).ok());
  ASSERT_TRUE(net::SendAll(fd->get(), wire.data(), wire.size()).ok());

  uint8_t header[4];
  ASSERT_TRUE(net::RecvExact(fd->get(), header, 4).ok());
  size_t length = (static_cast<size_t>(header[0]) << 24) |
                  (static_cast<size_t>(header[1]) << 16) |
                  (static_cast<size_t>(header[2]) << 8) |
                  static_cast<size_t>(header[3]);
  Bytes body(length);
  ASSERT_TRUE(net::RecvExact(fd->get(), body.data(), body.size()).ok());
  auto envelope = protocol::Envelope::Parse(body);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->type, protocol::MessageType::kError);

  // Same connection still serves pings: envelope-level garbage is not a
  // framing violation.
  protocol::Envelope ping;
  ping.type = protocol::MessageType::kPing;
  AppendUint64(&ping.payload, 42);
  Bytes ping_wire;
  ASSERT_TRUE(net::AppendFrame(&ping_wire, ping.Serialize()).ok());
  ASSERT_TRUE(
      net::SendAll(fd->get(), ping_wire.data(), ping_wire.size()).ok());
  ASSERT_TRUE(net::RecvExact(fd->get(), header, 4).ok());
}

TEST_F(NetServerTest, FramingViolationClosesTheConnection) {
  net::NetServerOptions options;
  options.max_frame_bytes = 4096;
  StartServer(options);
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  Bytes header;
  AppendUint32(&header, 4097);  // over the server's cap
  ASSERT_TRUE(net::SendAll(fd->get(), header.data(), header.size()).ok());

  uint8_t byte;
  Status closed = net::RecvExact(fd->get(), &byte, 1);
  EXPECT_FALSE(closed.ok());
  EXPECT_GE(net_server_->stats().framing_errors, 1u);
}

TEST_F(NetServerTest, ConnectionLimitRejectsExcessClients) {
  net::NetServerOptions options;
  options.max_connections = 1;
  StartServer(options);

  auto first = Transport();
  ASSERT_TRUE(first->Ping().ok());  // registered with the loop

  auto second = Transport();  // TCP connect succeeds via the backlog...
  EXPECT_FALSE(second->Ping().ok());  // ...but the loop closes it at accept
  EXPECT_GE(net_server_->stats().rejected, 1u);

  // The first connection is unaffected.
  EXPECT_TRUE(first->Ping().ok());
}

TEST_F(NetServerTest, IdleConnectionsAreReaped) {
  net::NetServerOptions options;
  options.idle_timeout_ms = 100;
  StartServer(options);
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  // A silent connection must be closed by the server within a few
  // timeout periods; bound the wait so a regression fails, not hangs.
  timeval timeout{2, 0};
  ::setsockopt(fd->get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  uint8_t byte;
  ssize_t n = ::recv(fd->get(), &byte, 1, 0);
  EXPECT_EQ(n, 0) << "expected EOF from idle reaping";
  EXPECT_GE(net_server_->stats().timed_out, 1u);
}

TEST_F(NetServerTest, LargeInboundFrameUnderTinyWriteBudgetIsNotReaped) {
  // Regression: the read gate used to count partial-frame bytes against
  // the write budget, so an inbound frame larger than the budget could
  // never finish arriving — the connection stalled with a half-read
  // frame until the idle reaper killed it, despite a healthy peer
  // actively sending. The gate must pause on *complete-frame* backlog
  // only (partial bytes are separately bounded by max_frame_bytes).
  net::NetServerOptions options;
  options.max_pending_write_bytes = 64;  // far below the 8 KiB frame
  options.idle_timeout_ms = 200;
  StartServer(options);
  auto fd = net::ConnectTo("127.0.0.1", net_server_->port());
  ASSERT_TRUE(fd.ok());

  protocol::Envelope ping;
  ping.type = protocol::MessageType::kPing;
  ping.payload.assign(8192, 0xAB);
  Bytes wire;
  ASSERT_TRUE(net::AppendFrame(&wire, ping.Serialize()).ok());
  ASSERT_TRUE(net::SendAll(fd->get(), wire.data(), wire.size()).ok());

  // Bound the wait: a regression must fail the recv, not hang the test.
  timeval timeout{5, 0};
  ::setsockopt(fd->get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  net::FrameReader reader;
  uint8_t buf[512];  // drain slowly so the response stays over budget too
  Bytes pong_frame;
  for (;;) {
    ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection stalled or reaped mid-frame";
    ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)).ok());
    if (auto frame = reader.NextFrame()) {
      pong_frame = std::move(*frame);
      break;
    }
  }
  auto pong = protocol::Envelope::Parse(pong_frame);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, protocol::MessageType::kPong);
  EXPECT_EQ(pong->payload, ping.payload);
  EXPECT_EQ(net_server_->stats().timed_out, 0u);
}

TEST_F(NetServerTest, ReadWorkerPoolMatchesInProcessBaseline) {
  // read_workers > 0 routes complete frames through the worker pool
  // (snapshot reads concurrent, mutations serialized); results and
  // persisted state must stay byte-identical to the synchronous
  // in-process dispatch, even with concurrent clients interleaving.
  net::NetServerOptions options;
  options.read_workers = 2;
  server::ServerRuntimeOptions runtime;
  runtime.num_threads = 2;
  StartServer(options, runtime);

  constexpr size_t kClients = 3;
  std::vector<OpResults> remote_results(kClients);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &remote_results] {
      crypto::HmacDrbg rng("net-workers", i);
      client::Client client(ToBytes("worker-master-" + std::to_string(i)),
                            Transport()->AsTransport(), &rng);
      remote_results[i] = RunCanonicalOps(&client, "W" + std::to_string(i));
    });
  }
  for (auto& thread : threads) thread.join();

  server::UntrustedServer twin_server(runtime);
  std::vector<OpResults> local_results(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    crypto::HmacDrbg rng("net-workers", i);
    client::Client client(
        ToBytes("worker-master-" + std::to_string(i)),
        [&](const Bytes& request) {
          return twin_server.HandleRequest(request);
        },
        &rng);
    local_results[i] = RunCanonicalOps(&client, "W" + std::to_string(i));
  }
  for (size_t i = 0; i < kClients; ++i) {
    ExpectSameResults(remote_results[i], local_results[i]);
  }

  net_server_->Stop();
  std::string remote_path = TempPath("net_workers_remote.dbph");
  std::string local_path = TempPath("net_workers_local.dbph");
  ASSERT_TRUE(served_server_->SaveTo(remote_path).ok());
  ASSERT_TRUE(twin_server.SaveTo(local_path).ok());
  EXPECT_EQ(ReadFileBytes(remote_path), ReadFileBytes(local_path));
  std::remove(remote_path.c_str());
  std::remove(local_path.c_str());
}

TEST(NetDurabilityTest, PipelinedMutationsAnswerInOrderAndSurviveRestart) {
  // One TCP connection pipelines Insert / DeleteWhere / Select / kFlush
  // in a single burst against a durable deployment; responses must come
  // back strictly in request order and byte-identical to an in-process
  // twin. Then the deployment is killed (no Close) and a second server
  // opened on the same --persist directory must serve the mutated state
  // to a reattaching key holder.
  std::string dir = ::testing::TempDir() + "/net_durable_dir";
  std::filesystem::remove_all(dir);

  // Record the canonical op sequence against an in-process twin: the
  // exact request bytes to pipeline and the exact responses to expect.
  server::UntrustedServer twin;
  std::vector<Bytes> requests;
  std::vector<Bytes> responses;
  crypto::HmacDrbg rng("net-pipeline", 1);
  client::Client recorder(
      ToBytes("pipeline master"),
      [&](const Bytes& request) {
        Bytes response = twin.HandleRequest(request);
        requests.push_back(request);
        responses.push_back(response);
        return response;
      },
      &rng);
  ASSERT_TRUE(recorder.Outsource(BuildTable("P", 60)).ok());
  ASSERT_TRUE(recorder
                  .Insert("P", {rel::Tuple({Value::Str("new1"), Value::Int(3)}),
                                rel::Tuple({Value::Str("new2"), Value::Int(2)})})
                  .ok());
  auto twin_mid_select = recorder.Select("P", "grp", Value::Int(3));
  ASSERT_TRUE(twin_mid_select.ok());
  auto twin_removed = recorder.DeleteWhere("P", "grp", Value::Int(2));
  ASSERT_TRUE(twin_removed.ok());
  EXPECT_GT(*twin_removed, 0u);
  auto twin_final_select = recorder.Select("P", "grp", Value::Int(2));
  ASSERT_TRUE(twin_final_select.ok());
  EXPECT_TRUE(twin_final_select->empty());
  ASSERT_EQ(requests.size(), 5u);

  protocol::Envelope flush;
  flush.type = protocol::MessageType::kFlush;
  protocol::Envelope flush_ok;
  flush_ok.type = protocol::MessageType::kFlushOk;

  // The burst: store, insert, select, FLUSH, delete, select, FLUSH.
  std::vector<Bytes> burst_requests = {requests[0], requests[1], requests[2],
                                       flush.Serialize(),  requests[3],
                                       requests[4],        flush.Serialize()};
  std::vector<Bytes> expected = {responses[0],        responses[1],
                                 responses[2],        flush_ok.Serialize(),
                                 responses[3],        responses[4],
                                 flush_ok.Serialize()};

  server::DurableStoreOptions store_options;
  store_options.background_thread = false;
  {
    auto eve = std::make_unique<server::UntrustedServer>();
    auto store =
        std::make_unique<server::DurableStore>(eve.get(), dir, store_options);
    ASSERT_TRUE(store->Open().ok());
    net::NetServer net_server(eve.get());
    ASSERT_TRUE(net_server.Start().ok());

    auto fd = net::ConnectTo("127.0.0.1", net_server.port());
    ASSERT_TRUE(fd.ok());
    Bytes burst;
    for (const Bytes& request : burst_requests) {
      ASSERT_TRUE(net::AppendFrame(&burst, request).ok());
    }
    ASSERT_TRUE(net::SendAll(fd->get(), burst.data(), burst.size()).ok());

    net::FrameReader reader;
    uint8_t buf[8192];
    std::vector<Bytes> frames;
    while (frames.size() < expected.size()) {
      ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)).ok());
      while (auto frame = reader.NextFrame()) {
        frames.push_back(std::move(*frame));
      }
    }
    ASSERT_EQ(frames.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(frames[i], expected[i]) << "response " << i;
    }

    net_server.Stop();
    // kill -9: the store is destroyed without Close — no final
    // checkpoint, just whatever the (fsync=always) WAL holds.
  }

  // "Second dbph_serverd process" on the same persist dir.
  server::UntrustedServer restarted;
  server::DurableStore recovered(&restarted, dir, store_options);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_GT(recovered.stats().replayed_records, 0u);
  net::NetServer second(&restarted);
  ASSERT_TRUE(second.Start().ok());

  auto transport = net::TcpTransport::Connect("127.0.0.1", second.port());
  ASSERT_TRUE(transport.ok());
  crypto::HmacDrbg fresh_rng("net-pipeline-reattach", 2);
  client::Client reattached(ToBytes("pipeline master"),
                            (*transport)->AsTransport(), &fresh_rng);
  ASSERT_TRUE(reattached.Adopt("P", TableSchema()).ok());
  auto grp3 = reattached.Select("P", "grp", Value::Int(3));
  ASSERT_TRUE(grp3.ok());
  EXPECT_TRUE(grp3->SameTuples(*twin_mid_select));
  auto grp2 = reattached.Select("P", "grp", Value::Int(2));
  ASSERT_TRUE(grp2.ok());
  EXPECT_TRUE(grp2->empty());
  auto recalled = reattached.Recall("P");
  auto twin_recalled = recorder.Recall("P");
  ASSERT_TRUE(recalled.ok());
  ASSERT_TRUE(twin_recalled.ok());
  EXPECT_TRUE(recalled->SameTuples(*twin_recalled));
  second.Stop();
}

TEST_F(NetServerTest, StatsOverSocketCarrySeriesFromEveryLayer) {
  StartServer();
  crypto::HmacDrbg rng("net-stats", 1);
  client::Client client(ToBytes("stats master"), Transport()->AsTransport(),
                        &rng);
  ASSERT_TRUE(client.Outsource(BuildTable("S", 50)).ok());
  auto hit = client.Select("S", "grp", Value::Int(3));
  ASSERT_TRUE(hit.ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Dispatch layer: the outsource + select we just ran.
  ASSERT_TRUE(stats->counters.count("dbph_requests_total"));
  EXPECT_GE(stats->counters.at("dbph_requests_total"), 2u);
  ASSERT_TRUE(stats->histograms.count("dbph_select_seconds"));
  EXPECT_GE(stats->histograms.at("dbph_select_seconds").count, 1u);
  ASSERT_TRUE(stats->histograms.count("dbph_dispatch_lock_wait_seconds"));
  EXPECT_GE(stats->histograms.at("dbph_dispatch_lock_wait_seconds").count, 2u);
  // Net layer: this very connection shows up in its own snapshot.
  ASSERT_TRUE(stats->counters.count("dbph_net_connections_accepted_total"));
  EXPECT_GE(stats->counters.at("dbph_net_connections_accepted_total"), 1u);
  ASSERT_TRUE(stats->counters.count("dbph_net_frames_in_total"));
  EXPECT_GE(stats->counters.at("dbph_net_frames_in_total"), 2u);
  ASSERT_TRUE(stats->gauges.count("dbph_net_connections_open"));
  EXPECT_GE(stats->gauges.at("dbph_net_connections_open"), 1);
  // Index layer gauges registered by the served server.
  EXPECT_TRUE(stats->gauges.count("dbph_index_trapdoors"));
  EXPECT_TRUE(stats->gauges.count("dbph_server_relations"));
}

TEST_F(NetServerTest, MetricsPortServesPrometheusText) {
  net::NetServerOptions options;
  options.metrics_port = 0;  // ephemeral, reported via metrics_http_port()
  StartServer(options);
  ASSERT_NE(net_server_->metrics_http_port(), 0);

  crypto::HmacDrbg rng("net-scrape", 1);
  client::Client client(ToBytes("scrape master"), Transport()->AsTransport(),
                        &rng);
  ASSERT_TRUE(client.Outsource(BuildTable("M", 40)).ok());
  ASSERT_TRUE(client.Select("M", "grp", Value::Int(1)).ok());

  auto scrape = [&](const std::string& request) {
    auto fd = net::ConnectTo("127.0.0.1", net_server_->metrics_http_port());
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(net::SendAll(fd->get(),
                             reinterpret_cast<const uint8_t*>(request.data()),
                             request.size())
                    .ok());
    std::string page;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
      if (n <= 0) break;  // the responder closes after one exchange
      page.append(buf, static_cast<size_t>(n));
    }
    return page;
  };

  std::string page = scrape("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(page.find("text/plain"), std::string::npos);
  // One series from each instrumented layer, in Prometheus form.
  EXPECT_NE(page.find("# TYPE dbph_requests_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("dbph_net_frames_in_total"), std::string::npos);
  EXPECT_NE(page.find("dbph_select_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(page.find("dbph_dispatch_lock_wait_seconds_sum"),
            std::string::npos);
  EXPECT_NE(page.find("dbph_index_trapdoors"), std::string::npos);

  // Non-GET requests are refused without touching the store.
  std::string refused = scrape("POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(refused.find("405"), std::string::npos);

  // The scrape itself was counted.
  std::string again = scrape("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("dbph_net_metrics_scrapes_total"), std::string::npos);
  EXPECT_GE(net_server_->stats().metrics_scrapes, 2u);
}

TEST_F(NetServerTest, TransportReconnectsAfterServerRestart) {
  StartServer();
  auto transport = Transport();
  ASSERT_TRUE(transport->Ping().ok());

  net_server_->Stop();
  EXPECT_FALSE(transport->Ping().ok());

  // Restart on a fresh ephemeral port; a new transport works, proving
  // Stop released everything Start needs.
  net_server_ = std::make_unique<net::NetServer>(served_server_.get());
  ASSERT_TRUE(net_server_->Start().ok());
  auto fresh = Transport();
  EXPECT_TRUE(fresh->Ping().ok());
}

TEST_F(NetServerTest, TransportReconnectsAfterIdleClose) {
  net::NetServerOptions options;
  options.idle_timeout_ms = 80;
  StartServer(options);
  auto transport = Transport();
  ASSERT_TRUE(transport->Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The server reaped the connection. The first retry may fail: a send
  // into a half-closed socket can locally succeed, and once the request
  // might have reached the server the transport refuses to re-send
  // (at-most-once). The failure resets the socket, so the next call
  // reconnects cleanly and must succeed.
  Status first = transport->Ping();
  if (!first.ok()) {
    EXPECT_TRUE(transport->Ping().ok());
  }
}

}  // namespace
}  // namespace dbph
