#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/bucket/bucket_scheme.h"
#include "baselines/bucket/bucket_server.h"
#include "baselines/damiani/hash_scheme.h"
#include "baselines/plain/plain_engine.h"
#include "crypto/random.h"

namespace dbph {
namespace baseline {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema PayrollSchema() {
  auto s = Schema::Create({
      {"id", ValueType::kInt64, 10},
      {"salary", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation Payroll() {
  Relation r("Pay", PayrollSchema());
  EXPECT_TRUE(r.Insert({Value::Int(171), Value::Int(4900)}).ok());
  EXPECT_TRUE(r.Insert({Value::Int(481), Value::Int(1200)}).ok());
  EXPECT_TRUE(r.Insert({Value::Int(7), Value::Int(4900)}).ok());
  EXPECT_TRUE(r.Insert({Value::Int(99), Value::Int(7500)}).ok());
  return r;
}

// ---------- Partitioner ----------

TEST(PartitionerTest, EquiWidthBucketsCoverDomain) {
  auto p = Partitioner::EquiWidth(0, 1000, 10);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->BucketOf(Value::Int(0)), 0u);
  EXPECT_EQ(p->BucketOf(Value::Int(999)), 9u);
  EXPECT_EQ(p->BucketOf(Value::Int(500)), 5u);
  // Clamping outside the domain.
  EXPECT_EQ(p->BucketOf(Value::Int(-50)), 0u);
  EXPECT_EQ(p->BucketOf(Value::Int(99999)), 9u);
}

TEST(PartitionerTest, EquiWidthMonotone) {
  auto p = Partitioner::EquiWidth(0, 10000, 13);
  ASSERT_TRUE(p.ok());
  size_t prev = 0;
  for (int64_t v = 0; v <= 10000; v += 17) {
    size_t b = p->BucketOf(Value::Int(v));
    EXPECT_GE(b, prev);
    EXPECT_LT(b, 13u);
    prev = b;
  }
}

TEST(PartitionerTest, EquiDepthBalances) {
  // Heavily skewed data: equi-depth must still split it near-evenly.
  std::vector<int64_t> sample;
  for (int i = 0; i < 900; ++i) sample.push_back(i % 10);   // dense at 0-9
  for (int i = 0; i < 100; ++i) sample.push_back(1000 + i); // sparse tail
  auto p = Partitioner::EquiDepth(sample, 4);
  ASSERT_TRUE(p.ok());
  std::map<size_t, int> counts;
  for (int64_t v : sample) counts[p->BucketOf(Value::Int(v))]++;
  // No bucket should hold more than ~2x its fair share. (Quantile cuts on
  // heavily duplicated data cannot be exact.)
  for (const auto& [bucket, count] : counts) {
    EXPECT_LE(count, 2 * 1000 / 4) << "bucket " << bucket;
  }
}

TEST(PartitionerTest, HashDeterministicAndBounded) {
  auto p = Partitioner::Hash(7);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->BucketOf(Value::Str("x")), p->BucketOf(Value::Str("x")));
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(p->BucketOf(Value::Str("v" + std::to_string(i))), 7u);
  }
}

TEST(PartitionerTest, RangeBuckets) {
  auto p = Partitioner::EquiWidth(0, 100, 10);
  ASSERT_TRUE(p.ok());
  auto buckets = p->BucketsForRange(25, 47);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(*buckets, (std::vector<size_t>{2, 3, 4}));
  auto hash = Partitioner::Hash(4);
  ASSERT_TRUE(hash.ok());
  EXPECT_FALSE(hash->BucketsForRange(0, 1).ok());
}

// ---------- BucketScheme ----------

class BucketSchemeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<crypto::HmacDrbg>("bucket-test", 1);
    BucketOptions options;
    BucketAttributeConfig salary;
    salary.kind = PartitionKind::kEquiWidth;
    salary.lo = 0;
    salary.hi = 10000;
    salary.buckets = 20;
    options.attribute_configs["salary"] = salary;
    auto scheme = BucketScheme::Create(PayrollSchema(),
                                       ToBytes("bucket master"), options);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<BucketScheme>(std::move(*scheme));
  }

  std::unique_ptr<crypto::HmacDrbg> rng_;
  std::unique_ptr<BucketScheme> scheme_;
};

TEST_F(BucketSchemeTest, RoundTrip) {
  Relation pay = Payroll();
  auto enc = scheme_->EncryptRelation(pay, rng_.get());
  ASSERT_TRUE(enc.ok());
  ASSERT_EQ(enc->size(), pay.size());
  for (size_t i = 0; i < pay.size(); ++i) {
    auto dec = scheme_->DecryptTuple(enc->tuples[i]);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(*dec, pay.tuple(i));
  }
}

TEST_F(BucketSchemeTest, QueryReturnsSupersetFilterExact) {
  Relation pay = Payroll();
  auto enc = scheme_->EncryptRelation(pay, rng_.get());
  ASSERT_TRUE(enc.ok());
  auto label = scheme_->QueryLabel("salary", Value::Int(4900));
  ASSERT_TRUE(label.ok());

  std::vector<BucketTuple> hits;
  for (const auto& t : enc->tuples) {
    if (t.labels[1] == *label) hits.push_back(t);
  }
  // The bucket superset contains at least the two exact matches.
  EXPECT_GE(hits.size(), 2u);
  auto filtered = scheme_->DecryptAndFilter(hits, "salary", Value::Int(4900));
  ASSERT_TRUE(filtered.ok());
  auto expected = pay.Select("salary", Value::Int(4900));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(filtered->SameTuples(*expected));
}

TEST_F(BucketSchemeTest, DeterministicLabelsLeakEquality) {
  // The property the paper's attack exploits: equal plaintext values get
  // equal labels across independent encryptions.
  Tuple a({Value::Int(1), Value::Int(4900)});
  Tuple b({Value::Int(2), Value::Int(4900)});
  auto ea = scheme_->EncryptTuple(a, rng_.get());
  auto eb = scheme_->EncryptTuple(b, rng_.get());
  ASSERT_TRUE(ea.ok() && eb.ok());
  EXPECT_EQ(ea->labels[1], eb->labels[1]);   // same salary bucket
  EXPECT_NE(ea->payload, eb->payload);       // strong part differs
}

TEST_F(BucketSchemeTest, RangeQueryLabels) {
  auto labels = scheme_->QueryRangeLabels("salary", 1000, 2000);
  ASSERT_TRUE(labels.ok());
  EXPECT_GE(labels->size(), 2u);  // 500-wide buckets: at least 3 overlap
  // Every label must be the label of some bucket in range.
  auto l1200 = scheme_->QueryLabel("salary", Value::Int(1200));
  ASSERT_TRUE(l1200.ok());
  EXPECT_NE(std::find(labels->begin(), labels->end(), *l1200),
            labels->end());
}

TEST_F(BucketSchemeTest, EquiDepthFit) {
  BucketOptions options;
  BucketAttributeConfig salary;
  salary.kind = PartitionKind::kEquiDepth;
  salary.buckets = 2;
  options.attribute_configs["salary"] = salary;
  auto scheme = BucketScheme::Create(PayrollSchema(),
                                     ToBytes("ed master"), options);
  ASSERT_TRUE(scheme.ok());
  ASSERT_TRUE(scheme->FitEquiDepth(Payroll()).ok());
  auto lo = scheme->QueryLabel("salary", Value::Int(1200));
  auto hi = scheme->QueryLabel("salary", Value::Int(7500));
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_NE(*lo, *hi);
}

TEST_F(BucketSchemeTest, SchemaAndTypeValidation) {
  EXPECT_FALSE(scheme_->QueryLabel("missing", Value::Int(1)).ok());
  EXPECT_FALSE(scheme_->QueryLabel("salary", Value::Str("x")).ok());
  EXPECT_FALSE(BucketScheme::Create(PayrollSchema(), Bytes{}).ok());
}

// ---------- DamianiScheme ----------

TEST(DamianiSchemeTest, RoundTripAndExactLabels) {
  crypto::HmacDrbg rng("damiani-test", 2);
  DamianiOptions options;
  options.label_length = 8;  // collision-free in practice
  auto scheme =
      DamianiScheme::Create(PayrollSchema(), ToBytes("dm master"), options);
  ASSERT_TRUE(scheme.ok());
  Relation pay = Payroll();
  auto enc = scheme->EncryptRelation(pay, &rng);
  ASSERT_TRUE(enc.ok());

  for (size_t i = 0; i < pay.size(); ++i) {
    auto dec = scheme->DecryptTuple(enc->tuples[i]);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(*dec, pay.tuple(i));
  }

  auto label = scheme->QueryLabel("salary", Value::Int(4900));
  ASSERT_TRUE(label.ok());
  std::vector<HashedTuple> hits;
  for (const auto& t : enc->tuples) {
    if (t.labels[1] == *label) hits.push_back(t);
  }
  EXPECT_EQ(hits.size(), 2u);  // exact-value hash: no interval smearing
  auto filtered = scheme->DecryptAndFilter(hits, "salary", Value::Int(4900));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 2u);
}

TEST(DamianiSchemeTest, ShortLabelsCollide) {
  crypto::HmacDrbg rng("damiani-collide", 3);
  DamianiOptions options;
  options.label_length = 1;  // 256 possible labels
  auto scheme =
      DamianiScheme::Create(PayrollSchema(), ToBytes("dm master"), options);
  ASSERT_TRUE(scheme.ok());
  // 1000 distinct values into 256 labels must collide.
  std::set<Bytes> labels;
  int count = 0;
  for (int v = 0; v < 1000; ++v) {
    auto label = scheme->QueryLabel("salary", Value::Int(v));
    ASSERT_TRUE(label.ok());
    labels.insert(*label);
    ++count;
  }
  EXPECT_LT(labels.size(), static_cast<size_t>(count));
  EXPECT_LE(labels.size(), 256u);
}

// ---------- BucketServer / DamianiServer ----------

TEST_F(BucketSchemeTest, ServerSelectByLabel) {
  Relation pay = Payroll();
  auto enc = scheme_->EncryptRelation(pay, rng_.get());
  ASSERT_TRUE(enc.ok());
  BucketServer server(std::move(*enc));
  EXPECT_EQ(server.size(), pay.size());

  auto label = scheme_->QueryLabel("salary", Value::Int(4900));
  ASSERT_TRUE(label.ok());
  auto hits = server.SelectByLabel(1, *label);
  ASSERT_TRUE(hits.ok());
  EXPECT_GE(hits->size(), 2u);
  auto filtered = scheme_->DecryptAndFilter(*hits, "salary",
                                            Value::Int(4900));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 2u);

  EXPECT_FALSE(server.SelectByLabel(99, *label).ok());
}

TEST_F(BucketSchemeTest, ServerRangeSelect) {
  Relation pay = Payroll();
  auto enc = scheme_->EncryptRelation(pay, rng_.get());
  ASSERT_TRUE(enc.ok());
  BucketServer server(std::move(*enc));

  auto labels = scheme_->QueryRangeLabels("salary", 1000, 5000);
  ASSERT_TRUE(labels.ok());
  auto candidates = server.SelectByLabels(1, *labels);
  ASSERT_TRUE(candidates.ok());
  // Candidates must cover the true range hits: 1200, 4900, 4900.
  size_t in_range = 0;
  for (const auto& t : *candidates) {
    auto dec = scheme_->DecryptTuple(t);
    ASSERT_TRUE(dec.ok());
    int64_t salary = dec->at(1).AsInt();
    if (salary >= 1000 && salary <= 5000) ++in_range;
  }
  EXPECT_EQ(in_range, 3u);
}

TEST(DamianiServerTest, SelectByLabel) {
  crypto::HmacDrbg rng("damiani-server", 1);
  baseline::DamianiOptions options;
  options.label_length = 8;
  auto scheme =
      DamianiScheme::Create(PayrollSchema(), ToBytes("ds master"), options);
  ASSERT_TRUE(scheme.ok());
  Relation pay = Payroll();
  auto enc = scheme->EncryptRelation(pay, &rng);
  ASSERT_TRUE(enc.ok());
  DamianiServer server(std::move(*enc));

  auto label = scheme->QueryLabel("salary", Value::Int(4900));
  ASSERT_TRUE(label.ok());
  auto hits = server.SelectByLabel(1, *label);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_FALSE(server.SelectByLabel(7, *label).ok());
}

// ---------- PlainEngine ----------

TEST(PlainEngineTest, IndexAgreesWithScan) {
  crypto::HmacDrbg rng("plain-test", 4);
  Relation pay("Pay", PayrollSchema());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pay.Insert({Value::Int(i),
                            Value::Int(static_cast<int64_t>(
                                rng.NextBelow(50)) * 100)})
                    .ok());
  }
  auto engine = PlainEngine::Create(pay);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->size(), 500u);

  for (int64_t salary : {0, 100, 2500, 4900, 99999}) {
    auto indexed = engine->Select("salary", Value::Int(salary));
    auto scanned = engine->SelectScan("salary", Value::Int(salary));
    ASSERT_TRUE(indexed.ok() && scanned.ok());
    EXPECT_TRUE(indexed->SameTuples(*scanned)) << salary;
  }
}

TEST(PlainEngineTest, DeleteWhereMaintainsIndexes) {
  Relation pay = Payroll();
  auto engine = PlainEngine::Create(pay);
  ASSERT_TRUE(engine.ok());
  auto removed = engine->DeleteWhere("salary", Value::Int(4900));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2u);
  EXPECT_EQ(engine->size(), 2u);
  auto gone = engine->Select("salary", Value::Int(4900));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
  // Other keys still reachable through every index.
  auto left = engine->Select("id", Value::Int(481));
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->size(), 1u);
}

TEST(PlainEngineTest, InsertAfterCreate) {
  Relation pay = Payroll();
  auto engine = PlainEngine::Create(pay);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Insert(Tuple({Value::Int(555), Value::Int(4900)})).ok());
  auto hits = engine->Select("salary", Value::Int(4900));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);
}

}  // namespace
}  // namespace baseline
}  // namespace dbph
