// The obs layer's own contract: bucket math, wait-free recording under
// concurrency (run under TSan in CI), snapshot wire round-trips with
// attacker-controlled input rejection, and the Prometheus rendering.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/query_trace.h"

namespace dbph {
namespace obs {
namespace {

// ---------------------------------------------------------- bucket math

TEST(HistogramBucketsTest, IndexMatchesPowerOfTwoEdges) {
  // Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Values beyond the covered range clamp into the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumBuckets - 1);
}

TEST(HistogramBucketsTest, UpperBoundsAreInclusiveEdges) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  // Every value lands in a bucket whose upper bound covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65536ull, 999999ull}) {
    EXPECT_GE(Histogram::BucketUpperBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramTest, RecordAccumulatesCountSumMax) {
  Histogram h(Unit::kMicros);
  h.Record(10);
  h.Record(20);
  h.Record(3000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.unit, Unit::kMicros);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 3030u);
  EXPECT_EQ(snap.max, 3000u);
  EXPECT_EQ(snap.buckets.size(), Histogram::kNumBuckets);
}

TEST(HistogramTest, MergedDeltaMatchesDirectRecords) {
  // The batched path (HistogramDelta::Add then Histogram::Merge) must be
  // observationally identical to Record-per-value.
  const uint64_t values[] = {0, 1, 7, 60, 60, 61, 3000, 1ull << 39};
  Histogram direct(Unit::kMicros);
  Histogram merged(Unit::kMicros);
  HistogramDelta delta;
  for (uint64_t v : values) {
    direct.Record(v);
    delta.Add(v);
  }
  merged.Merge(delta);
  EXPECT_EQ(merged.Snapshot(), direct.Snapshot());

  // Merging again doubles everything; an empty delta is a no-op.
  merged.Merge(delta);
  HistogramSnapshot twice = merged.Snapshot();
  EXPECT_EQ(twice.count, 2 * direct.Snapshot().count);
  EXPECT_EQ(twice.sum, 2 * direct.Snapshot().sum);
  EXPECT_EQ(twice.max, direct.Snapshot().max);
  merged.Merge(HistogramDelta{});
  EXPECT_EQ(merged.Snapshot(), twice);
}

TEST(HistogramTest, QuantilesAreBucketUpperBoundsClampedToMax) {
  Histogram h(Unit::kCount);
  for (int i = 0; i < 99; ++i) h.Record(1);
  h.Record(5);  // the single largest value
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.P50(), 1u);
  EXPECT_EQ(snap.P95(), 1u);
  // p99's rank falls in the top bucket; the estimate is that bucket's
  // upper edge clamped to the exact max — never above a recorded value.
  EXPECT_EQ(snap.P99(), 1u);
  EXPECT_EQ(snap.Quantile(1.0), 5u);
  EXPECT_DOUBLE_EQ(snap.Mean(), (99.0 * 1 + 5) / 100.0);

  HistogramSnapshot empty = Histogram(Unit::kCount).Snapshot();
  EXPECT_EQ(empty.P50(), 0u);
  EXPECT_EQ(empty.Quantile(1.0), 0u);
}

// ---------------------------------------------------------- concurrency

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  // Wait-free recording: N threads hammering one histogram (and one
  // counter) must account for every event. Run under TSan in CI.
  Histogram h(Unit::kCount);
  Counter counter;
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i % 1000));
        counter.Add();
        gauge.Set(t);
        if (i % 128 == 0) (void)h.Snapshot();  // readers race writers
      }
    });
  }
  for (auto& thread : threads) thread.join();

  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucketed = 0;
  for (uint64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
  EXPECT_EQ(snap.max, 999u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsStable) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Counter* c = registry.GetCounter("shared_total");
      c->Add();
      seen[static_cast<size_t>(t)] = c;
      registry.GetHistogram("h_" + std::to_string(t % 3), Unit::kMicros)
          ->Record(static_cast<uint64_t>(t));
    });
  }
  for (auto& thread : threads) thread.join();
  // One name, one instrument: every thread got the same pointer and no
  // increment was lost.
  for (Counter* c : seen) EXPECT_EQ(c, seen[0]);
  EXPECT_EQ(seen[0]->Value(), 8u);
  EXPECT_EQ(registry.Snapshot().histograms.size(), 3u);
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, NamesAreStableAndKindSafe) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("requests_total");
  EXPECT_EQ(registry.GetCounter("requests_total"), counter);
  Histogram* histogram = registry.GetHistogram("latency", Unit::kMicros);
  // Re-requesting with a different unit returns the existing instrument
  // unchanged — the first registration wins.
  EXPECT_EQ(registry.GetHistogram("latency", Unit::kCount), histogram);
  EXPECT_EQ(histogram->unit(), Unit::kMicros);

  counter->Add(7);
  registry.GetGauge("level")->Set(-3);
  histogram->Record(100);
  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("requests_total"), 7u);
  EXPECT_EQ(snap.gauges.at("level"), -3);
  EXPECT_EQ(snap.histograms.at("latency").count, 1u);
}

// ------------------------------------------------------------ wire form

TEST(RegistrySnapshotTest, WireRoundTripIsLossless) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Add(42);
  registry.GetGauge("b")->Set(-17);
  Histogram* h = registry.GetHistogram("c_seconds", Unit::kMicros);
  h->Record(0);
  h->Record(5);
  h->Record(123456);
  RegistrySnapshot original = registry.Snapshot();

  Bytes wire;
  original.AppendTo(&wire);
  ByteReader reader(wire);
  auto parsed = RegistrySnapshot::ReadFrom(&reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(parsed->counters, original.counters);
  EXPECT_EQ(parsed->gauges, original.gauges);
  ASSERT_EQ(parsed->histograms.size(), original.histograms.size());
  EXPECT_EQ(parsed->histograms.at("c_seconds"),
            original.histograms.at("c_seconds"));
}

TEST(RegistrySnapshotTest, InfoSeriesRoundTripAndRender) {
  // Info-style series (constant 1 with identifying labels, e.g.
  // dbph_build_info) travel in an optional trailing section: they round
  // trip losslessly, and a pre-info snapshot (no trailing bytes) still
  // parses — backward compatibility with older servers.
  MetricsRegistry registry;
  registry.GetCounter("dbph_requests_total")->Add(1);
  registry.SetInfo("dbph_build_info",
                   "version=\"0.7\",revision=\"abc1234\"");
  RegistrySnapshot original = registry.Snapshot();

  Bytes wire;
  original.AppendTo(&wire);
  ByteReader reader(wire);
  auto parsed = RegistrySnapshot::ReadFrom(&reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(parsed->infos, original.infos);

  std::string page = original.RenderPrometheus();
  EXPECT_NE(page.find("# TYPE dbph_build_info gauge"), std::string::npos);
  EXPECT_NE(
      page.find("dbph_build_info{version=\"0.7\",revision=\"abc1234\"} 1"),
      std::string::npos);

  // Old wire form: a snapshot serialized without the infos section.
  MetricsRegistry plain;
  plain.GetCounter("a_total")->Add(2);
  RegistrySnapshot no_infos = plain.Snapshot();
  Bytes old_wire;
  no_infos.AppendTo(&old_wire);
  // The infos section is the trailing (count, entries...) block; an old
  // peer simply would not send it. Snip it off and the parse must still
  // succeed with empty infos.
  old_wire.resize(old_wire.size() - 4);  // empty section == one uint32 0
  ByteReader old_reader(old_wire);
  auto old_parsed = RegistrySnapshot::ReadFrom(&old_reader);
  ASSERT_TRUE(old_parsed.ok()) << old_parsed.status().ToString();
  EXPECT_TRUE(old_parsed->infos.empty());
  EXPECT_EQ(old_parsed->counters.at("a_total"), 2u);
}

TEST(RegistrySnapshotTest, RejectsHostileInfoCounts) {
  // An attacker-claimed million infos in a four-byte tail must fail
  // closed before allocation, like every other section count.
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Add(1);
  RegistrySnapshot snapshot = registry.Snapshot();
  Bytes wire;
  snapshot.AppendTo(&wire);
  // Replace the trailing empty infos section (uint32 0) with a huge count.
  wire.resize(wire.size() - 4);
  AppendUint32(&wire, 1000000);
  ByteReader reader(wire);
  EXPECT_FALSE(RegistrySnapshot::ReadFrom(&reader).ok());
}

TEST(RegistrySnapshotTest, RejectsCountsBeyondPayload) {
  // The snapshot parser sees attacker-controlled bytes (any peer can
  // claim to be a server): declared counts must be validated against the
  // physical payload before any allocation.
  Bytes wire;
  AppendUint32(&wire, 1000000);  // one million counters in four bytes
  ByteReader reader(wire);
  auto parsed = RegistrySnapshot::ReadFrom(&reader);
  EXPECT_FALSE(parsed.ok());

  // A histogram claiming more buckets than the payload (or the type) holds.
  MetricsRegistry registry;
  registry.GetHistogram("h", Unit::kCount)->Record(1);
  Bytes good;
  registry.Snapshot().AppendTo(&good);
  Bytes truncated(good.begin(), good.end() - 9);
  ByteReader truncated_reader(truncated);
  EXPECT_FALSE(RegistrySnapshot::ReadFrom(&truncated_reader).ok());
}

// ----------------------------------------------------------- renderings

TEST(RegistrySnapshotTest, PrometheusRenderingCoversEverySeries) {
  MetricsRegistry registry;
  registry.GetCounter("dbph_requests_total")->Add(3);
  registry.GetGauge("dbph_net_connections_open")->Set(2);
  Histogram* h = registry.GetHistogram("dbph_select_seconds", Unit::kMicros);
  h->Record(1000000);  // one second
  std::string page = registry.Snapshot().RenderPrometheus();

  EXPECT_NE(page.find("# TYPE dbph_requests_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("dbph_requests_total 3"), std::string::npos);
  EXPECT_NE(page.find("# TYPE dbph_net_connections_open gauge"),
            std::string::npos);
  EXPECT_NE(page.find("dbph_net_connections_open 2"), std::string::npos);
  EXPECT_NE(page.find("# TYPE dbph_select_seconds histogram"),
            std::string::npos);
  EXPECT_NE(page.find("dbph_select_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  // Micros scale to seconds in the exported sum.
  EXPECT_NE(page.find("dbph_select_seconds_sum 1"), std::string::npos);
  EXPECT_NE(page.find("dbph_select_seconds_count 1"), std::string::npos);
}

TEST(RegistrySnapshotTest, TextRenderingIsHumanReadable) {
  MetricsRegistry registry;
  registry.GetCounter("dbph_requests_total")->Add(5);
  registry.GetHistogram("dbph_select_seconds", Unit::kMicros)->Record(250);
  std::string text = registry.Snapshot().RenderText();
  EXPECT_NE(text.find("dbph_requests_total"), std::string::npos);
  EXPECT_NE(text.find("5"), std::string::npos);
  EXPECT_NE(text.find("dbph_select_seconds"), std::string::npos);
}

TEST(RegistrySnapshotTest, SecondsSeriesRenderAsSecondsOnEverySurface) {
  // The unit is carried on the wire, so a consumer that round-trips the
  // snapshot renders identically to one holding the original — and a
  // `_seconds`-named series means seconds on every surface, never raw
  // micros leaking through one rendering but not another.
  MetricsRegistry registry;
  registry.GetHistogram("dbph_select_seconds", Unit::kMicros)
      ->Record(2000000);  // exactly two seconds
  registry.GetHistogram("dbph_select_result_size", Unit::kCount)->Record(42);

  Bytes wire;
  registry.Snapshot().AppendTo(&wire);
  ByteReader reader(wire);
  auto round_tripped = RegistrySnapshot::ReadFrom(&reader);
  ASSERT_TRUE(round_tripped.ok());
  ASSERT_EQ(round_tripped->histograms.at("dbph_select_seconds").unit,
            Unit::kMicros);
  ASSERT_EQ(round_tripped->histograms.at("dbph_select_result_size").unit,
            Unit::kCount);

  for (const RegistrySnapshot& snap :
       {registry.Snapshot(), *round_tripped}) {
    std::string prom = snap.RenderPrometheus();
    EXPECT_NE(prom.find("dbph_select_seconds_sum 2"), std::string::npos);
    EXPECT_EQ(prom.find("dbph_select_seconds_sum 2000000"),
              std::string::npos);

    std::string text = snap.RenderText();
    // count / mean / ... — the mean of one 2s recording is exactly 2.
    EXPECT_NE(text.find("dbph_select_seconds = 1 / 2."), std::string::npos);
    EXPECT_EQ(text.find("2000000"), std::string::npos);
    // kCount series stay raw on both surfaces.
    EXPECT_NE(text.find("dbph_select_result_size = 1 / 42"),
              std::string::npos);
    EXPECT_NE(prom.find("dbph_select_result_size_sum 42"),
              std::string::npos);
  }
}

// ---------------------------------------------------------- query trace

TEST(QueryTraceTest, DescribeRedactsEverythingButMetadata) {
  QueryTrace trace;
  trace.op = "select";
  trace.relation = "patients";
  trace.total_micros = 1500;
  trace.parse_micros = 10;
  trace.lock_wait_micros = 2;
  trace.plan_micros = 3;
  trace.execute_micros = 1400;
  trace.execute_scan_micros = 1100;
  trace.execute_index_micros = 300;
  trace.proof_micros = 50;
  trace.serialize_micros = 35;
  trace.used_index = true;
  trace.result_size = 12;
  trace.match_evals = 200000;
  std::string line = trace.Describe();
  // Metadata only: operation, relation name, timings, path, counts.
  EXPECT_NE(line.find("op=select"), std::string::npos);
  EXPECT_NE(line.find("relation=patients"), std::string::npos);
  EXPECT_NE(line.find("total_us=1500"), std::string::npos);
  // The execute stage splits by access path when either path ran...
  EXPECT_NE(line.find("execute_scan_us=1100"), std::string::npos);
  EXPECT_NE(line.find("execute_index_us=300"), std::string::npos);
  EXPECT_NE(line.find("path=index"), std::string::npos);
  EXPECT_NE(line.find("match_evals=200000"), std::string::npos);
  EXPECT_NE(line.find("results=12"), std::string::npos);

  // ...and stays short for ops that planned nothing.
  QueryTrace ping;
  ping.op = "ping";
  ping.total_micros = 3;
  EXPECT_EQ(ping.Describe().find("execute_scan_us"), std::string::npos);
  EXPECT_EQ(ping.Describe().find("match_evals"), std::string::npos);

  trace.Reset();
  EXPECT_EQ(trace.total_micros, 0u);
  EXPECT_EQ(trace.result_size, 0u);
  EXPECT_FALSE(trace.used_index);
}

TEST(QueryTraceTest, ScopedStageTimerAccumulates) {
  uint64_t slot = 0;
  {
    ScopedStageTimer timer(&slot);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  // Can't assert much about wall time; it must at least have written.
  uint64_t first = slot;
  {
    ScopedStageTimer timer(&slot);
  }
  EXPECT_GE(slot, first);
  ScopedStageTimer null_timer(nullptr);  // null slot must be a no-op
}

}  // namespace
}  // namespace obs
}  // namespace dbph
