// Robustness tests: the server and all deserializers must survive
// arbitrary byte garbage — returning errors, never crashing or accepting
// malformed structures. A production outsourcing server is an internet-
// facing parser; this is its adversarial-input suite.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "client/client.h"
#include "crypto/random.h"
#include "dbph/encrypted_relation.h"
#include "net/frame.h"
#include "protocol/messages.h"
#include "server/untrusted_server.h"
#include "storage/wal.h"
#include "swp/scheme.h"

namespace dbph {
namespace {

using rel::Value;
using rel::ValueType;

TEST(ProtocolFuzzTest, RandomBytesAlwaysGetErrorEnvelopes) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-random", 1);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.NextBelow(200);
    Bytes garbage = rng.NextBytes(len);
    Bytes response = server.HandleRequest(garbage);
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok()) << "server returned unparseable bytes";
    EXPECT_EQ(envelope->type, protocol::MessageType::kError);
  }
}

TEST(ProtocolFuzzTest, ValidTypeBytesWithGarbagePayloads) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-typed", 2);
  for (uint8_t type = 1; type <= protocol::kMaxMessageType; ++type) {
    for (int i = 0; i < 200; ++i) {
      protocol::Envelope request;
      request.type = static_cast<protocol::MessageType>(type);
      request.payload = rng.NextBytes(rng.NextBelow(120));
      Bytes response = server.HandleRequest(request.Serialize());
      auto envelope = protocol::Envelope::Parse(response);
      ASSERT_TRUE(envelope.ok());
      // Whatever happens, it must be a well-formed reply. Random payloads
      // never decode into valid requests, so: error — except kPing, whose
      // payload is an opaque cookie echoed back verbatim, and kFlush,
      // which is payload-free (an empty random payload is a valid flush).
      if (request.type == protocol::MessageType::kPing) {
        EXPECT_EQ(envelope->type, protocol::MessageType::kPong);
        EXPECT_EQ(envelope->payload, request.payload);
      } else if (request.type == protocol::MessageType::kFlush &&
                 request.payload.empty()) {
        EXPECT_EQ(envelope->type, protocol::MessageType::kFlushOk);
      } else {
        EXPECT_EQ(envelope->type, protocol::MessageType::kError);
      }
    }
  }
}

TEST(ProtocolFuzzTest, TruncatedRealMessages) {
  // Build one real message of each kind, then replay every prefix.
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-truncate", 3);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());

  client::Client client(
      ToBytes("fuzz master"),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  rel::Relation table("T", *schema);
  ASSERT_TRUE(table.Insert({Value::Str("hello")}).ok());

  // Capture the wire bytes by interposing a recording transport.
  std::vector<Bytes> recorded;
  client::Client recorder(
      ToBytes("fuzz master"),
      [&](const Bytes& request) {
        recorded.push_back(request);
        return server.HandleRequest(request);
      },
      &rng);
  ASSERT_TRUE(recorder.Outsource(table).ok());
  ASSERT_TRUE(recorder.Select("T", "v", Value::Str("hello")).ok());

  for (const Bytes& message : recorded) {
    for (size_t cut = 0; cut < message.size();
         cut += std::max<size_t>(1, message.size() / 37)) {
      Bytes truncated(message.begin(),
                      message.begin() + static_cast<long>(cut));
      Bytes response = server.HandleRequest(truncated);
      auto envelope = protocol::Envelope::Parse(response);
      ASSERT_TRUE(envelope.ok());
      EXPECT_EQ(envelope->type, protocol::MessageType::kError)
          << "prefix of length " << cut << " was accepted";
    }
  }
}

TEST(ProtocolFuzzTest, BitflippedStoreStillHandled) {
  // Flip single bits in a valid kStoreRelation message; the server must
  // either reject it or store something — but never crash, and always
  // answer in protocol.
  server::UntrustedServer sink;  // throwaway server per flip
  crypto::HmacDrbg rng("fuzz-bitflip", 4);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());
  rel::Relation table("T", *schema);
  ASSERT_TRUE(table.Insert({Value::Str("payload")}).ok());

  Bytes wire;
  {
    std::vector<Bytes> recorded;
    server::UntrustedServer tmp;
    client::Client recorder(
        ToBytes("fuzz master"),
        [&](const Bytes& request) {
          recorded.push_back(request);
          return tmp.HandleRequest(request);
        },
        &rng);
    ASSERT_TRUE(recorder.Outsource(table).ok());
    wire = recorded.at(0);
  }

  for (size_t bit = 0; bit < wire.size() * 8; bit += 7) {
    Bytes mutated = wire;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    server::UntrustedServer fresh;
    Bytes response = fresh.HandleRequest(mutated);
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok()) << "bit " << bit;
  }
}

TEST(ProtocolFuzzTest, MalformedBatchEnvelopes) {
  server::UntrustedServer server;
  auto expect_error = [&server](const Bytes& payload) {
    protocol::Envelope request;
    request.type = protocol::MessageType::kBatchRequest;
    request.payload = payload;
    Bytes response = server.HandleRequest(request.Serialize());
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok());
    EXPECT_EQ(envelope->type, protocol::MessageType::kError);
  };

  // Empty payload / truncated count.
  expect_error(Bytes{});
  expect_error(Bytes{0x00, 0x00});
  // Zero sub-envelopes.
  {
    Bytes payload;
    AppendUint32(&payload, 0);
    expect_error(payload);
  }
  // Count bomb: claims 2^32-1 parts; must be rejected, not allocated.
  {
    Bytes payload;
    AppendUint32(&payload, 0xffffffffu);
    expect_error(payload);
  }
  // Count beyond kMaxBatchParts with no data behind it.
  {
    Bytes payload;
    AppendUint32(&payload, protocol::kMaxBatchParts + 1);
    expect_error(payload);
  }
  // Count claims more parts than are present.
  {
    protocol::Envelope sub;
    sub.type = protocol::MessageType::kFetchRelation;
    sub.payload = ToBytes("T");
    Bytes payload;
    AppendUint32(&payload, 2);
    AppendLengthPrefixed(&payload, sub.Serialize());
    expect_error(payload);
  }
  // Sub-envelope that is itself garbage.
  {
    Bytes payload;
    AppendUint32(&payload, 1);
    AppendLengthPrefixed(&payload, ToBytes("not an envelope"));
    expect_error(payload);
  }
  // Nested batch: one level deep only.
  {
    protocol::Envelope inner;
    inner.type = protocol::MessageType::kBatchRequest;
    inner.payload = protocol::SerializeBatchPayload({});
    Bytes payload;
    AppendUint32(&payload, 1);
    AppendLengthPrefixed(&payload, inner.Serialize());
    expect_error(payload);
  }
  // Trailing bytes after the declared parts.
  {
    protocol::Envelope sub;
    sub.type = protocol::MessageType::kFetchRelation;
    sub.payload = ToBytes("T");
    Bytes payload;
    AppendUint32(&payload, 1);
    AppendLengthPrefixed(&payload, sub.Serialize());
    payload.push_back(0xff);
    expect_error(payload);
  }
}

TEST(ProtocolFuzzTest, BatchWithGarbageSubPayloadsAnswersPerPart) {
  // A well-framed batch whose sub-requests are undecodable must still
  // produce a kBatchResponse with one kError per failed part — framing
  // errors are batch-fatal, semantic errors are per-operation.
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-batch", 8);
  std::vector<protocol::Envelope> parts;
  for (int i = 0; i < 5; ++i) {
    protocol::Envelope part;
    part.type = protocol::MessageType::kSelect;
    part.payload = rng.NextBytes(rng.NextBelow(40));
    parts.push_back(std::move(part));
  }
  protocol::Envelope request;
  request.type = protocol::MessageType::kBatchRequest;
  request.payload = protocol::SerializeBatchPayload(parts);
  Bytes response = server.HandleRequest(request.Serialize());
  auto envelope = protocol::Envelope::Parse(response);
  ASSERT_TRUE(envelope.ok());
  ASSERT_EQ(envelope->type, protocol::MessageType::kBatchResponse);
  auto replies = protocol::ParseBatchPayload(envelope->payload);
  ASSERT_TRUE(replies.ok());
  ASSERT_EQ(replies->size(), parts.size());
  for (const auto& reply : *replies) {
    EXPECT_EQ(reply.type, protocol::MessageType::kError);
  }
}

TEST(ProtocolFuzzTest, RandomlyFramedBatchesNeverCrash) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-batch-frame", 9);
  for (int i = 0; i < 500; ++i) {
    protocol::Envelope request;
    request.type = protocol::MessageType::kBatchRequest;
    request.payload = rng.NextBytes(rng.NextBelow(150));
    Bytes response = server.HandleRequest(request.Serialize());
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok());
    // Either batch-fatal error or a well-formed batch response.
    EXPECT_TRUE(envelope->type == protocol::MessageType::kError ||
                envelope->type == protocol::MessageType::kBatchResponse);
  }
}

TEST(DeserializerFuzzTest, EncryptedRelationRejectsGarbage) {
  crypto::HmacDrbg rng("fuzz-rel", 5);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(100));
    ByteReader reader(garbage);
    auto parsed = core::EncryptedRelation::ReadFrom(&reader);
    // Either a parse error, or a (vacuously valid) structure — the point
    // is memory safety; any crash fails the test run.
    (void)parsed;
  }
}

TEST(DeserializerFuzzTest, TrapdoorAndDocumentRejectGarbage) {
  crypto::HmacDrbg rng("fuzz-td", 6);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(60));
    {
      ByteReader reader(garbage);
      (void)swp::Trapdoor::ReadFrom(&reader);
    }
    {
      ByteReader reader(garbage);
      (void)swp::EncryptedDocument::ReadFrom(&reader);
    }
  }
}

TEST(DeserializerFuzzTest, LengthPrefixBombRejected) {
  // A claimed 4 GiB payload must be rejected by bounds checks, not
  // allocated.
  Bytes bomb;
  bomb.push_back(static_cast<uint8_t>(protocol::MessageType::kSelect));
  AppendUint32(&bomb, 0xffffffffu);  // envelope payload length
  server::UntrustedServer server;
  Bytes response = server.HandleRequest(bomb);
  auto envelope = protocol::Envelope::Parse(response);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->type, protocol::MessageType::kError);
}

TEST(DeserializerFuzzTest, EnvelopeLengthAboveFrameCapRejected) {
  // The shared kMaxFrameBytes cap applies at the envelope layer too: a
  // length prefix above it fails before any allocation, even if the
  // declared bytes "were" present (here they are not — but the cap check
  // must fire first, which the distinct error message pins down).
  Bytes wire;
  wire.push_back(static_cast<uint8_t>(protocol::MessageType::kPing));
  AppendUint32(&wire, protocol::kMaxFrameBytes + 1);
  auto parsed = protocol::Envelope::Parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("kMaxFrameBytes"),
            std::string::npos);
}

TEST(ProtocolFuzzTest, PingEchoesArbitraryCookies) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-ping", 10);
  for (int i = 0; i < 300; ++i) {
    protocol::Envelope ping;
    ping.type = protocol::MessageType::kPing;
    ping.payload = rng.NextBytes(rng.NextBelow(200));
    auto pong = protocol::Envelope::Parse(server.HandleRequest(ping.Serialize()));
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->type, protocol::MessageType::kPong);
    EXPECT_EQ(pong->payload, ping.payload);
  }
  // Health checks are keys-free and leave no observations behind.
  EXPECT_TRUE(server.observations().queries().empty());
  EXPECT_TRUE(server.observations().stores().empty());
}

TEST(FrameFuzzTest, RandomStreamChunksNeverCrashTheReader) {
  // Arbitrary garbage fed in arbitrary chunkings: the reader either
  // assembles (garbage) frames — each bounded by the cap — or poisons
  // itself; it must never crash or hand out a frame above the cap.
  crypto::HmacDrbg rng("fuzz-frame", 11);
  for (int trial = 0; trial < 200; ++trial) {
    net::FrameReader reader(/*max_frame_bytes=*/512);
    bool poisoned = false;
    for (int chunk = 0; chunk < 20 && !poisoned; ++chunk) {
      Bytes garbage = rng.NextBytes(rng.NextBelow(64));
      poisoned = !reader.Feed(garbage.data(), garbage.size()).ok();
      while (auto frame = reader.NextFrame()) {
        EXPECT_LE(frame->size(), 512u);
      }
    }
  }
}

TEST(FrameFuzzTest, TruncatedFramesYieldNothingAndKeepState) {
  // Every strict prefix of a valid frame stream produces only the frames
  // fully contained in it — never a partial or invented frame.
  Bytes wire;
  ASSERT_TRUE(net::AppendFrame(&wire, ToBytes("alpha")).ok());
  ASSERT_TRUE(net::AppendFrame(&wire, ToBytes("beta")).ok());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    net::FrameReader reader;
    ASSERT_TRUE(reader.Feed(wire.data(), cut).ok());
    size_t complete = 0;
    while (reader.NextFrame()) ++complete;
    size_t expected = cut >= 9 ? 1 : 0;  // frame one is 4 + 5 bytes
    EXPECT_EQ(complete, expected) << "cut at " << cut;
  }
}

// ---------------- WAL record parsing (recovery is a parser too) -------------

TEST(WalFuzzTest, RandomBuffersNeverCrashAndYieldBoundedPrefixes) {
  // A WAL file after a crash is arbitrary bytes; ScanBuffer must never
  // crash, never report a prefix longer than the buffer, and never hand
  // out a record above the frame cap.
  crypto::HmacDrbg rng("fuzz-wal", 20);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(300));
    auto scan = storage::WriteAheadLog::ScanBuffer(garbage);
    EXPECT_LE(scan.valid_bytes, garbage.size());
    EXPECT_EQ(scan.torn_tail, scan.valid_bytes != garbage.size());
    for (const auto& record : scan.records) {
      EXPECT_LE(record.payload.size(), protocol::kMaxFrameBytes);
    }
  }
}

TEST(WalFuzzTest, OversizedLengthRejectedBeforeAllocation) {
  // A record claiming a 4 GiB (or just-over-cap) payload must stop the
  // scan at that offset — the length is checked against
  // protocol::kMaxFrameBytes before anything is allocated, exactly like
  // Envelope::Parse.
  for (uint32_t declared : {protocol::kMaxFrameBytes + 1, 0xffffffffu}) {
    Bytes image;
    AppendUint32(&image, declared);
    AppendUint32(&image, 0xdeadbeef);  // crc (never reached)
    AppendUint64(&image, 1);           // lsn
    image.resize(image.size() + 64, 0xab);
    auto scan = storage::WriteAheadLog::ScanBuffer(image);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_EQ(scan.valid_bytes, 0u);
    EXPECT_TRUE(scan.torn_tail);
  }
}

TEST(WalFuzzTest, ZeroLengthRecordsAreValid) {
  // An empty payload is a legal record (the CRC still covers the LSN).
  Bytes covered;
  AppendUint64(&covered, 7);  // lsn
  Bytes image;
  AppendUint32(&image, 0);  // zero-length payload
  AppendUint32(&image, storage::Crc32(covered));
  image.insert(image.end(), covered.begin(), covered.end());
  auto scan = storage::WriteAheadLog::ScanBuffer(image);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].lsn, 7u);
  EXPECT_TRUE(scan.records[0].payload.empty());
  EXPECT_FALSE(scan.torn_tail);

  // ...but a zero-length record with a wrong CRC is a corrupt tail.
  image[7] ^= 0x01;
  auto bad = storage::WriteAheadLog::ScanBuffer(image);
  EXPECT_TRUE(bad.records.empty());
  EXPECT_TRUE(bad.torn_tail);
}

TEST(WalFuzzTest, GarbageTailAfterValidRecordsIsTruncatedNotFatal) {
  std::string path = ::testing::TempDir() + "/fuzz_wal.log";
  std::remove(path.c_str());
  size_t clean_bytes = 0;
  {
    auto wal = storage::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(1, ToBytes("alpha")).ok());
    ASSERT_TRUE(wal->Append(2, ToBytes("beta")).ok());
    clean_bytes = wal->size_bytes();
  }
  // Splatter garbage after the valid records (a torn append).
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\xff\x01garbage tail";
  }
  auto scan = storage::WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->valid_bytes, clean_bytes);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(ToString(scan->records[0].payload), "alpha");
  EXPECT_EQ(ToString(scan->records[1].payload), "beta");

  // Re-opening truncates the tail and appends continue cleanly.
  {
    auto reopened = storage::WriteAheadLog::Open(path);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened->recovered_torn_tail());
    EXPECT_EQ(reopened->size_bytes(), clean_bytes);
    ASSERT_TRUE(reopened->Append(3, ToBytes("gamma")).ok());
  }
  auto final_scan = storage::WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(final_scan.ok());
  EXPECT_EQ(final_scan->records.size(), 3u);
  EXPECT_FALSE(final_scan->torn_tail);
  std::remove(path.c_str());
}

TEST(WalFuzzTest, EveryPrefixOfAValidLogYieldsOnlyWholeRecords) {
  std::string path = ::testing::TempDir() + "/fuzz_wal_prefix.log";
  std::remove(path.c_str());
  std::vector<size_t> boundaries{0};
  {
    auto wal = storage::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(wal->Append(i, ToBytes("record-" + std::to_string(i))).ok());
      boundaries.push_back(wal->size_bytes());
    }
  }
  std::ifstream in(path, std::ios::binary);
  Bytes image((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  ASSERT_EQ(image.size(), boundaries.back());
  for (size_t cut = 0; cut <= image.size(); ++cut) {
    Bytes prefix(image.begin(), image.begin() + static_cast<long>(cut));
    auto scan = storage::WriteAheadLog::ScanBuffer(prefix);
    size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= cut) {
      ++expected;
    }
    EXPECT_EQ(scan.records.size(), expected) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, boundaries[expected]) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(FrameFuzzTest, OversizedAndGarbageHeadersPoisonPermanently) {
  crypto::HmacDrbg rng("fuzz-frame-hdr", 12);
  for (uint32_t declared :
       {uint32_t{4097}, uint32_t{1u << 20}, 0xffffffffu}) {
    net::FrameReader reader(/*max_frame_bytes=*/4096);
    Bytes header;
    AppendUint32(&header, declared);
    EXPECT_FALSE(reader.Feed(header.data(), header.size()).ok())
        << declared;
    // Whatever arrives later, the reader stays dead and yields nothing.
    Bytes more = rng.NextBytes(32);
    EXPECT_FALSE(reader.Feed(more.data(), more.size()).ok());
    EXPECT_FALSE(reader.NextFrame().has_value());
  }
}

}  // namespace
}  // namespace dbph
