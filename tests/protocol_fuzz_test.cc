// Robustness tests: the server and all deserializers must survive
// arbitrary byte garbage — returning errors, never crashing or accepting
// malformed structures. A production outsourcing server is an internet-
// facing parser; this is its adversarial-input suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "client/client.h"
#include "crypto/merkle.h"
#include "crypto/random.h"
#include "crypto/search_tree.h"
#include "dbph/encrypted_relation.h"
#include "net/frame.h"
#include "protocol/completeness_proof.h"
#include "protocol/messages.h"
#include "protocol/result_proof.h"
#include "server/untrusted_server.h"
#include "storage/wal.h"
#include "swp/match_kernel.h"
#include "swp/scheme.h"
#include "swp/search.h"

namespace dbph {
namespace {

using rel::Value;
using rel::ValueType;

TEST(ProtocolFuzzTest, RandomBytesAlwaysGetErrorEnvelopes) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-random", 1);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.NextBelow(200);
    Bytes garbage = rng.NextBytes(len);
    Bytes response = server.HandleRequest(garbage);
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok()) << "server returned unparseable bytes";
    EXPECT_EQ(envelope->type, protocol::MessageType::kError);
  }
}

TEST(ProtocolFuzzTest, ValidTypeBytesWithGarbagePayloads) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-typed", 2);
  for (uint8_t type = 1; type <= protocol::kMaxMessageType; ++type) {
    for (int i = 0; i < 200; ++i) {
      protocol::Envelope request;
      request.type = static_cast<protocol::MessageType>(type);
      request.payload = rng.NextBytes(rng.NextBelow(120));
      Bytes response = server.HandleRequest(request.Serialize());
      auto envelope = protocol::Envelope::Parse(response);
      ASSERT_TRUE(envelope.ok());
      // Whatever happens, it must be a well-formed reply. Random payloads
      // never decode into valid requests, so: error — except kPing, whose
      // payload is an opaque cookie echoed back verbatim, and kFlush /
      // kStats / kLeakageReport, which are payload-free (an empty random
      // payload is a valid request for any of them).
      if (request.type == protocol::MessageType::kPing) {
        EXPECT_EQ(envelope->type, protocol::MessageType::kPong);
        EXPECT_EQ(envelope->payload, request.payload);
      } else if (request.type == protocol::MessageType::kFlush &&
                 request.payload.empty()) {
        EXPECT_EQ(envelope->type, protocol::MessageType::kFlushOk);
      } else if (request.type == protocol::MessageType::kStats &&
                 request.payload.empty()) {
        EXPECT_EQ(envelope->type, protocol::MessageType::kStatsResult);
      } else if (request.type == protocol::MessageType::kLeakageReport &&
                 request.payload.empty()) {
        EXPECT_EQ(envelope->type,
                  protocol::MessageType::kLeakageReportResult);
      } else {
        EXPECT_EQ(envelope->type, protocol::MessageType::kError);
      }
    }
  }
}

TEST(ProtocolFuzzTest, TruncatedRealMessages) {
  // Build one real message of each kind, then replay every prefix.
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-truncate", 3);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());

  client::Client client(
      ToBytes("fuzz master"),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  rel::Relation table("T", *schema);
  ASSERT_TRUE(table.Insert({Value::Str("hello")}).ok());

  // Capture the wire bytes by interposing a recording transport.
  std::vector<Bytes> recorded;
  client::Client recorder(
      ToBytes("fuzz master"),
      [&](const Bytes& request) {
        recorded.push_back(request);
        return server.HandleRequest(request);
      },
      &rng);
  ASSERT_TRUE(recorder.Outsource(table).ok());
  ASSERT_TRUE(recorder.Select("T", "v", Value::Str("hello")).ok());

  for (const Bytes& message : recorded) {
    for (size_t cut = 0; cut < message.size();
         cut += std::max<size_t>(1, message.size() / 37)) {
      Bytes truncated(message.begin(),
                      message.begin() + static_cast<long>(cut));
      Bytes response = server.HandleRequest(truncated);
      auto envelope = protocol::Envelope::Parse(response);
      ASSERT_TRUE(envelope.ok());
      EXPECT_EQ(envelope->type, protocol::MessageType::kError)
          << "prefix of length " << cut << " was accepted";
    }
  }
}

TEST(ProtocolFuzzTest, BitflippedStoreStillHandled) {
  // Flip single bits in a valid kStoreRelation message; the server must
  // either reject it or store something — but never crash, and always
  // answer in protocol.
  server::UntrustedServer sink;  // throwaway server per flip
  crypto::HmacDrbg rng("fuzz-bitflip", 4);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());
  rel::Relation table("T", *schema);
  ASSERT_TRUE(table.Insert({Value::Str("payload")}).ok());

  Bytes wire;
  {
    std::vector<Bytes> recorded;
    server::UntrustedServer tmp;
    client::Client recorder(
        ToBytes("fuzz master"),
        [&](const Bytes& request) {
          recorded.push_back(request);
          return tmp.HandleRequest(request);
        },
        &rng);
    ASSERT_TRUE(recorder.Outsource(table).ok());
    wire = recorded.at(0);
  }

  for (size_t bit = 0; bit < wire.size() * 8; bit += 7) {
    Bytes mutated = wire;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    server::UntrustedServer fresh;
    Bytes response = fresh.HandleRequest(mutated);
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok()) << "bit " << bit;
  }
}

TEST(ProtocolFuzzTest, MalformedBatchEnvelopes) {
  server::UntrustedServer server;
  auto expect_error = [&server](const Bytes& payload) {
    protocol::Envelope request;
    request.type = protocol::MessageType::kBatchRequest;
    request.payload = payload;
    Bytes response = server.HandleRequest(request.Serialize());
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok());
    EXPECT_EQ(envelope->type, protocol::MessageType::kError);
  };

  // Empty payload / truncated count.
  expect_error(Bytes{});
  expect_error(Bytes{0x00, 0x00});
  // Zero sub-envelopes.
  {
    Bytes payload;
    AppendUint32(&payload, 0);
    expect_error(payload);
  }
  // Count bomb: claims 2^32-1 parts; must be rejected, not allocated.
  {
    Bytes payload;
    AppendUint32(&payload, 0xffffffffu);
    expect_error(payload);
  }
  // Count beyond kMaxBatchParts with no data behind it.
  {
    Bytes payload;
    AppendUint32(&payload, protocol::kMaxBatchParts + 1);
    expect_error(payload);
  }
  // Count claims more parts than are present.
  {
    protocol::Envelope sub;
    sub.type = protocol::MessageType::kFetchRelation;
    sub.payload = ToBytes("T");
    Bytes payload;
    AppendUint32(&payload, 2);
    AppendLengthPrefixed(&payload, sub.Serialize());
    expect_error(payload);
  }
  // Sub-envelope that is itself garbage.
  {
    Bytes payload;
    AppendUint32(&payload, 1);
    AppendLengthPrefixed(&payload, ToBytes("not an envelope"));
    expect_error(payload);
  }
  // Nested batch: one level deep only.
  {
    protocol::Envelope inner;
    inner.type = protocol::MessageType::kBatchRequest;
    inner.payload = protocol::SerializeBatchPayload({});
    Bytes payload;
    AppendUint32(&payload, 1);
    AppendLengthPrefixed(&payload, inner.Serialize());
    expect_error(payload);
  }
  // Trailing bytes after the declared parts.
  {
    protocol::Envelope sub;
    sub.type = protocol::MessageType::kFetchRelation;
    sub.payload = ToBytes("T");
    Bytes payload;
    AppendUint32(&payload, 1);
    AppendLengthPrefixed(&payload, sub.Serialize());
    payload.push_back(0xff);
    expect_error(payload);
  }
}

TEST(ProtocolFuzzTest, BatchWithGarbageSubPayloadsAnswersPerPart) {
  // A well-framed batch whose sub-requests are undecodable must still
  // produce a kBatchResponse with one kError per failed part — framing
  // errors are batch-fatal, semantic errors are per-operation.
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-batch", 8);
  std::vector<protocol::Envelope> parts;
  for (int i = 0; i < 5; ++i) {
    protocol::Envelope part;
    part.type = protocol::MessageType::kSelect;
    part.payload = rng.NextBytes(rng.NextBelow(40));
    parts.push_back(std::move(part));
  }
  protocol::Envelope request;
  request.type = protocol::MessageType::kBatchRequest;
  request.payload = protocol::SerializeBatchPayload(parts);
  Bytes response = server.HandleRequest(request.Serialize());
  auto envelope = protocol::Envelope::Parse(response);
  ASSERT_TRUE(envelope.ok());
  ASSERT_EQ(envelope->type, protocol::MessageType::kBatchResponse);
  auto replies = protocol::ParseBatchPayload(envelope->payload);
  ASSERT_TRUE(replies.ok());
  ASSERT_EQ(replies->size(), parts.size());
  for (const auto& reply : *replies) {
    EXPECT_EQ(reply.type, protocol::MessageType::kError);
  }
}

TEST(ProtocolFuzzTest, RandomlyFramedBatchesNeverCrash) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-batch-frame", 9);
  for (int i = 0; i < 500; ++i) {
    protocol::Envelope request;
    request.type = protocol::MessageType::kBatchRequest;
    request.payload = rng.NextBytes(rng.NextBelow(150));
    Bytes response = server.HandleRequest(request.Serialize());
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok());
    // Either batch-fatal error or a well-formed batch response.
    EXPECT_TRUE(envelope->type == protocol::MessageType::kError ||
                envelope->type == protocol::MessageType::kBatchResponse);
  }
}

TEST(DeserializerFuzzTest, EncryptedRelationRejectsGarbage) {
  crypto::HmacDrbg rng("fuzz-rel", 5);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(100));
    ByteReader reader(garbage);
    auto parsed = core::EncryptedRelation::ReadFrom(&reader);
    // Either a parse error, or a (vacuously valid) structure — the point
    // is memory safety; any crash fails the test run.
    (void)parsed;
  }
}

TEST(DeserializerFuzzTest, TrapdoorAndDocumentRejectGarbage) {
  crypto::HmacDrbg rng("fuzz-td", 6);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(60));
    {
      ByteReader reader(garbage);
      (void)swp::Trapdoor::ReadFrom(&reader);
    }
    {
      ByteReader reader(garbage);
      (void)swp::EncryptedDocument::ReadFrom(&reader);
    }
  }
}

TEST(DeserializerFuzzTest, LengthPrefixBombRejected) {
  // A claimed 4 GiB payload must be rejected by bounds checks, not
  // allocated.
  Bytes bomb;
  bomb.push_back(static_cast<uint8_t>(protocol::MessageType::kSelect));
  AppendUint32(&bomb, 0xffffffffu);  // envelope payload length
  server::UntrustedServer server;
  Bytes response = server.HandleRequest(bomb);
  auto envelope = protocol::Envelope::Parse(response);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->type, protocol::MessageType::kError);
}

TEST(DeserializerFuzzTest, EnvelopeLengthAboveFrameCapRejected) {
  // The shared kMaxFrameBytes cap applies at the envelope layer too: a
  // length prefix above it fails before any allocation, even if the
  // declared bytes "were" present (here they are not — but the cap check
  // must fire first, which the distinct error message pins down).
  Bytes wire;
  wire.push_back(static_cast<uint8_t>(protocol::MessageType::kPing));
  AppendUint32(&wire, protocol::kMaxFrameBytes + 1);
  auto parsed = protocol::Envelope::Parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("kMaxFrameBytes"),
            std::string::npos);
}

TEST(ProtocolFuzzTest, PingEchoesArbitraryCookies) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-ping", 10);
  for (int i = 0; i < 300; ++i) {
    protocol::Envelope ping;
    ping.type = protocol::MessageType::kPing;
    ping.payload = rng.NextBytes(rng.NextBelow(200));
    auto pong = protocol::Envelope::Parse(server.HandleRequest(ping.Serialize()));
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->type, protocol::MessageType::kPong);
    EXPECT_EQ(pong->payload, ping.payload);
  }
  // Health checks are keys-free and leave no observations behind.
  EXPECT_TRUE(server.observations().queries().empty());
  EXPECT_TRUE(server.observations().stores().empty());
}

TEST(FrameFuzzTest, RandomStreamChunksNeverCrashTheReader) {
  // Arbitrary garbage fed in arbitrary chunkings: the reader either
  // assembles (garbage) frames — each bounded by the cap — or poisons
  // itself; it must never crash or hand out a frame above the cap.
  crypto::HmacDrbg rng("fuzz-frame", 11);
  for (int trial = 0; trial < 200; ++trial) {
    net::FrameReader reader(/*max_frame_bytes=*/512);
    bool poisoned = false;
    for (int chunk = 0; chunk < 20 && !poisoned; ++chunk) {
      Bytes garbage = rng.NextBytes(rng.NextBelow(64));
      poisoned = !reader.Feed(garbage.data(), garbage.size()).ok();
      while (auto frame = reader.NextFrame()) {
        EXPECT_LE(frame->size(), 512u);
      }
    }
  }
}

TEST(FrameFuzzTest, TruncatedFramesYieldNothingAndKeepState) {
  // Every strict prefix of a valid frame stream produces only the frames
  // fully contained in it — never a partial or invented frame.
  Bytes wire;
  ASSERT_TRUE(net::AppendFrame(&wire, ToBytes("alpha")).ok());
  ASSERT_TRUE(net::AppendFrame(&wire, ToBytes("beta")).ok());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    net::FrameReader reader;
    ASSERT_TRUE(reader.Feed(wire.data(), cut).ok());
    size_t complete = 0;
    while (reader.NextFrame()) ++complete;
    size_t expected = cut >= 9 ? 1 : 0;  // frame one is 4 + 5 bytes
    EXPECT_EQ(complete, expected) << "cut at " << cut;
  }
}

// ---------------- WAL record parsing (recovery is a parser too) -------------

TEST(WalFuzzTest, RandomBuffersNeverCrashAndYieldBoundedPrefixes) {
  // A WAL file after a crash is arbitrary bytes; ScanBuffer must never
  // crash, never report a prefix longer than the buffer, and never hand
  // out a record above the frame cap.
  crypto::HmacDrbg rng("fuzz-wal", 20);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(300));
    auto scan = storage::WriteAheadLog::ScanBuffer(garbage);
    EXPECT_LE(scan.valid_bytes, garbage.size());
    EXPECT_EQ(scan.torn_tail, scan.valid_bytes != garbage.size());
    for (const auto& record : scan.records) {
      EXPECT_LE(record.payload.size(), protocol::kMaxFrameBytes);
    }
  }
}

TEST(WalFuzzTest, OversizedLengthRejectedBeforeAllocation) {
  // A record claiming a 4 GiB (or just-over-cap) payload must stop the
  // scan at that offset — the length is checked against
  // protocol::kMaxFrameBytes before anything is allocated, exactly like
  // Envelope::Parse.
  for (uint32_t declared : {protocol::kMaxFrameBytes + 1, 0xffffffffu}) {
    Bytes image;
    AppendUint32(&image, declared);
    AppendUint32(&image, 0xdeadbeef);  // crc (never reached)
    AppendUint64(&image, 1);           // lsn
    image.resize(image.size() + 64, 0xab);
    auto scan = storage::WriteAheadLog::ScanBuffer(image);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_EQ(scan.valid_bytes, 0u);
    EXPECT_TRUE(scan.torn_tail);
  }
}

TEST(WalFuzzTest, ZeroLengthRecordsAreValid) {
  // An empty payload is a legal record (the CRC still covers the LSN).
  Bytes covered;
  AppendUint64(&covered, 7);  // lsn
  Bytes image;
  AppendUint32(&image, 0);  // zero-length payload
  AppendUint32(&image, storage::Crc32(covered));
  image.insert(image.end(), covered.begin(), covered.end());
  auto scan = storage::WriteAheadLog::ScanBuffer(image);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].lsn, 7u);
  EXPECT_TRUE(scan.records[0].payload.empty());
  EXPECT_FALSE(scan.torn_tail);

  // ...but a zero-length record with a wrong CRC is a corrupt tail.
  image[7] ^= 0x01;
  auto bad = storage::WriteAheadLog::ScanBuffer(image);
  EXPECT_TRUE(bad.records.empty());
  EXPECT_TRUE(bad.torn_tail);
}

TEST(WalFuzzTest, GarbageTailAfterValidRecordsIsTruncatedNotFatal) {
  std::string path = ::testing::TempDir() + "/fuzz_wal.log";
  std::remove(path.c_str());
  size_t clean_bytes = 0;
  {
    auto wal = storage::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(1, ToBytes("alpha")).ok());
    ASSERT_TRUE(wal->Append(2, ToBytes("beta")).ok());
    clean_bytes = wal->size_bytes();
  }
  // Splatter garbage after the valid records (a torn append).
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\xff\x01garbage tail";
  }
  auto scan = storage::WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->valid_bytes, clean_bytes);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(ToString(scan->records[0].payload), "alpha");
  EXPECT_EQ(ToString(scan->records[1].payload), "beta");

  // Re-opening truncates the tail and appends continue cleanly.
  {
    auto reopened = storage::WriteAheadLog::Open(path);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened->recovered_torn_tail());
    EXPECT_EQ(reopened->size_bytes(), clean_bytes);
    ASSERT_TRUE(reopened->Append(3, ToBytes("gamma")).ok());
  }
  auto final_scan = storage::WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(final_scan.ok());
  EXPECT_EQ(final_scan->records.size(), 3u);
  EXPECT_FALSE(final_scan->torn_tail);
  std::remove(path.c_str());
}

TEST(WalFuzzTest, EveryPrefixOfAValidLogYieldsOnlyWholeRecords) {
  std::string path = ::testing::TempDir() + "/fuzz_wal_prefix.log";
  std::remove(path.c_str());
  std::vector<size_t> boundaries{0};
  {
    auto wal = storage::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(wal->Append(i, ToBytes("record-" + std::to_string(i))).ok());
      boundaries.push_back(wal->size_bytes());
    }
  }
  std::ifstream in(path, std::ios::binary);
  Bytes image((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  ASSERT_EQ(image.size(), boundaries.back());
  for (size_t cut = 0; cut <= image.size(); ++cut) {
    Bytes prefix(image.begin(), image.begin() + static_cast<long>(cut));
    auto scan = storage::WriteAheadLog::ScanBuffer(prefix);
    size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= cut) {
      ++expected;
    }
    EXPECT_EQ(scan.records.size(), expected) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, boundaries[expected]) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

// ---------------- Merkle result-proof fuzzing ----------------

namespace {

/// The trailer a real integrity server attached to a real select, split
/// at the structure boundary: the row ResultProof bytes and the
/// CompletenessProof bytes that follow them, plus the context needed to
/// re-parse each.
struct CapturedSelectTail {
  size_t docs = 0;
  uint64_t leaf_count = 0;
  Bytes proof;
  Bytes completeness;
};

CapturedSelectTail CaptureValidSelectTail() {
  CapturedSelectTail tail;
  server::UntrustedServer server;  // integrity on by default
  crypto::HmacDrbg rng("fuzz-proof", 21);
  client::Client client(
      ToBytes("fuzz master"),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  rel::Relation table("T", *schema);
  for (int i = 0; i < 8; ++i) {
    (void)table.Insert({Value::Str("w" + std::to_string(i % 3))});
  }
  client.set_verify_mode(client::VerifyMode::kEnforce);
  (void)client.Outsource(table);
  // Capture the raw response of a select that matches several rows.
  Bytes response;
  client::Client recorder(
      ToBytes("fuzz master"),
      [&](const Bytes& request) {
        response = server.HandleRequest(request);
        return response;
      },
      &rng);
  (void)recorder.Adopt("T", *schema);
  (void)recorder.Select("T", "v", Value::Str("w1"));
  auto envelope = protocol::Envelope::Parse(response);
  EXPECT_TRUE(envelope.ok());
  ByteReader reader(envelope->payload);
  auto docs = swp::ReadDocumentList(&reader);
  EXPECT_TRUE(docs.ok());
  tail.docs = docs->size();
  const size_t proof_begin = envelope->payload.size() - reader.remaining();
  auto proof = protocol::ResultProof::ReadFrom(&reader, docs->size());
  EXPECT_TRUE(proof.ok());
  tail.leaf_count = proof->leaf_count;
  const size_t proof_end = envelope->payload.size() - reader.remaining();
  tail.proof = Bytes(envelope->payload.begin() + proof_begin,
                     envelope->payload.begin() + proof_end);
  tail.completeness =
      Bytes(envelope->payload.begin() + proof_end, envelope->payload.end());
  return tail;
}

Bytes CaptureValidProofBytes(size_t* docs_out) {
  CapturedSelectTail tail = CaptureValidSelectTail();
  *docs_out = tail.docs;
  return tail.proof;
}

}  // namespace

TEST(ProofFuzzTest, RandomBytesNeverParseAsProofs) {
  crypto::HmacDrbg rng("fuzz-proof-random", 1);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(160));
    ByteReader reader(garbage);
    auto proof = protocol::ResultProof::ReadFrom(&reader, 16);
    // Parsing may only succeed on a structurally valid proof; it must
    // never crash, loop, or allocate past the payload.
    if (proof.ok()) {
      EXPECT_LE(proof->positions.size(), 16u);
      EXPECT_LE(proof->siblings.size(), garbage.size() / 32 + 1);
    }
  }
}

TEST(ProofFuzzTest, EveryTruncationOfAValidProofFailsClosed) {
  size_t docs = 0;
  Bytes valid = CaptureValidProofBytes(&docs);
  ASSERT_GT(docs, 0u);
  ASSERT_FALSE(valid.empty());
  {
    ByteReader reader(valid);
    ASSERT_TRUE(protocol::ResultProof::ReadFrom(&reader, docs).ok());
    ASSERT_TRUE(reader.AtEnd());
  }
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(cut));
    ByteReader reader(truncated);
    auto proof = protocol::ResultProof::ReadFrom(&reader, docs);
    // A shorter buffer must either fail to parse or leave trailing state
    // impossible to confuse with the original (never a crash).
    if (proof.ok()) EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(ProofFuzzTest, BitflippedProofsNeverVerifyAgainstTheRoot) {
  // Flip every byte of a valid proof in turn; each mutant must either
  // fail to parse or fail verification against the untampered tree —
  // accepting any mutant would be a soundness hole.
  using crypto::MerkleTree;
  std::vector<MerkleTree::Hash> leaves;
  for (int i = 0; i < 9; ++i) {
    leaves.push_back(MerkleTree::LeafHash(ToBytes("d" + std::to_string(i))));
  }
  MerkleTree tree;
  tree.Assign(leaves);
  protocol::ResultProof proof;
  proof.epoch = 3;
  proof.leaf_count = tree.size();
  proof.root = tree.Root();
  proof.positions = {1, 4, 6};
  proof.siblings = tree.SubsetProof(proof.positions);
  std::vector<MerkleTree::Hash> selected = {leaves[1], leaves[4], leaves[6]};
  Bytes wire;
  proof.AppendTo(&wire);

  auto verifies = [&](const Bytes& bytes) {
    ByteReader reader(bytes);
    auto parsed = protocol::ResultProof::ReadFrom(&reader, selected.size());
    if (!parsed.ok() || !reader.AtEnd()) return false;
    if (parsed->positions.size() != selected.size()) return false;
    auto computed = MerkleTree::RootFromSubset(
        parsed->leaf_count, parsed->positions, selected, parsed->siblings);
    return computed.ok() && *computed == tree.Root() &&
           parsed->root == tree.Root() && parsed->epoch == proof.epoch;
  };
  ASSERT_TRUE(verifies(wire));
  for (size_t i = 0; i < wire.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}}) {
      Bytes mutant = wire;
      mutant[i] ^= flip;
      EXPECT_FALSE(verifies(mutant)) << "byte " << i << " flip " << int(flip);
    }
  }
}

TEST(ProofFuzzTest, HostileCountsCannotForceOverAllocation) {
  // A proof header claiming 2^32-ish positions or siblings must be
  // rejected from the *remaining byte count*, before any reserve.
  Bytes wire;
  wire.push_back(protocol::kResultProofVersion);
  AppendUint64(&wire, 1);                      // epoch
  AppendUint64(&wire, uint64_t{1} << 40);      // leaf_count (huge)
  wire.resize(wire.size() + 32, 0x11);         // root
  AppendUint32(&wire, 0);                      // empty signature
  wire.push_back(protocol::kProofPositionsExplicit);
  AppendUint32(&wire, 0xffffffffu);            // hostile position count
  ByteReader reader(wire);
  EXPECT_FALSE(protocol::ResultProof::ReadFrom(&reader, 1u << 20).ok());

  // Hostile range: [0, 2^40) over a claimed huge tree.
  Bytes range_wire;
  range_wire.push_back(protocol::kResultProofVersion);
  AppendUint64(&range_wire, 1);
  AppendUint64(&range_wire, uint64_t{1} << 40);
  range_wire.resize(range_wire.size() + 32, 0x11);
  AppendUint32(&range_wire, 0);
  range_wire.push_back(protocol::kProofPositionsRange);
  AppendUint64(&range_wire, 0);
  AppendUint64(&range_wire, uint64_t{1} << 40);
  ByteReader range_reader(range_wire);
  EXPECT_FALSE(
      protocol::ResultProof::ReadFrom(&range_reader, 1u << 20).ok());

  // Hostile sibling count with no bytes behind it: a structurally valid
  // header followed by a 2^32-1 sibling claim and zero sibling bytes.
  Bytes sibling_bomb;
  sibling_bomb.push_back(protocol::kResultProofVersion);
  AppendUint64(&sibling_bomb, 1);    // epoch
  AppendUint64(&sibling_bomb, 100);  // leaf_count
  sibling_bomb.resize(sibling_bomb.size() + 32, 0x22);  // root
  AppendUint32(&sibling_bomb, 0);    // empty signature
  sibling_bomb.push_back(protocol::kProofPositionsExplicit);
  AppendUint32(&sibling_bomb, 0);    // no positions
  AppendUint32(&sibling_bomb, 0xffffffffu);  // hostile sibling count
  ByteReader bomb_reader(sibling_bomb);
  EXPECT_FALSE(protocol::ResultProof::ReadFrom(&bomb_reader, 16).ok());
}

// ---------------- completeness-proof fuzzing ----------------

TEST(CompletenessFuzzTest, RandomBytesNeverParseAsCompletenessProofs) {
  crypto::HmacDrbg rng("fuzz-completeness-random", 41);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(200));
    ByteReader reader(garbage);
    auto proof =
        protocol::CompletenessProof::ReadFrom(&reader, 16, /*limit=*/1024);
    // Must never crash, loop, or allocate past the payload.
    if (proof.ok()) {
      EXPECT_LE(proof->positions.size(), 16u);
      EXPECT_LE(proof->path.size(), 64u);
      EXPECT_LE(proof->neighbors.size(), 2u);
    }
  }
}

TEST(CompletenessFuzzTest, EveryTruncationOfAValidProofFailsClosed) {
  CapturedSelectTail tail = CaptureValidSelectTail();
  ASSERT_GT(tail.docs, 0u);
  ASSERT_FALSE(tail.completeness.empty());
  {
    ByteReader reader(tail.completeness);
    ASSERT_TRUE(protocol::CompletenessProof::ReadFrom(&reader, tail.docs,
                                                      tail.leaf_count)
                    .ok());
    ASSERT_TRUE(reader.AtEnd());
  }
  // The structure is self-delimiting (every variable part is counted),
  // so no strict prefix can parse: the reader runs dry mid-structure.
  for (size_t cut = 0; cut < tail.completeness.size(); ++cut) {
    Bytes truncated(tail.completeness.begin(),
                    tail.completeness.begin() + static_cast<long>(cut));
    ByteReader reader(truncated);
    auto proof = protocol::CompletenessProof::ReadFrom(&reader, tail.docs,
                                                       tail.leaf_count);
    EXPECT_FALSE(proof.ok()) << "prefix of length " << cut << " parsed";
  }
}

TEST(CompletenessFuzzTest, BitflippedProofsNeverVerify) {
  // Flip every byte of a valid membership proof in turn; each mutant
  // must fail parsing or fail verification against the untampered tree.
  using crypto::SearchTree;
  std::vector<SearchTree::Entry> entries;
  for (int i = 0; i < 9; ++i) {
    SearchTree::Entry entry;
    entry.tag = SearchTree::TagDigest(ToBytes("tag-" + std::to_string(i)));
    entry.positions = {static_cast<uint64_t>(i), static_cast<uint64_t>(i + 9)};
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SearchTree::Entry& a, const SearchTree::Entry& b) {
              return a.tag < b.tag;
            });
  SearchTree tree;
  ASSERT_TRUE(tree.Assign(entries, 18).ok());
  const SearchTree::Hash tag = tree.entry(4).tag;

  protocol::CompletenessProof proof;
  proof.epoch = 3;
  proof.tree_size = tree.size();
  proof.search_root = tree.Root();
  proof.kind = protocol::kCompletenessMember;
  proof.index = 4;
  proof.positions = tree.entry(4).positions;
  proof.path = tree.MembershipPath(4);
  Bytes wire;
  proof.AppendTo(&wire);

  auto verifies = [&](const Bytes& bytes) {
    ByteReader reader(bytes);
    auto parsed = protocol::CompletenessProof::ReadFrom(&reader, 18, 18);
    if (!parsed.ok() || !reader.AtEnd()) return false;
    if (parsed->epoch != proof.epoch) return false;
    if (parsed->search_root != tree.Root()) return false;
    if (parsed->kind != protocol::kCompletenessMember) return false;
    return SearchTree::VerifyMember(
               tree.Root(), parsed->tree_size, parsed->index, tag,
               SearchTree::PostingDigest(parsed->positions), parsed->path)
        .ok();
  };
  ASSERT_TRUE(verifies(wire));
  for (size_t i = 0; i < wire.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}}) {
      Bytes mutant = wire;
      mutant[i] ^= flip;
      EXPECT_FALSE(verifies(mutant)) << "byte " << i << " flip " << int(flip);
    }
  }
}

TEST(CompletenessFuzzTest, HostileCountsCannotForceOverAllocation) {
  // Membership with a 2^32-1 posting count and no bytes behind it.
  Bytes wire;
  wire.push_back(protocol::kCompletenessProofVersion);
  AppendUint64(&wire, 1);                  // epoch
  AppendUint64(&wire, uint64_t{1} << 40);  // tree_size (huge)
  wire.resize(wire.size() + 32, 0x33);     // search root
  AppendUint32(&wire, 0);                  // empty signature
  wire.push_back(protocol::kCompletenessMember);
  AppendUint64(&wire, 7);                  // index
  AppendUint32(&wire, 0xffffffffu);        // hostile posting count
  ByteReader reader(wire);
  EXPECT_FALSE(
      protocol::CompletenessProof::ReadFrom(&reader, 1u << 20, 1u << 20).ok());

  // One honest position, then a 2^32-1 sibling-path claim.
  Bytes path_bomb;
  path_bomb.push_back(protocol::kCompletenessProofVersion);
  AppendUint64(&path_bomb, 1);
  AppendUint64(&path_bomb, 100);
  path_bomb.resize(path_bomb.size() + 32, 0x44);
  AppendUint32(&path_bomb, 0);
  path_bomb.push_back(protocol::kCompletenessMember);
  AppendUint64(&path_bomb, 7);
  AppendUint32(&path_bomb, 1);
  AppendUint64(&path_bomb, 5);             // the one position
  AppendUint32(&path_bomb, 0xffffffffu);   // hostile path length
  ByteReader path_reader(path_bomb);
  EXPECT_FALSE(
      protocol::CompletenessProof::ReadFrom(&path_reader, 16, 16).ok());

  // Non-membership with more neighbors than any valid proof carries.
  Bytes neighbor_bomb;
  neighbor_bomb.push_back(protocol::kCompletenessProofVersion);
  AppendUint64(&neighbor_bomb, 1);
  AppendUint64(&neighbor_bomb, 100);
  neighbor_bomb.resize(neighbor_bomb.size() + 32, 0x55);
  AppendUint32(&neighbor_bomb, 0);
  neighbor_bomb.push_back(protocol::kCompletenessAbsent);
  neighbor_bomb.push_back(0xff);           // hostile neighbor count
  ByteReader neighbor_reader(neighbor_bomb);
  EXPECT_FALSE(
      protocol::CompletenessProof::ReadFrom(&neighbor_reader, 16, 16).ok());

  // The search-entry section: a 2^32-1 entry claim with no payload, and
  // a single honest tag followed by a 2^32-1 position claim.
  Bytes section;
  section.push_back(protocol::kSearchSectionVersion);
  AppendUint32(&section, 0xffffffffu);
  ByteReader section_reader(section);
  EXPECT_FALSE(protocol::ReadSearchEntries(&section_reader, 1u << 20).ok());

  Bytes position_bomb;
  position_bomb.push_back(protocol::kSearchSectionVersion);
  AppendUint32(&position_bomb, 1);
  position_bomb.resize(position_bomb.size() + 32, 0x66);  // one tag
  AppendUint32(&position_bomb, 0xffffffffu);
  ByteReader position_reader(position_bomb);
  EXPECT_FALSE(protocol::ReadSearchEntries(&position_reader, 1u << 20).ok());
}

TEST(ProofFuzzTest, TamperedSelectResponsesRejectedByEnforcingClient) {
  // End to end at the byte level: random single-byte corruptions of a
  // whole kSelectResult response (documents or proof, wherever they
  // land) against an enforcing client — every corruption must yield an
  // error, never a silently accepted result. Corruptions that strike
  // the envelope framing itself already fail in Parse.
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-tamper", 31);
  Bytes last_response;
  bool tamper = false;
  size_t tamper_at = 0;
  client::Client client(
      ToBytes("fuzz master"),
      [&](const Bytes& request) {
        Bytes response = server.HandleRequest(request);
        last_response = response;
        if (tamper && tamper_at < response.size()) {
          response[tamper_at] ^= 0x01;
        }
        return response;
      },
      &rng);
  client.set_verify_mode(client::VerifyMode::kEnforce);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  rel::Relation table("T", *schema);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(table.Insert({Value::Str("x" + std::to_string(i % 2))}).ok());
  }
  ASSERT_TRUE(client.Outsource(table).ok());
  ASSERT_TRUE(client.Select("T", "v", Value::Str("x1")).ok());
  size_t response_size = last_response.size();
  ASSERT_GT(response_size, 0u);

  size_t step = std::max<size_t>(1, response_size / 97);
  for (tamper_at = 0; tamper_at < response_size; tamper_at += step) {
    tamper = true;
    auto result = client.Select("T", "v", Value::Str("x1"));
    EXPECT_FALSE(result.ok()) << "flip at byte " << tamper_at
                              << " was accepted";
    tamper = false;
    ASSERT_TRUE(client.Select("T", "v", Value::Str("x1")).ok())
        << "honest select failed after rejection at byte " << tamper_at;
  }
}

TEST(FrameFuzzTest, OversizedAndGarbageHeadersPoisonPermanently) {
  crypto::HmacDrbg rng("fuzz-frame-hdr", 12);
  for (uint32_t declared :
       {uint32_t{4097}, uint32_t{1u << 20}, 0xffffffffu}) {
    net::FrameReader reader(/*max_frame_bytes=*/4096);
    Bytes header;
    AppendUint32(&header, declared);
    EXPECT_FALSE(reader.Feed(header.data(), header.size()).ok())
        << declared;
    // Whatever arrives later, the reader stays dead and yields nothing.
    Bytes more = rng.NextBytes(32);
    EXPECT_FALSE(reader.Feed(more.data(), more.size()).ok());
    EXPECT_FALSE(reader.NextFrame().has_value());
  }
}

TEST(LeakageReportFuzzTest, RandomBytesNeverCrashTheReader) {
  crypto::HmacDrbg rng("fuzz-leakage", 13);
  for (int i = 0; i < 3000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(300));
    ByteReader reader(garbage);
    auto report = obs::leakage::LeakageReport::ReadFrom(&reader);
    (void)report;  // error or tiny parse — just must not crash/throw
  }
}

TEST(LeakageReportFuzzTest, HostileCountsCannotForceOverAllocation) {
  // A handcrafted header claiming 2^32 - 1 relations (or tags) with no
  // backing bytes must be rejected before any reserve().
  for (uint32_t hostile : {0xffffffffu, 0x10000000u, 0x7fffffffu}) {
    Bytes wire;
    AppendUint64(&wire, 1);        // queries_observed
    AppendUint64(&wire, 0);        // alerts
    AppendUint64(&wire, 500);      // budget
    AppendUint32(&wire, hostile);  // relation count >> payload
    ByteReader reader(wire);
    auto report = obs::leakage::LeakageReport::ReadFrom(&reader);
    EXPECT_FALSE(report.ok()) << hostile;
  }
  // Same attack one level down: a valid relation header with a hostile
  // tag count.
  for (uint32_t hostile : {0xffffffffu, 0x01000000u}) {
    Bytes wire;
    AppendUint64(&wire, 1);
    AppendUint64(&wire, 0);
    AppendUint64(&wire, 500);
    AppendUint32(&wire, 1);  // one relation
    AppendLengthPrefixed(&wire, ToBytes("people"));
    for (int field = 0; field < 8; ++field) AppendUint64(&wire, 1);
    AppendUint32(&wire, hostile);  // tag count >> payload
    ByteReader reader(wire);
    auto report = obs::leakage::LeakageReport::ReadFrom(&reader);
    EXPECT_FALSE(report.ok()) << hostile;
  }
}

TEST(LeakageReportFuzzTest, EveryTruncationOfAValidReportFailsClosed) {
  // Build a real report through the auditor, then replay every prefix.
  obs::leakage::LeakageOptions options;
  options.salt = ToBytes("fuzz-salt");
  obs::leakage::LeakageAuditor auditor(options, /*registry=*/nullptr);
  crypto::HmacDrbg rng("fuzz-leakage-trunc", 14);
  for (int i = 0; i < 200; ++i) {
    auditor.RecordQuery(i % 2 == 0 ? "people" : "orders",
                        rng.NextBytes(24), rng.NextBelow(10),
                        rng.NextBool());
  }
  Bytes wire;
  auditor.Report().AppendTo(&wire);
  {
    // Sanity: the full wire round-trips with no trailing bytes.
    ByteReader reader(wire);
    auto report = obs::leakage::LeakageReport::ReadFrom(&reader);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(reader.remaining(), 0u);
    EXPECT_EQ(report->queries_observed, 200u);
  }
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    ByteReader reader(truncated);
    auto report = obs::leakage::LeakageReport::ReadFrom(&reader);
    EXPECT_FALSE(report.ok()) << "prefix of length " << cut << " parsed";
  }
}

// ---------------- scan-kernel hostile-input fuzzing ----------------

// The batched matcher consumes (arena, refs) pairs the storage layer
// normally constructs — but a MatchMany caller handing it hostile refs
// (offsets past the arena, lengths that wrap uint32 arithmetic, empty
// arenas) must get non-matches, never an out-of-bounds read or a crash.
// ASan/TSan CI runs this file, so a stray read trips the build.
TEST(MatchKernelFuzzTest, HostileArenaRefsNeverCrashOrMatchOutOfBounds) {
  crypto::HmacDrbg rng("fuzz-match-kernel", 17);
  swp::SwpParams params;
  params.word_length = 16;
  params.check_length = 4;
  swp::Trapdoor trapdoor;
  trapdoor.target = rng.NextBytes(params.word_length);
  trapdoor.key = rng.NextBytes(32);
  swp::MatchContext context(params, trapdoor);

  for (int round = 0; round < 200; ++round) {
    const size_t arena_size = rng.NextBelow(96);
    Bytes arena = rng.NextBytes(arena_size);
    std::vector<swp::WordRef> refs;
    const size_t num_refs = 1 + rng.NextBelow(64);
    for (size_t i = 0; i < num_refs; ++i) {
      swp::WordRef ref;
      switch (rng.NextBelow(4)) {
        case 0:  // fully hostile: arbitrary 32-bit offset and length
          ref.offset = static_cast<uint32_t>(rng.NextBelow(0x100000000ull));
          ref.length = static_cast<uint32_t>(rng.NextBelow(0x100000000ull));
          break;
        case 1:  // offset near uint32 max: offset+length wraps 32 bits
          ref.offset = 0xffffffffu - static_cast<uint32_t>(rng.NextBelow(16));
          ref.length = static_cast<uint32_t>(params.word_length);
          break;
        case 2:  // straddles the arena end by a few bytes
          ref.offset = static_cast<uint32_t>(
              arena_size > 0 ? arena_size - rng.NextBelow(arena_size) : 0);
          ref.length = static_cast<uint32_t>(params.word_length);
          break;
        default:  // honest in-bounds ref (when the arena allows one)
          if (arena_size >= params.word_length) {
            ref.offset = static_cast<uint32_t>(
                rng.NextBelow(arena_size - params.word_length + 1));
            ref.length = static_cast<uint32_t>(params.word_length);
          } else {
            ref.offset = 0;
            ref.length = static_cast<uint32_t>(arena_size);
          }
          break;
      }
      refs.push_back(ref);
    }
    std::vector<uint8_t> match_bits(refs.size(), 0xff);
    context.MatchMany(std::span<const uint8_t>(arena.data(), arena.size()),
                      std::span<const swp::WordRef>(refs.data(), refs.size()),
                      match_bits.data());
    for (size_t i = 0; i < refs.size(); ++i) {
      const uint64_t end =
          static_cast<uint64_t>(refs[i].offset) + refs[i].length;
      const bool in_bounds = end <= arena.size() &&
                             refs[i].length == trapdoor.target.size();
      if (!in_bounds) {
        // Out-of-bounds or wrong-length refs are hard non-matches.
        EXPECT_EQ(match_bits[i], 0u) << "hostile ref " << i << " matched";
      } else {
        // In-bounds refs agree with the scalar matcher bit for bit.
        Bytes word(arena.begin() + refs[i].offset,
                   arena.begin() + refs[i].offset + refs[i].length);
        EXPECT_EQ(match_bits[i],
                  swp::MatchCipherWord(params, trapdoor, word) ? 1 : 0);
      }
    }
  }
}

}  // namespace
}  // namespace dbph
