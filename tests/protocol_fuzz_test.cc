// Robustness tests: the server and all deserializers must survive
// arbitrary byte garbage — returning errors, never crashing or accepting
// malformed structures. A production outsourcing server is an internet-
// facing parser; this is its adversarial-input suite.

#include <gtest/gtest.h>

#include "client/client.h"
#include "crypto/random.h"
#include "dbph/encrypted_relation.h"
#include "protocol/messages.h"
#include "server/untrusted_server.h"
#include "swp/scheme.h"

namespace dbph {
namespace {

using rel::Value;
using rel::ValueType;

TEST(ProtocolFuzzTest, RandomBytesAlwaysGetErrorEnvelopes) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-random", 1);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.NextBelow(200);
    Bytes garbage = rng.NextBytes(len);
    Bytes response = server.HandleRequest(garbage);
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok()) << "server returned unparseable bytes";
    EXPECT_EQ(envelope->type, protocol::MessageType::kError);
  }
}

TEST(ProtocolFuzzTest, ValidTypeBytesWithGarbagePayloads) {
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-typed", 2);
  for (uint8_t type = 1; type <= protocol::kMaxMessageType; ++type) {
    for (int i = 0; i < 200; ++i) {
      protocol::Envelope request;
      request.type = static_cast<protocol::MessageType>(type);
      request.payload = rng.NextBytes(rng.NextBelow(120));
      Bytes response = server.HandleRequest(request.Serialize());
      auto envelope = protocol::Envelope::Parse(response);
      ASSERT_TRUE(envelope.ok());
      // Whatever happens, it must be a well-formed reply. (Random
      // payloads never decode into valid requests, so: error.)
      EXPECT_EQ(envelope->type, protocol::MessageType::kError);
    }
  }
}

TEST(ProtocolFuzzTest, TruncatedRealMessages) {
  // Build one real message of each kind, then replay every prefix.
  server::UntrustedServer server;
  crypto::HmacDrbg rng("fuzz-truncate", 3);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());

  client::Client client(
      ToBytes("fuzz master"),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  rel::Relation table("T", *schema);
  ASSERT_TRUE(table.Insert({Value::Str("hello")}).ok());

  // Capture the wire bytes by interposing a recording transport.
  std::vector<Bytes> recorded;
  client::Client recorder(
      ToBytes("fuzz master"),
      [&](const Bytes& request) {
        recorded.push_back(request);
        return server.HandleRequest(request);
      },
      &rng);
  ASSERT_TRUE(recorder.Outsource(table).ok());
  ASSERT_TRUE(recorder.Select("T", "v", Value::Str("hello")).ok());

  for (const Bytes& message : recorded) {
    for (size_t cut = 0; cut < message.size();
         cut += std::max<size_t>(1, message.size() / 37)) {
      Bytes truncated(message.begin(),
                      message.begin() + static_cast<long>(cut));
      Bytes response = server.HandleRequest(truncated);
      auto envelope = protocol::Envelope::Parse(response);
      ASSERT_TRUE(envelope.ok());
      EXPECT_EQ(envelope->type, protocol::MessageType::kError)
          << "prefix of length " << cut << " was accepted";
    }
  }
}

TEST(ProtocolFuzzTest, BitflippedStoreStillHandled) {
  // Flip single bits in a valid kStoreRelation message; the server must
  // either reject it or store something — but never crash, and always
  // answer in protocol.
  server::UntrustedServer sink;  // throwaway server per flip
  crypto::HmacDrbg rng("fuzz-bitflip", 4);
  auto schema = rel::Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());
  rel::Relation table("T", *schema);
  ASSERT_TRUE(table.Insert({Value::Str("payload")}).ok());

  Bytes wire;
  {
    std::vector<Bytes> recorded;
    server::UntrustedServer tmp;
    client::Client recorder(
        ToBytes("fuzz master"),
        [&](const Bytes& request) {
          recorded.push_back(request);
          return tmp.HandleRequest(request);
        },
        &rng);
    ASSERT_TRUE(recorder.Outsource(table).ok());
    wire = recorded.at(0);
  }

  for (size_t bit = 0; bit < wire.size() * 8; bit += 7) {
    Bytes mutated = wire;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    server::UntrustedServer fresh;
    Bytes response = fresh.HandleRequest(mutated);
    auto envelope = protocol::Envelope::Parse(response);
    ASSERT_TRUE(envelope.ok()) << "bit " << bit;
  }
}

TEST(DeserializerFuzzTest, EncryptedRelationRejectsGarbage) {
  crypto::HmacDrbg rng("fuzz-rel", 5);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(100));
    ByteReader reader(garbage);
    auto parsed = core::EncryptedRelation::ReadFrom(&reader);
    // Either a parse error, or a (vacuously valid) structure — the point
    // is memory safety; any crash fails the test run.
    (void)parsed;
  }
}

TEST(DeserializerFuzzTest, TrapdoorAndDocumentRejectGarbage) {
  crypto::HmacDrbg rng("fuzz-td", 6);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = rng.NextBytes(rng.NextBelow(60));
    {
      ByteReader reader(garbage);
      (void)swp::Trapdoor::ReadFrom(&reader);
    }
    {
      ByteReader reader(garbage);
      (void)swp::EncryptedDocument::ReadFrom(&reader);
    }
  }
}

TEST(DeserializerFuzzTest, LengthPrefixBombRejected) {
  // A claimed 4 GiB payload must be rejected by bounds checks, not
  // allocated.
  Bytes bomb;
  bomb.push_back(static_cast<uint8_t>(protocol::MessageType::kSelect));
  AppendUint32(&bomb, 0xffffffffu);  // envelope payload length
  server::UntrustedServer server;
  Bytes response = server.HandleRequest(bomb);
  auto envelope = protocol::Envelope::Parse(response);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->type, protocol::MessageType::kError);
}

}  // namespace
}  // namespace dbph
