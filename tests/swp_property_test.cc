// Property tests sweeping the SWP parameter space: for every usable
// (variant, word_length, check_length) cell, encryption must round-trip
// (when the variant decrypts), trapdoors must match exactly their own
// word, and serialization must be stable.

#include <gtest/gtest.h>

#include <tuple>

#include "common/bytes.h"
#include "crypto/prf.h"
#include "crypto/random.h"
#include "swp/scheme.h"
#include "swp/search.h"

namespace dbph {
namespace swp {
namespace {

using Param = std::tuple<SchemeVariant, size_t, size_t>;  // variant, n, m

class SwpGrid : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto [variant, word_len, check_len] = GetParam();
    params_ = SwpParams{word_len, check_len};
    master_ = ToBytes("grid master key");
    auto scheme = CreateScheme(variant, params_, master_);
    ASSERT_TRUE(scheme.ok()) << scheme.status();
    scheme_ = std::move(*scheme);
    keys_ = SwpKeys::Derive(master_);
  }

  Bytes RandomWord(crypto::Rng* rng) const {
    return rng->NextBytes(params_.word_length);
  }

  SwpParams params_;
  Bytes master_;
  SwpKeys keys_;
  std::unique_ptr<SearchableScheme> scheme_;
};

TEST_P(SwpGrid, RoundTripIfDecryptable) {
  crypto::HmacDrbg rng("grid-roundtrip", params_.word_length * 100 +
                                              params_.check_length);
  crypto::StreamGenerator stream(keys_.stream_key, ToBytes("n1"));
  for (int i = 0; i < 20; ++i) {
    Bytes word = RandomWord(&rng);
    auto cipher = scheme_->EncryptWord(stream, static_cast<uint64_t>(i),
                                       word);
    ASSERT_TRUE(cipher.ok());
    ASSERT_EQ(cipher->size(), params_.word_length);
    auto back =
        scheme_->DecryptWord(stream, static_cast<uint64_t>(i), *cipher);
    if (scheme_->SupportsDecryption()) {
      ASSERT_TRUE(back.ok()) << back.status();
      EXPECT_EQ(*back, word);
    } else {
      EXPECT_FALSE(back.ok());
    }
  }
}

TEST_P(SwpGrid, TrapdoorMatchesOnlyItsWord) {
  crypto::HmacDrbg rng("grid-trapdoor", params_.word_length * 100 +
                                            params_.check_length);
  crypto::StreamGenerator stream(keys_.stream_key, ToBytes("n2"));
  Bytes word = RandomWord(&rng);
  auto trapdoor = scheme_->MakeTrapdoor(word);
  ASSERT_TRUE(trapdoor.ok());

  auto cipher = scheme_->EncryptWord(stream, 0, word);
  ASSERT_TRUE(cipher.ok());
  EXPECT_TRUE(scheme_->Matches(*trapdoor, *cipher));
  // Keyless server-side predicate agrees with the scheme method.
  EXPECT_TRUE(MatchCipherWord(params_, *trapdoor, *cipher));

  // With >= 2 check bytes, 50 random non-matching words must all miss
  // (P(any false hit) < 50 * 2^-16 < 0.1%; the grid seed is fixed, so
  // this is deterministic in practice).
  if (params_.check_length >= 2) {
    for (int i = 0; i < 50; ++i) {
      Bytes other = RandomWord(&rng);
      if (other == word) continue;
      auto c = scheme_->EncryptWord(stream, static_cast<uint64_t>(i + 1),
                                    other);
      ASSERT_TRUE(c.ok());
      EXPECT_FALSE(scheme_->Matches(*trapdoor, *c));
    }
  }
}

TEST_P(SwpGrid, DocumentSearchConsistent) {
  crypto::HmacDrbg rng("grid-doc", params_.word_length);
  crypto::StreamGenerator stream(keys_.stream_key, ToBytes("n3"));
  Bytes needle = RandomWord(&rng);

  EncryptedDocument doc;
  doc.nonce = ToBytes("n3");
  std::vector<size_t> expected;
  for (size_t slot = 0; slot < 12; ++slot) {
    bool plant = (slot % 3 == 0);
    Bytes word = plant ? needle : RandomWord(&rng);
    if (word == needle && !plant) continue;
    if (plant) expected.push_back(slot);
    auto cipher = scheme_->EncryptWord(stream, slot, word);
    ASSERT_TRUE(cipher.ok());
    doc.words.push_back(*cipher);
  }
  auto trapdoor = scheme_->MakeTrapdoor(needle);
  ASSERT_TRUE(trapdoor.ok());
  if (params_.check_length >= 2) {
    EXPECT_EQ(SearchDocument(*scheme_, *trapdoor, doc), expected);
    EXPECT_EQ(SearchDocument(params_, *trapdoor, doc), expected);
  } else {
    // With 1 check byte false positives are possible; matches must at
    // least be a superset of the planted slots.
    auto hits = SearchDocument(*scheme_, *trapdoor, doc);
    for (size_t slot : expected) {
      EXPECT_NE(std::find(hits.begin(), hits.end(), slot), hits.end());
    }
  }
}

std::string GridName(const ::testing::TestParamInfo<Param>& info) {
  auto [variant, n, m] = info.param;
  std::string name = SchemeVariantName(variant);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_n" + std::to_string(n) + "_m" + std::to_string(m);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SwpGrid,
    ::testing::Combine(
        ::testing::Values(SchemeVariant::kBasic, SchemeVariant::kControlled,
                          SchemeVariant::kHidden, SchemeVariant::kFinal),
        ::testing::Values(4u, 11u, 16u, 33u),
        ::testing::Values(1u, 2u, 3u)),
    GridName);

}  // namespace
}  // namespace swp
}  // namespace dbph
