#include "dbph/document.h"

#include <gtest/gtest.h>

#include <set>

#include "dbph/attribute_id.h"

namespace dbph {
namespace core {
namespace {

using rel::Attribute;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema EmpSchema() {
  auto s = Schema::Create({
      {"name", ValueType::kString, 10},
      {"dept", ValueType::kString, 5},
      {"salary", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(AttributeIdsTest, PaperConventionFirstLetters) {
  auto ids = AttributeIds::Derive(EmpSchema());
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->id_length, 1u);
  EXPECT_EQ(ids->ids, (std::vector<std::string>{"N", "D", "S"}));
  EXPECT_EQ(*ids->IndexOf("D"), 1u);
  EXPECT_FALSE(ids->IndexOf("X").ok());
}

TEST(AttributeIdsTest, CollisionFallsBackToIndexCodes) {
  auto schema = Schema::Create({
      {"salary", ValueType::kInt64, 8},
      {"status", ValueType::kString, 8},  // both start with 's'
  });
  ASSERT_TRUE(schema.ok());
  auto ids = AttributeIds::Derive(*schema);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->id_length, 1u);
  EXPECT_EQ(ids->ids, (std::vector<std::string>{"A", "B"}));
}

TEST(AttributeIdsTest, ManyAttributesGetWiderIds) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 30; ++i) {
    attrs.push_back({"a" + std::to_string(i), ValueType::kInt64, 4});
  }
  auto schema = Schema::Create(attrs);
  ASSERT_TRUE(schema.ok());
  auto ids = AttributeIds::Derive(*schema);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->id_length, 2u);
  // All distinct.
  std::set<std::string> distinct(ids->ids.begin(), ids->ids.end());
  EXPECT_EQ(distinct.size(), 30u);
}

TEST(DocumentMapperTest, PaperWorkedExample) {
  // The paper: <name:"Montgomery", dept:"HR", sal:7500> maps to
  // {"MontgomeryN", "HR########D", "7500######S"}.
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  EXPECT_EQ(mapper->WordLengthFor(0), 11u);  // 10 + 1-char id

  Tuple tuple({Value::Str("Montgomery"), Value::Str("HR"), Value::Int(7500)});
  auto doc = mapper->MakeDocument(tuple);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->size(), 3u);
  EXPECT_EQ(ToString((*doc)[0]), "MontgomeryN");
  EXPECT_EQ(ToString((*doc)[1]), "HR########D");
  EXPECT_EQ(ToString((*doc)[2]), "7500######S");
}

TEST(DocumentMapperTest, ParseWordInverts) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  auto word = mapper->MakeWord(2, Value::Int(7500));
  ASSERT_TRUE(word.ok());
  auto parsed = mapper->ParseWord(*word);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, 2u);
  EXPECT_EQ(parsed->second, Value::Int(7500));
}

TEST(DocumentMapperTest, ReassembleFromShuffledWords) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  Tuple tuple({Value::Str("Smith"), Value::Str("IT"), Value::Int(42)});
  auto doc = mapper->MakeDocument(tuple);
  ASSERT_TRUE(doc.ok());
  // Any permutation reassembles to the same tuple — documents are sets.
  std::vector<Bytes> shuffled = {(*doc)[2], (*doc)[0], (*doc)[1]};
  auto back = mapper->ReassembleTuple(shuffled);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tuple);
}

TEST(DocumentMapperTest, ReassembleRejectsMissingOrDuplicate) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  Tuple tuple({Value::Str("Smith"), Value::Str("IT"), Value::Int(42)});
  auto doc = mapper->MakeDocument(tuple);
  ASSERT_TRUE(doc.ok());
  // Wrong count.
  EXPECT_FALSE(
      mapper->ReassembleTuple({(*doc)[0], (*doc)[1]}).ok());
  // Duplicate attribute.
  EXPECT_FALSE(
      mapper->ReassembleTuple({(*doc)[0], (*doc)[0], (*doc)[1]}).ok());
}

TEST(DocumentMapperTest, RejectsPaddingSymbolInValue) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  EXPECT_FALSE(mapper->MakeWord(0, Value::Str("a#b")).ok());
}

TEST(DocumentMapperTest, RejectsOversizedValue) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  EXPECT_FALSE(mapper->MakeWord(1, Value::Str("toolongdept")).ok());
}

TEST(DocumentMapperTest, RejectsTypeMismatch) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  EXPECT_FALSE(mapper->MakeWord(2, Value::Str("7500")).ok());
}

TEST(DocumentMapperTest, VariableLengthMode) {
  auto mapper = DocumentMapper::Create(EmpSchema(), /*variable_length=*/true);
  ASSERT_TRUE(mapper.ok());
  EXPECT_EQ(mapper->WordLengthFor(0), 11u);  // 10 + 1
  EXPECT_EQ(mapper->WordLengthFor(1), 6u);   // 5 + 1
  EXPECT_EQ(mapper->WordLengthFor(2), 11u);  // 10 + 1
  auto lengths = mapper->DistinctWordLengths();
  EXPECT_EQ(lengths, (std::vector<size_t>{6, 11}));

  Tuple tuple({Value::Str("Montgomery"), Value::Str("HR"), Value::Int(7500)});
  auto doc = mapper->MakeDocument(tuple);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ToString((*doc)[1]), "HR###D");
  auto back = mapper->ReassembleTuple(*doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tuple);
}

TEST(DocumentMapperTest, EmptyStringValueRoundTrips) {
  auto mapper = DocumentMapper::Create(EmpSchema());
  ASSERT_TRUE(mapper.ok());
  auto word = mapper->MakeWord(1, Value::Str(""));
  ASSERT_TRUE(word.ok());
  auto parsed = mapper->ParseWord(*word);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->second, Value::Str(""));
}

TEST(DocumentMapperTest, BoolAndNegativeIntEncodings) {
  auto schema = Schema::Create({
      {"flag", ValueType::kBool, 1},
      {"delta", ValueType::kInt64, 6},
  });
  ASSERT_TRUE(schema.ok());
  auto mapper = DocumentMapper::Create(*schema);
  ASSERT_TRUE(mapper.ok());
  Tuple tuple({Value::Boolean(true), Value::Int(-123)});
  auto doc = mapper->MakeDocument(tuple);
  ASSERT_TRUE(doc.ok());
  auto back = mapper->ReassembleTuple(*doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tuple);
}

}  // namespace
}  // namespace core
}  // namespace dbph
