#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace dbph {
namespace crypto {
namespace {

std::string HashHex(const std::string& msg) {
  return HexEncode(Sha256::Hash(ToBytes(msg)));
}

// NIST FIPS 180-4 / well-known reference digests.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, QuickBrownFox) {
  EXPECT_EQ(HashHex("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "incremental hashing must be equivalent to one-shot";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(ToBytes(msg.substr(0, split)));
    h.Update(ToBytes(msg.substr(split)));
    EXPECT_EQ(HexEncode(h.Finish()), HashHex(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, ResetRestoresPristineState) {
  Sha256 h;
  h.Update(ToBytes("garbage"));
  h.Reset();
  h.Update(ToBytes("abc"));
  EXPECT_EQ(HexEncode(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Boundary lengths around the 64-byte block size (55/56/63/64/65 bytes):
// padding behaviour changes at each of these.
TEST(Sha256Test, BlockBoundaryLengths) {
  struct Case {
    size_t len;
    const char* digest;
  };
  // Digests of 'a' * len, cross-checked with coreutils sha256sum.
  const Case cases[] = {
      {55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"},
      {56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"},
      {63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34"},
      {64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"},
      {65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"},
  };
  for (const auto& c : cases) {
    Bytes msg(c.len, 'a');
    EXPECT_EQ(HexEncode(Sha256::Hash(msg)), c.digest) << "len=" << c.len;
  }
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
