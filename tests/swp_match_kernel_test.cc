#include "swp/match_kernel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "crypto/prf.h"
#include "swp/scheme.h"
#include "swp/search.h"

namespace dbph {
namespace swp {
namespace {

/// Deterministic xorshift stream so failures reproduce.
class TestRng {
 public:
  explicit TestRng(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  Bytes NextBytes(size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<uint8_t>(Next());
    return out;
  }

 private:
  uint64_t state_;
};

Trapdoor MakeTestTrapdoor(TestRng* rng, size_t word_length) {
  Trapdoor trapdoor;
  trapdoor.target = rng->NextBytes(word_length);
  trapdoor.key = rng->NextBytes(32);
  return trapdoor;
}

/// Builds an arena + refs from a word list, returning both.
struct ArenaFixture {
  Bytes arena;
  std::vector<WordRef> refs;

  void Add(const Bytes& word) {
    refs.push_back({static_cast<uint32_t>(arena.size()),
                    static_cast<uint32_t>(word.size())});
    arena.insert(arena.end(), word.begin(), word.end());
  }
};

/// The ground truth: MatchCipherWord on a copied-out word.
std::vector<uint8_t> ScalarMatches(const SwpParams& params,
                                   const Trapdoor& trapdoor,
                                   const ArenaFixture& fixture) {
  std::vector<uint8_t> out(fixture.refs.size(), 0);
  for (size_t i = 0; i < fixture.refs.size(); ++i) {
    const WordRef& ref = fixture.refs[i];
    Bytes word(fixture.arena.begin() + ref.offset,
               fixture.arena.begin() + ref.offset + ref.length);
    out[i] = MatchCipherWord(params, trapdoor, word) ? 1 : 0;
  }
  return out;
}

// Exhaustive over a tiny word space: word_length 2, check_length 1 —
// every possible 2-byte ciphertext is checked both ways. With a 1-byte
// check part roughly 1/256 of random words false-positive, so this
// sweeps matching and non-matching words through both paths.
TEST(MatchKernelTest, ExhaustiveSmallWordSpace) {
  SwpParams params;
  params.word_length = 2;
  params.check_length = 1;
  TestRng rng(0xdecafbad);
  Trapdoor trapdoor = MakeTestTrapdoor(&rng, 2);

  ArenaFixture fixture;
  for (int hi = 0; hi < 256; ++hi) {
    for (int lo = 0; lo < 256; ++lo) {
      fixture.Add({static_cast<uint8_t>(hi), static_cast<uint8_t>(lo)});
    }
  }
  std::vector<uint8_t> expected = ScalarMatches(params, trapdoor, fixture);

  MatchContext context(params, trapdoor);
  std::vector<uint8_t> got(fixture.refs.size(), 0xff);
  size_t matched = context.MatchMany(fixture.arena, fixture.refs, got.data());
  EXPECT_EQ(got, expected);
  size_t expected_matched = 0;
  for (uint8_t m : expected) expected_matched += m;
  EXPECT_EQ(matched, expected_matched);
  // Every word has the target's length, so every word cost one eval.
  EXPECT_EQ(context.match_evals(), 256u * 256u);
  // The trapdoor's own word must match itself... only if the target IS
  // the encryption; here targets are random so we just require at least
  // the scalar agreement above. Single-word path agrees too:
  for (size_t i = 0; i < 512; ++i) {
    const WordRef& ref = fixture.refs[i];
    EXPECT_EQ(context.Matches(fixture.arena.data() + ref.offset, ref.length),
              expected[i] == 1);
  }
}

// Seeded random sweep across realistic parameter shapes, including the
// default (16, 4), an odd word length, a check part at the digest limit
// and one beyond it (counter-mode expansion path).
TEST(MatchKernelTest, SeededRandomEquivalence) {
  const struct {
    size_t word_length;
    size_t check_length;
  } shapes[] = {{16, 4}, {7, 2}, {33, 32}, {40, 36}, {5, 1}};
  TestRng rng(0x5eed5eed);
  for (const auto& shape : shapes) {
    SwpParams params;
    params.word_length = shape.word_length;
    params.check_length = shape.check_length;
    Trapdoor trapdoor = MakeTestTrapdoor(&rng, shape.word_length);

    ArenaFixture fixture;
    for (int i = 0; i < 300; ++i) {
      fixture.Add(rng.NextBytes(shape.word_length));
    }
    // Plant guaranteed matches: words that XOR to a consistent
    // left/check pair. Build them via the match equation itself:
    // cipher = target XOR (s | F_k(s)).
    crypto::Prf check(trapdoor.key);
    for (int i = 0; i < 5; ++i) {
      Bytes s = rng.NextBytes(shape.word_length - shape.check_length);
      Bytes f = check.Eval(s, shape.check_length);
      Bytes pad = s;
      pad.insert(pad.end(), f.begin(), f.end());
      fixture.Add(Xor(trapdoor.target, pad));
    }

    std::vector<uint8_t> expected = ScalarMatches(params, trapdoor, fixture);
    size_t expected_matched = 0;
    for (uint8_t m : expected) expected_matched += m;
    ASSERT_GE(expected_matched, 5u);  // the planted matches

    MatchContext context(params, trapdoor);
    std::vector<uint8_t> got(fixture.refs.size(), 0xff);
    size_t matched =
        context.MatchMany(fixture.arena, fixture.refs, got.data());
    EXPECT_EQ(got, expected) << "word_length " << shape.word_length
                             << " check_length " << shape.check_length;
    EXPECT_EQ(matched, expected_matched);
  }
}

// Words whose length differs from the trapdoor target never match and
// never cost a PRF eval — on either path.
TEST(MatchKernelTest, MismatchedLengthEdgeCases) {
  SwpParams params;  // 16 / 4
  TestRng rng(0xabcdef12);
  Trapdoor trapdoor = MakeTestTrapdoor(&rng, 16);

  ArenaFixture fixture;
  fixture.Add(rng.NextBytes(15));  // one short
  fixture.Add(rng.NextBytes(17));  // one long
  fixture.Add(Bytes());            // empty word
  fixture.Add(rng.NextBytes(16));  // the only candidate
  fixture.Add(rng.NextBytes(4));   // check-length-sized
  std::vector<uint8_t> expected = ScalarMatches(params, trapdoor, fixture);

  MatchContext context(params, trapdoor);
  std::vector<uint8_t> got(fixture.refs.size(), 0xff);
  context.MatchMany(fixture.arena, fixture.refs, got.data());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(context.match_evals(), 1u);  // only the 16-byte word

  // A target no longer than the check part can never match (the scalar
  // path's same guard).
  SwpParams degenerate;
  degenerate.word_length = 4;
  degenerate.check_length = 4;
  Trapdoor short_trapdoor = MakeTestTrapdoor(&rng, 4);
  MatchContext degenerate_context(degenerate, short_trapdoor);
  ArenaFixture short_fixture;
  short_fixture.Add(rng.NextBytes(4));
  std::vector<uint8_t> short_got(1, 0xff);
  EXPECT_EQ(degenerate_context.MatchMany(short_fixture.arena,
                                         short_fixture.refs, short_got.data()),
            0u);
  EXPECT_EQ(short_got[0], 0);
  EXPECT_EQ(degenerate_context.match_evals(), 0u);
}

// Hostile refs — offsets past the arena, lengths overflowing uint32
// arithmetic, refs into an empty arena — are non-matches, not reads.
TEST(MatchKernelTest, HostileArenaOffsets) {
  SwpParams params;  // 16 / 4
  TestRng rng(0x600dcafe);
  Trapdoor trapdoor = MakeTestTrapdoor(&rng, 16);
  MatchContext context(params, trapdoor);

  Bytes arena = rng.NextBytes(64);
  std::vector<WordRef> refs = {
      {0, 16},                    // in bounds: evaluated
      {48, 16},                   // exactly at the end: evaluated
      {49, 16},                   // one past: never read
      {~uint32_t{0}, 16},         // offset near uint32 max: overflow-safe
      {~uint32_t{0} - 15, 16},    // offset+length == 2^32: out of bounds
      {64, 16},                   // starts at arena.size()
      {0, ~uint32_t{0}},          // absurd length (also != target length)
  };
  std::vector<uint8_t> got(refs.size(), 0xff);
  context.MatchMany(arena, refs, got.data());
  for (size_t i = 2; i < refs.size(); ++i) {
    EXPECT_EQ(got[i], 0) << "hostile ref " << i << " must not match";
  }
  EXPECT_EQ(context.match_evals(), 2u);  // only the two in-bounds refs

  std::vector<uint8_t> empty_got(refs.size(), 0xff);
  context.MatchMany(std::span<const uint8_t>(), refs, empty_got.data());
  for (uint8_t m : empty_got) EXPECT_EQ(m, 0);
}

// CollectWordRefs mirrors EncryptedDocument::ReadFrom: identical word
// boundaries on well-formed input, failure on exactly the inputs
// ReadFrom rejects.
TEST(MatchKernelTest, CollectWordRefsMirrorsParse) {
  TestRng rng(0x12345678);
  EncryptedDocument doc;
  doc.nonce = rng.NextBytes(16);
  for (int i = 0; i < 5; ++i) doc.words.push_back(rng.NextBytes(16));
  doc.words.push_back(Bytes());  // empty word slot survives both paths
  doc.tag = rng.NextBytes(32);
  Bytes serialized;
  doc.AppendTo(&serialized);

  std::vector<WordRef> refs;
  auto count = CollectWordRefs(serialized, &refs);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, doc.words.size());
  ASSERT_EQ(refs.size(), doc.words.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_LE(static_cast<size_t>(refs[i].offset) + refs[i].length,
              serialized.size());
    EXPECT_EQ(Bytes(serialized.begin() + refs[i].offset,
                    serialized.begin() + refs[i].offset + refs[i].length),
              doc.words[i])
        << "word " << i;
  }

  // Truncations at every byte must fail in both (ReadFrom tolerates no
  // prefix of a valid document shorter than itself, except none).
  for (size_t cut = 0; cut < serialized.size(); ++cut) {
    Bytes truncated(serialized.begin(),
                    serialized.begin() + static_cast<long>(cut));
    std::vector<WordRef> cut_refs;
    ByteReader reader(truncated);
    const bool parse_ok = EncryptedDocument::ReadFrom(&reader).ok();
    const bool collect_ok = CollectWordRefs(truncated, &cut_refs).ok();
    EXPECT_EQ(parse_ok, collect_ok) << "cut at " << cut;
  }
}

// SearchDocument over a parsed document and MatchMany over its
// serialized bytes must select the same word slots.
TEST(MatchKernelTest, MatchManyAgreesWithSearchDocument) {
  TestRng rng(0x0badf00d);
  SwpParams params;  // 16 / 4
  Trapdoor trapdoor = MakeTestTrapdoor(&rng, 16);

  for (int round = 0; round < 50; ++round) {
    EncryptedDocument doc;
    doc.nonce = rng.NextBytes(16);
    const size_t nwords = 1 + (rng.Next() % 6);
    for (size_t i = 0; i < nwords; ++i) doc.words.push_back(rng.NextBytes(16));
    // Plant a match in some rounds.
    if (round % 3 == 0) {
      crypto::Prf check(trapdoor.key);
      Bytes s = rng.NextBytes(12);
      Bytes f = check.Eval(s, 4);
      Bytes pad = s;
      pad.insert(pad.end(), f.begin(), f.end());
      doc.words[rng.Next() % nwords] = Xor(trapdoor.target, pad);
    }
    Bytes serialized;
    doc.AppendTo(&serialized);

    std::vector<size_t> scalar = SearchDocument(params, trapdoor, doc);

    std::vector<WordRef> refs;
    ASSERT_TRUE(CollectWordRefs(serialized, &refs).ok());
    MatchContext context(params, trapdoor);
    std::vector<uint8_t> got(refs.size(), 0xff);
    context.MatchMany(serialized, refs, got.data());
    std::vector<size_t> kernel;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i] != 0) kernel.push_back(i);
    }
    EXPECT_EQ(kernel, scalar) << "round " << round;
  }
}

}  // namespace
}  // namespace swp
}  // namespace dbph
