// Crash-injection coverage for the durability subsystem: a DurableStore
// abandoned without Close() is a kill -9'd server — recovery from its
// directory must rebuild a consistent prefix of the mutation history,
// byte-identical to the state the live server held, whatever the WAL's
// tail looks like (torn mid-record, CRC-corrupted, stale after a
// checkpoint that never trimmed).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "server/durable_store.h"
#include "server/untrusted_server.h"
#include "storage/wal.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema TableSchema() {
  auto s = Schema::Create({
      {"key", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Relation BuildTable(size_t n) {
  Relation table("T", TableSchema());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(table.Insert({Value::Str("k" + std::to_string(i)),
                              Value::Int(static_cast<int64_t>(i % 5))})
                    .ok());
  }
  return table;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Bytes ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return Bytes((std::istreambuf_iterator<char>(file)),
               std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const Bytes& data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(file.good()) << path;
}

/// A live durable deployment: server + store + a keyed client whose
/// mutations flow through the wire protocol (and therefore the WAL).
/// Destroying the struct without Close() simulates kill -9.
struct Deployment {
  explicit Deployment(const std::string& dir,
                      server::DurableStoreOptions options = {}) {
    server = std::make_unique<server::UntrustedServer>();
    store = std::make_unique<server::DurableStore>(server.get(), dir, options);
    rng = std::make_unique<crypto::HmacDrbg>("wal-recovery", 1);
    client = std::make_unique<client::Client>(
        ToBytes("wal master"),
        [this](const Bytes& request) { return server->HandleRequest(request); },
        rng.get());
  }

  Bytes State() {
    auto state = server->SerializeState();
    EXPECT_TRUE(state.ok());
    return *state;
  }

  std::unique_ptr<server::UntrustedServer> server;
  std::unique_ptr<server::DurableStore> store;
  std::unique_ptr<crypto::HmacDrbg> rng;
  std::unique_ptr<client::Client> client;
};

server::DurableStoreOptions ManualOptions() {
  server::DurableStoreOptions options;
  options.background_thread = false;  // tests drive checkpoints by hand
  return options;
}

TEST(WalRecoveryTest, CrashRecoveryRebuildsByteIdenticalState) {
  std::string dir = FreshDir("wal_crash_basic");
  Bytes live_state;
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(20)).ok());
    ASSERT_TRUE(live.client
                    ->Insert("T", {Tuple({Value::Str("new1"), Value::Int(3)}),
                                   Tuple({Value::Str("new2"), Value::Int(4)})})
                    .ok());
    auto removed = live.client->DeleteWhere("T", "grp", Value::Int(2));
    ASSERT_TRUE(removed.ok());
    EXPECT_GT(*removed, 0u);
    ASSERT_TRUE(live.client->Flush().ok());
    live_state = live.State();
  }  // kill -9: no Close, no final checkpoint

  Deployment restarted(dir, ManualOptions());
  ASSERT_TRUE(restarted.store->Open().ok());
  EXPECT_GT(restarted.store->stats().replayed_records, 0u);
  EXPECT_EQ(restarted.State(), live_state);
  // Replay is recovery, not observation.
  EXPECT_TRUE(restarted.server->observations().queries().empty());
  EXPECT_TRUE(restarted.server->observations().stores().empty());

  // The restarted server answers queries for a reattaching key holder.
  ASSERT_TRUE(restarted.client->Adopt("T", TableSchema()).ok());
  auto rows = restarted.client->Select("T", "grp", Value::Int(3));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);  // 4 of 20 seeded rows + "new1"
}

TEST(WalRecoveryTest, TornTailTruncatedAtEveryByteOfTheFinalRecord) {
  // Run N mutations, remembering the WAL size and exact server state
  // after each. Then cut the WAL at every byte boundary of the final
  // record: recovery must yield exactly the state after N-1 mutations
  // (any partial cut) or after N (the full log) — never anything else.
  std::string dir = FreshDir("wal_torn_tail");
  std::vector<size_t> wal_after;   // WAL bytes after op i
  std::vector<Bytes> state_after;  // server state after op i
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());

    ASSERT_TRUE(live.client->Outsource(BuildTable(10)).ok());
    wal_after.push_back(live.store->stats().wal_bytes);
    state_after.push_back(live.State());

    ASSERT_TRUE(
        live.client->Insert("T", {Tuple({Value::Str("a"), Value::Int(1)})})
            .ok());
    wal_after.push_back(live.store->stats().wal_bytes);
    state_after.push_back(live.State());

    auto removed = live.client->DeleteWhere("T", "grp", Value::Int(1));
    ASSERT_TRUE(removed.ok());
    wal_after.push_back(live.store->stats().wal_bytes);
    state_after.push_back(live.State());
  }

  Bytes snapshot_image = ReadFileBytes(dir + "/snapshot.dbph");
  Bytes wal_image = ReadFileBytes(dir + "/wal.log");
  ASSERT_EQ(wal_image.size(), wal_after.back());
  size_t penultimate = wal_after[wal_after.size() - 2];

  for (size_t cut = penultimate; cut <= wal_image.size(); ++cut) {
    std::string crash_dir = FreshDir("wal_torn_tail_cut");
    ASSERT_TRUE(std::filesystem::create_directory(crash_dir));
    WriteFileBytes(crash_dir + "/snapshot.dbph", snapshot_image);
    WriteFileBytes(crash_dir + "/wal.log",
                   Bytes(wal_image.begin(),
                         wal_image.begin() + static_cast<long>(cut)));

    Deployment recovered(crash_dir, ManualOptions());
    ASSERT_TRUE(recovered.store->Open().ok()) << "cut at " << cut;
    const Bytes& expected = cut == wal_image.size()
                                ? state_after.back()
                                : state_after[state_after.size() - 2];
    EXPECT_EQ(recovered.State(), expected) << "cut at " << cut;
    EXPECT_EQ(recovered.store->stats().recovered_torn_tail,
              cut != wal_image.size() && cut != penultimate)
        << "cut at " << cut;
  }
}

TEST(WalRecoveryTest, CrcCorruptionDropsTheRecordAndEverythingAfter) {
  std::string dir = FreshDir("wal_crc_flip");
  std::vector<size_t> wal_after;
  std::vector<Bytes> state_after;
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(8)).ok());
    wal_after.push_back(live.store->stats().wal_bytes);
    state_after.push_back(live.State());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(live.client
                      ->Insert("T", {Tuple({Value::Str("x" + std::to_string(i)),
                                            Value::Int(i)})})
                      .ok());
      wal_after.push_back(live.store->stats().wal_bytes);
      state_after.push_back(live.State());
    }
  }
  Bytes snapshot_image = ReadFileBytes(dir + "/snapshot.dbph");
  Bytes wal_image = ReadFileBytes(dir + "/wal.log");

  // Flip one payload byte inside record k (for every k): recovery must
  // keep exactly the records before k — a consistent prefix, even when
  // valid-looking records follow the corruption.
  for (size_t k = 0; k < wal_after.size(); ++k) {
    size_t begin = k == 0 ? 0 : wal_after[k - 1];
    Bytes corrupted = wal_image;
    corrupted[begin + 16] ^= 0x40;  // first payload byte (16-byte header)

    std::string crash_dir = FreshDir("wal_crc_flip_case");
    ASSERT_TRUE(std::filesystem::create_directory(crash_dir));
    WriteFileBytes(crash_dir + "/snapshot.dbph", snapshot_image);
    WriteFileBytes(crash_dir + "/wal.log", corrupted);

    Deployment recovered(crash_dir, ManualOptions());
    ASSERT_TRUE(recovered.store->Open().ok()) << "corrupt record " << k;
    EXPECT_TRUE(recovered.store->stats().recovered_torn_tail);
    if (k == 0) {
      EXPECT_EQ(recovered.server->num_relations(), 0u);
    } else {
      EXPECT_EQ(recovered.State(), state_after[k - 1])
          << "corrupt record " << k;
    }
  }
}

TEST(WalRecoveryTest, StaleWalAfterCheckpointIsNotReappliedTwice) {
  // The crash window between snapshot rename and WAL trim: recovery sees
  // a fresh snapshot AND the full pre-checkpoint log. LSNs make replay
  // skip everything the snapshot already covers — nothing double-applies.
  std::string dir = FreshDir("wal_stale");
  Bytes checkpointed_state;
  Bytes stale_wal;
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(12)).ok());
    ASSERT_TRUE(
        live.client->Insert("T", {Tuple({Value::Str("dup"), Value::Int(9)})})
            .ok());
    stale_wal = ReadFileBytes(dir + "/wal.log");
    ASSERT_FALSE(stale_wal.empty());

    ASSERT_TRUE(live.store->Checkpoint().ok());
    EXPECT_EQ(live.store->stats().wal_bytes, 0u);
    checkpointed_state = live.State();
  }
  // Resurrect the pre-checkpoint WAL, as if the trim never hit disk.
  WriteFileBytes(dir + "/wal.log", stale_wal);

  Deployment recovered(dir, ManualOptions());
  ASSERT_TRUE(recovered.store->Open().ok());
  EXPECT_EQ(recovered.store->stats().replayed_records, 0u);
  EXPECT_EQ(recovered.State(), checkpointed_state);

  // In particular the "dup" row exists exactly once.
  ASSERT_TRUE(recovered.client->Adopt("T", TableSchema()).ok());
  auto rows = recovered.client->Select("T", "grp", Value::Int(9));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(WalRecoveryTest, CheckpointsInterleavedWithMutationsRecoverTheSuffix) {
  std::string dir = FreshDir("wal_interleaved");
  Bytes live_state;
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(6)).ok());
    ASSERT_TRUE(live.store->Checkpoint().ok());
    ASSERT_TRUE(
        live.client->Insert("T", {Tuple({Value::Str("p1"), Value::Int(1)})})
            .ok());
    ASSERT_TRUE(live.store->Checkpoint().ok());
    ASSERT_TRUE(
        live.client->Insert("T", {Tuple({Value::Str("p2"), Value::Int(2)})})
            .ok());
    auto removed = live.client->DeleteWhere("T", "grp", Value::Int(0));
    ASSERT_TRUE(removed.ok());
    live_state = live.State();
  }  // crash with two mutations after the last checkpoint

  Deployment recovered(dir, ManualOptions());
  ASSERT_TRUE(recovered.store->Open().ok());
  EXPECT_EQ(recovered.store->stats().replayed_records, 2u);
  EXPECT_EQ(recovered.State(), live_state);
}

TEST(WalRecoveryTest, FailedMutationsReplayAsFailuresNotStateChanges) {
  // Errors are part of the logged history: a kStoreRelation that
  // collided originally must collide again on replay, leaving state
  // untouched rather than duplicating or erroring out recovery.
  std::string dir = FreshDir("wal_failed_ops");
  Bytes live_state;
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(5)).ok());
    EXPECT_FALSE(live.client->Outsource(BuildTable(5)).ok());  // kAlreadyExists
    auto removed = live.client->DeleteWhere("T", "grp", Value::Int(4));
    ASSERT_TRUE(removed.ok());
    live_state = live.State();
  }
  Deployment recovered(dir, ManualOptions());
  ASSERT_TRUE(recovered.store->Open().ok());
  EXPECT_EQ(recovered.State(), live_state);
  EXPECT_EQ(*recovered.server->RelationSize("T"), 4u);
}

TEST(WalRecoveryTest, GroupCommitModeWithBackgroundCheckpointer) {
  // kBatch fsync + a fast background thread: mutations under live group
  // commit and periodic checkpoints, then a crash. Client::Flush is the
  // durability point, so everything acknowledged before it must survive.
  std::string dir = FreshDir("wal_group_commit");
  Bytes live_state;
  {
    server::DurableStoreOptions options;
    options.sync_mode = storage::WalSyncMode::kBatch;
    options.sync_interval_ms = 2;
    options.checkpoint_interval_ms = 10;
    options.checkpoint_wal_bytes = 1;  // checkpoint at every opportunity
    Deployment live(dir, options);
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(10)).ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(live.client
                      ->Insert("T", {Tuple({Value::Str("b" + std::to_string(i)),
                                            Value::Int(i % 5)})})
                      .ok());
      if (i % 5 == 0) {
        auto removed = live.client->DeleteWhere("T", "grp", Value::Int(i % 3));
        ASSERT_TRUE(removed.ok());
      }
      if (i % 7 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    ASSERT_TRUE(live.client->Flush().ok());
    EXPECT_GE(live.store->stats().checkpoints, 1u);
    live_state = live.State();
  }  // crash

  Deployment recovered(dir, ManualOptions());
  ASSERT_TRUE(recovered.store->Open().ok());
  EXPECT_EQ(recovered.State(), live_state);
}

TEST(WalRecoveryTest, GracefulCloseLeavesEmptyWalAndRestartsReplayNothing) {
  std::string dir = FreshDir("wal_graceful");
  Bytes live_state;
  {
    Deployment live(dir, ManualOptions());
    ASSERT_TRUE(live.store->Open().ok());
    ASSERT_TRUE(live.client->Outsource(BuildTable(7)).ok());
    live_state = live.State();
    ASSERT_TRUE(live.store->Close().ok());
  }
  EXPECT_EQ(ReadFileBytes(dir + "/wal.log").size(), 0u);
  Deployment restarted(dir, ManualOptions());
  ASSERT_TRUE(restarted.store->Open().ok());
  EXPECT_EQ(restarted.store->stats().replayed_records, 0u);
  EXPECT_EQ(restarted.State(), live_state);
}

}  // namespace
}  // namespace dbph
