#include "common/logging.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/stopwatch.h"

namespace dbph {
namespace {

TEST(LoggingTest, LevelFiltering) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Below-threshold messages must not reach stderr.
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Warning) << "should be filtered";
  std::string quiet = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(quiet.empty());

  // At/above threshold they must.
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Error) << "must appear " << 42;
  std::string loud = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(loud.find("must appear 42"), std::string::npos);
  EXPECT_NE(loud.find("ERROR"), std::string::npos);
  EXPECT_NE(loud.find("common_logging_test.cc"), std::string::npos);

  SetLogLevel(original);
}

TEST(LoggingTest, StreamFormatsArbitraryTypes) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Info) << "pi=" << 3.5 << " flag=" << true << " n=" << -7;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("pi=3.5"), std::string::npos);
  EXPECT_NE(out.find("n=-7"), std::string::npos);
  SetLogLevel(original);
}

TEST(LoggingTest, PrefixCarriesUtcTimestampAndThreadId) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Info) << "stamped";
  std::string out = ::testing::internal::GetCapturedStderr();
  SetLogLevel(original);

  // ISO-8601 UTC with millisecond precision: 2026-08-07T12:34:56.789Z.
  ASSERT_GE(out.size(), 24u);
  std::string stamp = out.substr(0, 24);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[7], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[13], ':');
  EXPECT_EQ(stamp[16], ':');
  EXPECT_EQ(stamp[19], '.');
  EXPECT_EQ(stamp[23], 'Z');
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u, 17u,
                   18u, 20u, 21u, 22u}) {
    EXPECT_TRUE(stamp[i] >= '0' && stamp[i] <= '9')
        << "non-digit at " << i << " in '" << stamp << "'";
  }

  // Level tag and the issuing thread's id, for correlating interleaved
  // lines from the loop thread vs the background checkpointer.
  EXPECT_NE(out.find("[INFO tid="), std::string::npos);
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  EXPECT_NE(out.find("tid=" + tid.str()), std::string::npos);
  EXPECT_NE(out.find("stamped"), std::string::npos);
}

TEST(LoggingTest, ParseLogLevelMatchesEnvContract) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kWarning), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kWarning), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kWarning), LogLevel::kError);
  // Unset or junk keeps the fallback — a typo in DBPH_LOG_LEVEL must not
  // silence errors or open the debug firehose.
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kError), LogLevel::kError);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  EXPECT_GE(watch.ElapsedMicros(), 15000);

  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), first);
}

}  // namespace
}  // namespace dbph
