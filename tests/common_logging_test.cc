#include "common/logging.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/stopwatch.h"

namespace dbph {
namespace {

TEST(LoggingTest, LevelFiltering) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Below-threshold messages must not reach stderr.
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Warning) << "should be filtered";
  std::string quiet = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(quiet.empty());

  // At/above threshold they must.
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Error) << "must appear " << 42;
  std::string loud = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(loud.find("must appear 42"), std::string::npos);
  EXPECT_NE(loud.find("ERROR"), std::string::npos);
  EXPECT_NE(loud.find("common_logging_test.cc"), std::string::npos);

  SetLogLevel(original);
}

TEST(LoggingTest, StreamFormatsArbitraryTypes) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  DBPH_LOG(Info) << "pi=" << 3.5 << " flag=" << true << " n=" << -7;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("pi=3.5"), std::string::npos);
  EXPECT_NE(out.find("n=-7"), std::string::npos);
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  EXPECT_GE(watch.ElapsedMicros(), 15000);

  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), first);
}

}  // namespace
}  // namespace dbph
