#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace dbph {
namespace crypto {
namespace {

Bytes Hex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// RFC 8439 §2.4.2: full encryption test vector.
TEST(ChaCha20Test, Rfc8439Encryption) {
  Bytes key = Hex(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  Bytes nonce = Hex("000000000000004a00000000");
  auto cipher = ChaCha20::Create(key, nonce);
  ASSERT_TRUE(cipher.ok());

  Bytes plaintext = ToBytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes ciphertext = cipher->Process(plaintext, /*counter=*/1);
  EXPECT_EQ(HexEncode(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
  // Decryption = encryption.
  EXPECT_EQ(cipher->Process(ciphertext, 1), plaintext);
}

// RFC 8439 §2.3.2: first keystream block with counter = 1.
TEST(ChaCha20Test, Rfc8439BlockFunction) {
  Bytes key = Hex(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  Bytes nonce = Hex("000000090000004a00000000");
  auto cipher = ChaCha20::Create(key, nonce);
  ASSERT_TRUE(cipher.ok());
  Bytes block = cipher->Keystream(64, 64);  // block index 1
  EXPECT_EQ(HexEncode(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, SeekAgreesWithPrefix) {
  Bytes key(32, 0x07);
  Bytes nonce(12, 0x0a);
  auto cipher = ChaCha20::Create(key, nonce);
  ASSERT_TRUE(cipher.ok());
  Bytes full = cipher->Keystream(0, 300);
  for (uint64_t off : {0u, 1u, 63u, 64u, 65u, 128u, 200u}) {
    Bytes part = cipher->Keystream(off, 50);
    EXPECT_EQ(part, Bytes(full.begin() + static_cast<long>(off),
                          full.begin() + static_cast<long>(off + 50)))
        << "offset " << off;
  }
}

TEST(ChaCha20Test, RejectsBadSizes) {
  EXPECT_FALSE(ChaCha20::Create(Bytes(31, 0), Bytes(12, 0)).ok());
  EXPECT_FALSE(ChaCha20::Create(Bytes(32, 0), Bytes(8, 0)).ok());
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
