// Additional known-answer tests (KATs) from the NIST CAVP/AESAVS suites
// and RFC appendices, beyond the primary vectors in the per-primitive
// test files. These pin the implementations against independent sources.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dbph {
namespace crypto {
namespace {

Bytes Hex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// AESAVS GFSbox vectors: zero key, single-block plaintexts (AES-128).
TEST(AesKat, Aes128GfSbox) {
  auto aes = Aes::Create(Bytes(16, 0x00));
  ASSERT_TRUE(aes.ok());
  struct Case {
    const char* pt;
    const char* ct;
  };
  const Case cases[] = {
      {"f34481ec3cc627bacd5dc3fb08f273e6",
       "0336763e966d92595a567cc9ce537f5e"},
      {"9798c4640bad75c7c3227db910174e72",
       "a9a1631bf4996954ebc093957b234589"},
      {"96ab5c2ff612d9dfaae8c31f30c42168",
       "ff4f8391a6a40ca5b25d23bedd44a597"},
      {"6a118a874519e64e9963798a503f1d35",
       "dc43be40be0e53712f7e2bf5ca707209"},
      {"cb9fceec81286ca3e989bd979b0cb284",
       "92beedab1895a94faa69b632e5cc47ce"},
      {"b26aeb1874e47ca8358ff22378f09144",
       "459264f4798f6a78bacb89c15ed3d601"},
      {"58c8e00b2631686d54eab84b91f0aca1",
       "08a4e2efec8a8e3312ca7460b9040bbf"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(HexEncode(aes->EncryptBlock(Hex(c.pt))), c.ct);
    EXPECT_EQ(aes->DecryptBlock(Hex(c.ct)), Hex(c.pt));
  }
}

// AESAVS KeySbox vectors: zero plaintext, varying keys (AES-128).
TEST(AesKat, Aes128KeySbox) {
  struct Case {
    const char* key;
    const char* ct;
  };
  const Case cases[] = {
      {"10a58869d74be5a374cf867cfb473859",
       "6d251e6944b051e04eaa6fb4dbf78465"},
      {"caea65cdbb75e9169ecd22ebe6e54675",
       "6e29201190152df4ee058139def610bb"},
      {"a2e2fa9baf7d20822ca9f0542f764a41",
       "c3b44b95d9d2f25670eee9a0de099fa3"},
      {"b6364ac4e1de1e285eaf144a2415f7a0",
       "5d9b05578fc944b3cf1ccf0e746cd581"},
      {"64cf9c7abc50b888af65f49d521944b2",
       "f7efc89d5dba578104016ce5ad659c05"},
  };
  Bytes zero(16, 0x00);
  for (const auto& c : cases) {
    auto aes = Aes::Create(Hex(c.key));
    ASSERT_TRUE(aes.ok());
    EXPECT_EQ(HexEncode(aes->EncryptBlock(zero)), c.ct);
  }
}

// AESAVS VarTxt: all-ones plaintext prefixes under the zero key.
TEST(AesKat, Aes128VarTxt) {
  auto aes = Aes::Create(Bytes(16, 0x00));
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(HexEncode(aes->EncryptBlock(
                Hex("80000000000000000000000000000000"))),
            "3ad78e726c1ec02b7ebfe92b23d9ec34");
  EXPECT_EQ(HexEncode(aes->EncryptBlock(
                Hex("ffffffffffffffffffffffffffffffff"))),
            "3f5b8cc9ea855a0afa7347d23e8d664e");
}

// AES-256 AESAVS KeySbox sample.
TEST(AesKat, Aes256KeySbox) {
  auto aes = Aes::Create(
      Hex("c47b0294dbbbee0fec4757f22ffeee3587ca4730c3d33b691df38bab076bc558"));
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(HexEncode(aes->EncryptBlock(Bytes(16, 0x00))),
            "46f2fb342d6f0ab477476fc501242c5f");
}

// RFC 8439 §A.1: ChaCha20 block function, all-zero key/nonce, counter 0.
TEST(ChaChaKat, ZeroKeyBlock0) {
  auto cipher = ChaCha20::Create(Bytes(32, 0x00), Bytes(12, 0x00));
  ASSERT_TRUE(cipher.ok());
  Bytes block = cipher->Keystream(0, 64);
  EXPECT_EQ(HexEncode(block),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
}

// RFC 8439 §A.1 test vector 2: counter 1.
TEST(ChaChaKat, ZeroKeyBlock1) {
  auto cipher = ChaCha20::Create(Bytes(32, 0x00), Bytes(12, 0x00));
  ASSERT_TRUE(cipher.ok());
  Bytes block = cipher->Keystream(64, 64);
  EXPECT_EQ(HexEncode(block),
            "9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed"
            "29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f");
}

// RFC 4231 cases 4, 5 (truncated output), 7.
TEST(HmacKat, Rfc4231Case4) {
  Bytes key = Hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  Bytes msg(50, 0xcd);
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacKat, Rfc4231Case5Truncated) {
  Bytes key(20, 0x0c);
  Bytes msg = ToBytes("Test With Truncation");
  Bytes mac = HmacSha256(key, msg);
  EXPECT_EQ(HexEncode(Bytes(mac.begin(), mac.begin() + 16)),
            "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacKat, Rfc4231Case7LongKeyLongData) {
  Bytes key(131, 0xaa);
  Bytes msg = ToBytes(
      "This is a test using a larger than block-size key and a larger "
      "than block-size data. The key needs to be hashed before being "
      "used by the HMAC algorithm.");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// SHA-256: NIST CAVP short-message samples.
TEST(Sha256Kat, CavpShortMessages) {
  struct Case {
    const char* msg_hex;
    const char* digest;
  };
  const Case cases[] = {
      {"d3", "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1"},
      {"11af", "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98"},
      {"b4190e", "dff2e73091f6c05e528896c4c831b9448653dc2ff043528f6769437bc7b975c2"},
      {"74ba2521", "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(HexEncode(Sha256::Hash(Hex(c.msg_hex))), c.digest);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace dbph
