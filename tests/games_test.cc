#include <gtest/gtest.h>

#include "games/dbph_game.h"
#include "games/hospital.h"
#include "games/ind_game.h"
#include "games/kc_game.h"
#include "games/q0_adversaries.h"
#include "games/salary_attack.h"
#include "games/stats.h"
#include "games/theorem21_attack.h"

namespace dbph {
namespace games {
namespace {

using rel::Value;

// ---------- stats ----------

TEST(StatsTest, WilsonIntervalBrackets) {
  BinomialSummary s{100, 50};
  EXPECT_NEAR(s.rate(), 0.5, 1e-12);
  EXPECT_LT(s.WilsonLow(), 0.5);
  EXPECT_GT(s.WilsonHigh(), 0.5);
  EXPECT_GT(s.WilsonLow(), 0.35);
  EXPECT_LT(s.WilsonHigh(), 0.65);
}

TEST(StatsTest, PerfectAdversary) {
  BinomialSummary s{200, 200};
  EXPECT_DOUBLE_EQ(s.Advantage(), 1.0);
  EXPECT_TRUE(s.BeatsGuessing());
  EXPECT_LT(s.WilsonHigh(), 1.0 + 1e-12);
  EXPECT_GT(s.WilsonLow(), 0.97);
}

TEST(StatsTest, BlindAdversaryDoesNotBeatGuessing) {
  BinomialSummary s{1000, 510};
  EXPECT_FALSE(s.BeatsGuessing());
}

TEST(StatsTest, EmptySummaryDefined) {
  BinomialSummary s;
  EXPECT_DOUBLE_EQ(s.rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.WilsonLow(), 0.0);
  EXPECT_DOUBLE_EQ(s.WilsonHigh(), 1.0);
}

TEST(StatsTest, ZTestDetectsDeviation) {
  EXPECT_LT(BinomialZTestPValue({1000, 700}, 0.5), 1e-6);
  EXPECT_GT(BinomialZTestPValue({1000, 505}, 0.5), 0.05);
}

// ---------- Section 1 attack (E1 logic) ----------

TEST(SalaryAttackTest, BeatsBucketization) {
  baseline::BucketOptions options;
  baseline::BucketAttributeConfig salary;
  salary.kind = baseline::PartitionKind::kEquiWidth;
  salary.lo = 0;
  salary.hi = 10000;
  salary.buckets = 20;  // width 500: 1200 and 4900 land apart
  options.attribute_configs["salary"] = salary;

  BucketSalaryAdversary adversary;
  TrialEncryptor<baseline::BucketRelation> encrypt =
      [&](const rel::Relation& table, size_t trial,
          crypto::Rng* rng) -> Result<baseline::BucketRelation> {
    Bytes key = ToBytes("trial key " + std::to_string(trial));
    DBPH_ASSIGN_OR_RETURN(
        baseline::BucketScheme scheme,
        baseline::BucketScheme::Create(SalarySchema(), key, options));
    return scheme.EncryptRelation(table, rng);
  };
  auto outcome = RunIndGame<baseline::BucketRelation>(encrypt, &adversary,
                                                      200, 42);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // 1200 and 4900 are always in different width-500 buckets: the attack
  // is deterministic here.
  EXPECT_EQ(outcome->successes, outcome->trials);
  EXPECT_TRUE(outcome->BeatsGuessing());
}

TEST(SalaryAttackTest, BeatsDamiani) {
  DamianiSalaryAdversary adversary;
  TrialEncryptor<baseline::HashedRelation> encrypt =
      [&](const rel::Relation& table, size_t trial,
          crypto::Rng* rng) -> Result<baseline::HashedRelation> {
    Bytes key = ToBytes("trial key " + std::to_string(trial));
    baseline::DamianiOptions options;
    options.label_length = 8;
    DBPH_ASSIGN_OR_RETURN(
        baseline::DamianiScheme scheme,
        baseline::DamianiScheme::Create(SalarySchema(), key, options));
    return scheme.EncryptRelation(table, rng);
  };
  auto outcome =
      RunIndGame<baseline::HashedRelation>(encrypt, &adversary, 200, 43);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->successes, outcome->trials);
}

TEST(SalaryAttackTest, FailsAgainstDatabasePh) {
  DbphSalaryAdversary adversary;
  TrialEncryptor<core::EncryptedRelation> encrypt =
      [&](const rel::Relation& table, size_t trial,
          crypto::Rng* rng) -> Result<core::EncryptedRelation> {
    Bytes key = ToBytes("trial key " + std::to_string(trial));
    DBPH_ASSIGN_OR_RETURN(core::DatabasePh ph,
                          core::DatabasePh::Create(SalarySchema(), key));
    return ph.EncryptRelation(table, rng);
  };
  auto outcome =
      RunIndGame<core::EncryptedRelation>(encrypt, &adversary, 400, 44);
  ASSERT_TRUE(outcome.ok());
  // Must not beat guessing: success rate statistically compatible w/ 1/2.
  EXPECT_FALSE(outcome->BeatsGuessing());
  EXPECT_GT(BinomialZTestPValue(*outcome, 0.5), 0.001);
}

TEST(SalaryAttackTest, HarnessRejectsUnequalCardinalities) {
  class Cheater : public IndAdversary<int> {
   public:
    std::string Name() const override { return "cheater"; }
    std::pair<rel::Relation, rel::Relation> ChooseTables(
        crypto::Rng*) override {
      auto [t1, t2] = MakeSalaryTables();
      rel::Relation bigger = t1;
      (void)bigger.Insert({Value::Int(9), Value::Int(9)});
      return {bigger, t2};
    }
    int Guess(const int&, crypto::Rng*) override { return 1; }
  };
  Cheater cheater;
  TrialEncryptor<int> encrypt = [](const rel::Relation&, size_t,
                                   crypto::Rng*) -> Result<int> {
    return 0;
  };
  auto outcome = RunIndGame<int>(encrypt, &cheater, 1, 0);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

// ---------- Theorem 2.1 (E2 logic) ----------

TEST(Theorem21Test, ActiveAdversaryWinsWithOneQuery) {
  Theorem21Adversary adversary(8);
  auto outcome = RunDefinition21Game({}, /*q=*/1, &adversary, 200, 7);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // Advantage ~1 (false positives at check_length=4 are ~2^-32).
  EXPECT_EQ(outcome->successes, outcome->trials);
}

TEST(Theorem21Test, SameAdversaryBlindAtQZero) {
  Theorem21Adversary adversary(8);
  auto outcome = RunDefinition21Game({}, /*q=*/0, &adversary, 400, 8);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->BeatsGuessing());
}

TEST(Theorem21Test, PassiveResultSizeAdversaryAlsoWins) {
  PassiveResultSizeAdversary adversary(8);
  auto outcome = RunDefinition21Game({}, /*q=*/1, &adversary, 200, 9);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->successes, outcome->trials);
}

// ---------- q = 0 battery (E7 logic) ----------

TEST(Q0BatteryTest, NoPassiveAdversaryBeatsGuessing) {
  for (const auto& adversary : MakeQ0AdversaryBattery()) {
    auto outcome = RunDefinition21Game({}, /*q=*/0, adversary.get(), 300,
                                       100);
    ASSERT_TRUE(outcome.ok()) << adversary->Name();
    EXPECT_FALSE(outcome->BeatsGuessing())
        << adversary->Name() << ": " << outcome->ToString();
  }
}

// The repeat-detection adversary is a *positive* control: against a
// deterministic word encryption (no stream pad) it would win. We verify
// it indeed wins against the Damiani labels, confirming the battery has
// teeth.
TEST(Q0BatteryTest, RepeatDetectionHasTeethAgainstDeterministicLabels) {
  class DamianiRepeatAdversary
      : public IndAdversary<baseline::HashedRelation> {
   public:
    std::string Name() const override { return "repeat-vs-damiani"; }
    std::pair<rel::Relation, rel::Relation> ChooseTables(
        crypto::Rng*) override {
      auto schema = rel::Schema::Create({{"v", rel::ValueType::kString, 8}});
      rel::Relation t1("T", *schema), t2("T", *schema);
      for (int i = 0; i < 4; ++i) {
        (void)t1.Insert({Value::Str("same")});
        (void)t2.Insert({Value::Str("v" + std::to_string(i))});
      }
      return {t1, t2};
    }
    int Guess(const baseline::HashedRelation& view, crypto::Rng*) override {
      std::set<Bytes> labels;
      for (const auto& t : view.tuples) labels.insert(t.labels[0]);
      return labels.size() == 1 ? 1 : 2;
    }
  };
  DamianiRepeatAdversary adversary;
  TrialEncryptor<baseline::HashedRelation> encrypt =
      [](const rel::Relation& table, size_t trial,
         crypto::Rng* rng) -> Result<baseline::HashedRelation> {
    auto schema = rel::Schema::Create({{"v", rel::ValueType::kString, 8}});
    baseline::DamianiOptions options;
    options.label_length = 8;
    DBPH_ASSIGN_OR_RETURN(
        baseline::DamianiScheme scheme,
        baseline::DamianiScheme::Create(
            *schema, ToBytes("k" + std::to_string(trial)), options));
    return scheme.EncryptRelation(table, rng);
  };
  auto outcome =
      RunIndGame<baseline::HashedRelation>(encrypt, &adversary, 100, 5);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->successes, outcome->trials);
}

// ---------- Kantarcıoğlu–Clifton game ----------

TEST(KcGameTest, SizeOnlyAdversaryBlind) {
  // Claim 1 of the paper: the KC definition is satisfiable — an adversary
  // restricted to result sizes gains nothing against our scheme.
  KcSizeOnlyAdversary adversary;
  auto outcome = RunKcGame({}, /*q=*/2, &adversary, 400, 11);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->BeatsGuessing());
}

TEST(KcGameTest, IntersectionPatternBeatsKcSecurity) {
  // Claim 2: a KC-compliant adversary that looks at result-set
  // *intersections* (not sizes) still wins with probability ~1 — the KC
  // definition "does allow the adversary to get information about the
  // plaintext with high probability".
  IntersectionPatternAdversary adversary;
  auto outcome = RunKcGame({}, /*q=*/2, &adversary, 200, 12);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->successes, outcome->trials);
}

TEST(KcGameTest, HarnessEnforcesEqualResultSizes) {
  // An adversary whose queries return different cardinalities on T1/T2
  // is outside the KC game and must be rejected by the referee.
  class SizeCheater : public Definition21Adversary {
   public:
    std::string Name() const override { return "size-cheater"; }
    std::pair<rel::Relation, rel::Relation> ChooseTables(
        crypto::Rng*) override {
      auto schema = rel::Schema::Create({{"a", rel::ValueType::kInt64, 1}});
      rel::Relation t1("T", *schema), t2("T", *schema);
      (void)t1.Insert({Value::Int(1)});
      (void)t1.Insert({Value::Int(1)});
      (void)t2.Insert({Value::Int(0)});
      (void)t2.Insert({Value::Int(0)});
      return {t1, t2};
    }
    std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
        size_t) override {
      return {{"a", Value::Int(1)}};  // 2 hits on T1, 0 on T2
    }
    int Guess(const Definition21View& view, crypto::Rng*) override {
      return view.results[0].empty() ? 2 : 1;
    }
  };
  SizeCheater cheater;
  auto outcome = RunKcGame({}, 1, &cheater, 5, 13);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

// ---------- hospital scenario (E3 logic) ----------

TEST(HospitalTest, GeneratorMatchesModelMarginals) {
  HospitalModel model;
  model.patients = 20000;
  crypto::HmacDrbg rng("hospital-gen", 1);
  auto table = GenerateHospitalTable(model, &rng);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 20000u);

  std::array<size_t, 3> hospital_counts = {0, 0, 0};
  size_t fatal = 0;
  for (const auto& t : table->tuples()) {
    hospital_counts[static_cast<size_t>(t.at(2).AsInt() - 1)]++;
    if (t.at(3) == Value::Str("fatal")) ++fatal;
  }
  EXPECT_NEAR(hospital_counts[0] / 20000.0, 0.2, 0.02);
  EXPECT_NEAR(hospital_counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(hospital_counts[2] / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(fatal / 20000.0, 0.08, 0.01);
}

TEST(HospitalTest, GeneratorValidatesModel) {
  crypto::HmacDrbg rng("hospital-bad", 1);
  HospitalModel zero;
  zero.patients = 0;
  EXPECT_FALSE(GenerateHospitalTable(zero, &rng).ok());
  HospitalModel bad_flows;
  bad_flows.flows = {0.5, 0.5, 0.5};
  EXPECT_FALSE(GenerateHospitalTable(bad_flows, &rng).ok());
}

TEST(HospitalTest, PassiveEveRecoversFatalRatio) {
  HospitalModel model;
  model.patients = 1000;
  auto inference = RunHospitalScenario(model, 3);
  ASSERT_TRUE(inference.ok()) << inference.status();
  // Eve identifies the queries from sizes alone...
  EXPECT_TRUE(inference->queries_identified);
  // ...and her intersection estimate matches the true in-table ratio
  // EXACTLY: record-id intersection counts the actual fatal patients of
  // hospital 1.
  EXPECT_NEAR(inference->estimated_fatal_ratio_h1,
              inference->true_fatal_ratio_h1, 1e-9);
}

TEST(HospitalTest, InferenceStableAcrossSeeds) {
  HospitalModel model;
  model.patients = 500;
  int identified = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto inference = RunHospitalScenario(model, seed);
    ASSERT_TRUE(inference.ok());
    if (inference->queries_identified) ++identified;
  }
  EXPECT_GE(identified, 4);  // size-matching succeeds essentially always
}

// ---------- John attack (E4 logic) ----------

TEST(JohnAttackTest, ActiveEveLocatesJohn) {
  HospitalModel model;
  model.patients = 300;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto inference = RunJohnAttack(model, seed);
    ASSERT_TRUE(inference.ok()) << inference.status();
    EXPECT_TRUE(inference->found_john) << "seed " << seed;
    EXPECT_TRUE(inference->Correct())
        << "seed " << seed << ": inferred hospital "
        << inference->inferred_hospital << " vs " << inference->true_hospital
        << ", outcome " << inference->inferred_outcome << " vs "
        << inference->true_outcome;
  }
}

}  // namespace
}  // namespace games
}  // namespace dbph
