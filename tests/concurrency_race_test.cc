// Read/write race suite for the snapshot (MVCC) read path: N reader
// threads run verified selects against a stable relation while a writer
// thread churns another relation and stats/leakage surfaces are polled
// concurrently — all through one shared UntrustedServer. Run under TSan
// in CI (scripts/ci.sh), where any lock-discipline regression in the
// snapshot publication / observation staging machinery becomes a hard
// failure rather than a flake.
//
// Invariants checked:
//   - snapshot consistency: the writer only ever inserts/removes whole
//     matched PAIRS in single mutations, so every racing reader (and
//     every entry in Eve's observation log) must see an even match
//     count — an odd count is a torn read;
//   - Enforce-mode verification: readers verifying Merkle proofs against
//     their mirrored root succeed throughout the churn;
//   - observation-log serializability: after joining, the log holds
//     exactly one well-formed entry per executed query, as if the
//     queries had arrived one at a time.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "protocol/messages.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

constexpr char kMaster[] = "race master key";

Schema TableSchema() {
  auto schema = Schema::Create({
      {"name", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Relation BuildStable() {
  // grp cycles 0,1,2 — selecting grp=1 always matches exactly a third.
  Relation table("Stable", TableSchema());
  for (int i = 0; i < 45; ++i) {
    EXPECT_TRUE(table
                    .Insert({Value::Str("s" + std::to_string(i)),
                             Value::Int(int64_t(i % 3))})
                    .ok());
  }
  return table;
}

client::Transport InProcess(server::UntrustedServer* eve) {
  return [eve](const Bytes& request) { return eve->HandleRequest(request); };
}

TEST(ConcurrencyRaceTest, VerifiedReadersRaceWriterWithoutTearsOrLockups) {
  server::UntrustedServer eve;

  // The owner outsources both relations under Enforce (attesting roots)
  // and will be the single writer thread.
  crypto::HmacDrbg owner_rng("race-owner", 1);
  client::Client owner(ToBytes(kMaster), InProcess(&eve), &owner_rng);
  owner.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(owner.Outsource(BuildStable()).ok());
  ASSERT_TRUE(owner.Outsource(Relation("Churn", TableSchema())).ok());

  constexpr int kReaders = 3;        // Enforce-verified selects on Stable
  constexpr int kReaderSelects = 20;
  constexpr int kTearReaders = 2;    // parity-checking selects on Churn
  constexpr int kTearSelects = 25;
  constexpr int kWriterPairs = 12;   // pair inserts into Churn
  constexpr int kWriterDeletes = 4;  // whole-pair deletes from Churn
  constexpr int kStatsPolls = 15;

  // gtest EXPECT/ASSERT are not thread-safe; worker threads count
  // anomalies into atomics and the main thread asserts after the join.
  std::atomic<int> reader_failures{0};
  std::atomic<int> tear_failures{0};
  std::atomic<int> stats_failures{0};
  std::atomic<int> writer_failures{0};

  std::vector<std::thread> threads;

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      crypto::HmacDrbg rng("race-reader-" + std::to_string(r), 2);
      client::Client reader(ToBytes(kMaster), InProcess(&eve), &rng);
      reader.set_verify_mode(client::VerifyMode::kEnforce);
      if (!reader.Adopt("Stable", TableSchema()).ok() ||
          !reader.SyncIntegrity("Stable", /*require_signature=*/true).ok()) {
        reader_failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kReaderSelects; ++i) {
        auto rows = reader.Select("Stable", "grp", Value::Int(1));
        if (!rows.ok() || rows->size() != 15u) {
          reader_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  for (int t = 0; t < kTearReaders; ++t) {
    threads.emplace_back([&, t] {
      crypto::HmacDrbg rng("race-tear-" + std::to_string(t), 3);
      client::Client reader(ToBytes(kMaster), InProcess(&eve), &rng);
      if (!reader.Adopt("Churn", TableSchema()).ok()) {
        tear_failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kTearSelects; ++i) {
        auto rows = reader.Select("Churn", "grp", Value::Int(7));
        if (!rows.ok() || rows->size() % 2 != 0) {
          tear_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  threads.emplace_back([&] {
    // Stats and leakage surfaces are snapshot reads too; poll them from
    // their own thread the whole time.
    for (int i = 0; i < kStatsPolls; ++i) {
      obs::RegistrySnapshot stats = eve.CollectStats();
      if (stats.counters.empty()) stats_failures.fetch_add(1);
      protocol::Envelope probe;
      probe.type = protocol::MessageType::kStats;
      auto reply = protocol::Envelope::Parse(eve.HandleRequest(
          probe.Serialize()));
      if (!reply.ok() ||
          reply->type != protocol::MessageType::kStatsResult) {
        stats_failures.fetch_add(1);
      }
    }
  });

  threads.emplace_back([&] {
    // Both tuples of pair i share the name "p<i>", so the pair inserts
    // in ONE mutation and deletes in ONE mutation — match-count parity
    // on grp=7 holds at every published snapshot.
    for (int i = 0; i < kWriterPairs; ++i) {
      std::string pair = "p" + std::to_string(i);
      if (!owner
               .Insert("Churn", {Tuple({Value::Str(pair), Value::Int(7)}),
                                 Tuple({Value::Str(pair), Value::Int(7)})})
               .ok()) {
        writer_failures.fetch_add(1);
        return;
      }
      if (i >= 8 && i - 8 < kWriterDeletes) {
        auto removed =
            owner.DeleteWhere("Churn", "name",
                              Value::Str("p" + std::to_string(i - 8)));
        if (!removed.ok() || *removed != 2u) {
          writer_failures.fetch_add(1);
          return;
        }
      }
    }
  });

  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_EQ(tear_failures.load(), 0);
  EXPECT_EQ(stats_failures.load(), 0);
  EXPECT_EQ(writer_failures.load(), 0);

  // Quiescent ground truth: the pair arithmetic held end to end.
  auto final_rows = owner.Select("Churn", "grp", Value::Int(7));
  ASSERT_TRUE(final_rows.ok()) << final_rows.status();
  EXPECT_EQ(final_rows->size(), 2u * (kWriterPairs - kWriterDeletes));

  // Observation-log serializability: one entry per executed query (the
  // racing final-state select included), every entry well-formed, and
  // the tear invariant visible in Eve's own transcript — Churn selects
  // always observed an even number of matched records.
  const auto& queries = eve.observations().queries();
  const size_t expected =
      size_t(kReaders) * kReaderSelects + size_t(kTearReaders) * kTearSelects +
      kWriterDeletes + 1;
  EXPECT_EQ(queries.size(), expected);
  EXPECT_EQ(eve.observations().aggregate().num_queries, expected);
  for (const auto& q : queries) {
    EXPECT_FALSE(q.trapdoor_bytes.empty());
    if (q.relation == "Stable") {
      EXPECT_EQ(q.matched_records.size(), 15u);
    } else {
      EXPECT_EQ(q.relation, "Churn");
      EXPECT_EQ(q.matched_records.size() % 2, 0u);
    }
  }
}

}  // namespace
}  // namespace dbph
