#include "storage/heapfile.h"

#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "crypto/random.h"
#include "storage/hash_index.h"

namespace dbph {
namespace storage {
namespace {

TEST(RecordIdTest, PackUnpackRoundTrip) {
  RecordId rid{123456, 789};
  EXPECT_EQ(RecordId::Unpack(rid.Pack()), rid);
}

TEST(HeapFileTest, InsertGetDelete) {
  HeapFile file(256);
  RecordId a = file.Insert(ToBytes("alpha"));
  RecordId b = file.Insert(ToBytes("bravo"));
  EXPECT_EQ(file.num_records(), 2u);

  auto got = file.Get(a);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "alpha");

  EXPECT_TRUE(file.Delete(a).ok());
  EXPECT_FALSE(file.Get(a).ok());
  EXPECT_FALSE(file.Delete(a).ok());  // double delete
  EXPECT_EQ(file.num_records(), 1u);
  EXPECT_EQ(ToString(*file.Get(b)), "bravo");
}

TEST(HeapFileTest, BogusIdsRejected) {
  HeapFile file(256);
  EXPECT_FALSE(file.Get(RecordId{5, 0}).ok());
  file.Insert(ToBytes("x"));
  EXPECT_FALSE(file.Get(RecordId{0, 7}).ok());
}

TEST(HeapFileTest, FillsMultiplePages) {
  HeapFile file(128);
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    rids.push_back(file.Insert(Bytes(40, static_cast<uint8_t>(i))));
  }
  EXPECT_GT(file.num_pages(), 1u);
  for (int i = 0; i < 100; ++i) {
    auto got = file.Get(rids[static_cast<size_t>(i)]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, Bytes(40, static_cast<uint8_t>(i)));
  }
}

TEST(HeapFileTest, OversizedRecordGetsOwnPage) {
  HeapFile file(128);
  Bytes big(1000, 0xab);
  RecordId rid = file.Insert(big);
  auto got = file.Get(rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
  EXPECT_TRUE(file.Delete(rid).ok());
}

TEST(HeapFileTest, SlotReuseAfterDelete) {
  HeapFile file(128);
  RecordId a = file.Insert(Bytes(30, 1));
  EXPECT_TRUE(file.Delete(a).ok());
  RecordId b = file.Insert(Bytes(30, 2));
  // Slot index is reused on the same page.
  EXPECT_EQ(a.page, b.page);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(*file.Get(b), Bytes(30, 2));
}

TEST(HeapFileTest, CompactionReclaimsSpace) {
  HeapFile file(128);
  // Fill one page (3 x 40 > 128 would spill; 2 x 40 fits with room).
  RecordId a = file.Insert(Bytes(50, 1));
  RecordId b = file.Insert(Bytes(50, 2));
  EXPECT_EQ(file.num_pages(), 1u);
  // Page is full for another 50: delete `a`, and the next insert should
  // trigger compaction rather than a new page.
  EXPECT_TRUE(file.Delete(a).ok());
  RecordId c = file.Insert(Bytes(50, 3));
  EXPECT_EQ(file.num_pages(), 1u);
  EXPECT_EQ(*file.Get(b), Bytes(50, 2));
  EXPECT_EQ(*file.Get(c), Bytes(50, 3));
}

TEST(HeapFileTest, UpdateInPlaceAndRelocating) {
  HeapFile file(256);
  RecordId rid = file.Insert(Bytes(50, 1));
  // Smaller payload updates in place.
  auto same = file.Update(rid, Bytes(20, 2));
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, rid);
  EXPECT_EQ(*file.Get(rid), Bytes(20, 2));
  // Larger payload may relocate.
  auto moved = file.Update(rid, Bytes(100, 3));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*file.Get(*moved), Bytes(100, 3));
}

TEST(HeapFileTest, AllRecordsEnumeratesLiveOnly) {
  HeapFile file(128);
  std::vector<RecordId> rids;
  for (int i = 0; i < 20; ++i) {
    rids.push_back(file.Insert(Bytes(20, static_cast<uint8_t>(i))));
  }
  for (size_t i = 0; i < rids.size(); i += 2) {
    ASSERT_TRUE(file.Delete(rids[i]).ok());
  }
  auto live = file.AllRecords();
  EXPECT_EQ(live.size(), 10u);
  for (const auto& rid : live) {
    EXPECT_TRUE(file.Get(rid).ok());
  }
}

// Property: random inserts/deletes/updates tracked against a std::map.
TEST(HeapFileTest, MatchesReferenceModelUnderRandomWorkload) {
  HeapFile file(256);
  std::map<uint64_t, Bytes> model;  // packed rid -> payload
  crypto::HmacDrbg rng("heapfile-property", 99);

  for (int op = 0; op < 2000; ++op) {
    double action = rng.NextDouble();
    if (action < 0.5 || model.empty()) {
      size_t len = 1 + rng.NextBelow(120);
      Bytes payload = rng.NextBytes(len);
      RecordId rid = file.Insert(payload);
      ASSERT_EQ(model.count(rid.Pack()), 0u);
      model[rid.Pack()] = payload;
    } else if (action < 0.75) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      ASSERT_TRUE(file.Delete(RecordId::Unpack(it->first)).ok());
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      Bytes payload = rng.NextBytes(1 + rng.NextBelow(200));
      auto rid = file.Update(RecordId::Unpack(it->first), payload);
      ASSERT_TRUE(rid.ok());
      model.erase(it);
      model[rid->Pack()] = payload;
    }
  }

  ASSERT_EQ(file.num_records(), model.size());
  for (const auto& [packed, payload] : model) {
    auto got = file.Get(RecordId::Unpack(packed));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, payload);
  }
}

TEST(HashIndexTest, InsertLookupDelete) {
  HashIndex index;
  index.Insert(ToBytes("a"), 1);
  index.Insert(ToBytes("a"), 2);
  index.Insert(ToBytes("b"), 3);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.num_keys(), 2u);
  EXPECT_EQ(index.Lookup(ToBytes("a")).size(), 2u);
  EXPECT_TRUE(index.Lookup(ToBytes("z")).empty());
  EXPECT_TRUE(index.Delete(ToBytes("a"), 1));
  EXPECT_FALSE(index.Delete(ToBytes("a"), 1));
  EXPECT_EQ(index.Lookup(ToBytes("a")).size(), 1u);
  EXPECT_TRUE(index.Delete(ToBytes("a"), 2));
  EXPECT_FALSE(index.Contains(ToBytes("a")));
  EXPECT_EQ(index.Keys().size(), 1u);
}

}  // namespace
}  // namespace storage
}  // namespace dbph
