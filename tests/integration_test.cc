// End-to-end integration: CSV ingestion -> outsourcing -> SQL over
// ciphertext -> dynamic updates -> server restart from disk -> recall.
// One scenario exercising every layer of the stack together.

#include <gtest/gtest.h>

#include <cstdio>

#include "client/client.h"
#include "crypto/random.h"
#include "relation/csv.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

constexpr char kCsv[] =
    "name,dept,salary\n"
    "Montgomery,HR,7500\n"
    "Smith,IT,4900\n"
    "Jones,HR,4900\n"
    "Garcia,OPS,5300\n"
    "Chen,IT,6100\n";

TEST(IntegrationTest, FullLifecycle) {
  // --- Ingest from CSV. ---
  auto schema = Schema::Create({
      {"name", ValueType::kString, 10},
      {"dept", ValueType::kString, 5},
      {"salary", ValueType::kInt64, 10},
  });
  ASSERT_TRUE(schema.ok());
  auto staff = rel::ReadCsv("Staff", *schema, kCsv);
  ASSERT_TRUE(staff.ok()) << staff.status();
  ASSERT_EQ(staff->size(), 5u);

  // --- Outsource. ---
  server::UntrustedServer eve;
  crypto::HmacDrbg rng("integration", 1);
  Bytes master = core::GenerateMasterKey(&rng);
  client::Client alex(
      master,
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);
  ASSERT_TRUE(alex.Outsource(*staff).ok());

  // --- SQL over ciphertext. ---
  auto it_staff =
      sql::ExecuteSql(&alex, "SELECT * FROM Staff WHERE dept = 'IT'");
  ASSERT_TRUE(it_staff.ok()) << it_staff.status();
  EXPECT_EQ(it_staff->size(), 2u);

  auto conj = sql::ExecuteSql(
      &alex, "SELECT * FROM Staff WHERE dept = 'IT' AND salary = 6100");
  ASSERT_TRUE(conj.ok());
  ASSERT_EQ(conj->size(), 1u);
  EXPECT_EQ(conj->tuple(0).at(0), Value::Str("Chen"));

  // --- Dynamic updates. ---
  ASSERT_TRUE(alex.Insert("Staff", {Tuple({Value::Str("Ncube"),
                                           Value::Str("IT"),
                                           Value::Int(4900)})})
                  .ok());
  auto removed = alex.DeleteWhere("Staff", "name", Value::Str("Smith"));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);

  auto after =
      sql::ExecuteSql(&alex, "SELECT * FROM Staff WHERE salary = 4900");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);  // Jones + Ncube; Smith gone

  // --- Server restart from disk. ---
  std::string path = ::testing::TempDir() + "/integration_server.dbph";
  ASSERT_TRUE(eve.SaveTo(path).ok());
  server::UntrustedServer eve2;
  ASSERT_TRUE(eve2.LoadFrom(path).ok());
  std::remove(path.c_str());

  // The original client still holds the keys and per-table scheme; run a
  // query against the restarted server through the scheme API.
  auto ph = alex.SchemeFor("Staff");
  ASSERT_TRUE(ph.ok());
  auto query = (*ph)->EncryptQuery("Staff", "dept", Value::Str("HR"));
  ASSERT_TRUE(query.ok());
  auto docs = eve2.Select(*query);
  ASSERT_TRUE(docs.ok());
  auto filtered = (*ph)->DecryptAndFilter(*docs, "dept", Value::Str("HR"));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 2u);

  // --- Recall and verify full plaintext equality. ---
  auto recalled = alex.Recall("Staff");
  ASSERT_TRUE(recalled.ok());
  Relation expected("Staff", *schema);
  ASSERT_TRUE(expected.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                               Value::Int(7500)}).ok());
  ASSERT_TRUE(expected.Insert({Value::Str("Jones"), Value::Str("HR"),
                               Value::Int(4900)}).ok());
  ASSERT_TRUE(expected.Insert({Value::Str("Garcia"), Value::Str("OPS"),
                               Value::Int(5300)}).ok());
  ASSERT_TRUE(expected.Insert({Value::Str("Chen"), Value::Str("IT"),
                               Value::Int(6100)}).ok());
  ASSERT_TRUE(expected.Insert({Value::Str("Ncube"), Value::Str("IT"),
                               Value::Int(4900)}).ok());
  EXPECT_TRUE(recalled->SameTuples(expected));

  // --- Round-trip through CSV again. ---
  std::string csv_out = rel::WriteCsv(*recalled);
  auto reparsed = rel::ReadCsv("Staff", *schema, csv_out);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->SameTuples(*recalled));

  // --- Eve never saw plaintext. ---
  for (const auto& obs : eve.observations().queries()) {
    std::string bytes = ToString(obs.trapdoor_bytes);
    EXPECT_EQ(bytes.find("Montgomery"), std::string::npos);
    EXPECT_EQ(bytes.find("HR"), std::string::npos);
    EXPECT_EQ(bytes.find("4900"), std::string::npos);
  }
}

TEST(IntegrationTest, TwoClientsIndependentKeysCannotCrossQuery) {
  server::UntrustedServer eve;
  crypto::HmacDrbg rng("integration-2", 2);
  auto schema = Schema::Create({{"v", ValueType::kString, 8}});
  ASSERT_TRUE(schema.ok());

  client::Client alice(
      core::GenerateMasterKey(&rng),
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);
  client::Client bob(
      core::GenerateMasterKey(&rng),
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);

  Relation a("A", *schema), b("B", *schema);
  ASSERT_TRUE(a.Insert({Value::Str("secret")}).ok());
  ASSERT_TRUE(b.Insert({Value::Str("secret")}).ok());
  ASSERT_TRUE(alice.Outsource(a).ok());
  ASSERT_TRUE(bob.Outsource(b).ok());

  // Alice's trapdoor for "secret" must not match Bob's documents even
  // though the plaintext value is identical.
  auto alice_ph = alice.SchemeFor("A");
  ASSERT_TRUE(alice_ph.ok());
  auto query = (*alice_ph)->EncryptQuery("B", "v", Value::Str("secret"));
  ASSERT_TRUE(query.ok());
  auto docs = eve.Select(*query);
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->empty());

  // Each client's own query works.
  auto own = alice.Select("A", "v", Value::Str("secret"));
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->size(), 1u);
}

}  // namespace
}  // namespace dbph
