#include "relation/relation.h"

#include <gtest/gtest.h>

#include "relation/catalog.h"
#include "relation/csv.h"
#include "relation/predicate.h"

namespace dbph {
namespace rel {
namespace {

Schema EmpSchema() {
  // The paper's running example: Emp(name:string[9], dept:string[5],
  // salary:int). (The worked example actually stores "Montgomery", 10
  // chars — we use 10 to fit it.)
  auto schema = Schema::Create({
      {"name", ValueType::kString, 10},
      {"dept", ValueType::kString, 5},
      {"salary", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

TEST(SchemaTest, CreateValidations) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({{"", ValueType::kInt64, 4}}).ok());
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kInt64, 4},
                               {"a", ValueType::kString, 4}})
                   .ok());
}

TEST(SchemaTest, DefaultLengthsApplied) {
  auto schema = Schema::Create({{"n", ValueType::kInt64, 0}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->attribute(0).max_length, 20u);
}

TEST(SchemaTest, IndexOf) {
  Schema schema = EmpSchema();
  EXPECT_EQ(*schema.IndexOf("dept"), 1u);
  EXPECT_FALSE(schema.IndexOf("missing").ok());
}

TEST(SchemaTest, MaxValueLength) {
  EXPECT_EQ(EmpSchema().MaxValueLength(), 10u);
}

TEST(SchemaTest, BinaryRoundTrip) {
  Schema schema = EmpSchema();
  Bytes buf;
  schema.AppendTo(&buf);
  ByteReader reader(buf);
  auto back = Schema::ReadFrom(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, schema);
}

TEST(RelationTest, InsertValidatesTypes) {
  Relation emp("Emp", EmpSchema());
  EXPECT_TRUE(emp.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                          Value::Int(7500)})
                  .ok());
  // Wrong type.
  EXPECT_FALSE(emp.Insert({Value::Int(1), Value::Str("HR"), Value::Int(1)})
                   .ok());
  // Wrong arity.
  EXPECT_FALSE(emp.Insert({Value::Str("x")}).ok());
  // Length overflow: name is 11 chars > 10.
  EXPECT_FALSE(emp.Insert({Value::Str("Abcdefghijk"), Value::Str("HR"),
                           Value::Int(1)})
                   .ok());
  EXPECT_EQ(emp.size(), 1u);
}

Relation SampleEmp() {
  Relation emp("Emp", EmpSchema());
  EXPECT_TRUE(emp.Insert({Value::Str("Montgomery"), Value::Str("HR"),
                          Value::Int(7500)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Smith"), Value::Str("IT"),
                          Value::Int(4900)}).ok());
  EXPECT_TRUE(emp.Insert({Value::Str("Jones"), Value::Str("HR"),
                          Value::Int(4900)}).ok());
  return emp;
}

TEST(RelationTest, ExactSelect) {
  Relation emp = SampleEmp();
  auto hr = emp.Select("dept", Value::Str("HR"));
  ASSERT_TRUE(hr.ok());
  EXPECT_EQ(hr->size(), 2u);
  auto none = emp.Select("dept", Value::Str("XX"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(emp.Select("nope", Value::Str("x")).ok());
  // Type mismatch between value and attribute.
  EXPECT_FALSE(emp.Select("salary", Value::Str("4900")).ok());
}

TEST(RelationTest, ConjunctionSelect) {
  Relation emp = SampleEmp();
  Conjunction both;
  both.Add(*MakeExactMatch(emp.schema(), "dept", Value::Str("HR")));
  both.Add(*MakeExactMatch(emp.schema(), "salary", Value::Int(4900)));
  Relation result = emp.Select(both);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuple(0).at(0), Value::Str("Jones"));
}

TEST(RelationTest, SameTuplesIgnoresOrder) {
  Relation a = SampleEmp();
  Relation b("Emp", EmpSchema());
  // Insert in reverse order.
  for (size_t i = a.size(); i > 0; --i) {
    EXPECT_TRUE(b.Insert(a.tuple(i - 1)).ok());
  }
  EXPECT_TRUE(a.SameTuples(b));
  EXPECT_TRUE(b.Insert({Value::Str("New"), Value::Str("IT"),
                        Value::Int(1)}).ok());
  EXPECT_FALSE(a.SameTuples(b));
}

TEST(RelationTest, BinaryRoundTrip) {
  Relation emp = SampleEmp();
  Bytes buf;
  emp.AppendTo(&buf);
  ByteReader reader(buf);
  auto back = Relation::ReadFrom(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "Emp");
  EXPECT_TRUE(back->SameTuples(emp));
}

TEST(CsvTest, WriteReadRoundTrip) {
  Relation emp = SampleEmp();
  std::string csv = WriteCsv(emp);
  auto back = ReadCsv("Emp", emp.schema(), csv);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->SameTuples(emp));
}

TEST(CsvTest, QuotedFields) {
  auto schema = Schema::Create({{"note", ValueType::kString, 40}});
  ASSERT_TRUE(schema.ok());
  Relation r("Notes", *schema);
  ASSERT_TRUE(r.Insert({Value::Str("has,comma")}).ok());
  ASSERT_TRUE(r.Insert({Value::Str("has\"quote")}).ok());
  ASSERT_TRUE(r.Insert({Value::Str("has\nnewline")}).ok());
  std::string csv = WriteCsv(r);
  auto back = ReadCsv("Notes", *schema, csv);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->SameTuples(r));
}

TEST(CsvTest, HeaderMismatchRejected) {
  Relation emp = SampleEmp();
  EXPECT_FALSE(ReadCsv("Emp", emp.schema(), "a,b,c\n").ok());
}

TEST(CsvTest, BadValueRejected) {
  Relation emp = SampleEmp();
  EXPECT_FALSE(
      ReadCsv("Emp", emp.schema(), "name,dept,salary\nX,Y,notanint\n").ok());
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddRelation(SampleEmp()).ok());
  EXPECT_FALSE(catalog.AddRelation(SampleEmp()).ok());  // duplicate
  auto r = catalog.GetRelation("Emp");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size(), 3u);
  EXPECT_TRUE(catalog.DropRelation("Emp").ok());
  EXPECT_FALSE(catalog.GetRelation("Emp").ok());
  EXPECT_FALSE(catalog.DropRelation("Emp").ok());
}

TEST(CatalogTest, PutReplaces) {
  Catalog catalog;
  catalog.PutRelation(SampleEmp());
  Relation small("Emp", EmpSchema());
  catalog.PutRelation(small);
  EXPECT_EQ((*catalog.GetRelation("Emp"))->size(), 0u);
  EXPECT_EQ(catalog.RelationNames(), std::vector<std::string>{"Emp"});
}

}  // namespace
}  // namespace rel
}  // namespace dbph
