#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace dbph {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad key");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  DBPH_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleIt(21), 42);
  EXPECT_EQ(DoubleIt(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(HexEncode(b), "deadbeef007f");
  auto back = HexDecode("deadbeef007f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(BytesTest, HexDecodeUpperCase) {
  auto b = HexDecode("DEADBEEF");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(HexEncode(*b), "deadbeef");
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, XorAndXorInPlace) {
  Bytes a = {0xff, 0x00, 0x55};
  Bytes b = {0x0f, 0xf0, 0xaa};
  Bytes c = Xor(a, b);
  EXPECT_EQ(c, (Bytes{0xf0, 0xf0, 0xff}));
  XorInPlace(&c, b);
  EXPECT_EQ(c, a);
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, StringConversionRoundTrip) {
  std::string s = "hello \0 world";
  Bytes b = ToBytes(s);
  EXPECT_EQ(ToString(b), s);
}

TEST(ByteReaderTest, ReadsWhatWasAppended) {
  Bytes buf;
  AppendUint32(&buf, 0xdeadbeef);
  AppendUint64(&buf, 0x0123456789abcdefULL);
  AppendLengthPrefixed(&buf, ToBytes("payload"));

  ByteReader reader(buf);
  auto u32 = reader.ReadUint32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xdeadbeefu);
  auto u64 = reader.ReadUint64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789abcdefULL);
  auto payload = reader.ReadLengthPrefixed();
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(ToString(*payload), "payload");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteReaderTest, TruncationIsDataLoss) {
  Bytes buf = {0x01, 0x02};
  ByteReader reader(buf);
  auto r = reader.ReadUint32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(ByteReaderTest, LengthPrefixLongerThanBuffer) {
  Bytes buf;
  AppendUint32(&buf, 100);  // claims 100 bytes, none present
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadLengthPrefixed().ok());
}

}  // namespace
}  // namespace dbph
