#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "client/client.h"
#include "crypto/random.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema EmpSchema() {
  auto s = Schema::Create({
      {"name", ValueType::kString, 10},
      {"dept", ValueType::kString, 5},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<crypto::HmacDrbg>("persist", 1);
    client_ = std::make_unique<client::Client>(
        ToBytes("persist master"),
        [this](const Bytes& request) {
          return server_.HandleRequest(request);
        },
        rng_.get());
    Relation emp("Emp", EmpSchema());
    ASSERT_TRUE(emp.Insert({Value::Str("Smith"), Value::Str("IT")}).ok());
    ASSERT_TRUE(emp.Insert({Value::Str("Jones"), Value::Str("HR")}).ok());
    ASSERT_TRUE(client_->Outsource(emp).ok());
  }

  server::UntrustedServer server_;
  std::unique_ptr<crypto::HmacDrbg> rng_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  std::string path = TempPath("server_state.dbph");
  ASSERT_TRUE(server_.SaveTo(path).ok());

  // A "restarted" server: fresh object, same disk state.
  server::UntrustedServer restarted;
  ASSERT_TRUE(restarted.LoadFrom(path).ok());
  EXPECT_EQ(restarted.num_relations(), 1u);
  EXPECT_EQ(*restarted.RelationSize("Emp"), 2u);

  // The original store remains queryable too.
  auto it = client_->Select("Emp", "dept", Value::Str("IT"));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->size(), 1u);

  std::remove(path.c_str());
}

TEST_F(PersistenceTest, QueriesWorkAgainstReloadedServer) {
  std::string path = TempPath("server_state2.dbph");
  ASSERT_TRUE(server_.SaveTo(path).ok());

  server::UntrustedServer restarted;
  ASSERT_TRUE(restarted.LoadFrom(path).ok());

  // Point the existing client (which owns the keys and schemes) at the
  // restarted server by issuing the select against it directly.
  auto ph = client_->SchemeFor("Emp");
  ASSERT_TRUE(ph.ok());
  auto query = (*ph)->EncryptQuery("Emp", "dept", Value::Str("HR"));
  ASSERT_TRUE(query.ok());
  auto docs = restarted.Select(*query);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 1u);
  auto tuple = (*ph)->DecryptTuple((*docs)[0]);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(0), Value::Str("Jones"));

  std::remove(path.c_str());
}

TEST_F(PersistenceTest, LoadRejectsCorruptFiles) {
  std::string path = TempPath("corrupt.dbph");
  ASSERT_TRUE(server_.SaveTo(path).ok());

  // Truncate.
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  server::UntrustedServer victim;
  EXPECT_FALSE(victim.LoadFrom(path).ok());
  // A failed load must leave the server empty, not half-populated.
  EXPECT_EQ(victim.num_relations(), 0u);

  // Bad magic.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a dbph file at all";
  }
  EXPECT_FALSE(victim.LoadFrom(path).ok());

  // Missing file.
  EXPECT_FALSE(victim.LoadFrom(TempPath("does_not_exist.dbph")).ok());

  std::remove(path.c_str());
}

TEST_F(PersistenceTest, LoadReplacesExistingState) {
  std::string path = TempPath("replace.dbph");
  ASSERT_TRUE(server_.SaveTo(path).ok());

  server::UntrustedServer other;
  // Give `other` a different relation first.
  Relation pre("Old", EmpSchema());
  crypto::HmacDrbg rng2("persist-other", 2);
  client::Client tmp(
      ToBytes("other key"),
      [&other](const Bytes& request) { return other.HandleRequest(request); },
      &rng2);
  ASSERT_TRUE(pre.Insert({Value::Str("X"), Value::Str("Y")}).ok());
  ASSERT_TRUE(tmp.Outsource(pre).ok());
  ASSERT_EQ(other.num_relations(), 1u);

  ASSERT_TRUE(other.LoadFrom(path).ok());
  EXPECT_EQ(other.num_relations(), 1u);
  EXPECT_TRUE(other.RelationSize("Emp").ok());
  EXPECT_FALSE(other.RelationSize("Old").ok());
  // Loading clears the observation log (re-stores are not observations).
  EXPECT_TRUE(other.observations().queries().empty());
  EXPECT_TRUE(other.observations().stores().empty());

  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbph
