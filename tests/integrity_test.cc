// Tamper-injection suite for the result-integrity layer: a proxy
// Transport sits between an honest Client and an honest UntrustedServer
// and corrupts responses in flight — dropping, substituting, and
// reordering rows, and replaying responses from a stale state. With
// VerifyMode::kEnforce every corruption must be rejected, while the
// untampered path (both planner access paths, and across a crash + WAL
// recovery) verifies cleanly. This is the acceptance test for the
// Merkle-authenticated response work; docs/SECURITY.md states what the
// proofs do and do not guarantee.

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/macros.h"
#include "crypto/merkle.h"
#include "crypto/random.h"
#include "crypto/search_tree.h"
#include "dbph/encrypted_relation.h"
#include "protocol/completeness_proof.h"
#include "protocol/messages.h"
#include "protocol/result_proof.h"
#include "server/durable_store.h"
#include "server/untrusted_server.h"
#include "swp/search.h"

namespace dbph {
namespace {

using protocol::Envelope;
using protocol::MessageType;
using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema TableSchema() {
  auto schema = Schema::Create({
      {"name", ValueType::kString, 8},
      {"grp", ValueType::kInt64, 10},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Relation SeedTable(const std::string& name = "T") {
  Relation table(name, TableSchema());
  const char* names[] = {"ada", "bob", "carol", "dave", "eve", "frank"};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(
        table.Insert({Value::Str(names[i]), Value::Int(int64_t(i % 3))}).ok());
  }
  return table;
}

/// A man-in-the-middle transport: forwards requests to the server and
/// runs an optional mutation over the response bytes on the way back.
struct TamperProxy {
  server::UntrustedServer* server = nullptr;
  std::function<Bytes(const Bytes&)> tamper;  // null = honest relay
  std::vector<Bytes> recorded_requests;
  std::vector<Bytes> recorded_responses;
  bool record = false;

  Bytes operator()(const Bytes& request) {
    if (record) recorded_requests.push_back(request);
    Bytes response = server->HandleRequest(request);
    if (record) recorded_responses.push_back(response);
    if (tamper) return tamper(response);
    return response;
  }
};

/// Splits a kSelectResult / kFetchResult payload into its documents and
/// the trailing proof bytes, applies `mutate` to the document list, and
/// reassembles the envelope WITHOUT touching the proof — the shape of a
/// network adversary who can cut and splice rows but cannot forge
/// Merkle structure for them.
Bytes MutateResultRows(
    const Bytes& wire,
    const std::function<void(std::vector<swp::EncryptedDocument>*)>& mutate) {
  auto envelope = Envelope::Parse(wire);
  if (!envelope.ok() || (envelope->type != MessageType::kSelectResult &&
                         envelope->type != MessageType::kFetchResult)) {
    return wire;  // not a result; relay honestly
  }
  ByteReader reader(envelope->payload);
  auto docs = swp::ReadDocumentList(&reader);
  if (!docs.ok()) return wire;
  Bytes proof_bytes(envelope->payload.end() - reader.remaining(),
                    envelope->payload.end());
  mutate(&*docs);
  Envelope tampered;
  tampered.type = envelope->type;
  AppendUint32(&tampered.payload, static_cast<uint32_t>(docs->size()));
  for (const auto& doc : *docs) doc.AppendTo(&tampered.payload);
  tampered.payload.insert(tampered.payload.end(), proof_bytes.begin(),
                          proof_bytes.end());
  return tampered.Serialize();
}

struct Deployment {
  explicit Deployment(client::VerifyMode mode)
      : rng("integrity-test", 5),
        client(ToBytes("integrity master"),
               [this](const Bytes& request) { return proxy(request); },
               &rng) {
    proxy.server = &server;
    client.set_verify_mode(mode);
  }

  server::UntrustedServer server;
  TamperProxy proxy;
  crypto::HmacDrbg rng;
  client::Client client;
};

TEST(IntegrityTest, HonestPathVerifiesOnBothAccessPaths) {
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  // First select: full scan (cold index, memoizes). Second: posting-list
  // lookup. Both must verify, and the wire responses — proof included —
  // must be byte-identical: the proof is a function of stored state, not
  // of the access path.
  d.proxy.record = true;
  auto first = d.client.Select("T", "grp", Value::Int(1));
  auto second = d.client.Select("T", "grp", Value::Int(1));
  d.proxy.record = false;
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->size(), 2u);
  EXPECT_TRUE(first->SameTuples(*second));
  ASSERT_EQ(d.proxy.recorded_responses.size(), 2u);
  EXPECT_EQ(d.proxy.recorded_responses[0], d.proxy.recorded_responses[1])
      << "scan-path and index-path responses (with proofs) must be "
         "byte-identical";

  // Mutations keep verifying: insert, delete (manifest path), recall
  // (completeness path), batched + conjunctive selects.
  ASSERT_TRUE(
      d.client.Insert("T", {{Value::Str("gina"), Value::Int(1)}}).ok());
  auto after_insert = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(after_insert.ok());
  EXPECT_EQ(after_insert->size(), 3u);

  auto removed = d.client.DeleteWhere("T", "name", Value::Str("bob"));
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 1u);
  auto after_delete = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(after_delete.ok()) << after_delete.status();
  EXPECT_EQ(after_delete->size(), 2u);

  auto batched = d.client.SelectBatch(
      "T", {{"grp", Value::Int(0)}, {"grp", Value::Int(2)}});
  ASSERT_TRUE(batched.ok()) << batched.status();
  auto conjunction = d.client.SelectConjunction(
      "T", {{"grp", Value::Int(0)}, {"name", Value::Str("ada")}});
  ASSERT_TRUE(conjunction.ok()) << conjunction.status();
  EXPECT_EQ(conjunction->size(), 1u);

  auto recalled = d.client.Recall("T");
  ASSERT_TRUE(recalled.ok()) << recalled.status();
  EXPECT_EQ(recalled->size(), 6u);
}

TEST(IntegrityTest, DroppedRowIsRejected) {
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  d.proxy.tamper = [](const Bytes& wire) {
    return MutateResultRows(wire, [](std::vector<swp::EncryptedDocument>* docs) {
      if (!docs->empty()) docs->pop_back();
    });
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("integrity"), std::string::npos)
      << result.status();

  // The rejection must not poison the client: the honest path still
  // verifies afterwards.
  d.proxy.tamper = nullptr;
  EXPECT_TRUE(d.client.Select("T", "grp", Value::Int(1)).ok());
}

TEST(IntegrityTest, SubstitutedCiphertextIsRejected) {
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  d.proxy.tamper = [](const Bytes& wire) {
    return MutateResultRows(wire, [](std::vector<swp::EncryptedDocument>* docs) {
      if (!docs->empty() && !(*docs)[0].words.empty() &&
          !(*docs)[0].words[0].empty()) {
        (*docs)[0].words[0][0] ^= 0x01;  // one flipped ciphertext bit
      }
    });
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  EXPECT_FALSE(result.ok());

  // Splicing in a genuine document from a different result (a stored
  // row, so its bytes ARE a real leaf) must equally fail: it is not the
  // leaf at the claimed position.
  Deployment d2(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d2.client.Outsource(SeedTable()).ok());
  auto other = d2.client.Select("T", "name", Value::Str("carol"));
  ASSERT_TRUE(other.ok());
  d2.proxy.record = true;
  (void)d2.client.Select("T", "name", Value::Str("carol"));
  d2.proxy.record = false;
  Bytes carol_response = d2.proxy.recorded_responses.back();
  auto carol_env = Envelope::Parse(carol_response);
  ASSERT_TRUE(carol_env.ok());
  ByteReader carol_reader(carol_env->payload);
  auto carol_docs = swp::ReadDocumentList(&carol_reader);
  ASSERT_TRUE(carol_docs.ok());
  ASSERT_FALSE(carol_docs->empty());
  swp::EncryptedDocument spliced = (*carol_docs)[0];
  d2.proxy.tamper = [spliced](const Bytes& wire) {
    return MutateResultRows(wire,
                            [&](std::vector<swp::EncryptedDocument>* docs) {
                              if (!docs->empty()) (*docs)[0] = spliced;
                            });
  };
  EXPECT_FALSE(d2.client.Select("T", "grp", Value::Int(1)).ok());
}

TEST(IntegrityTest, ReorderedRowsAreRejected) {
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  d.proxy.tamper = [](const Bytes& wire) {
    return MutateResultRows(wire, [](std::vector<swp::EncryptedDocument>* docs) {
      if (docs->size() >= 2) std::swap((*docs)[0], (*docs)[1]);
    });
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  EXPECT_FALSE(result.ok());
}

TEST(IntegrityTest, StaleRootReplayIsRejected) {
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  // Record a valid response at epoch 1...
  d.proxy.record = true;
  ASSERT_TRUE(d.client.Select("T", "grp", Value::Int(1)).ok());
  d.proxy.record = false;
  Bytes stale = d.proxy.recorded_responses.back();

  // ...mutate (epoch 2), then replay the recorded epoch-1 response. Its
  // proof is internally consistent and its root was once genuine — only
  // the epoch/root freshness check can catch it.
  ASSERT_TRUE(
      d.client.Insert("T", {{Value::Str("hank"), Value::Int(1)}}).ok());
  d.proxy.tamper = [stale](const Bytes&) { return stale; };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("integrity"), std::string::npos);

  d.proxy.tamper = nullptr;
  auto fresh = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size(), 3u);
}

TEST(IntegrityTest, SyncRefusesRollbackBelowWitnessedAnchor) {
  // A server restored from an older (genuinely owner-signed) snapshot
  // must not be able to launder the rollback through SyncIntegrity: a
  // session that witnessed later epochs refuses to move its anchor
  // backwards, and its selects keep failing loudly.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  auto old_image = d.server.SerializeState();  // epoch 1, signed
  ASSERT_TRUE(old_image.ok());
  ASSERT_TRUE(
      d.client.Insert("T", {{Value::Str("gina"), Value::Int(1)}}).ok());

  ASSERT_TRUE(d.server.RestoreState(*old_image).ok());  // the rollback
  EXPECT_FALSE(d.client.Select("T", "grp", Value::Int(1)).ok());
  EXPECT_FALSE(d.client.SyncIntegrity("T", /*require_signature=*/true).ok());
  // Still anchored at the witnessed epoch afterwards.
  auto anchor = d.client.IntegrityAnchor("T");
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(anchor->first, 2u);
}

TEST(IntegrityTest, StrippedSearchSectionInSyncIsRejected) {
  // An integrity-enabled server always appends the search dump after
  // the fetch row proof, so a missing section is a stripping downgrade:
  // if the client adopted an empty search mirror here, every later
  // select would verify completeness against tree_size=0 and accept
  // zero-result lies. Under require_signature the sync must fail closed.
  Deployment owner(client::VerifyMode::kEnforce);
  ASSERT_TRUE(owner.client.Outsource(SeedTable()).ok());

  TamperProxy proxy;
  proxy.server = &owner.server;
  crypto::HmacDrbg rng("sync-stripped-search", 12);
  client::Client fresh(
      ToBytes("integrity master"),
      [&proxy](const Bytes& request) { return proxy(request); }, &rng);
  fresh.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(fresh.Adopt("T", TableSchema()).ok());

  proxy.tamper = [](const Bytes& wire) {
    auto envelope = Envelope::Parse(wire);
    if (!envelope.ok() || envelope->type != MessageType::kFetchResult) {
      return wire;
    }
    ByteReader reader(envelope->payload);
    auto docs = swp::ReadDocumentList(&reader);
    if (!docs.ok()) return wire;
    auto proof = protocol::ResultProof::ReadFrom(&reader, docs->size());
    if (!proof.ok()) return wire;
    // Cut everything after the row proof: rows + proof stay genuine.
    Envelope stripped;
    stripped.type = envelope->type;
    stripped.payload.assign(envelope->payload.begin(),
                            envelope->payload.end() - reader.remaining());
    return stripped.Serialize();
  };
  Status synced = fresh.SyncIntegrity("T", /*require_signature=*/true);
  ASSERT_FALSE(synced.ok());
  EXPECT_NE(synced.message().find("no search section"), std::string::npos)
      << synced;
  // The stripped sync must not have installed any anchor.
  EXPECT_FALSE(fresh.IntegrityAnchor("T").ok());

  // The honest sync afterwards anchors, and selects verify — including
  // the zero-result path against the now-populated search mirror.
  proxy.tamper = nullptr;
  Status honest = fresh.SyncIntegrity("T", /*require_signature=*/true);
  ASSERT_TRUE(honest.ok()) << honest;
  EXPECT_TRUE(fresh.Select("T", "grp", Value::Int(1)).ok());
  EXPECT_TRUE(fresh.Select("T", "name", Value::Str("zelda")).ok());
}

TEST(IntegrityTest, WithheldRowInRecallIsRejected) {
  // Recall carries the whole-relation completeness proof: serving n-1
  // of n rows must fail even though every served row is genuine.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.tamper = [](const Bytes& wire) {
    return MutateResultRows(wire, [](std::vector<swp::EncryptedDocument>* docs) {
      if (!docs->empty()) docs->pop_back();
    });
  };
  EXPECT_FALSE(d.client.Recall("T").ok());
  d.proxy.tamper = nullptr;
  EXPECT_TRUE(d.client.Recall("T").ok());
}

TEST(IntegrityTest, WarnModeReportsButReturnsData) {
  Deployment d(client::VerifyMode::kWarn);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.tamper = [](const Bytes& wire) {
    return MutateResultRows(wire, [](std::vector<swp::EncryptedDocument>* docs) {
      if (!docs->empty()) docs->pop_back();
    });
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(result.ok()) << "warn mode must not fail the operation";
  EXPECT_EQ(result->size(), 1u);  // the tampered (short) result
}

TEST(IntegrityTest, MirrorSurvivesVerifyModeToggles) {
  // set_verify_mode promises that switching modes mid-session keeps the
  // tracked state usable: mutations issued while verification is Off
  // must still be mirrored, or re-enabling Enforce would raise false
  // epoch-mismatch alarms against a perfectly honest server.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  d.client.set_verify_mode(client::VerifyMode::kOff);
  ASSERT_TRUE(
      d.client.Insert("T", {{Value::Str("gina"), Value::Int(1)}}).ok());
  auto removed = d.client.DeleteWhere("T", "name", Value::Str("ada"));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);

  d.client.set_verify_mode(client::VerifyMode::kEnforce);
  auto verified = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(verified.ok())
      << "honest select failed after an Off-mode mutation window: "
      << verified.status();
  EXPECT_EQ(verified->size(), 3u);
  // The next enforced mutation re-signs the (now unattested) root.
  ASSERT_TRUE(
      d.client.Insert("T", {{Value::Str("hank"), Value::Int(2)}}).ok());
  EXPECT_TRUE(d.client.Select("T", "grp", Value::Int(2)).ok());
}

TEST(IntegrityTest, EnforceRefusesUnanchoredMutations) {
  // Mutating without a mirror under Enforce would silently desync the
  // server's attested root (inserts) or lose track of deletions — both
  // mutation paths must demand SyncIntegrity first, symmetrically.
  Deployment owner(client::VerifyMode::kEnforce);
  ASSERT_TRUE(owner.client.Outsource(SeedTable()).ok());

  crypto::HmacDrbg rng("integrity-unanchored", 4);
  client::Client adopted(
      ToBytes("integrity master"),
      [&owner](const Bytes& request) {
        return owner.server.HandleRequest(request);
      },
      &rng);
  adopted.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(adopted.Adopt("T", TableSchema()).ok());
  EXPECT_FALSE(
      adopted.Insert("T", {{Value::Str("mallory"), Value::Int(0)}}).ok());
  EXPECT_FALSE(adopted.DeleteWhere("T", "name", Value::Str("ada")).ok());

  ASSERT_TRUE(adopted.SyncIntegrity("T", /*require_signature=*/true).ok());
  EXPECT_TRUE(
      adopted.Insert("T", {{Value::Str("mallory"), Value::Int(0)}}).ok());
  auto removed = adopted.DeleteWhere("T", "name", Value::Str("mallory"));
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 1u);
}

TEST(IntegrityTest, IntegrityOffServerFailsEnforceButPassesOff) {
  server::ServerRuntimeOptions options;
  options.enable_integrity = false;
  server::UntrustedServer bare(options);
  crypto::HmacDrbg rng("integrity-off", 2);
  client::Client enforcing(
      ToBytes("integrity master"),
      [&bare](const Bytes& request) { return bare.HandleRequest(request); },
      &rng);
  enforcing.set_verify_mode(client::VerifyMode::kEnforce);
  // The attestation round trip fails fast: the server refuses roots.
  // (The upload itself lands — attestation is a separate envelope — so
  // the relation exists; only the integrity handshake fails.)
  EXPECT_FALSE(enforcing.Outsource(SeedTable()).ok());

  server::UntrustedServer bare2(options);
  crypto::HmacDrbg rng2("integrity-off", 3);
  client::Client plain(
      ToBytes("integrity master two"),
      [&bare2](const Bytes& request) { return bare2.HandleRequest(request); },
      &rng2);
  ASSERT_TRUE(plain.Outsource(SeedTable()).ok());
  EXPECT_TRUE(plain.Select("T", "grp", Value::Int(1)).ok());
}

// ---------------- completeness tamper matrix ----------------
//
// The adversary below is strictly stronger than the row-splicing MITM
// above: it plays a dishonest SERVER that mirrors every stored
// ciphertext and the row tree over them, so it can rebuild a fully
// valid row proof (root, positions, siblings, even the owner signature
// — it covers the unchanged root) for ANY subset of genuine rows. The
// row-proof layer alone cannot catch it; the committed posting lists of
// the search tree are what give each lie away.

/// A kSelectResult payload split at its structure boundaries: rows, row
/// proof, and the raw CompletenessProof bytes that follow.
struct ParsedSelect {
  std::vector<swp::EncryptedDocument> docs;
  protocol::ResultProof proof;
  Bytes completeness;
};

Result<ParsedSelect> ParseSelectResponse(const Bytes& wire) {
  ParsedSelect out;
  DBPH_ASSIGN_OR_RETURN(Envelope envelope, Envelope::Parse(wire));
  if (envelope.type != MessageType::kSelectResult) {
    return Status::InvalidArgument("not a select result");
  }
  ByteReader reader(envelope.payload);
  DBPH_ASSIGN_OR_RETURN(out.docs, swp::ReadDocumentList(&reader));
  DBPH_ASSIGN_OR_RETURN(
      out.proof, protocol::ResultProof::ReadFrom(&reader, out.docs.size()));
  out.completeness = Bytes(envelope.payload.end() - reader.remaining(),
                           envelope.payload.end());
  return out;
}

Bytes AssembleSelectResponse(const ParsedSelect& parts) {
  Envelope envelope;
  envelope.type = MessageType::kSelectResult;
  AppendUint32(&envelope.payload, static_cast<uint32_t>(parts.docs.size()));
  for (const auto& doc : parts.docs) doc.AppendTo(&envelope.payload);
  parts.proof.AppendTo(&envelope.payload);
  envelope.payload.insert(envelope.payload.end(), parts.completeness.begin(),
                          parts.completeness.end());
  return envelope.Serialize();
}

/// Everything a dishonest server holds for one relation: the stored
/// ciphertexts and the row tree over them, rebuilt from the recorded
/// kStoreRelation request the proxy relayed.
struct RelationMirror {
  crypto::MerkleTree tree;
  std::vector<swp::EncryptedDocument> docs;
};

RelationMirror MirrorFromStoreRequest(const Bytes& request) {
  RelationMirror mirror;
  auto envelope = Envelope::Parse(request);
  EXPECT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->type, MessageType::kStoreRelation);
  ByteReader reader(envelope->payload);
  auto enc = core::EncryptedRelation::ReadFrom(&reader);
  EXPECT_TRUE(enc.ok());
  std::vector<crypto::MerkleTree::Hash> leaves;
  leaves.reserve(enc->documents.size());
  for (const auto& doc : enc->documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    leaves.push_back(crypto::MerkleTree::LeafHash(serialized));
  }
  mirror.tree.Assign(std::move(leaves));
  mirror.docs = std::move(enc->documents);
  return mirror;
}

TEST(CompletenessTest, UnderReportedMatchSetIsRejected) {
  Deployment d(client::VerifyMode::kEnforce);
  d.proxy.record = true;
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.record = false;
  RelationMirror mirror =
      MirrorFromStoreRequest(d.proxy.recorded_requests.front());

  // Drop one of the two genuine grp=1 matches and re-prove the
  // survivor. Every row check passes; the committed posting list (still
  // claiming two positions against a one-row result) cannot even parse.
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.size() < 2) return wire;
    parts->docs.pop_back();
    parts->proof.positions.pop_back();
    parts->proof.siblings = mirror.tree.SubsetProof(parts->proof.positions);
    return AssembleSelectResponse(*parts);
  };
  auto scan_path = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(scan_path.ok()) << "under-report accepted on the scan path";
  EXPECT_NE(scan_path.status().message().find("integrity"),
            std::string::npos);

  // Let an honest select memoize the posting list, then under-report on
  // the index path too — the proof is access-path independent, so the
  // same lie must fail the same way.
  d.proxy.tamper = nullptr;
  ASSERT_TRUE(d.client.Select("T", "grp", Value::Int(1)).ok());
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.size() < 2) return wire;
    parts->docs.pop_back();
    parts->proof.positions.pop_back();
    parts->proof.siblings = mirror.tree.SubsetProof(parts->proof.positions);
    return AssembleSelectResponse(*parts);
  };
  EXPECT_FALSE(d.client.Select("T", "grp", Value::Int(1)).ok())
      << "under-report accepted on the index path";
}

TEST(CompletenessTest, SubstitutedMatchIsRejectedBySubsetRule) {
  Deployment d(client::VerifyMode::kEnforce);
  d.proxy.record = true;
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.record = false;
  RelationMirror mirror =
      MirrorFromStoreRequest(d.proxy.recorded_requests.front());

  // Swap the second grp=1 match (eve, position 4) for a genuine row that
  // does NOT match (frank, position 5), row proof rebuilt for {1, 5}.
  // The result size is right and every returned row is a real leaf at
  // its claimed position — only "committed ⊆ returned" catches the
  // missing committed position 4.
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.size() != 2 || mirror.docs.size() < 6) {
      return wire;
    }
    parts->docs.back() = mirror.docs[5];
    parts->proof.positions.back() = 5;
    parts->proof.siblings = mirror.tree.SubsetProof(parts->proof.positions);
    return AssembleSelectResponse(*parts);
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("committed match set"),
            std::string::npos)
      << result.status();
}

TEST(CompletenessTest, EmptyResultLieIsRejected) {
  Deployment d(client::VerifyMode::kEnforce);
  d.proxy.record = true;
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.record = false;
  RelationMirror mirror =
      MirrorFromStoreRequest(d.proxy.recorded_requests.front());

  // Lie #1: "no rows matched", served with a perfectly valid EMPTY row
  // proof and the genuine completeness proof. The committed posting
  // list claims more positions than the empty result can carry, so the
  // proof fails closed at parse time.
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    parts->docs.clear();
    parts->proof.positions.clear();
    parts->proof.siblings = mirror.tree.SubsetProof({});
    return AssembleSelectResponse(*parts);
  };
  EXPECT_FALSE(d.client.Select("T", "grp", Value::Int(1)).ok());

  // Lie #2: same empty result, but with the completeness proof forged
  // into a non-membership shape ("this tag was never committed"). The
  // anchored client knows its own committed entry for the tag.
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    ByteReader creader(parts->completeness);
    auto completeness = protocol::CompletenessProof::ReadFrom(
        &creader, parts->docs.size(), parts->proof.leaf_count);
    if (!completeness.ok()) return wire;
    completeness->kind = protocol::kCompletenessAbsent;
    completeness->positions.clear();
    completeness->path.clear();
    completeness->neighbors.clear();
    parts->completeness.clear();
    completeness->AppendTo(&parts->completeness);
    parts->docs.clear();
    parts->proof.positions.clear();
    parts->proof.siblings = mirror.tree.SubsetProof({});
    return AssembleSelectResponse(*parts);
  };
  auto denied = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(denied.ok());
  EXPECT_NE(denied.status().message().find("denied a committed match set"),
            std::string::npos)
      << denied.status();

  d.proxy.tamper = nullptr;
  EXPECT_TRUE(d.client.Select("T", "grp", Value::Int(1)).ok());
}

TEST(CompletenessTest, CrossRelationCompletenessSpliceIsRejected) {
  // Two relations with identical plaintext still commit DIFFERENT
  // search trees (trapdoors are per-relation), so serving U's genuine
  // completeness proof for T's select must fail on the search root.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable("T")).ok());
  ASSERT_TRUE(d.client.Outsource(SeedTable("U")).ok());

  d.proxy.record = true;
  ASSERT_TRUE(d.client.Select("U", "grp", Value::Int(1)).ok());
  d.proxy.record = false;
  auto u_parts = ParseSelectResponse(d.proxy.recorded_responses.back());
  ASSERT_TRUE(u_parts.ok());

  Bytes spliced = u_parts->completeness;
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    parts->completeness = spliced;
    return AssembleSelectResponse(*parts);
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("search root mismatch"),
            std::string::npos)
      << result.status();
}

TEST(CompletenessTest, StaleCompletenessReplayIsRejected) {
  // Record the genuine completeness proof at epoch 1, mutate to epoch 2,
  // then serve fresh rows + fresh row proof with the STALE search
  // evidence — hiding the newly inserted match behind an old commitment.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.record = true;
  ASSERT_TRUE(d.client.Select("T", "grp", Value::Int(1)).ok());
  d.proxy.record = false;
  auto stale_parts = ParseSelectResponse(d.proxy.recorded_responses.back());
  ASSERT_TRUE(stale_parts.ok());

  ASSERT_TRUE(
      d.client.Insert("T", {{Value::Str("gina"), Value::Int(1)}}).ok());

  Bytes stale = stale_parts->completeness;
  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    parts->completeness = stale;
    return AssembleSelectResponse(*parts);
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("epoch mismatch"),
            std::string::npos)
      << result.status();
}

TEST(CompletenessTest, StrippedCompletenessProofIsRejected) {
  // Deleting the completeness proof must not downgrade a verified
  // select into a returns-only one — absence is itself tampering.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.tamper = [](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok()) return wire;
    parts->completeness.clear();
    return AssembleSelectResponse(*parts);
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no completeness proof"),
            std::string::npos)
      << result.status();
}

TEST(CompletenessTest, ForgedNonMembershipIsRejected) {
  // An honest zero-result select carries a real non-membership proof;
  // mutating its bracketing neighbors (here: dropping one) must fail
  // against the client's own committed tree.
  Deployment d(client::VerifyMode::kEnforce);
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());

  // Honest zero-result path first: a value never present in T.
  auto honest = d.client.Select("T", "name", Value::Str("zelda"));
  ASSERT_TRUE(honest.ok()) << honest.status();
  EXPECT_EQ(honest->size(), 0u);

  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok()) return wire;
    ByteReader creader(parts->completeness);
    auto completeness = protocol::CompletenessProof::ReadFrom(
        &creader, /*max_positions=*/6, parts->proof.leaf_count);
    if (!completeness.ok() ||
        completeness->kind != protocol::kCompletenessAbsent ||
        completeness->neighbors.empty()) {
      return wire;
    }
    completeness->neighbors.pop_back();
    parts->completeness.clear();
    completeness->AppendTo(&parts->completeness);
    return AssembleSelectResponse(*parts);
  };
  auto result = d.client.Select("T", "name", Value::Str("zelda"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("non-membership"),
            std::string::npos)
      << result.status();
}

TEST(CompletenessTest, UnanchoredClientVerifiesAgainstSignedSearchRoot) {
  // An adopted session with NO local mirror leans entirely on the
  // owner-signed search root: honest member and non-member proofs
  // verify, and the empty-result lie still dies — a committed tag can
  // satisfy no non-membership proof against the signed root.
  Deployment owner(client::VerifyMode::kEnforce);
  ASSERT_TRUE(owner.client.Outsource(SeedTable()).ok());

  TamperProxy proxy;
  proxy.server = &owner.server;
  crypto::HmacDrbg rng("completeness-unanchored", 11);
  client::Client adopted(
      ToBytes("integrity master"),
      [&proxy](const Bytes& request) { return proxy(request); }, &rng);
  adopted.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(adopted.Adopt("T", TableSchema()).ok());

  auto member = adopted.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(member.ok()) << member.status();
  EXPECT_EQ(member->size(), 2u);
  auto absent = adopted.Select("T", "name", Value::Str("zelda"));
  ASSERT_TRUE(absent.ok()) << absent.status();
  EXPECT_EQ(absent->size(), 0u);

  proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    ByteReader creader(parts->completeness);
    auto completeness = protocol::CompletenessProof::ReadFrom(
        &creader, parts->docs.size(), parts->proof.leaf_count);
    if (!completeness.ok()) return wire;
    completeness->kind = protocol::kCompletenessAbsent;
    completeness->positions.clear();
    completeness->path.clear();
    completeness->neighbors.clear();
    parts->completeness.clear();
    completeness->AppendTo(&parts->completeness);
    parts->docs.clear();
    parts->proof.positions.clear();
    parts->proof.siblings = {parts->proof.root};
    return AssembleSelectResponse(*parts);
  };
  EXPECT_FALSE(adopted.Select("T", "grp", Value::Int(1)).ok());
}

TEST(CompletenessTest, SignedRootReplayedWithZeroTreeSizeIsRejected) {
  // The owner's search-root HMAC covers (relation, epoch, root) but NOT
  // tree_size, which rides as plain wire data. A dishonest server can
  // therefore serve the GENUINELY SIGNED non-empty search root with
  // tree_size=0, kind=absent, and no neighbors — "the tree is empty,
  // the root alone proves absence" — to an unanchored session, and
  // every zero-result lie would verify. The verifier must pin
  // tree_size=0 to the empty-root constant.
  Deployment owner(client::VerifyMode::kEnforce);
  ASSERT_TRUE(owner.client.Outsource(SeedTable()).ok());

  TamperProxy proxy;
  proxy.server = &owner.server;
  crypto::HmacDrbg rng("completeness-zero-size", 13);
  client::Client adopted(
      ToBytes("integrity master"),
      [&proxy](const Bytes& request) { return proxy(request); }, &rng);
  adopted.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(adopted.Adopt("T", TableSchema()).ok());

  proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    ByteReader creader(parts->completeness);
    auto completeness = protocol::CompletenessProof::ReadFrom(
        &creader, parts->docs.size(), parts->proof.leaf_count);
    if (!completeness.ok()) return wire;
    completeness->kind = protocol::kCompletenessAbsent;
    completeness->tree_size = 0;  // the unsigned field
    completeness->positions.clear();
    completeness->path.clear();
    completeness->neighbors.clear();
    parts->completeness.clear();
    completeness->AppendTo(&parts->completeness);
    parts->docs.clear();
    parts->proof.positions.clear();
    parts->proof.siblings = {parts->proof.root};
    return AssembleSelectResponse(*parts);
  };
  auto result = adopted.Select("T", "grp", Value::Int(1));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("non-empty root"),
            std::string::npos)
      << result.status();

  // Honest path still verifies afterwards.
  proxy.tamper = nullptr;
  auto honest = adopted.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(honest.ok()) << honest.status();
  EXPECT_EQ(honest->size(), 2u);
}

TEST(CompletenessTest, WarnModeSurfacesTheLieButReturnsData) {
  Deployment d(client::VerifyMode::kWarn);
  d.proxy.record = true;
  ASSERT_TRUE(d.client.Outsource(SeedTable()).ok());
  d.proxy.record = false;
  RelationMirror mirror =
      MirrorFromStoreRequest(d.proxy.recorded_requests.front());

  d.proxy.tamper = [&](const Bytes& wire) {
    auto parts = ParseSelectResponse(wire);
    if (!parts.ok() || parts->docs.empty()) return wire;
    parts->docs.clear();
    parts->proof.positions.clear();
    parts->proof.siblings = mirror.tree.SubsetProof({});
    return AssembleSelectResponse(*parts);
  };
  auto result = d.client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(result.ok()) << "warn mode must not fail the operation";
  EXPECT_EQ(result->size(), 0u);  // the lie, surfaced via the log
}

TEST(IntegrityTest, VerificationSurvivesCrashRecovery) {
  std::string dir = ::testing::TempDir() + "/integrity_crash";
  std::filesystem::remove_all(dir);
  server::DurableStoreOptions store_options;
  store_options.background_thread = false;

  crypto::HmacDrbg rng("integrity-crash", 9);
  auto server = std::make_unique<server::UntrustedServer>();
  auto store = std::make_unique<server::DurableStore>(server.get(), dir,
                                                      store_options);
  ASSERT_TRUE(store->Open().ok());
  server::UntrustedServer* current = server.get();
  client::Client client(
      ToBytes("integrity master"),
      [&current](const Bytes& request) { return current->HandleRequest(request); },
      &rng);
  client.set_verify_mode(client::VerifyMode::kEnforce);

  ASSERT_TRUE(client.Outsource(SeedTable()).ok());
  ASSERT_TRUE(client.Insert("T", {{Value::Str("gina"), Value::Int(2)}}).ok());
  auto removed = client.DeleteWhere("T", "name", Value::Str("ada"));
  ASSERT_TRUE(removed.ok());

  // kill -9: abandon the store with a live WAL, recover a fresh server.
  store.reset();
  auto restarted = std::make_unique<server::UntrustedServer>();
  auto recovered = std::make_unique<server::DurableStore>(restarted.get(), dir,
                                                          store_options);
  ASSERT_TRUE(recovered->Open().ok());
  current = restarted.get();

  // The same client (its mirror intact) keeps enforcing: recovery must
  // have rebuilt the identical tree, epoch, and attested root — and the
  // identical SEARCH tree, exercised by both a matching select and a
  // zero-result one (whose non-membership proof also must verify).
  auto verified = client.Select("T", "grp", Value::Int(1));
  ASSERT_TRUE(verified.ok()) << verified.status();
  auto zero = client.Select("T", "name", Value::Str("zelda"));
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_EQ(zero->size(), 0u);

  // A brand-new session — no history — anchors from the recovered
  // signed root (round-tripped through snapshot + WAL replay) and then
  // enforces too.
  crypto::HmacDrbg fresh_rng("integrity-crash-fresh", 10);
  client::Client fresh(
      ToBytes("integrity master"),
      [&current](const Bytes& request) { return current->HandleRequest(request); },
      &fresh_rng);
  fresh.set_verify_mode(client::VerifyMode::kEnforce);
  ASSERT_TRUE(fresh.Adopt("T", TableSchema()).ok());
  Status synced = fresh.SyncIntegrity("T", /*require_signature=*/true);
  ASSERT_TRUE(synced.ok()) << synced;
  auto anchor_old = client.IntegrityAnchor("T");
  auto anchor_new = fresh.IntegrityAnchor("T");
  ASSERT_TRUE(anchor_old.ok());
  ASSERT_TRUE(anchor_new.ok());
  EXPECT_EQ(anchor_old->first, anchor_new->first) << "epoch diverged";
  EXPECT_EQ(anchor_old->second, anchor_new->second) << "root diverged";
  EXPECT_TRUE(fresh.Select("T", "grp", Value::Int(2)).ok());
  EXPECT_TRUE(fresh.Select("T", "name", Value::Str("zelda")).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dbph
