// The paper's Section 2 hospital scenario, end to end.
//
// Alex outsources patient statistics for three competing hospitals and
// runs his regular reporting queries. Eve — following the protocol to the
// letter — still reconstructs the fatal-outcome ratio of hospital 1 from
// nothing but result sizes and result-set intersections, and an *active*
// Eve pinpoints an individual patient ("John"). This is why the paper
// restricts its security claim to q = 0.

#include <cstdio>
#include <iostream>

#include "games/hospital.h"

using namespace dbph;

int main() {
  games::HospitalModel model;
  model.flows = {0.2, 0.3, 0.5};
  model.fatal_rate = 0.08;
  model.patients = 1000;

  std::cout << "Hospital statistics DB: " << model.patients
            << " patients, flows {0.2, 0.3, 0.5}, fatal rate 0.08\n";
  std::cout << "Alex's workload: SELECT * WHERE hospital = 1|2|3; "
               "SELECT * WHERE outcome = 'fatal'\n\n";

  std::cout << "--- Passive Eve (observes queries, knows the priors) ---\n";
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto inference = games::RunHospitalScenario(model, seed);
    if (!inference.ok()) {
      std::cerr << inference.status() << "\n";
      return 1;
    }
    std::printf(
        "run %llu: queries identified: %s | fatal ratio in hospital 1: "
        "inferred %.4f, true %.4f (error %.4f)\n",
        static_cast<unsigned long long>(seed),
        inference->queries_identified ? "YES" : "no",
        inference->estimated_fatal_ratio_h1, inference->true_fatal_ratio_h1,
        inference->AbsoluteError());
  }

  std::cout << "\n--- Active Eve (query-encryption oracle): find John ---\n";
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto inference = games::RunJohnAttack(model, seed);
    if (!inference.ok()) {
      std::cerr << inference.status() << "\n";
      return 1;
    }
    std::printf(
        "run %llu: John found: %s | hospital: inferred %lld, true %lld | "
        "outcome: inferred %s, true %s => %s\n",
        static_cast<unsigned long long>(seed),
        inference->found_john ? "YES" : "no",
        static_cast<long long>(inference->inferred_hospital),
        static_cast<long long>(inference->true_hospital),
        inference->inferred_outcome.c_str(), inference->true_outcome.c_str(),
        inference->Correct() ? "ATTACK SUCCEEDED" : "attack failed");
  }

  std::cout
      << "\nMoral (paper Section 2): indistinguishable table encryption is\n"
         "not enough once queries flow. The construction is secure only\n"
         "in the q = 0 regime — if Alex stops trusting Eve, he must stop\n"
         "sending queries.\n";
  return 0;
}
