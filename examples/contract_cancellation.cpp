// The paper's operational moral, as a running program.
//
// "Assume that Alex trusts Eve not to attack him directly but still
//  worries about her becoming adversarial in the future (e.g., by a
//  change of company ownership). If Alex's trust in Eve deteriorates, he
//  can cancel the contract in time and stop sending queries.
//  Consequently, q = 0 and Theorem 2.1 does not apply."
//
// Timeline:
//   1. Alex outsources his payroll and operates normally (queries flow).
//   2. News: Eve's company is being acquired. Alex cancels: he recalls
//      the ciphertext, decrypts locally, and drops the remote relation.
//   3. Alex keeps working from a local plaintext engine.
//   4. Eve is left holding only her observation log — and everything in
//      it is opaque trapdoors and result identities; with no further
//      queries ever arriving, the q = 0 guarantee is what protects the
//      historical ciphertext she may have copied.

#include <iostream>

#include "baselines/plain/plain_engine.h"
#include "client/client.h"
#include "crypto/random.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"

using namespace dbph;

int main() {
  auto schema = rel::Schema::Create({
      {"name", rel::ValueType::kString, 10},
      {"dept", rel::ValueType::kString, 5},
      {"salary", rel::ValueType::kInt64, 10},
  });
  rel::Relation emp("Emp", *schema);
  (void)emp.Insert({rel::Value::Str("Montgomery"), rel::Value::Str("HR"),
                    rel::Value::Int(7500)});
  (void)emp.Insert({rel::Value::Str("Smith"), rel::Value::Str("IT"),
                    rel::Value::Int(4900)});
  (void)emp.Insert({rel::Value::Str("Jones"), rel::Value::Str("HR"),
                    rel::Value::Int(4900)});

  server::UntrustedServer eve;
  crypto::Rng& rng = crypto::DefaultRng();
  client::Client alex(
      core::GenerateMasterKey(&rng),
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);

  std::cout << "--- Phase 1: normal operation ---\n";
  if (Status s = alex.Outsource(emp); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  (void)alex.Select("Emp", "dept", rel::Value::Str("HR"));
  (void)alex.Insert("Emp", {rel::Tuple({rel::Value::Str("Patel"),
                                        rel::Value::Str("IT"),
                                        rel::Value::Int(5200)})});
  (void)alex.Select("Emp", "salary", rel::Value::Int(4900));
  std::cout << "Eve stores " << *eve.RelationSize("Emp")
            << " documents and has observed "
            << eve.observations().queries().size() << " queries so far.\n";

  std::cout << "\n--- Phase 2: trust deteriorates; Alex cancels ---\n";
  auto recalled = alex.Recall("Emp");
  if (!recalled.ok()) {
    std::cerr << recalled.status() << "\n";
    return 1;
  }
  if (Status s = alex.Drop("Emp"); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "Recalled " << recalled->size()
            << " tuples; server now stores " << eve.num_relations()
            << " relations.\n";

  std::cout << "\n--- Phase 3: Alex continues locally ---\n";
  auto local = baseline::PlainEngine::Create(*recalled);
  if (!local.ok()) {
    std::cerr << local.status() << "\n";
    return 1;
  }
  auto it_staff = local->Select("dept", rel::Value::Str("IT"));
  std::cout << sql::FormatResult(*it_staff);

  std::cout << "\n--- Phase 4: what Eve is left with ---\n";
  std::cout << "Observation log: " << eve.observations().queries().size()
            << " opaque trapdoors with result identities. No further\n"
               "queries will arrive: q = 0 from here on, Theorem 2.1 does\n"
               "not apply, and the construction's security guarantee covers\n"
               "any ciphertext copies Eve retained.\n";
  return 0;
}
