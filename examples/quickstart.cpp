// Quickstart: outsource the paper's Emp relation and run exact selects
// over the encrypted data.
//
// This walks the exact worked example of Section 3:
//   <name:"Montgomery", dept:"HR", sal:7500>
//     -> {"MontgomeryN", "HR########D", "7500######S"}
// then encrypts the words with the SWP final scheme, ships them to the
// untrusted server, and queries sigma_{name:Montgomery} via a trapdoor.

#include <cstdio>
#include <iostream>

#include "client/client.h"
#include "crypto/random.h"
#include "dbph/document.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"

using namespace dbph;

int main() {
  // ---- Alex's plaintext data: the paper's Emp relation. ----
  auto schema = rel::Schema::Create({
      {"name", rel::ValueType::kString, 10},
      {"dept", rel::ValueType::kString, 5},
      {"salary", rel::ValueType::kInt64, 10},
  });
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  rel::Relation emp("Emp", *schema);
  for (Status s : {
           emp.Insert({rel::Value::Str("Montgomery"), rel::Value::Str("HR"),
                       rel::Value::Int(7500)}),
           emp.Insert({rel::Value::Str("Smith"), rel::Value::Str("IT"),
                       rel::Value::Int(4900)}),
           emp.Insert({rel::Value::Str("Jones"), rel::Value::Str("HR"),
                       rel::Value::Int(4900)}),
       }) {
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  std::cout << "=== The tuple -> document mapping (paper Section 3) ===\n";
  auto mapper = core::DocumentMapper::Create(*schema);
  auto words = mapper->MakeDocument(emp.tuple(0));
  std::cout << "tuple " << emp.tuple(0).ToDisplayString() << " becomes:\n";
  for (const auto& w : *words) {
    std::cout << "  \"" << ToString(w) << "\"\n";
  }

  // ---- Outsource to Eve. ----
  server::UntrustedServer eve;
  crypto::Rng& rng = crypto::DefaultRng();
  Bytes master_key = core::GenerateMasterKey(&rng);
  client::Client alex(
      master_key,
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);

  if (Status s = alex.Outsource(emp); !s.ok()) {
    std::cerr << "outsourcing failed: " << s << "\n";
    return 1;
  }
  std::cout << "\n=== Outsourced: Eve now stores " << *eve.RelationSize("Emp")
            << " encrypted documents ===\n";
  std::cout << "Eve's view of the store (ciphertext bytes): "
            << eve.observations().stores()[0].ciphertext_bytes << "\n";

  // ---- Query through the encrypted channel. ----
  std::cout << "\n=== sigma_{name:Montgomery} as an encrypted query ===\n";
  auto result =
      alex.Select("Emp", "name", rel::Value::Str("Montgomery"));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << sql::FormatResult(*result);

  std::cout << "\n=== Same thing in SQL ===\n";
  auto sql_result = sql::ExecuteSql(
      &alex, "SELECT * FROM Emp WHERE dept = 'HR' AND salary = 4900;");
  if (!sql_result.ok()) {
    std::cerr << sql_result.status() << "\n";
    return 1;
  }
  std::cout << sql::FormatResult(*sql_result);

  // ---- What Eve saw. ----
  const auto& queries = eve.observations().queries();
  std::cout << "\n=== Eve's transcript ===\n";
  for (size_t i = 0; i < queries.size(); ++i) {
    std::cout << "query " << i << ": trapdoor "
              << HexEncode(queries[i].trapdoor_bytes).substr(0, 32)
              << "..., " << queries[i].result_size() << " documents matched\n";
  }
  std::cout << "\nNo plaintext value or attribute name appears in the "
               "trapdoors;\nwith q = 0 future queries, this is all Eve will "
               "ever learn.\n";
  return 0;
}
