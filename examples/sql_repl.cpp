// An interactive SQL shell over an outsourced, encrypted database.
//
// Usage:
//   sql_repl                 - demo Emp table
//   sql_repl schema.csv data.csv table_name
//       schema.csv: one "name,type[,max_length]" line per attribute
//                   (types: string, int64, double, bool)
//       data.csv:   header + rows
//
// Every SELECT typed at the prompt is encrypted into a trapdoor, executed
// by the (in-process) untrusted server on ciphertext only, decrypted and
// filtered on the client.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "client/client.h"
#include "common/macros.h"
#include "crypto/random.h"
#include "relation/csv.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"

using namespace dbph;

namespace {

Result<rel::Schema> LoadSchemaCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<rel::Attribute> attributes;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string name, type, length;
    std::getline(fields, name, ',');
    std::getline(fields, type, ',');
    std::getline(fields, length, ',');
    rel::Attribute attr;
    attr.name = name;
    if (type == "string") attr.type = rel::ValueType::kString;
    else if (type == "int64") attr.type = rel::ValueType::kInt64;
    else if (type == "double") attr.type = rel::ValueType::kDouble;
    else if (type == "bool") attr.type = rel::ValueType::kBool;
    else return Status::InvalidArgument("unknown type '" + type + "'");
    attr.max_length = length.empty() ? 0 : std::stoul(length);
    attributes.push_back(std::move(attr));
  }
  return rel::Schema::Create(std::move(attributes));
}

Result<rel::Relation> DemoTable() {
  DBPH_ASSIGN_OR_RETURN(rel::Schema schema,
                        rel::Schema::Create({
                            {"name", rel::ValueType::kString, 10},
                            {"dept", rel::ValueType::kString, 5},
                            {"salary", rel::ValueType::kInt64, 10},
                        }));
  rel::Relation emp("Emp", schema);
  DBPH_RETURN_IF_ERROR(emp.Insert({rel::Value::Str("Montgomery"),
                                   rel::Value::Str("HR"),
                                   rel::Value::Int(7500)}));
  DBPH_RETURN_IF_ERROR(emp.Insert({rel::Value::Str("Smith"),
                                   rel::Value::Str("IT"),
                                   rel::Value::Int(4900)}));
  DBPH_RETURN_IF_ERROR(emp.Insert({rel::Value::Str("Jones"),
                                   rel::Value::Str("HR"),
                                   rel::Value::Int(4900)}));
  return emp;
}

}  // namespace

int main(int argc, char** argv) {
  Result<rel::Relation> table = DemoTable();
  if (argc == 4) {
    auto schema = LoadSchemaCsv(argv[1]);
    if (!schema.ok()) {
      std::cerr << schema.status() << "\n";
      return 1;
    }
    table = rel::LoadCsvFile(argv[3], *schema, argv[2]);
  } else if (argc != 1) {
    std::cerr << "usage: sql_repl [schema.csv data.csv table_name]\n";
    return 1;
  }
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }

  server::UntrustedServer eve;
  crypto::Rng& rng = crypto::DefaultRng();
  client::Client alex(
      core::GenerateMasterKey(&rng),
      [&eve](const Bytes& request) { return eve.HandleRequest(request); },
      &rng);
  if (Status s = alex.Outsource(*table); !s.ok()) {
    std::cerr << "outsourcing failed: " << s << "\n";
    return 1;
  }

  std::cout << "Outsourced table '" << table->name() << "' (" << table->size()
            << " tuples) to the untrusted server.\n"
            << "Type exact-select SQL, e.g.:\n"
            << "  SELECT * FROM " << table->name() << " WHERE "
            << table->schema().attribute(0).name << " = ...;\n"
            << "Ctrl-D or \\q to quit, \\eve to dump Eve's transcript.\n\n";

  std::string line;
  while (std::cout << "dbph> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\eve") {
      const auto& queries = eve.observations().queries();
      std::cout << "Eve has observed " << queries.size() << " queries:\n";
      for (size_t i = 0; i < queries.size(); ++i) {
        std::cout << "  [" << i << "] trapdoor "
                  << HexEncode(queries[i].trapdoor_bytes).substr(0, 24)
                  << "... -> " << queries[i].result_size() << " matches\n";
      }
      continue;
    }
    auto result = sql::ExecuteSql(&alex, line);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      continue;
    }
    std::cout << sql::FormatResult(*result);
  }
  return 0;
}
