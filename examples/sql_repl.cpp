// An interactive SQL shell over an outsourced, encrypted database.
//
// Usage:
//   sql_repl                 - demo Emp table, in-process server
//   sql_repl schema.csv data.csv table_name
//       schema.csv: one "name,type[,max_length]" line per attribute
//                   (types: string, int64, double, bool)
//       data.csv:   header + rows
//   sql_repl --connect=host:port [schema.csv data.csv table_name]
//       talk to a running dbph_serverd over TCP instead of an in-process
//       server; the master key comes from $DBPH_MASTER (default
//       "sql-repl-demo-master"), so reconnecting with the same key can
//       query previously outsourced data.
//
// Every SELECT typed at the prompt is encrypted into a trapdoor, executed
// by the untrusted server on ciphertext only, decrypted and filtered on
// the client.

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/macros.h"
#include "crypto/random.h"
#include "net/tcp_transport.h"
#include "relation/csv.h"
#include "server/untrusted_server.h"
#include "sql/executor.h"

using namespace dbph;

namespace {

Result<rel::Schema> LoadSchemaCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<rel::Attribute> attributes;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string name, type, length;
    std::getline(fields, name, ',');
    std::getline(fields, type, ',');
    std::getline(fields, length, ',');
    rel::Attribute attr;
    attr.name = name;
    if (type == "string") attr.type = rel::ValueType::kString;
    else if (type == "int64") attr.type = rel::ValueType::kInt64;
    else if (type == "double") attr.type = rel::ValueType::kDouble;
    else if (type == "bool") attr.type = rel::ValueType::kBool;
    else return Status::InvalidArgument("unknown type '" + type + "'");
    attr.max_length = length.empty() ? 0 : std::stoul(length);
    attributes.push_back(std::move(attr));
  }
  return rel::Schema::Create(std::move(attributes));
}

Result<rel::Relation> DemoTable() {
  DBPH_ASSIGN_OR_RETURN(rel::Schema schema,
                        rel::Schema::Create({
                            {"name", rel::ValueType::kString, 10},
                            {"dept", rel::ValueType::kString, 5},
                            {"salary", rel::ValueType::kInt64, 10},
                        }));
  rel::Relation emp("Emp", schema);
  DBPH_RETURN_IF_ERROR(emp.Insert({rel::Value::Str("Montgomery"),
                                   rel::Value::Str("HR"),
                                   rel::Value::Int(7500)}));
  DBPH_RETURN_IF_ERROR(emp.Insert({rel::Value::Str("Smith"),
                                   rel::Value::Str("IT"),
                                   rel::Value::Int(4900)}));
  DBPH_RETURN_IF_ERROR(emp.Insert({rel::Value::Str("Jones"),
                                   rel::Value::Str("HR"),
                                   rel::Value::Int(4900)}));
  return emp;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(std::string("--connect=").size());
    } else if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else {
      positional.push_back(std::move(arg));
    }
  }

  Result<rel::Relation> table = DemoTable();
  if (positional.size() == 3) {
    auto schema = LoadSchemaCsv(positional[0]);
    if (!schema.ok()) {
      std::cerr << schema.status() << "\n";
      return 1;
    }
    table = rel::LoadCsvFile(positional[2], *schema, positional[1]);
  } else if (!positional.empty()) {
    std::cerr << "usage: sql_repl [--connect=host:port]"
              << " [schema.csv data.csv table_name]\n";
    return 1;
  }
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }

  crypto::Rng& rng = crypto::DefaultRng();
  server::UntrustedServer local_eve;
  const server::UntrustedServer* eve = nullptr;  // null in remote mode
  client::Transport transport;
  Bytes master_key;
  if (connect.empty()) {
    eve = &local_eve;
    transport = [&local_eve](const Bytes& request) {
      return local_eve.HandleRequest(request);
    };
    master_key = core::GenerateMasterKey(&rng);
  } else {
    size_t colon = connect.rfind(':');
    std::string host =
        colon == std::string::npos ? "" : connect.substr(0, colon);
    std::string port_text =
        colon == std::string::npos ? "" : connect.substr(colon + 1);
    char* end = nullptr;
    unsigned long port_value =
        port_text.empty() ? 0 : std::strtoul(port_text.c_str(), &end, 10);
    if (host.empty() || port_text.empty() || end == nullptr || *end != '\0' ||
        port_value == 0 || port_value > 65535) {
      std::cerr << "--connect wants host:port, got '" << connect << "'\n";
      return 1;
    }
    uint16_t port = static_cast<uint16_t>(port_value);
    auto tcp = net::TcpTransport::Connect(host, port);
    if (!tcp.ok()) {
      std::cerr << "cannot reach " << connect << ": " << tcp.status() << "\n";
      return 1;
    }
    if (Status ping = (*tcp)->Ping(); !ping.ok()) {
      std::cerr << "server at " << connect << " is not healthy: " << ping
                << "\n";
      return 1;
    }
    transport = (*tcp)->AsTransport();
    const char* key_env = std::getenv("DBPH_MASTER");
    master_key = ToBytes(key_env != nullptr ? key_env
                                            : "sql-repl-demo-master");
    std::cout << "Connected to dbph_serverd at " << connect << ".\n";
  }

  client::Client alex(master_key, transport, &rng);
  bool need_outsource = true;
  if (!connect.empty()) {
    // Reattach probe: an empty append succeeds iff the daemon already
    // stores the relation — a few bytes on the wire, instead of
    // re-encrypting and uploading the whole table just to learn
    // "AlreadyExists".
    if (Status s = alex.Adopt(table->name(), table->schema()); !s.ok()) {
      std::cerr << "key derivation failed: " << s << "\n";
      return 1;
    }
    if (alex.Insert(table->name(), {}).ok()) {
      std::cout << "Relation '" << table->name()
                << "' already on the server; querying the stored copy.\n";
      need_outsource = false;
    }
  }
  if (need_outsource) {
    if (Status s = alex.Outsource(*table); !s.ok()) {
      std::cerr << "outsourcing failed: " << s << "\n";
      return 1;
    }
  }

  std::cout << (need_outsource ? "Outsourced table '" : "Attached to table '")
            << table->name() << "' (" << table->size()
            << " tuples) on the untrusted server.\n"
            << "Type exact-select SQL, e.g.:\n"
            << "  SELECT * FROM " << table->name() << " WHERE "
            << table->schema().attribute(0).name << " = ...;\n"
            << "EXPLAIN SELECT ... shows the server's plan (index vs scan)\n"
            << "without executing. VERIFY ENFORCE|WARN|OFF toggles Merkle\n"
            << "result verification. STATS dumps the server's live metrics;\n"
            << "LEAKAGE dumps its access-pattern self-audit (Eve's view).\n"
            << "Ctrl-D or \\q to quit, \\eve to dump Eve's transcript.\n\n";

  // VERIFY <mode>: the REPL's switch for client-side result integrity.
  // Turning it on anchors to the server's *current* state (trust on
  // first use — the REPL has no out-of-band root); from then on every
  // response is checked against the local Merkle mirror.
  auto handle_verify = [&alex, &table](const std::string& input) {
    std::string word;
    std::istringstream tokens(input);
    tokens >> word >> word;  // skip "VERIFY", read the mode
    for (char& c : word) c = static_cast<char>(std::toupper(c));
    client::VerifyMode mode;
    if (word == "OFF") mode = client::VerifyMode::kOff;
    else if (word == "WARN") mode = client::VerifyMode::kWarn;
    else if (word == "ENFORCE" || word == "ON") {
      mode = client::VerifyMode::kEnforce;
    } else {
      std::cout << "usage: VERIFY OFF | WARN | ENFORCE\n";
      return;
    }
    if (mode != client::VerifyMode::kOff &&
        !alex.IntegrityAnchor(table->name()).ok()) {
      // No mirror yet: fetch everything under the whole-relation
      // completeness proof and anchor. TOFU — the current state is
      // trusted; later tampering (including rollback) is detected.
      if (Status synced =
              alex.SyncIntegrity(table->name(), /*require_signature=*/false);
          !synced.ok()) {
        std::cout << "cannot anchor integrity state: " << synced << "\n"
                  << "(is the server running --integrity=off?)\n";
        return;
      }
      auto anchor = alex.IntegrityAnchor(table->name());
      std::cout << "anchored to server state (trust on first use): epoch "
                << anchor->first << ", root "
                << HexEncode(crypto::MerkleTree::ToBytes(anchor->second))
                       .substr(0, 16)
                << "...\n";
    }
    alex.set_verify_mode(mode);
    std::cout << "verify mode: " << word << "\n";
  };

  std::string line;
  while (std::cout << "dbph> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line.rfind("VERIFY", 0) == 0 || line.rfind("verify", 0) == 0) {
      handle_verify(line);
      continue;
    }
    if (line == "STATS" || line == "stats") {
      // One kStats round trip: the server's live registry — per-op
      // counters, stage latencies, net/WAL/index gauges — rendered as a
      // table. Works in-process and over --connect alike.
      auto stats = alex.Stats();
      if (!stats.ok()) {
        std::cout << "error: " << stats.status() << "\n";
        continue;
      }
      std::cout << stats->RenderText();
      auto verify = alex.verify_latency().Snapshot();
      if (verify.count > 0) {
        std::cout << "client proof verification: " << verify.count
                  << " responses, p50 " << verify.P50() << "us, p99 "
                  << verify.P99() << "us\n";
      }
      continue;
    }
    if (line == "LEAKAGE" || line == "leakage") {
      // One kLeakageReport round trip: the server's own estimate of what
      // its query stream has leaked — tag-frequency spectra (salted
      // digests), entropy, per-path result sizes, and the live
      // frequency-attack advantage.
      auto report = alex.LeakageReport();
      if (!report.ok()) {
        std::cout << "error: " << report.status() << "\n";
        continue;
      }
      std::cout << report->RenderText();
      continue;
    }
    if (line == "\\eve") {
      if (eve == nullptr) {
        std::cout << "Eve is remote; her transcript lives in the daemon "
                     "process (what this wire carried is exactly what she "
                     "logged).\n";
        continue;
      }
      const auto& queries = eve->observations().queries();
      std::cout << "Eve has observed " << queries.size() << " queries:\n";
      for (size_t i = 0; i < queries.size(); ++i) {
        std::cout << "  [" << i << "] trapdoor "
                  << HexEncode(queries[i].trapdoor_bytes).substr(0, 24)
                  << "... -> " << queries[i].result_size() << " matches\n";
      }
      continue;
    }
    if (sql::IsExplainStatement(line)) {
      auto plan = sql::ExplainSql(&alex, line);
      if (!plan.ok()) {
        std::cout << "error: " << plan.status() << "\n";
        continue;
      }
      std::cout << *plan;
      continue;
    }
    auto result = sql::ExecuteSql(&alex, line);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      continue;
    }
    std::cout << sql::FormatResult(*result);
  }
  return 0;
}
