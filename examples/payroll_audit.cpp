// Payroll audit: why "weakly encrypted" indexes fail the IND game.
//
// Reproduces the paper's Section 1 attack live: the auditor (Eve) submits
// the two salary tables from the paper, receives an encryption of one of
// them under a fresh key, and tells them apart from the deterministic
// salary labels of the bucketization / hash-index baselines — while the
// same statistic against the database PH is a coin flip.

#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "dbph/scheme.h"
#include "games/ind_game.h"
#include "games/salary_attack.h"

using namespace dbph;
using games::TrialEncryptor;

int main() {
  std::cout << "Eve's chosen tables (paper Section 1):\n"
               "  table 1: (171, 4900), (481, 1200)  - distinct salaries\n"
               "  table 2: (171, 4900), (481, 4900)  - equal salaries\n\n";

  const size_t kTrials = 500;

  // --- Hacigumus bucketization ---
  baseline::BucketOptions bucket_options;
  baseline::BucketAttributeConfig salary;
  salary.kind = baseline::PartitionKind::kEquiWidth;
  salary.lo = 0;
  salary.hi = 10000;
  salary.buckets = 20;
  bucket_options.attribute_configs["salary"] = salary;

  games::BucketSalaryAdversary bucket_adversary;
  TrialEncryptor<baseline::BucketRelation> bucket_encrypt =
      [&](const rel::Relation& table, size_t trial,
          crypto::Rng* rng) -> Result<baseline::BucketRelation> {
    DBPH_ASSIGN_OR_RETURN(
        baseline::BucketScheme scheme,
        baseline::BucketScheme::Create(
            games::SalarySchema(),
            ToBytes("payroll key " + std::to_string(trial)),
            bucket_options));
    return scheme.EncryptRelation(table, rng);
  };
  auto bucket = games::RunIndGame<baseline::BucketRelation>(
      bucket_encrypt, &bucket_adversary, kTrials, 1);

  // --- Damiani hash index ---
  games::DamianiSalaryAdversary damiani_adversary;
  TrialEncryptor<baseline::HashedRelation> damiani_encrypt =
      [](const rel::Relation& table, size_t trial,
         crypto::Rng* rng) -> Result<baseline::HashedRelation> {
    DBPH_ASSIGN_OR_RETURN(
        baseline::DamianiScheme scheme,
        baseline::DamianiScheme::Create(
            games::SalarySchema(),
            ToBytes("payroll key " + std::to_string(trial))));
    return scheme.EncryptRelation(table, rng);
  };
  auto damiani = games::RunIndGame<baseline::HashedRelation>(
      damiani_encrypt, &damiani_adversary, kTrials, 2);

  // --- Our database PH ---
  games::DbphSalaryAdversary dbph_adversary;
  TrialEncryptor<core::EncryptedRelation> dbph_encrypt =
      [](const rel::Relation& table, size_t trial,
         crypto::Rng* rng) -> Result<core::EncryptedRelation> {
    DBPH_ASSIGN_OR_RETURN(
        core::DatabasePh ph,
        core::DatabasePh::Create(
            games::SalarySchema(),
            ToBytes("payroll key " + std::to_string(trial))));
    return ph.EncryptRelation(table, rng);
  };
  auto dbph = games::RunIndGame<core::EncryptedRelation>(
      dbph_encrypt, &dbph_adversary, kTrials, 3);

  if (!bucket.ok() || !damiani.ok() || !dbph.ok()) {
    std::cerr << "game failure\n";
    return 1;
  }

  std::printf("%-28s %-30s %9s\n", "scheme", "success (95% Wilson CI)",
              "advantage");
  std::printf("%-28s %-30s %9.3f\n", "bucketization (Hacigumus)",
              bucket->ToString().c_str(), bucket->Advantage());
  std::printf("%-28s %-30s %9.3f\n", "hash index (Damiani)",
              damiani->ToString().c_str(), damiani->Advantage());
  std::printf("%-28s %-30s %9.3f\n", "database PH (this library)",
              dbph->ToString().c_str(), dbph->Advantage());

  std::cout << "\nDeterministic attribute-level labels lose the game with\n"
               "probability ~1; the SWP-based construction leaves Eve at\n"
               "a coin flip.\n";
  return 0;
}
