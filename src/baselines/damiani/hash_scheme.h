#ifndef DBPH_BASELINES_DAMIANI_HASH_SCHEME_H_
#define DBPH_BASELINES_DAMIANI_HASH_SCHEME_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/random.h"
#include "relation/relation.h"

namespace dbph {
namespace baseline {

/// \brief An outsourced tuple under the Damiani et al. (CCS'03) scheme:
/// encrypted payload plus one deterministic keyed-hash index label per
/// attribute value.
struct HashedTuple {
  Bytes nonce;
  Bytes payload;
  std::vector<Bytes> labels;
};

struct HashedRelation {
  std::string name;
  std::vector<HashedTuple> tuples;

  size_t size() const { return tuples.size(); }
  size_t CiphertextBytes() const;
};

struct DamianiOptions {
  /// Label width in bytes. Small widths create hash collisions, which
  /// trade index precision for a coarser (slightly less leaky) index —
  /// the "balancing confidentiality and efficiency" knob of the original
  /// paper.
  size_t label_length = 2;
};

/// \brief Damiani et al.'s direct hash-index scheme, reimplemented from
/// the published construction. Unlike bucketization there are no
/// intervals: the label is a keyed hash of the exact value, so equal
/// values collide by construction and unequal values collide with
/// probability ~2^(-8 * label_length).
///
/// The paper notes "similar attacks work on the scheme of Damiani et
/// al.": the label equality pattern within a column is plaintext-
/// correlated, which the E1 experiment demonstrates.
class DamianiScheme {
 public:
  static Result<DamianiScheme> Create(const rel::Schema& schema,
                                      const Bytes& master_key,
                                      const DamianiOptions& options = {});

  const rel::Schema& schema() const { return schema_; }

  Result<HashedTuple> EncryptTuple(const rel::Tuple& tuple,
                                   crypto::Rng* rng) const;
  Result<HashedRelation> EncryptRelation(const rel::Relation& relation,
                                         crypto::Rng* rng) const;
  Result<rel::Tuple> DecryptTuple(const HashedTuple& tuple) const;

  /// Eq: the index label for sigma_{attribute = value}.
  Result<Bytes> QueryLabel(const std::string& attribute,
                           const rel::Value& value) const;

  /// Client-side post-filter (collisions yield false positives).
  Result<rel::Relation> DecryptAndFilter(
      const std::vector<HashedTuple>& tuples, const std::string& attribute,
      const rel::Value& value) const;

 private:
  DamianiScheme(rel::Schema schema, DamianiOptions options, Bytes label_key,
                Bytes payload_key)
      : schema_(std::move(schema)),
        options_(options),
        label_key_(std::move(label_key)),
        payload_key_(std::move(payload_key)) {}

  Bytes LabelOf(size_t attr, const rel::Value& value) const;

  rel::Schema schema_;
  DamianiOptions options_;
  Bytes label_key_;
  Bytes payload_key_;
};

}  // namespace baseline
}  // namespace dbph

#endif  // DBPH_BASELINES_DAMIANI_HASH_SCHEME_H_
