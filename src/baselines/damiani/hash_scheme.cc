#include "baselines/damiani/hash_scheme.h"

#include "common/macros.h"
#include "crypto/ctr.h"
#include "crypto/hkdf.h"
#include "crypto/prf.h"

namespace dbph {
namespace baseline {

size_t HashedRelation::CiphertextBytes() const {
  size_t total = 0;
  for (const auto& t : tuples) {
    total += t.nonce.size() + t.payload.size();
    for (const auto& label : t.labels) total += label.size();
  }
  return total;
}

Result<DamianiScheme> DamianiScheme::Create(const rel::Schema& schema,
                                            const Bytes& master_key,
                                            const DamianiOptions& options) {
  if (master_key.empty()) {
    return Status::InvalidArgument("empty master key");
  }
  if (options.label_length < 1) {
    return Status::InvalidArgument("label_length must be >= 1");
  }
  return DamianiScheme(schema, options,
                       crypto::DeriveSubkey(master_key, "damiani/labels"),
                       crypto::DeriveSubkey(master_key, "damiani/payload",
                                            16));
}

Bytes DamianiScheme::LabelOf(size_t attr, const rel::Value& value) const {
  crypto::Prf prf(label_key_);
  Bytes input;
  AppendUint32(&input, static_cast<uint32_t>(attr));
  Bytes encoded = ToBytes(value.EncodeForWord());
  AppendLengthPrefixed(&input, encoded);
  return prf.Eval(input, options_.label_length);
}

Result<HashedTuple> DamianiScheme::EncryptTuple(const rel::Tuple& tuple,
                                                crypto::Rng* rng) const {
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(tuple.values()));
  HashedTuple out;
  out.nonce = rng->NextBytes(12);
  Bytes serialized;
  tuple.AppendTo(&serialized);
  DBPH_ASSIGN_OR_RETURN(crypto::AesCtr cipher,
                        crypto::AesCtr::Create(payload_key_, out.nonce));
  out.payload = cipher.Process(serialized);
  out.labels.reserve(tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    out.labels.push_back(LabelOf(i, tuple.at(i)));
  }
  return out;
}

Result<HashedRelation> DamianiScheme::EncryptRelation(
    const rel::Relation& relation, crypto::Rng* rng) const {
  if (!(relation.schema() == schema_)) {
    return Status::InvalidArgument("relation schema mismatch");
  }
  HashedRelation out;
  out.name = relation.name();
  out.tuples.reserve(relation.size());
  for (const auto& tuple : relation.tuples()) {
    DBPH_ASSIGN_OR_RETURN(HashedTuple enc, EncryptTuple(tuple, rng));
    out.tuples.push_back(std::move(enc));
  }
  return out;
}

Result<rel::Tuple> DamianiScheme::DecryptTuple(
    const HashedTuple& tuple) const {
  DBPH_ASSIGN_OR_RETURN(crypto::AesCtr cipher,
                        crypto::AesCtr::Create(payload_key_, tuple.nonce));
  Bytes serialized = cipher.Process(tuple.payload);
  ByteReader reader(serialized);
  DBPH_ASSIGN_OR_RETURN(rel::Tuple out, rel::Tuple::ReadFrom(&reader));
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(out.values()));
  return out;
}

Result<Bytes> DamianiScheme::QueryLabel(const std::string& attribute,
                                        const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(size_t attr, schema_.IndexOf(attribute));
  if (value.type() != schema_.attribute(attr).type) {
    return Status::InvalidArgument("query value type mismatch");
  }
  return LabelOf(attr, value);
}

Result<rel::Relation> DamianiScheme::DecryptAndFilter(
    const std::vector<HashedTuple>& tuples, const std::string& attribute,
    const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(rel::ExactMatch predicate,
                        rel::MakeExactMatch(schema_, attribute, value));
  rel::Relation out("result", schema_);
  for (const auto& enc : tuples) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, DecryptTuple(enc));
    if (predicate.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
    }
  }
  return out;
}

}  // namespace baseline
}  // namespace dbph
