#include "baselines/plain/plain_engine.h"

#include "common/macros.h"

namespace dbph {
namespace baseline {

Bytes PlainEngine::IndexKey(const rel::Value& value) {
  return ToBytes(value.EncodeForWord());
}

Result<PlainEngine> PlainEngine::Create(const rel::Relation& relation) {
  PlainEngine engine(relation.name(), relation.schema());
  engine.indexes_.reserve(relation.schema().num_attributes());
  for (size_t i = 0; i < relation.schema().num_attributes(); ++i) {
    engine.indexes_.emplace_back(/*max_keys=*/64);
  }
  for (const auto& tuple : relation.tuples()) {
    DBPH_RETURN_IF_ERROR(engine.Insert(tuple));
  }
  return engine;
}

Status PlainEngine::Insert(const rel::Tuple& tuple) {
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(tuple.values()));
  Bytes serialized;
  tuple.AppendTo(&serialized);
  storage::RecordId rid = heap_.Insert(serialized);
  for (size_t i = 0; i < tuple.size(); ++i) {
    indexes_[i].Insert(IndexKey(tuple.at(i)), rid.Pack());
  }
  return Status::OK();
}

Result<rel::Tuple> PlainEngine::LoadTuple(uint64_t packed_rid) const {
  DBPH_ASSIGN_OR_RETURN(Bytes serialized,
                        heap_.Get(storage::RecordId::Unpack(packed_rid)));
  ByteReader reader(serialized);
  return rel::Tuple::ReadFrom(&reader);
}

Result<rel::Relation> PlainEngine::Select(const std::string& attribute,
                                          const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(size_t attr, schema_.IndexOf(attribute));
  if (value.type() != schema_.attribute(attr).type) {
    return Status::InvalidArgument("value type mismatch");
  }
  rel::Relation out("result", schema_);
  for (uint64_t rid : indexes_[attr].Lookup(IndexKey(value))) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, LoadTuple(rid));
    DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

Result<rel::Relation> PlainEngine::SelectScan(const std::string& attribute,
                                              const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(rel::ExactMatch predicate,
                        rel::MakeExactMatch(schema_, attribute, value));
  rel::Relation out("result", schema_);
  for (const auto& rid : heap_.AllRecords()) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, LoadTuple(rid.Pack()));
    if (predicate.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
    }
  }
  return out;
}

Result<size_t> PlainEngine::DeleteWhere(const std::string& attribute,
                                        const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(size_t attr, schema_.IndexOf(attribute));
  if (value.type() != schema_.attribute(attr).type) {
    return Status::InvalidArgument("value type mismatch");
  }
  std::vector<uint64_t> rids = indexes_[attr].Lookup(IndexKey(value));
  for (uint64_t packed : rids) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, LoadTuple(packed));
    // Remove from every index, then from the heap.
    for (size_t i = 0; i < tuple.size(); ++i) {
      indexes_[i].Delete(IndexKey(tuple.at(i)), packed);
    }
    DBPH_RETURN_IF_ERROR(heap_.Delete(storage::RecordId::Unpack(packed)));
  }
  return rids.size();
}

}  // namespace baseline
}  // namespace dbph
