#ifndef DBPH_BASELINES_PLAIN_PLAIN_ENGINE_H_
#define DBPH_BASELINES_PLAIN_PLAIN_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"
#include "storage/btree.h"
#include "storage/heapfile.h"

namespace dbph {
namespace baseline {

/// \brief A plaintext single-table engine with B+tree attribute indexes —
/// the no-privacy performance comparator for experiment E6.
///
/// Tuples live serialized in a heap file; every attribute gets a B+tree
/// from encoded value to record id, so exact selects are index lookups
/// instead of scans.
class PlainEngine {
 public:
  static Result<PlainEngine> Create(const rel::Relation& relation);

  const rel::Schema& schema() const { return schema_; }
  size_t size() const { return heap_.num_records(); }

  /// Index-backed exact select.
  Result<rel::Relation> Select(const std::string& attribute,
                               const rel::Value& value) const;

  /// Full-scan exact select (for comparison and as correctness oracle).
  Result<rel::Relation> SelectScan(const std::string& attribute,
                                   const rel::Value& value) const;

  /// Inserts a tuple, maintaining all indexes.
  Status Insert(const rel::Tuple& tuple);

  /// Deletes every tuple matching sigma_{attribute=value}; returns the
  /// number removed.
  Result<size_t> DeleteWhere(const std::string& attribute,
                             const rel::Value& value);

 private:
  PlainEngine(std::string name, rel::Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  static Bytes IndexKey(const rel::Value& value);
  Result<rel::Tuple> LoadTuple(uint64_t packed_rid) const;

  std::string name_;
  rel::Schema schema_;
  storage::HeapFile heap_;
  std::vector<storage::BPlusTree> indexes_;  // one per attribute
};

}  // namespace baseline
}  // namespace dbph

#endif  // DBPH_BASELINES_PLAIN_PLAIN_ENGINE_H_
