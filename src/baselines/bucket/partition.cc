#include "baselines/bucket/partition.h"

#include <algorithm>

namespace dbph {
namespace baseline {

Result<Partitioner> Partitioner::EquiWidth(int64_t lo, int64_t hi,
                                           size_t buckets) {
  if (buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  if (lo >= hi) return Status::InvalidArgument("lo must be < hi");
  Partitioner p(PartitionKind::kEquiWidth, buckets);
  p.lo_ = lo;
  p.hi_ = hi;
  return p;
}

Result<Partitioner> Partitioner::EquiDepth(std::vector<int64_t> sample,
                                           size_t buckets) {
  if (buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  if (sample.size() < buckets) {
    return Status::InvalidArgument("sample smaller than bucket count");
  }
  std::sort(sample.begin(), sample.end());
  Partitioner p(PartitionKind::kEquiDepth, buckets);
  // boundaries_[i] = inclusive upper bound of bucket i (last one implied).
  for (size_t i = 1; i < buckets; ++i) {
    size_t idx = i * sample.size() / buckets;
    p.boundaries_.push_back(sample[idx]);
  }
  return p;
}

Result<Partitioner> Partitioner::Hash(size_t buckets) {
  if (buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  return Partitioner(PartitionKind::kHash, buckets);
}

size_t Partitioner::BucketOf(const rel::Value& value) const {
  switch (kind_) {
    case PartitionKind::kEquiWidth: {
      int64_t v = value.AsInt();
      if (v <= lo_) return 0;
      if (v >= hi_) return num_buckets_ - 1;
      // Unsigned arithmetic avoids overflow for wide domains.
      uint64_t span = static_cast<uint64_t>(hi_ - lo_);
      uint64_t off = static_cast<uint64_t>(v - lo_);
      // Use 128-bit product to keep precision.
      return static_cast<size_t>(
          static_cast<unsigned __int128>(off) * num_buckets_ / span);
    }
    case PartitionKind::kEquiDepth: {
      int64_t v = value.AsInt();
      size_t idx = static_cast<size_t>(
          std::upper_bound(boundaries_.begin(), boundaries_.end(), v) -
          boundaries_.begin());
      return std::min(idx, num_buckets_ - 1);
    }
    case PartitionKind::kHash:
      return static_cast<size_t>(value.Hash() % num_buckets_);
  }
  return 0;
}

Result<std::vector<size_t>> Partitioner::BucketsForRange(int64_t lo,
                                                         int64_t hi) const {
  if (kind_ == PartitionKind::kHash) {
    return Status::FailedPrecondition(
        "hash partitioning cannot answer range queries");
  }
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  size_t first = BucketOf(rel::Value::Int(lo));
  size_t last = BucketOf(rel::Value::Int(hi));
  std::vector<size_t> out;
  for (size_t b = first; b <= last; ++b) out.push_back(b);
  return out;
}

}  // namespace baseline
}  // namespace dbph
