#ifndef DBPH_BASELINES_BUCKET_BUCKET_SCHEME_H_
#define DBPH_BASELINES_BUCKET_BUCKET_SCHEME_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/bucket/partition.h"
#include "common/result.h"
#include "crypto/random.h"
#include "relation/relation.h"

namespace dbph {
namespace baseline {

/// \brief One outsourced tuple under the bucketization scheme: a strongly
/// encrypted payload (AES-CTR of the serialized tuple) plus one *weak*
/// deterministic label per attribute — the encrypted interval ids of
/// Hacıgümüş et al.
///
/// Two plaintexts in the same interval share a label even when unequal;
/// two encryptions of the same value always share a label. The latter is
/// exactly what the paper's Section 1 attack exploits.
struct BucketTuple {
  Bytes nonce;
  Bytes payload;
  std::vector<Bytes> labels;

  void AppendTo(Bytes* out) const;
  static Result<BucketTuple> ReadFrom(ByteReader* reader);
};

/// \brief A bucketized encrypted relation.
struct BucketRelation {
  std::string name;
  std::vector<BucketTuple> tuples;

  size_t size() const { return tuples.size(); }
  size_t CiphertextBytes() const;
};

/// \brief Per-attribute bucketization config.
struct BucketAttributeConfig {
  PartitionKind kind = PartitionKind::kHash;
  size_t buckets = 16;
  int64_t lo = 0;          ///< equi-width only
  int64_t hi = 1000000;    ///< equi-width only
};

struct BucketOptions {
  /// Per-attribute overrides by name; others use `default_config`.
  std::map<std::string, BucketAttributeConfig> attribute_configs;
  BucketAttributeConfig default_config;
  size_t label_length = 8;  ///< bytes per weak label
};

/// \brief The Hacıgümüş et al. (SIGMOD'02) database encryption scheme,
/// reimplemented from the published algorithm as the paper's comparison
/// target.
///
/// E: tuple -> (AES-CTR payload, per-attribute deterministic bucket
/// labels). The "secret permutation" of interval ids is realized as a
/// keyed PRF truncated to `label_length` bytes (deterministic, secret,
/// collision-free in practice).
/// Eq: sigma_{a=v} -> the label of v's bucket.
/// Server: equality probe on labels (see BucketServer), returning a
/// superset. D + filter on the client removes same-bucket non-matches.
class BucketScheme {
 public:
  static Result<BucketScheme> Create(const rel::Schema& schema,
                                     const Bytes& master_key,
                                     const BucketOptions& options = {});

  /// Equi-depth partitioners need the data distribution; call this with a
  /// representative sample (or the full column) before encrypting.
  Status FitEquiDepth(const rel::Relation& sample);

  const rel::Schema& schema() const { return schema_; }

  Result<BucketTuple> EncryptTuple(const rel::Tuple& tuple,
                                   crypto::Rng* rng) const;
  Result<BucketRelation> EncryptRelation(const rel::Relation& relation,
                                         crypto::Rng* rng) const;
  Result<rel::Tuple> DecryptTuple(const BucketTuple& tuple) const;

  /// Eq: the weak label for sigma_{attribute = value}.
  Result<Bytes> QueryLabel(const std::string& attribute,
                           const rel::Value& value) const;

  /// Range extension: labels of all buckets overlapping [lo, hi].
  Result<std::vector<Bytes>> QueryRangeLabels(const std::string& attribute,
                                              int64_t lo, int64_t hi) const;

  /// Client-side post-filter after decryption.
  Result<rel::Relation> DecryptAndFilter(
      const std::vector<BucketTuple>& tuples, const std::string& attribute,
      const rel::Value& value) const;

  /// The deterministic label of (attribute index, bucket index); exposed
  /// for the attack code, which never needs the key — it only compares
  /// labels for equality, as Eve does.
  Bytes LabelOf(size_t attr, size_t bucket) const;

 private:
  BucketScheme(rel::Schema schema, BucketOptions options, Bytes label_key,
               Bytes payload_key, std::vector<Partitioner> partitioners)
      : schema_(std::move(schema)),
        options_(std::move(options)),
        label_key_(std::move(label_key)),
        payload_key_(std::move(payload_key)),
        partitioners_(std::move(partitioners)) {}

  const BucketAttributeConfig& ConfigFor(const std::string& name) const;

  rel::Schema schema_;
  BucketOptions options_;
  Bytes label_key_;
  Bytes payload_key_;
  std::vector<Partitioner> partitioners_;
};

}  // namespace baseline
}  // namespace dbph

#endif  // DBPH_BASELINES_BUCKET_BUCKET_SCHEME_H_
