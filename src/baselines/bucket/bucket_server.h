#ifndef DBPH_BASELINES_BUCKET_BUCKET_SERVER_H_
#define DBPH_BASELINES_BUCKET_BUCKET_SERVER_H_

#include <vector>

#include "baselines/bucket/bucket_scheme.h"
#include "baselines/damiani/hash_scheme.h"
#include "common/result.h"
#include "storage/hash_index.h"

namespace dbph {
namespace baseline {

/// \brief The service-provider side of the bucketization scheme: stores
/// encrypted tuples and serves equality probes on the weak labels via a
/// hash index per attribute (the reason the scheme is fast — and the
/// reason it leaks, see experiment E1).
class BucketServer {
 public:
  /// Takes ownership of the encrypted relation and indexes every
  /// attribute's labels.
  explicit BucketServer(BucketRelation relation);

  size_t size() const { return relation_.tuples.size(); }

  /// All tuples whose `attribute`-label equals `label` — a superset of
  /// the true result; the client decrypts and filters.
  Result<std::vector<BucketTuple>> SelectByLabel(size_t attribute,
                                                 const Bytes& label) const;

  /// Range extension: union over several labels (deduplicated).
  Result<std::vector<BucketTuple>> SelectByLabels(
      size_t attribute, const std::vector<Bytes>& labels) const;

 private:
  BucketRelation relation_;
  std::vector<storage::HashIndex> indexes_;  // one per attribute
};

/// \brief Same shape for the Damiani scheme (exact-value hash labels).
class DamianiServer {
 public:
  explicit DamianiServer(HashedRelation relation);

  size_t size() const { return relation_.tuples.size(); }

  Result<std::vector<HashedTuple>> SelectByLabel(size_t attribute,
                                                 const Bytes& label) const;

 private:
  HashedRelation relation_;
  std::vector<storage::HashIndex> indexes_;
};

}  // namespace baseline
}  // namespace dbph

#endif  // DBPH_BASELINES_BUCKET_BUCKET_SERVER_H_
