#include "baselines/bucket/bucket_server.h"

#include <set>

namespace dbph {
namespace baseline {

BucketServer::BucketServer(BucketRelation relation)
    : relation_(std::move(relation)) {
  if (relation_.tuples.empty()) return;
  indexes_.resize(relation_.tuples[0].labels.size());
  for (size_t i = 0; i < relation_.tuples.size(); ++i) {
    const auto& labels = relation_.tuples[i].labels;
    for (size_t attr = 0; attr < labels.size() && attr < indexes_.size();
         ++attr) {
      indexes_[attr].Insert(labels[attr], i);
    }
  }
}

Result<std::vector<BucketTuple>> BucketServer::SelectByLabel(
    size_t attribute, const Bytes& label) const {
  if (attribute >= indexes_.size()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<BucketTuple> out;
  for (uint64_t i : indexes_[attribute].Lookup(label)) {
    out.push_back(relation_.tuples[static_cast<size_t>(i)]);
  }
  return out;
}

Result<std::vector<BucketTuple>> BucketServer::SelectByLabels(
    size_t attribute, const std::vector<Bytes>& labels) const {
  if (attribute >= indexes_.size()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::set<uint64_t> hits;
  for (const Bytes& label : labels) {
    for (uint64_t i : indexes_[attribute].Lookup(label)) hits.insert(i);
  }
  std::vector<BucketTuple> out;
  out.reserve(hits.size());
  for (uint64_t i : hits) {
    out.push_back(relation_.tuples[static_cast<size_t>(i)]);
  }
  return out;
}

DamianiServer::DamianiServer(HashedRelation relation)
    : relation_(std::move(relation)) {
  if (relation_.tuples.empty()) return;
  indexes_.resize(relation_.tuples[0].labels.size());
  for (size_t i = 0; i < relation_.tuples.size(); ++i) {
    const auto& labels = relation_.tuples[i].labels;
    for (size_t attr = 0; attr < labels.size() && attr < indexes_.size();
         ++attr) {
      indexes_[attr].Insert(labels[attr], i);
    }
  }
}

Result<std::vector<HashedTuple>> DamianiServer::SelectByLabel(
    size_t attribute, const Bytes& label) const {
  if (attribute >= indexes_.size()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<HashedTuple> out;
  for (uint64_t i : indexes_[attribute].Lookup(label)) {
    out.push_back(relation_.tuples[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace baseline
}  // namespace dbph
