#include "baselines/bucket/bucket_scheme.h"

#include "common/macros.h"
#include "crypto/ctr.h"
#include "crypto/hkdf.h"
#include "crypto/prf.h"

namespace dbph {
namespace baseline {

void BucketTuple::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, nonce);
  AppendLengthPrefixed(out, payload);
  AppendUint32(out, static_cast<uint32_t>(labels.size()));
  for (const Bytes& label : labels) AppendLengthPrefixed(out, label);
}

Result<BucketTuple> BucketTuple::ReadFrom(ByteReader* reader) {
  BucketTuple t;
  DBPH_ASSIGN_OR_RETURN(t.nonce, reader->ReadLengthPrefixed());
  DBPH_ASSIGN_OR_RETURN(t.payload, reader->ReadLengthPrefixed());
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes label, reader->ReadLengthPrefixed());
    t.labels.push_back(std::move(label));
  }
  return t;
}

size_t BucketRelation::CiphertextBytes() const {
  size_t total = 0;
  for (const auto& t : tuples) {
    total += t.nonce.size() + t.payload.size();
    for (const auto& label : t.labels) total += label.size();
  }
  return total;
}

const BucketAttributeConfig& BucketScheme::ConfigFor(
    const std::string& name) const {
  auto it = options_.attribute_configs.find(name);
  return it == options_.attribute_configs.end() ? options_.default_config
                                                : it->second;
}

Result<BucketScheme> BucketScheme::Create(const rel::Schema& schema,
                                          const Bytes& master_key,
                                          const BucketOptions& options) {
  if (master_key.empty()) {
    return Status::InvalidArgument("empty master key");
  }
  if (options.label_length < 2) {
    return Status::InvalidArgument("label_length must be >= 2");
  }
  Bytes label_key = crypto::DeriveSubkey(master_key, "bucket/labels");
  Bytes payload_key =
      crypto::DeriveSubkey(master_key, "bucket/payload", 16);

  std::vector<Partitioner> partitioners;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const auto& attr = schema.attribute(i);
    BucketAttributeConfig config = options.attribute_configs.count(attr.name)
                                       ? options.attribute_configs.at(attr.name)
                                       : options.default_config;
    if (attr.type != rel::ValueType::kInt64 &&
        config.kind != PartitionKind::kHash) {
      // Only integers have ordered partitions; others fall back to hash.
      config.kind = PartitionKind::kHash;
    }
    switch (config.kind) {
      case PartitionKind::kEquiWidth: {
        DBPH_ASSIGN_OR_RETURN(
            Partitioner p,
            Partitioner::EquiWidth(config.lo, config.hi, config.buckets));
        partitioners.push_back(std::move(p));
        break;
      }
      case PartitionKind::kEquiDepth: {
        // Placeholder until FitEquiDepth supplies the sample: a single
        // bucket (degenerate but well-defined).
        DBPH_ASSIGN_OR_RETURN(Partitioner p, Partitioner::Hash(1));
        partitioners.push_back(std::move(p));
        break;
      }
      case PartitionKind::kHash: {
        DBPH_ASSIGN_OR_RETURN(Partitioner p,
                              Partitioner::Hash(config.buckets));
        partitioners.push_back(std::move(p));
        break;
      }
    }
  }
  return BucketScheme(schema, options, std::move(label_key),
                      std::move(payload_key), std::move(partitioners));
}

Status BucketScheme::FitEquiDepth(const rel::Relation& sample) {
  if (!(sample.schema() == schema_)) {
    return Status::InvalidArgument("sample schema mismatch");
  }
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    const auto& attr = schema_.attribute(i);
    const auto& config = ConfigFor(attr.name);
    if (config.kind != PartitionKind::kEquiDepth ||
        attr.type != rel::ValueType::kInt64) {
      continue;
    }
    std::vector<int64_t> values;
    values.reserve(sample.size());
    for (const auto& tuple : sample.tuples()) {
      values.push_back(tuple.at(i).AsInt());
    }
    DBPH_ASSIGN_OR_RETURN(Partitioner p,
                          Partitioner::EquiDepth(values, config.buckets));
    partitioners_[i] = std::move(p);
  }
  return Status::OK();
}

Bytes BucketScheme::LabelOf(size_t attr, size_t bucket) const {
  crypto::Prf prf(label_key_);
  Bytes input;
  AppendUint32(&input, static_cast<uint32_t>(attr));
  AppendUint64(&input, static_cast<uint64_t>(bucket));
  return prf.Eval(input, options_.label_length);
}

Result<BucketTuple> BucketScheme::EncryptTuple(const rel::Tuple& tuple,
                                               crypto::Rng* rng) const {
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(tuple.values()));
  BucketTuple out;
  out.nonce = rng->NextBytes(12);
  Bytes serialized;
  tuple.AppendTo(&serialized);
  DBPH_ASSIGN_OR_RETURN(crypto::AesCtr cipher,
                        crypto::AesCtr::Create(payload_key_, out.nonce));
  out.payload = cipher.Process(serialized);
  out.labels.reserve(tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    out.labels.push_back(LabelOf(i, partitioners_[i].BucketOf(tuple.at(i))));
  }
  return out;
}

Result<BucketRelation> BucketScheme::EncryptRelation(
    const rel::Relation& relation, crypto::Rng* rng) const {
  if (!(relation.schema() == schema_)) {
    return Status::InvalidArgument("relation schema mismatch");
  }
  BucketRelation out;
  out.name = relation.name();
  out.tuples.reserve(relation.size());
  for (const auto& tuple : relation.tuples()) {
    DBPH_ASSIGN_OR_RETURN(BucketTuple enc, EncryptTuple(tuple, rng));
    out.tuples.push_back(std::move(enc));
  }
  return out;
}

Result<rel::Tuple> BucketScheme::DecryptTuple(const BucketTuple& tuple) const {
  DBPH_ASSIGN_OR_RETURN(crypto::AesCtr cipher,
                        crypto::AesCtr::Create(payload_key_, tuple.nonce));
  Bytes serialized = cipher.Process(tuple.payload);
  ByteReader reader(serialized);
  DBPH_ASSIGN_OR_RETURN(rel::Tuple out, rel::Tuple::ReadFrom(&reader));
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(out.values()));
  return out;
}

Result<Bytes> BucketScheme::QueryLabel(const std::string& attribute,
                                       const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(size_t attr, schema_.IndexOf(attribute));
  if (value.type() != schema_.attribute(attr).type) {
    return Status::InvalidArgument("query value type mismatch");
  }
  return LabelOf(attr, partitioners_[attr].BucketOf(value));
}

Result<std::vector<Bytes>> BucketScheme::QueryRangeLabels(
    const std::string& attribute, int64_t lo, int64_t hi) const {
  DBPH_ASSIGN_OR_RETURN(size_t attr, schema_.IndexOf(attribute));
  if (schema_.attribute(attr).type != rel::ValueType::kInt64) {
    return Status::InvalidArgument("range queries need an int attribute");
  }
  DBPH_ASSIGN_OR_RETURN(std::vector<size_t> buckets,
                        partitioners_[attr].BucketsForRange(lo, hi));
  std::vector<Bytes> labels;
  labels.reserve(buckets.size());
  for (size_t b : buckets) labels.push_back(LabelOf(attr, b));
  return labels;
}

Result<rel::Relation> BucketScheme::DecryptAndFilter(
    const std::vector<BucketTuple>& tuples, const std::string& attribute,
    const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(rel::ExactMatch predicate,
                        rel::MakeExactMatch(schema_, attribute, value));
  rel::Relation out("result", schema_);
  for (const auto& enc : tuples) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, DecryptTuple(enc));
    if (predicate.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
    }
  }
  return out;
}

}  // namespace baseline
}  // namespace dbph
