#ifndef DBPH_BASELINES_BUCKET_PARTITION_H_
#define DBPH_BASELINES_BUCKET_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "relation/value.h"

namespace dbph {
namespace baseline {

/// \brief How an attribute domain is cut into intervals (buckets).
enum class PartitionKind { kEquiWidth, kEquiDepth, kHash };

/// \brief Maps attribute values to bucket indices — the "mapping a
/// plaintext value to a containing interval" step of Hacıgümüş et al.
///
/// Integer domains support equi-width (fixed [lo, hi] split into k equal
/// intervals) and equi-depth (boundaries at sample quantiles, so buckets
/// hold roughly equal tuple counts). Strings and other types use hash
/// partitioning (values hash into one of k buckets), as in the original
/// paper's treatment of non-ordered domains.
class Partitioner {
 public:
  /// Equi-width over [lo, hi] with `buckets` intervals.
  static Result<Partitioner> EquiWidth(int64_t lo, int64_t hi,
                                       size_t buckets);

  /// Equi-depth: boundaries from a data sample's quantiles.
  static Result<Partitioner> EquiDepth(std::vector<int64_t> sample,
                                       size_t buckets);

  /// Hash partitioning into `buckets` buckets (any value type).
  static Result<Partitioner> Hash(size_t buckets);

  PartitionKind kind() const { return kind_; }
  size_t num_buckets() const { return num_buckets_; }

  /// Bucket index of `value`. Out-of-range integers clamp to the edge
  /// buckets (the scheme must place every tuple somewhere).
  size_t BucketOf(const rel::Value& value) const;

  /// Buckets overlapping the closed integer range [lo, hi] — used by the
  /// range-query extension. kHash partitioners cannot answer ranges.
  Result<std::vector<size_t>> BucketsForRange(int64_t lo, int64_t hi) const;

 private:
  Partitioner(PartitionKind kind, size_t buckets)
      : kind_(kind), num_buckets_(buckets) {}

  PartitionKind kind_;
  size_t num_buckets_;
  int64_t lo_ = 0;
  int64_t hi_ = 0;
  std::vector<int64_t> boundaries_;  // equi-depth upper bounds
};

}  // namespace baseline
}  // namespace dbph

#endif  // DBPH_BASELINES_BUCKET_PARTITION_H_
