#ifndef DBPH_CLIENT_CLIENT_H_
#define DBPH_CLIENT_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/random.h"
#include "crypto/search_tree.h"
#include "dbph/scheme.h"
#include "obs/leakage/report.h"
#include "obs/metrics.h"
#include "protocol/plan_report.h"
#include "protocol/result_proof.h"
#include "relation/relation.h"

namespace dbph {
namespace client {

/// How strictly the client checks the server's Merkle result proofs.
///
///  - kOff:     proofs are ignored (and no local tree is kept) — the
///              PR-4 behavior, byte-for-byte.
///  - kWarn:    every response is verified; a failure logs a warning and
///              the data is returned anyway (migration / observability).
///  - kEnforce: a failed or missing proof fails the operation — the
///              malicious-server deployment mode.
///
/// Verification compares the proof against the client's own Merkle tree
/// (mirrored through every mutation this client issued) and, for an
/// adopted session without history, against the owner-signed root — see
/// Client::SyncIntegrity and docs/SECURITY.md.
enum class VerifyMode { kOff, kWarn, kEnforce };

/// Sends a serialized request to the server, returns its serialized
/// response. In-process deployments bind this to
/// UntrustedServer::HandleRequest; network deployments bind it to
/// net::TcpTransport::AsTransport(), which carries the same bytes in
/// length-prefixed frames to a NetServer/dbph_serverd.
using Transport = std::function<Bytes(const Bytes&)>;

/// \brief Alex: the data owner.
///
/// Owns the master key and a DatabasePh per outsourced relation (each
/// derived from the master via HKDF, so one secret covers the whole
/// catalog). All traffic to Eve goes through the byte-level wire protocol
/// so the adversary's transcript is realistic.
class Client {
 public:
  /// `rng` must outlive the client. Pass crypto::DefaultRng() in
  /// production; seeded HmacDrbg in experiments.
  Client(Bytes master_key, Transport transport, crypto::Rng* rng,
         core::DbphOptions options = {});

  /// Encrypts `relation` tuple-by-tuple and stores it with the server.
  Status Outsource(const rel::Relation& relation);

  /// Registers the PH scheme for a relation that is *already* stored with
  /// the server (e.g. a second session reattaching over the network with
  /// the same master key) without uploading anything: all keys derive
  /// from the master, so any holder of it can address the ciphertext.
  Status Adopt(const std::string& relation, const rel::Schema& schema);

  /// sigma_{attribute = value}: encrypt the query, execute remotely,
  /// decrypt the returned documents and drop SWP false positives.
  Result<rel::Relation> Select(const std::string& relation,
                               const std::string& attribute,
                               const rel::Value& value);

  /// Batched select: encrypts every sigma_{attribute = value} query and
  /// ships them in a kBatchRequest — normally one round trip (lists
  /// longer than protocol::kMaxBatchParts are transparently split into
  /// one round trip per chunk) — and the server evaluates the trapdoors
  /// in parallel across shards and queries. results[i] corresponds to
  /// queries[i] and equals what Select(queries[i]) would have returned;
  /// the server's observation log likewise gains one entry per query,
  /// exactly as if the selects had been sent one by one. Chunks are not
  /// atomic with respect to interleaved writers, and log entries from
  /// completed chunks persist even if a later chunk fails.
  Result<std::vector<rel::Relation>> SelectBatch(
      const std::string& relation,
      const std::vector<std::pair<std::string, rel::Value>>& queries);

  /// Conjunctive select: all per-term trapdoors travel in one batch
  /// request (a single round trip), the per-term match sets are
  /// intersected client-side by ciphertext identity, and the survivors
  /// are decrypted and filtered exactly.
  ///
  /// Leakage note: Eve sees one query observation per term (each term
  /// counts toward q in the paper's accounting), including every
  /// term's match set — strictly more than the previous strategy of
  /// executing only the first term remotely and filtering the rest
  /// client-side. The trade: the server can evaluate all terms in one
  /// parallel wave and the client decrypts only the intersection
  /// instead of the whole first-term candidate set.
  Result<rel::Relation> SelectConjunction(
      const std::string& relation,
      const std::vector<std::pair<std::string, rel::Value>>& terms);

  /// EXPLAIN for sigma_{attribute = value}: asks the server how it
  /// would execute this exact select right now — trapdoor-index lookup
  /// or sharded full scan — without executing it. Trapdoors are
  /// deterministic, so the report describes precisely the plan the same
  /// Select call would take next. Leakage: Eve receives the trapdoor
  /// bytes (as she would for the select itself) but computes no matches;
  /// an EXPLAIN therefore reveals no more than the select it describes.
  Result<protocol::PlanReport> Explain(const std::string& relation,
                                       const std::string& attribute,
                                       const rel::Value& value);

  /// Appends tuples to an already-outsourced relation. Each tuple is
  /// encrypted under the relation's key with a fresh nonce — appends are
  /// indistinguishable from the original upload.
  Status Insert(const std::string& relation,
                const std::vector<rel::Tuple>& tuples);

  /// Deletes every tuple matching sigma_{attribute = value} on the
  /// server; returns how many documents were removed. NOTE: like selects,
  /// deletions reveal the matched identities to Eve — this is a q > 0
  /// operation in the paper's accounting.
  Result<size_t> DeleteWhere(const std::string& relation,
                             const std::string& attribute,
                             const rel::Value& value);

  /// The "contract cancelled" path: fetches every stored document,
  /// decrypts locally, and returns the plaintext relation. SWP false
  /// positives cannot occur (no trapdoors involved).
  Result<rel::Relation> Recall(const std::string& relation);

  /// Asks the server to forget a relation (local keys are kept, so a
  /// re-Outsource re-encrypts under fresh nonces).
  Status Drop(const std::string& relation);

  /// Demands a durability point: when this returns OK, every mutation
  /// the server acknowledged to this client is on stable storage (a
  /// durable deployment fsyncs its write-ahead log; a memory-only server
  /// answers trivially). Keys-free, leaks only timing.
  Status Flush();

  /// Fetches the server's live metrics snapshot (kStats): per-op
  /// counters, stage latency histograms, net/WAL/index gauges. Keys-free
  /// and read-only; the STATS REPL command and operator tooling render
  /// the result with RenderText()/RenderPrometheus().
  Result<obs::RegistrySnapshot> Stats();

  /// Fetches the server's live leakage self-audit (kLeakageReport):
  /// per-relation tag-frequency spectra over salted digests, empirical
  /// entropy, result-size distributions per access path, and the
  /// frequency-attack advantage Eve currently enjoys. Keys-free and
  /// read-only; fails with kFailedPrecondition when the server runs
  /// --leakage=off. The LEAKAGE REPL command renders the result with
  /// RenderText().
  Result<obs::leakage::LeakageReport> LeakageReport();

  /// Client-side proof verification latency (microseconds per verified
  /// response) — the client's own cost of the integrity layer. Records
  /// only while verify_mode is Warn/Enforce.
  const obs::Histogram& verify_latency() const { return verify_latency_; }

  // -------- result integrity (Merkle-authenticated responses) --------

  /// Selects how strictly responses are verified. Switching modes mid-
  /// session is allowed; state tracked while verification was on is
  /// kept. With verification on, every mutation this client issues also
  /// deposits a signed root with the server (kAttestRoot).
  void set_verify_mode(VerifyMode mode) { verify_mode_ = mode; }
  VerifyMode verify_mode() const { return verify_mode_; }

  /// Bootstraps integrity state for a relation this session did not
  /// upload (an Adopt-ed reattach): fetches every stored document with
  /// the whole-relation completeness proof, rebuilds the Merkle tree
  /// locally, and anchors (root, epoch). With `require_signature` the
  /// server's proof must carry a valid owner HMAC over that root —
  /// rejecting a server that fabricated state from scratch; without it
  /// the current state is trusted on first use (the REPL's VERIFY
  /// toggle), after which any divergence is detected.
  ///
  /// Freshness caveat: a fresh session has no way to tell the latest
  /// signed root from an older one (a rolled-back-but-signed state
  /// verifies). Sessions that witnessed the mutations detect rollback by
  /// epoch; out-of-band epoch pinning closes the gap for reattaches.
  Status SyncIntegrity(const std::string& relation,
                       bool require_signature = true);

  /// The tracked (epoch, root) for a relation, if any — exposed for
  /// tests and for operators pinning epochs out of band.
  Result<std::pair<uint64_t, crypto::MerkleTree::Hash>> IntegrityAnchor(
      const std::string& relation) const;

  /// The PH instance bound to an outsourced relation (exposed for the
  /// security games, which need Eq directly).
  Result<const core::DatabasePh*> SchemeFor(
      const std::string& relation) const;

 private:
  /// Per-relation mirror of the server's Merkle state, maintained by the
  /// mutations this client issues (it is the writer, so it can predict
  /// every root) or bootstrapped by SyncIntegrity. The full leaf-hash
  /// vector is kept — 32 bytes per stored document — which lets
  /// verification compare returned rows directly against the exact leaf
  /// they claim to be.
  struct IntegrityState {
    crypto::MerkleTree tree;
    uint64_t epoch = 0;
    /// Mirror of the authenticated search structure: the sorted
    /// (trapdoor tag -> posting list) commitment this client uploaded
    /// (Outsource/Insert compute it from plaintext) or adopted from a
    /// signed dump (SyncIntegrity). Select-path CompletenessProofs are
    /// checked against this mirror's root and committed posting lists.
    crypto::SearchTree search;
  };

  Result<std::vector<swp::EncryptedDocument>> RemoteSelect(
      const core::EncryptedQuery& query);

  /// One kBatchRequest round trip; results align with `queries`. Fails
  /// as a whole if any sub-select failed.
  Result<std::vector<std::vector<swp::EncryptedDocument>>> RemoteSelectBatch(
      const std::vector<core::EncryptedQuery>& queries);

  /// HMAC over (relation, epoch, root) under the relation's derived
  /// integrity key — what kAttestRoot deposits and proofs echo.
  Bytes SignRoot(const std::string& relation, uint64_t epoch,
                 const crypto::MerkleTree::Hash& root) const;

  /// Same key, separate domain: the owner's blessing of the SEARCH root
  /// (the sorted trapdoor-tag tree). Distinct domains keep a row-root
  /// signature from ever vouching for a search root or vice versa.
  Bytes SignSearchRoot(const std::string& relation, uint64_t epoch,
                       const crypto::MerkleTree::Hash& root) const;

  /// Enumerates the (trapdoor tag -> leaf positions) entries the given
  /// tuples contribute when stored at positions [begin_position,
  /// begin_position + tuples.size()): one deterministic trapdoor per
  /// (attribute, value) of every tuple, digested and grouped. Only the
  /// data owner can compute this — the server sees ciphertext.
  Result<std::vector<crypto::SearchTree::Entry>> BuildSearchEntries(
      const core::DatabasePh& ph, const std::string& relation,
      const std::vector<rel::Tuple>& tuples, uint64_t begin_position) const;

  /// Deposits the signed current local root with the server. Respects
  /// the verify mode: Enforce propagates failures, Warn logs them.
  Status AttestCurrentRoot(const std::string& relation);

  /// Verifies the proof trailing a select/fetch response against the
  /// local tree (or, unanchored, the signed root). `trapdoor` non-null
  /// adds the match re-check per returned document; `require_complete`
  /// demands positions == [0, n) (Recall). Honors verify_mode_: returns
  /// OK in kOff without reading, logs-and-passes in kWarn.
  Status VerifyResultTrailer(const std::string& relation,
                             const swp::Trapdoor* trapdoor,
                             const std::vector<swp::EncryptedDocument>& docs,
                             ByteReader* reader, bool require_complete);

  /// The delete manifest: checks every removed (position, document)
  /// against the local tree and the trapdoor, then mirrors the removal
  /// and bumps the epoch. Honors verify_mode_.
  Status ApplyDeleteManifest(const std::string& relation,
                             const swp::Trapdoor& trapdoor, size_t removed,
                             ByteReader* reader);

  Bytes master_key_;
  Transport transport_;
  crypto::Rng* rng_;
  core::DbphOptions options_;
  std::map<std::string, std::unique_ptr<core::DatabasePh>> schemes_;
  VerifyMode verify_mode_ = VerifyMode::kOff;
  std::map<std::string, IntegrityState> integrity_;
  obs::Histogram verify_latency_{obs::Unit::kMicros};
};

}  // namespace client
}  // namespace dbph

#endif  // DBPH_CLIENT_CLIENT_H_
