#include "client/client.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "crypto/hkdf.h"
#include "protocol/messages.h"

namespace dbph {
namespace client {

using protocol::Envelope;
using protocol::MessageType;

Client::Client(Bytes master_key, Transport transport, crypto::Rng* rng,
               core::DbphOptions options)
    : master_key_(std::move(master_key)),
      transport_(std::move(transport)),
      rng_(rng),
      options_(options) {}

namespace {

/// Round-trips an envelope over the transport and rejects error replies.
Result<Envelope> Call(const Transport& transport, const Envelope& request,
                      MessageType expected) {
  auto response = Envelope::Parse(transport(request.Serialize()));
  DBPH_RETURN_IF_ERROR(response.status());
  if (response->type == MessageType::kError) {
    return protocol::ParseErrorEnvelope(*response);
  }
  if (response->type != expected) {
    return Status::DataLoss("unexpected response type from server");
  }
  return response;
}

}  // namespace

Status Client::Outsource(const rel::Relation& relation) {
  if (schemes_.count(relation.name()) == 0) {
    // Per-table keys branch off the master key.
    Bytes table_key =
        crypto::DeriveSubkey(master_key_, "table/" + relation.name());
    DBPH_ASSIGN_OR_RETURN(
        core::DatabasePh ph,
        core::DatabasePh::Create(relation.schema(), table_key, options_));
    schemes_.emplace(relation.name(),
                     std::make_unique<core::DatabasePh>(std::move(ph)));
  }
  const core::DatabasePh& ph = *schemes_.at(relation.name());
  DBPH_ASSIGN_OR_RETURN(core::EncryptedRelation enc,
                        ph.EncryptRelation(relation, rng_));

  Envelope request;
  request.type = MessageType::kStoreRelation;
  enc.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kStoreOk));
  (void)response;
  return Status::OK();
}

Result<const core::DatabasePh*> Client::SchemeFor(
    const std::string& relation) const {
  auto it = schemes_.find(relation);
  if (it == schemes_.end()) {
    return Status::NotFound("relation '" + relation + "' not outsourced");
  }
  return it->second.get();
}

Result<std::vector<swp::EncryptedDocument>> Client::RemoteSelect(
    const core::EncryptedQuery& query) {
  Envelope request;
  request.type = MessageType::kSelect;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kSelectResult));

  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());
  std::vector<swp::EncryptedDocument> docs;
  docs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          swp::EncryptedDocument::ReadFrom(&reader));
    docs.push_back(std::move(doc));
  }
  return docs;
}

Result<rel::Relation> Client::Select(const std::string& relation,
                                     const std::string& attribute,
                                     const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  DBPH_ASSIGN_OR_RETURN(auto docs, RemoteSelect(query));
  return ph->DecryptAndFilter(docs, attribute, value);
}

Result<rel::Relation> Client::SelectConjunction(
    const std::string& relation,
    const std::vector<std::pair<std::string, rel::Value>>& terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("conjunction needs at least one term");
  }
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));

  // Fetch per-term results, intersect by decrypted tuple identity, and
  // filter exactly.
  rel::Relation result("result", ph->schema());
  rel::Conjunction conjunction;
  for (const auto& [attribute, value] : terms) {
    DBPH_ASSIGN_OR_RETURN(
        rel::ExactMatch match,
        rel::MakeExactMatch(ph->schema(), attribute, value));
    conjunction.Add(std::move(match));
  }

  // Use the most selective strategy available without statistics: run the
  // first term remotely, filter the decrypted candidates by the full
  // conjunction.
  const auto& [first_attr, first_value] = terms.front();
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, first_attr, first_value));
  DBPH_ASSIGN_OR_RETURN(auto docs, RemoteSelect(query));
  for (const auto& doc : docs) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, ph->DecryptTuple(doc));
    if (conjunction.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(result.Insert(std::move(tuple)));
    }
  }
  return result;
}

Status Client::Insert(const std::string& relation,
                      const std::vector<rel::Tuple>& tuples) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  Envelope request;
  request.type = MessageType::kAppendTuples;
  AppendLengthPrefixed(&request.payload, ToBytes(relation));
  AppendUint32(&request.payload, static_cast<uint32_t>(tuples.size()));
  for (const rel::Tuple& tuple : tuples) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          ph->EncryptTuple(tuple, rng_));
    doc.AppendTo(&request.payload);
  }
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kAppendOk));
  (void)response;
  return Status::OK();
}

Result<size_t> Client::DeleteWhere(const std::string& relation,
                                   const std::string& attribute,
                                   const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  Envelope request;
  request.type = MessageType::kDeleteWhere;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kDeleteResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t removed, reader.ReadUint32());
  return static_cast<size_t>(removed);
}

Result<rel::Relation> Client::Recall(const std::string& relation) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  Envelope request;
  request.type = MessageType::kFetchRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kFetchResult));

  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());
  rel::Relation out(relation, ph->schema());
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          swp::EncryptedDocument::ReadFrom(&reader));
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, ph->DecryptTuple(doc));
    DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

Status Client::Drop(const std::string& relation) {
  Envelope request;
  request.type = MessageType::kDropRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kDropOk));
  (void)response;
  return Status::OK();
}

}  // namespace client
}  // namespace dbph
