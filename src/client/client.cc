#include "client/client.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "crypto/hkdf.h"
#include "protocol/messages.h"

namespace dbph {
namespace client {

using protocol::Envelope;
using protocol::MessageType;

Client::Client(Bytes master_key, Transport transport, crypto::Rng* rng,
               core::DbphOptions options)
    : master_key_(std::move(master_key)),
      transport_(std::move(transport)),
      rng_(rng),
      options_(options) {}

namespace {

/// Round-trips an envelope over the transport and rejects error replies.
Result<Envelope> Call(const Transport& transport, const Envelope& request,
                      MessageType expected) {
  auto response = Envelope::Parse(transport(request.Serialize()));
  DBPH_RETURN_IF_ERROR(response.status());
  if (response->type == MessageType::kError) {
    return protocol::ParseErrorEnvelope(*response);
  }
  if (response->type != expected) {
    return Status::DataLoss("unexpected response type from server");
  }
  return response;
}

}  // namespace

Status Client::Adopt(const std::string& relation, const rel::Schema& schema) {
  if (schemes_.count(relation) > 0) return Status::OK();
  // Per-table keys branch off the master key.
  Bytes table_key = crypto::DeriveSubkey(master_key_, "table/" + relation);
  DBPH_ASSIGN_OR_RETURN(core::DatabasePh ph,
                        core::DatabasePh::Create(schema, table_key, options_));
  schemes_.emplace(relation, std::make_unique<core::DatabasePh>(std::move(ph)));
  return Status::OK();
}

Status Client::Outsource(const rel::Relation& relation) {
  DBPH_RETURN_IF_ERROR(Adopt(relation.name(), relation.schema()));
  const core::DatabasePh& ph = *schemes_.at(relation.name());
  DBPH_ASSIGN_OR_RETURN(core::EncryptedRelation enc,
                        ph.EncryptRelation(relation, rng_));

  Envelope request;
  request.type = MessageType::kStoreRelation;
  enc.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kStoreOk));
  (void)response;
  return Status::OK();
}

Result<const core::DatabasePh*> Client::SchemeFor(
    const std::string& relation) const {
  auto it = schemes_.find(relation);
  if (it == schemes_.end()) {
    return Status::NotFound("relation '" + relation + "' not outsourced");
  }
  return it->second.get();
}

Result<std::vector<swp::EncryptedDocument>> Client::RemoteSelect(
    const core::EncryptedQuery& query) {
  Envelope request;
  request.type = MessageType::kSelect;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kSelectResult));

  ByteReader reader(response.payload);
  return swp::ReadDocumentList(&reader);
}

Result<std::vector<std::vector<swp::EncryptedDocument>>>
Client::RemoteSelectBatch(const std::vector<core::EncryptedQuery>& queries) {
  std::vector<std::vector<swp::EncryptedDocument>> results;
  results.reserve(queries.size());
  // The wire protocol bounds a batch at kMaxBatchParts sub-envelopes;
  // larger query lists transparently become multiple round trips.
  for (size_t begin = 0; begin < queries.size();
       begin += protocol::kMaxBatchParts) {
    size_t end =
        std::min<size_t>(queries.size(), begin + protocol::kMaxBatchParts);
    std::vector<Envelope> parts;
    parts.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      Envelope part;
      part.type = MessageType::kSelect;
      queries[i].AppendTo(&part.payload);
      parts.push_back(std::move(part));
    }
    Envelope request;
    request.type = MessageType::kBatchRequest;
    request.payload = protocol::SerializeBatchPayload(parts);
    DBPH_ASSIGN_OR_RETURN(
        Envelope response,
        Call(transport_, request, MessageType::kBatchResponse));

    DBPH_ASSIGN_OR_RETURN(std::vector<Envelope> replies,
                          protocol::ParseBatchPayload(response.payload));
    if (replies.size() != end - begin) {
      return Status::DataLoss("batch response count mismatch");
    }
    for (const Envelope& reply : replies) {
      if (reply.type == MessageType::kError) {
        return protocol::ParseErrorEnvelope(reply);
      }
      if (reply.type != MessageType::kSelectResult) {
        return Status::DataLoss("unexpected sub-response type in batch");
      }
      ByteReader reader(reply.payload);
      DBPH_ASSIGN_OR_RETURN(std::vector<swp::EncryptedDocument> docs,
                            swp::ReadDocumentList(&reader));
      results.push_back(std::move(docs));
    }
  }
  return results;
}

Result<std::vector<rel::Relation>> Client::SelectBatch(
    const std::string& relation,
    const std::vector<std::pair<std::string, rel::Value>>& queries) {
  if (queries.empty()) return std::vector<rel::Relation>{};
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  std::vector<core::EncryptedQuery> encrypted;
  encrypted.reserve(queries.size());
  for (const auto& [attribute, value] : queries) {
    DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                          ph->EncryptQuery(relation, attribute, value));
    encrypted.push_back(std::move(query));
  }
  DBPH_ASSIGN_OR_RETURN(auto batches, RemoteSelectBatch(encrypted));

  std::vector<rel::Relation> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    DBPH_ASSIGN_OR_RETURN(
        rel::Relation filtered,
        ph->DecryptAndFilter(batches[i], queries[i].first, queries[i].second));
    results.push_back(std::move(filtered));
  }
  return results;
}

Result<rel::Relation> Client::Select(const std::string& relation,
                                     const std::string& attribute,
                                     const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  DBPH_ASSIGN_OR_RETURN(auto docs, RemoteSelect(query));
  return ph->DecryptAndFilter(docs, attribute, value);
}

Result<rel::Relation> Client::SelectConjunction(
    const std::string& relation,
    const std::vector<std::pair<std::string, rel::Value>>& terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("conjunction needs at least one term");
  }
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));

  // Fetch per-term results, intersect by decrypted tuple identity, and
  // filter exactly.
  rel::Relation result("result", ph->schema());
  rel::Conjunction conjunction;
  for (const auto& [attribute, value] : terms) {
    DBPH_ASSIGN_OR_RETURN(
        rel::ExactMatch match,
        rel::MakeExactMatch(ph->schema(), attribute, value));
    conjunction.Add(std::move(match));
  }

  // All per-term trapdoors go out in one batch round trip; the server
  // evaluates them in parallel. Intersect the match sets by ciphertext
  // identity (the server returns stored documents verbatim, so equal
  // bytes = same record), then decrypt only the survivors of the
  // smallest set and filter exactly — SWP false positives drop here.
  std::vector<core::EncryptedQuery> queries;
  queries.reserve(terms.size());
  for (const auto& [attribute, value] : terms) {
    DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                          ph->EncryptQuery(relation, attribute, value));
    queries.push_back(std::move(query));
  }
  DBPH_ASSIGN_OR_RETURN(auto batches, RemoteSelectBatch(queries));

  size_t smallest = 0;
  for (size_t i = 1; i < batches.size(); ++i) {
    if (batches[i].size() < batches[smallest].size()) smallest = i;
  }
  std::vector<std::set<Bytes>> other_sets;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (i == smallest) continue;
    std::set<Bytes> identities;
    for (const auto& doc : batches[i]) {
      Bytes serialized;
      doc.AppendTo(&serialized);
      identities.insert(std::move(serialized));
    }
    other_sets.push_back(std::move(identities));
  }
  for (const auto& doc : batches[smallest]) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    bool in_all = true;
    for (const auto& identities : other_sets) {
      if (identities.count(serialized) == 0) {
        in_all = false;
        break;
      }
    }
    if (!in_all) continue;
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, ph->DecryptTuple(doc));
    if (conjunction.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(result.Insert(std::move(tuple)));
    }
  }
  return result;
}

Result<protocol::PlanReport> Client::Explain(const std::string& relation,
                                             const std::string& attribute,
                                             const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  Envelope request;
  request.type = MessageType::kExplain;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kExplainResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(protocol::PlanReport report,
                        protocol::PlanReport::ReadFrom(&reader));
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes after plan");
  return report;
}

Status Client::Insert(const std::string& relation,
                      const std::vector<rel::Tuple>& tuples) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  Envelope request;
  request.type = MessageType::kAppendTuples;
  AppendLengthPrefixed(&request.payload, ToBytes(relation));
  AppendUint32(&request.payload, static_cast<uint32_t>(tuples.size()));
  for (const rel::Tuple& tuple : tuples) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          ph->EncryptTuple(tuple, rng_));
    doc.AppendTo(&request.payload);
  }
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kAppendOk));
  (void)response;
  return Status::OK();
}

Result<size_t> Client::DeleteWhere(const std::string& relation,
                                   const std::string& attribute,
                                   const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  Envelope request;
  request.type = MessageType::kDeleteWhere;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kDeleteResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t removed, reader.ReadUint32());
  return static_cast<size_t>(removed);
}

Result<rel::Relation> Client::Recall(const std::string& relation) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  Envelope request;
  request.type = MessageType::kFetchRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kFetchResult));

  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());
  rel::Relation out(relation, ph->schema());
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          swp::EncryptedDocument::ReadFrom(&reader));
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, ph->DecryptTuple(doc));
    DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

Status Client::Flush() {
  Envelope request;
  request.type = MessageType::kFlush;
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kFlushOk));
  (void)response;
  return Status::OK();
}

Status Client::Drop(const std::string& relation) {
  Envelope request;
  request.type = MessageType::kDropRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kDropOk));
  (void)response;
  return Status::OK();
}

}  // namespace client
}  // namespace dbph
