#include "client/client.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "protocol/completeness_proof.h"
#include "protocol/messages.h"
#include "swp/search.h"

namespace dbph {
namespace client {

using crypto::MerkleTree;
using protocol::Envelope;
using protocol::MessageType;

Client::Client(Bytes master_key, Transport transport, crypto::Rng* rng,
               core::DbphOptions options)
    : master_key_(std::move(master_key)),
      transport_(std::move(transport)),
      rng_(rng),
      options_(options) {}

namespace {

/// Round-trips an envelope over the transport and rejects error replies.
Result<Envelope> Call(const Transport& transport, const Envelope& request,
                      MessageType expected) {
  auto response = Envelope::Parse(transport(request.Serialize()));
  DBPH_RETURN_IF_ERROR(response.status());
  if (response->type == MessageType::kError) {
    return protocol::ParseErrorEnvelope(*response);
  }
  if (response->type != expected) {
    return Status::DataLoss("unexpected response type from server");
  }
  return response;
}

Bytes SerializeDocument(const swp::EncryptedDocument& doc) {
  Bytes serialized;
  doc.AppendTo(&serialized);
  return serialized;
}

}  // namespace

// -------------------- result integrity --------------------

Bytes Client::SignRoot(const std::string& relation, uint64_t epoch,
                       const MerkleTree::Hash& root) const {
  // Domain-separated HMAC under a per-relation subkey of the master:
  // only a master-key holder can bless a root, and a signature for one
  // relation (or epoch) can never vouch for another.
  Bytes key = crypto::DeriveSubkey(master_key_, "integrity/" + relation);
  Bytes message = ToBytes("dbph-merkle-root-v1");
  AppendLengthPrefixed(&message, ToBytes(relation));
  AppendUint64(&message, epoch);
  message.insert(message.end(), root.begin(), root.end());
  return crypto::HmacSha256(key, message);
}

Bytes Client::SignSearchRoot(const std::string& relation, uint64_t epoch,
                             const MerkleTree::Hash& root) const {
  Bytes key = crypto::DeriveSubkey(master_key_, "integrity/" + relation);
  Bytes message = ToBytes("dbph-search-root-v1");
  AppendLengthPrefixed(&message, ToBytes(relation));
  AppendUint64(&message, epoch);
  message.insert(message.end(), root.begin(), root.end());
  return crypto::HmacSha256(key, message);
}

Result<std::vector<crypto::SearchTree::Entry>> Client::BuildSearchEntries(
    const core::DatabasePh& ph, const std::string& relation,
    const std::vector<rel::Tuple>& tuples, uint64_t begin_position) const {
  // Trapdoors are deterministic per (relation, attribute, value), so the
  // digest computed here from plaintext equals the digest the server
  // computes from a query's wire bytes — that equality is the entire
  // bridge between "what was uploaded" and "what a select should hit".
  std::map<crypto::SearchTree::Hash, std::vector<uint64_t>> postings;
  const rel::Schema& schema = ph.schema();
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      DBPH_ASSIGN_OR_RETURN(
          core::EncryptedQuery query,
          ph.EncryptQuery(relation, schema.attribute(a).name, tuples[i].at(a)));
      Bytes trapdoor_bytes;
      query.trapdoor.AppendTo(&trapdoor_bytes);
      auto& list = postings[crypto::SearchTree::TagDigest(trapdoor_bytes)];
      const uint64_t position = begin_position + i;
      if (list.empty() || list.back() != position) list.push_back(position);
    }
  }
  std::vector<crypto::SearchTree::Entry> entries;
  entries.reserve(postings.size());
  for (auto& [tag, positions] : postings) {
    entries.push_back({tag, std::move(positions)});
  }
  return entries;
}

Status Client::AttestCurrentRoot(const std::string& relation) {
  auto it = integrity_.find(relation);
  if (it == integrity_.end()) return Status::OK();
  Envelope request;
  request.type = MessageType::kAttestRoot;
  AppendLengthPrefixed(&request.payload, ToBytes(relation));
  AppendUint64(&request.payload, it->second.epoch);
  MerkleTree::Hash root = it->second.tree.Root();
  request.payload.insert(request.payload.end(), root.begin(), root.end());
  Bytes signature = SignRoot(relation, it->second.epoch, root);
  request.payload.insert(request.payload.end(), signature.begin(),
                         signature.end());
  // Same deposit, second commitment: the search root rides along so the
  // server can hand signed completeness evidence to adopted sessions.
  MerkleTree::Hash search_root = it->second.search.Root();
  request.payload.insert(request.payload.end(), search_root.begin(),
                         search_root.end());
  Bytes search_signature =
      SignSearchRoot(relation, it->second.epoch, search_root);
  request.payload.insert(request.payload.end(), search_signature.begin(),
                         search_signature.end());
  auto response = Call(transport_, request, MessageType::kAttestOk);
  if (!response.ok()) {
    if (verify_mode_ == VerifyMode::kWarn) {
      DBPH_LOG(Warning) << "integrity: attesting root for '" << relation
                        << "' failed: " << response.status().ToString();
      return Status::OK();
    }
    return Status::DataLoss("integrity: root attestation failed: " +
                            response.status().message());
  }
  return Status::OK();
}

Status Client::VerifyResultTrailer(
    const std::string& relation, const swp::Trapdoor* trapdoor,
    const std::vector<swp::EncryptedDocument>& docs, ByteReader* reader,
    bool require_complete) {
  if (verify_mode_ == VerifyMode::kOff) return Status::OK();
  Stopwatch verify_watch;
  Status verdict = [&]() -> Status {
    if (reader->AtEnd()) {
      return Status::DataLoss(
          "server attached no proof (is it running --integrity=off?)");
    }
    DBPH_ASSIGN_OR_RETURN(
        protocol::ResultProof proof,
        protocol::ResultProof::ReadFrom(reader, docs.size()));
    // What follows the row proof depends on the path. A select carries a
    // CompletenessProof (what this query SHOULD have returned); its
    // absence is treated as tampering — stripping it must not downgrade
    // a verified select to a returns-only one. A whole-relation fetch
    // instead carries the search-structure dump (tags + posting lists)
    // plus its owner signature, for bootstrap and cross-checking.
    protocol::CompletenessProof completeness;
    bool has_completeness = false;
    std::vector<crypto::SearchTree::Entry> search_dump;
    Bytes search_dump_signature;
    bool has_search_dump = false;
    if (trapdoor != nullptr) {
      if (reader->AtEnd()) {
        return Status::DataLoss(
            "server attached no completeness proof to the select");
      }
      DBPH_ASSIGN_OR_RETURN(completeness,
                            protocol::CompletenessProof::ReadFrom(
                                reader, docs.size(), proof.leaf_count));
      has_completeness = true;
    } else if (require_complete && !reader->AtEnd()) {
      DBPH_ASSIGN_OR_RETURN(search_dump, protocol::ReadSearchEntries(
                                             reader, proof.leaf_count));
      DBPH_ASSIGN_OR_RETURN(search_dump_signature,
                            reader->ReadLengthPrefixed());
      has_search_dump = true;
    }
    if (!reader->AtEnd()) {
      return Status::DataLoss("trailing bytes after result proof");
    }
    crypto::SearchTree::Hash query_tag{};
    if (trapdoor != nullptr) {
      Bytes trapdoor_bytes;
      trapdoor->AppendTo(&trapdoor_bytes);
      query_tag = crypto::SearchTree::TagDigest(trapdoor_bytes);
    }
    if (proof.positions.size() != docs.size()) {
      return Status::DataLoss("proof does not cover every returned row");
    }
    std::vector<MerkleTree::Hash> leaves;
    leaves.reserve(docs.size());
    for (const auto& doc : docs) {
      leaves.push_back(MerkleTree::LeafHash(SerializeDocument(doc)));
    }

    auto it = integrity_.find(relation);
    if (it != integrity_.end()) {
      // Anchored: this session mirrored (or synced) every mutation, so
      // the proof must describe exactly our tree — a replayed response
      // from an older state fails here on epoch/root alone.
      if (proof.epoch != it->second.epoch) {
        return Status::DataLoss("epoch mismatch (stale or replayed result)");
      }
      if (proof.leaf_count != it->second.tree.size() ||
          proof.root != it->second.tree.Root()) {
        return Status::DataLoss("root mismatch (server state diverged)");
      }
      for (size_t i = 0; i < docs.size(); ++i) {
        if (leaves[i] != it->second.tree.leaf(proof.positions[i])) {
          return Status::DataLoss(
              "returned row is not the leaf it claims to be");
        }
      }
      // The leaf-identity checks against our exact tree already bind
      // the result set; re-folding the proof would only re-derive a
      // root we hold. The siblings still must not be corrupt (tampering
      // evidence), but against a local tree that is a pure lookup
      // comparison — zero hashing on the hot verified-select path.
      if (proof.siblings != it->second.tree.SubsetProof(proof.positions)) {
        return Status::DataLoss(
            "sibling hashes do not match the committed tree");
      }
      // Likewise the signature: not needed when anchored, but a
      // present-and-invalid one is tampering evidence all the same.
      if (!proof.root_signature.empty() &&
          !ConstantTimeEqual(proof.root_signature,
                             SignRoot(relation, proof.epoch, proof.root))) {
        return Status::DataLoss("root signature does not verify");
      }
      if (has_completeness) {
        // Anchored completeness: the proof must describe exactly our
        // search mirror — committed entry, index, path and all. A lying
        // server has no degree of freedom left.
        const crypto::SearchTree& search = it->second.search;
        if (completeness.epoch != it->second.epoch) {
          return Status::DataLoss(
              "completeness epoch mismatch (stale search state)");
        }
        if (completeness.tree_size != search.size() ||
            completeness.search_root != search.Root()) {
          return Status::DataLoss(
              "search root mismatch (server search state diverged)");
        }
        const crypto::SearchTree::Entry* committed = search.Find(query_tag);
        if (committed != nullptr) {
          if (completeness.kind != protocol::kCompletenessMember) {
            return Status::DataLoss("server denied a committed match set");
          }
          if (completeness.index != search.LowerBound(query_tag) ||
              completeness.positions != committed->positions ||
              completeness.path != search.MembershipPath(completeness.index)) {
            return Status::DataLoss(
                "completeness proof does not match the committed entry");
          }
        } else if (completeness.kind != protocol::kCompletenessAbsent ||
                   completeness.neighbors !=
                       search.NonMembershipProof(query_tag)) {
          return Status::DataLoss(
              "non-membership proof does not match the committed tree");
        }
        if (!completeness.root_signature.empty() &&
            !ConstantTimeEqual(completeness.root_signature,
                               SignSearchRoot(relation, completeness.epoch,
                                              completeness.search_root))) {
          return Status::DataLoss("search root signature does not verify");
        }
      }
      if (has_search_dump) {
        // Fetch path, anchored: the served dump must rebuild into the
        // exact committed search tree (Assign re-validates sortedness
        // and position bounds on the way).
        crypto::SearchTree fetched;
        DBPH_RETURN_IF_ERROR(
            fetched.Assign(std::move(search_dump), proof.leaf_count));
        if (fetched.Root() != it->second.search.Root()) {
          return Status::DataLoss(
              "search dump does not match the committed search tree");
        }
        if (!search_dump_signature.empty() &&
            !ConstantTimeEqual(
                search_dump_signature,
                SignSearchRoot(relation, proof.epoch, fetched.Root()))) {
          return Status::DataLoss("search root signature does not verify");
        }
      }
    } else {
      // Unanchored (adopted session): fall back to the owner-signed
      // root. Freshness is not checkable here — see SyncIntegrity.
      if (proof.root_signature.empty()) {
        return Status::DataLoss(
            "no local integrity state and no signed root; run "
            "SyncIntegrity() after Adopt()");
      }
      if (!ConstantTimeEqual(proof.root_signature,
                             SignRoot(relation, proof.epoch, proof.root))) {
        return Status::DataLoss("root signature does not verify");
      }
      // Structural check: the claimed rows at the claimed positions,
      // plus the sibling hashes, must fold back into the signed root —
      // binding the result set collectively (drop / substitute /
      // reorder all change the fold). Without a local tree this is the
      // only binding available.
      DBPH_ASSIGN_OR_RETURN(
          MerkleTree::Hash computed,
          MerkleTree::RootFromSubset(proof.leaf_count, proof.positions,
                                     leaves, proof.siblings));
      if (computed != proof.root) {
        return Status::DataLoss("subset proof does not fold to the root");
      }
      if (has_completeness) {
        // Unanchored completeness: no mirror to compare against, so the
        // owner-signed search root is mandatory and the proof must
        // cryptographically verify against it. Same-epoch binding ties
        // the search evidence to the row state it claims to describe.
        if (completeness.root_signature.empty()) {
          return Status::DataLoss(
              "no local integrity state and no signed search root; run "
              "SyncIntegrity() after Adopt()");
        }
        if (!ConstantTimeEqual(completeness.root_signature,
                               SignSearchRoot(relation, completeness.epoch,
                                              completeness.search_root))) {
          return Status::DataLoss("search root signature does not verify");
        }
        if (completeness.epoch != proof.epoch) {
          return Status::DataLoss(
              "completeness epoch differs from the result proof epoch");
        }
        if (completeness.kind == protocol::kCompletenessMember) {
          DBPH_RETURN_IF_ERROR(crypto::SearchTree::VerifyMember(
              completeness.search_root, completeness.tree_size,
              completeness.index, query_tag,
              crypto::SearchTree::PostingDigest(completeness.positions),
              completeness.path));
        } else {
          // A committed tag can never satisfy this: adjacency plus
          // strict ordering leaves no gap for it to hide in.
          DBPH_RETURN_IF_ERROR(crypto::SearchTree::VerifyNonMember(
              completeness.search_root, completeness.tree_size, query_tag,
              completeness.neighbors));
        }
      }
      if (has_search_dump && !search_dump_signature.empty()) {
        // Fetch path, unanchored: all we can check is that the dump is
        // internally valid and owner-signed at this epoch.
        crypto::SearchTree fetched;
        DBPH_RETURN_IF_ERROR(
            fetched.Assign(std::move(search_dump), proof.leaf_count));
        if (!ConstantTimeEqual(
                search_dump_signature,
                SignSearchRoot(relation, proof.epoch, fetched.Root()))) {
          return Status::DataLoss("search root signature does not verify");
        }
      }
    }

    if (has_completeness &&
        completeness.kind == protocol::kCompletenessMember) {
      // The completeness rule itself: every position the owner committed
      // for this tag must be among the returned rows. Supersets are fine
      // (SWP false positives also match); omissions are the lie this
      // whole structure exists to catch.
      for (uint64_t position : completeness.positions) {
        if (!std::binary_search(proof.positions.begin(),
                                proof.positions.end(), position)) {
          return Status::DataLoss(
              "returned rows do not cover the committed match set");
        }
      }
    }

    if (require_complete && proof.leaf_count != docs.size()) {
      // positions are strictly increasing and < leaf_count, so size
      // equality forces positions == [0, n): nothing was withheld.
      return Status::DataLoss("fetch did not return the whole relation");
    }

    if (trapdoor != nullptr) {
      // Every returned row must actually match the query — the match
      // predicate is key-free, so the verifier can re-run it. Catches a
      // server splicing in genuine-but-irrelevant rows (which would
      // pass the tree checks: they ARE leaves).
      swp::SwpParams params;
      params.word_length = trapdoor->target.size();
      params.check_length = options_.check_length;
      for (const auto& doc : docs) {
        if (swp::SearchDocument(params, *trapdoor, doc).empty()) {
          return Status::DataLoss(
              "returned row does not match the query trapdoor");
        }
      }
    }
    return Status::OK();
  }();
  verify_latency_.Record(static_cast<uint64_t>(verify_watch.ElapsedMicros()));
  if (!verdict.ok()) {
    if (verify_mode_ == VerifyMode::kWarn) {
      DBPH_LOG(Warning) << "integrity: '" << relation
                        << "' verification failed: " << verdict.ToString();
      return Status::OK();
    }
    return Status::DataLoss("integrity: " + verdict.message());
  }
  return Status::OK();
}

Status Client::ApplyDeleteManifest(const std::string& relation,
                                   const swp::Trapdoor& trapdoor,
                                   size_t removed, ByteReader* reader) {
  auto it = integrity_.find(relation);
  if (it == integrity_.end()) {
    // Nothing to mirror; Enforce demands an anchor before mutating.
    if (verify_mode_ == VerifyMode::kEnforce) {
      return Status::DataLoss(
          "integrity: deleting without local state; run SyncIntegrity() "
          "after Adopt()");
    }
    return Status::OK();
  }
  // A mirror exists: it must follow the server through this delete even
  // with verification Off, or a later switch back to Warn/Enforce would
  // raise false tamper alarms against an honest server.
  Status verdict = [&]() -> Status {
    if (reader->AtEnd()) return Status::DataLoss("no delete manifest");
    DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
    if (count != removed) {
      return Status::DataLoss("manifest does not cover every deleted row");
    }
    // position (8) + length prefix (4) is the smallest possible entry —
    // bound the reserve by what the payload physically holds.
    if (count > reader->remaining() / 12) {
      return Status::DataLoss("manifest count exceeds payload");
    }
    swp::SwpParams params;
    params.word_length = trapdoor.target.size();
    params.check_length = options_.check_length;
    std::vector<uint64_t> positions;
    positions.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      DBPH_ASSIGN_OR_RETURN(uint64_t position, reader->ReadUint64());
      DBPH_ASSIGN_OR_RETURN(Bytes doc_bytes, reader->ReadLengthPrefixed());
      if (position >= it->second.tree.size() ||
          (!positions.empty() && position <= positions.back())) {
        return Status::DataLoss("manifest positions not increasing");
      }
      if (MerkleTree::LeafHash(doc_bytes) != it->second.tree.leaf(position)) {
        return Status::DataLoss("deleted row is not the leaf it claims");
      }
      ByteReader doc_reader(doc_bytes);
      DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                            swp::EncryptedDocument::ReadFrom(&doc_reader));
      if (swp::SearchDocument(params, trapdoor, doc).empty()) {
        return Status::DataLoss(
            "server deleted a row that does not match the trapdoor");
      }
      positions.push_back(position);
    }
    if (!reader->AtEnd()) {
      return Status::DataLoss("trailing bytes after delete manifest");
    }
    // Under-deletion check: the manifest must cover EVERY position the
    // committed posting list names for this trapdoor — a server that
    // quietly spares a row would otherwise shrink the commitment and
    // hide the survivor from future selects. (Covering MORE is fine:
    // SWP false positives legitimately match and get deleted.)
    Bytes trapdoor_bytes;
    trapdoor.AppendTo(&trapdoor_bytes);
    if (const crypto::SearchTree::Entry* committed = it->second.search.Find(
            crypto::SearchTree::TagDigest(trapdoor_bytes))) {
      for (uint64_t position : committed->positions) {
        if (!std::binary_search(positions.begin(), positions.end(),
                                position)) {
          return Status::DataLoss(
              "delete manifest omits a committed match");
        }
      }
    }
    // Mirror the verified removal; every delete is an epoch, matched
    // rows or not — the same rule the server applies. The search mirror
    // follows through the same deterministic transform the server runs.
    it->second.tree.RemoveSorted(positions);
    it->second.search.ApplyDelete(positions);
    ++it->second.epoch;
    return Status::OK();
  }();
  if (!verdict.ok()) {
    if (verify_mode_ == VerifyMode::kEnforce) {
      return Status::DataLoss("integrity: " + verdict.message());
    }
    // Off/Warn: the server deleted regardless; our mirror can no longer
    // be trusted to match. Drop it so later checks fall back to the
    // signed root instead of failing spuriously.
    if (verify_mode_ == VerifyMode::kWarn) {
      DBPH_LOG(Warning) << "integrity: delete manifest for '" << relation
                        << "' failed (" << verdict.ToString()
                        << "); local state dropped — SyncIntegrity() to "
                           "re-anchor";
    }
    integrity_.erase(it);
    return Status::OK();
  }
  if (verify_mode_ != VerifyMode::kOff) return AttestCurrentRoot(relation);
  return Status::OK();
}

Status Client::SyncIntegrity(const std::string& relation,
                             bool require_signature) {
  Envelope request;
  request.type = MessageType::kFetchRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kFetchResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());
  std::vector<MerkleTree::Hash> leaves;
  std::vector<uint64_t> positions;
  leaves.reserve(count);
  positions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          swp::EncryptedDocument::ReadFrom(&reader));
    leaves.push_back(MerkleTree::LeafHash(SerializeDocument(doc)));
    positions.push_back(i);
  }
  if (reader.AtEnd()) {
    return Status::FailedPrecondition(
        "integrity: server attached no proof (running --integrity=off?)");
  }
  DBPH_ASSIGN_OR_RETURN(protocol::ResultProof proof,
                        protocol::ResultProof::ReadFrom(&reader, count));
  // After the row proof the fetch carries the search-structure dump
  // (the committed tags with their full posting lists) plus its owner
  // signature — the bootstrap source for the completeness mirror.
  std::vector<crypto::SearchTree::Entry> search_entries;
  Bytes search_signature;
  bool has_search = false;
  if (!reader.AtEnd()) {
    DBPH_ASSIGN_OR_RETURN(search_entries,
                          protocol::ReadSearchEntries(&reader, count));
    DBPH_ASSIGN_OR_RETURN(search_signature, reader.ReadLengthPrefixed());
    has_search = true;
  } else if (require_signature) {
    // An integrity-enabled server always appends the search dump after
    // the row proof, so its absence is a stripping downgrade: adopting
    // an empty mirror here would make every later select verify
    // completeness against tree_size=0 and accept zero-result lies.
    return Status::DataLoss(
        "integrity: fetch carries a row proof but no search section — "
        "completeness downgrade");
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("integrity: trailing bytes after proof");
  }
  if (proof.leaf_count != count || proof.positions.size() != count) {
    return Status::DataLoss("integrity: fetch proof is not complete");
  }
  DBPH_ASSIGN_OR_RETURN(MerkleTree::Hash computed,
                        MerkleTree::RootFromSubset(proof.leaf_count, positions,
                                                   leaves, proof.siblings));
  if (computed != proof.root) {
    return Status::DataLoss("integrity: fetched rows do not fold to root");
  }
  if (proof.root_signature.empty()) {
    if (require_signature) {
      return Status::DataLoss(
          "integrity: current server state carries no owner signature");
    }
  } else if (!ConstantTimeEqual(
                 proof.root_signature,
                 SignRoot(relation, proof.epoch, proof.root))) {
    return Status::DataLoss("integrity: root signature does not verify");
  }
  // The search dump gets the same treatment: rebuild (Assign re-checks
  // sortedness and position bounds against a hostile source) and demand
  // the owner's signature over its root under the search domain.
  crypto::SearchTree search;
  DBPH_RETURN_IF_ERROR(search.Assign(std::move(search_entries), count));
  if (has_search) {
    if (search_signature.empty()) {
      if (require_signature) {
        return Status::DataLoss(
            "integrity: current search state carries no owner signature");
      }
    } else if (!ConstantTimeEqual(
                   search_signature,
                   SignSearchRoot(relation, proof.epoch, search.Root()))) {
      return Status::DataLoss(
          "integrity: search root signature does not verify");
    }
  }
  // Never trade a fresher witnessed anchor for an older (even signed)
  // state: that would convert a detectable rollback into an accepted
  // one. Re-syncing may only move the anchor forward.
  auto existing = integrity_.find(relation);
  if (existing != integrity_.end()) {
    if (proof.epoch < existing->second.epoch) {
      return Status::DataLoss(
          "integrity: server state (epoch " + std::to_string(proof.epoch) +
          ") is older than the witnessed anchor (epoch " +
          std::to_string(existing->second.epoch) + ") — rollback?");
    }
    if (proof.epoch == existing->second.epoch &&
        proof.root != existing->second.tree.Root()) {
      return Status::DataLoss(
          "integrity: server state diverged from the witnessed anchor at "
          "the same epoch");
    }
    if (has_search && proof.epoch == existing->second.epoch &&
        search.Root() != existing->second.search.Root()) {
      return Status::DataLoss(
          "integrity: server search state diverged from the witnessed "
          "anchor at the same epoch");
    }
  }
  IntegrityState state;
  state.tree.Assign(std::move(leaves));
  state.search = std::move(search);
  state.epoch = proof.epoch;
  integrity_[relation] = std::move(state);
  return Status::OK();
}

Result<std::pair<uint64_t, MerkleTree::Hash>> Client::IntegrityAnchor(
    const std::string& relation) const {
  auto it = integrity_.find(relation);
  if (it == integrity_.end()) {
    return Status::NotFound("no integrity state for '" + relation + "'");
  }
  return std::make_pair(it->second.epoch, it->second.tree.Root());
}

Status Client::Adopt(const std::string& relation, const rel::Schema& schema) {
  if (schemes_.count(relation) > 0) return Status::OK();
  // Per-table keys branch off the master key.
  Bytes table_key = crypto::DeriveSubkey(master_key_, "table/" + relation);
  DBPH_ASSIGN_OR_RETURN(core::DatabasePh ph,
                        core::DatabasePh::Create(schema, table_key, options_));
  schemes_.emplace(relation, std::make_unique<core::DatabasePh>(std::move(ph)));
  return Status::OK();
}

Status Client::Outsource(const rel::Relation& relation) {
  DBPH_RETURN_IF_ERROR(Adopt(relation.name(), relation.schema()));
  const core::DatabasePh& ph = *schemes_.at(relation.name());
  DBPH_ASSIGN_OR_RETURN(core::EncryptedRelation enc,
                        ph.EncryptRelation(relation, rng_));

  Envelope request;
  request.type = MessageType::kStoreRelation;
  enc.AppendTo(&request.payload);
  std::vector<crypto::SearchTree::Entry> search_entries;
  if (verify_mode_ != VerifyMode::kOff) {
    // Only the owner can enumerate which trapdoors the plaintext
    // contains — compute the (tag -> positions) map here and ship it
    // with the upload so the server can serve completeness proofs.
    DBPH_ASSIGN_OR_RETURN(
        search_entries,
        BuildSearchEntries(ph, relation.name(), relation.tuples(), 0));
    protocol::AppendSearchEntries(search_entries, &request.payload);
  }
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kStoreOk));
  (void)response;
  if (verify_mode_ != VerifyMode::kOff) {
    // We uploaded these exact ciphertexts, so we know the server's tree
    // without asking: build the mirror and bless its root.
    IntegrityState state;
    std::vector<MerkleTree::Hash> leaves;
    leaves.reserve(enc.documents.size());
    for (const auto& doc : enc.documents) {
      leaves.push_back(MerkleTree::LeafHash(SerializeDocument(doc)));
    }
    state.tree.Assign(std::move(leaves));
    DBPH_RETURN_IF_ERROR(
        state.search.Assign(std::move(search_entries), enc.documents.size()));
    state.epoch = 1;
    integrity_[relation.name()] = std::move(state);
    DBPH_RETURN_IF_ERROR(AttestCurrentRoot(relation.name()));
  } else {
    // A fresh upload obsoletes any mirror kept from an earlier life of
    // this relation name.
    integrity_.erase(relation.name());
  }
  return Status::OK();
}

Result<const core::DatabasePh*> Client::SchemeFor(
    const std::string& relation) const {
  auto it = schemes_.find(relation);
  if (it == schemes_.end()) {
    return Status::NotFound("relation '" + relation + "' not outsourced");
  }
  return it->second.get();
}

Result<std::vector<swp::EncryptedDocument>> Client::RemoteSelect(
    const core::EncryptedQuery& query) {
  Envelope request;
  request.type = MessageType::kSelect;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kSelectResult));

  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(std::vector<swp::EncryptedDocument> docs,
                        swp::ReadDocumentList(&reader));
  DBPH_RETURN_IF_ERROR(VerifyResultTrailer(query.relation, &query.trapdoor,
                                           docs, &reader,
                                           /*require_complete=*/false));
  return docs;
}

Result<std::vector<std::vector<swp::EncryptedDocument>>>
Client::RemoteSelectBatch(const std::vector<core::EncryptedQuery>& queries) {
  std::vector<std::vector<swp::EncryptedDocument>> results;
  results.reserve(queries.size());
  // The wire protocol bounds a batch at kMaxBatchParts sub-envelopes;
  // larger query lists transparently become multiple round trips.
  for (size_t begin = 0; begin < queries.size();
       begin += protocol::kMaxBatchParts) {
    size_t end =
        std::min<size_t>(queries.size(), begin + protocol::kMaxBatchParts);
    std::vector<Envelope> parts;
    parts.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      Envelope part;
      part.type = MessageType::kSelect;
      queries[i].AppendTo(&part.payload);
      parts.push_back(std::move(part));
    }
    Envelope request;
    request.type = MessageType::kBatchRequest;
    request.payload = protocol::SerializeBatchPayload(parts);
    DBPH_ASSIGN_OR_RETURN(
        Envelope response,
        Call(transport_, request, MessageType::kBatchResponse));

    DBPH_ASSIGN_OR_RETURN(std::vector<Envelope> replies,
                          protocol::ParseBatchPayload(response.payload));
    if (replies.size() != end - begin) {
      return Status::DataLoss("batch response count mismatch");
    }
    for (size_t k = 0; k < replies.size(); ++k) {
      const Envelope& reply = replies[k];
      if (reply.type == MessageType::kError) {
        return protocol::ParseErrorEnvelope(reply);
      }
      if (reply.type != MessageType::kSelectResult) {
        return Status::DataLoss("unexpected sub-response type in batch");
      }
      ByteReader reader(reply.payload);
      DBPH_ASSIGN_OR_RETURN(std::vector<swp::EncryptedDocument> docs,
                            swp::ReadDocumentList(&reader));
      const core::EncryptedQuery& query = queries[begin + k];
      DBPH_RETURN_IF_ERROR(VerifyResultTrailer(query.relation,
                                               &query.trapdoor, docs, &reader,
                                               /*require_complete=*/false));
      results.push_back(std::move(docs));
    }
  }
  return results;
}

Result<std::vector<rel::Relation>> Client::SelectBatch(
    const std::string& relation,
    const std::vector<std::pair<std::string, rel::Value>>& queries) {
  if (queries.empty()) return std::vector<rel::Relation>{};
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  std::vector<core::EncryptedQuery> encrypted;
  encrypted.reserve(queries.size());
  for (const auto& [attribute, value] : queries) {
    DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                          ph->EncryptQuery(relation, attribute, value));
    encrypted.push_back(std::move(query));
  }
  DBPH_ASSIGN_OR_RETURN(auto batches, RemoteSelectBatch(encrypted));

  std::vector<rel::Relation> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    DBPH_ASSIGN_OR_RETURN(
        rel::Relation filtered,
        ph->DecryptAndFilter(batches[i], queries[i].first, queries[i].second));
    results.push_back(std::move(filtered));
  }
  return results;
}

Result<rel::Relation> Client::Select(const std::string& relation,
                                     const std::string& attribute,
                                     const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  DBPH_ASSIGN_OR_RETURN(auto docs, RemoteSelect(query));
  return ph->DecryptAndFilter(docs, attribute, value);
}

Result<rel::Relation> Client::SelectConjunction(
    const std::string& relation,
    const std::vector<std::pair<std::string, rel::Value>>& terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("conjunction needs at least one term");
  }
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));

  // Fetch per-term results, intersect by decrypted tuple identity, and
  // filter exactly.
  rel::Relation result("result", ph->schema());
  rel::Conjunction conjunction;
  for (const auto& [attribute, value] : terms) {
    DBPH_ASSIGN_OR_RETURN(
        rel::ExactMatch match,
        rel::MakeExactMatch(ph->schema(), attribute, value));
    conjunction.Add(std::move(match));
  }

  // All per-term trapdoors go out in one batch round trip; the server
  // evaluates them in parallel. Intersect the match sets by ciphertext
  // identity (the server returns stored documents verbatim, so equal
  // bytes = same record), then decrypt only the survivors of the
  // smallest set and filter exactly — SWP false positives drop here.
  std::vector<core::EncryptedQuery> queries;
  queries.reserve(terms.size());
  for (const auto& [attribute, value] : terms) {
    DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                          ph->EncryptQuery(relation, attribute, value));
    queries.push_back(std::move(query));
  }
  DBPH_ASSIGN_OR_RETURN(auto batches, RemoteSelectBatch(queries));

  size_t smallest = 0;
  for (size_t i = 1; i < batches.size(); ++i) {
    if (batches[i].size() < batches[smallest].size()) smallest = i;
  }
  std::vector<std::set<Bytes>> other_sets;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (i == smallest) continue;
    std::set<Bytes> identities;
    for (const auto& doc : batches[i]) {
      Bytes serialized;
      doc.AppendTo(&serialized);
      identities.insert(std::move(serialized));
    }
    other_sets.push_back(std::move(identities));
  }
  for (const auto& doc : batches[smallest]) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    bool in_all = true;
    for (const auto& identities : other_sets) {
      if (identities.count(serialized) == 0) {
        in_all = false;
        break;
      }
    }
    if (!in_all) continue;
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, ph->DecryptTuple(doc));
    if (conjunction.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(result.Insert(std::move(tuple)));
    }
  }
  return result;
}

Result<protocol::PlanReport> Client::Explain(const std::string& relation,
                                             const std::string& attribute,
                                             const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  Envelope request;
  request.type = MessageType::kExplain;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kExplainResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(protocol::PlanReport report,
                        protocol::PlanReport::ReadFrom(&reader));
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes after plan");
  return report;
}

Status Client::Insert(const std::string& relation,
                      const std::vector<rel::Tuple>& tuples) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  Envelope request;
  request.type = MessageType::kAppendTuples;
  AppendLengthPrefixed(&request.payload, ToBytes(relation));
  AppendUint32(&request.payload, static_cast<uint32_t>(tuples.size()));
  // The mirror tracks the server whenever it exists, whatever the
  // verify mode — a mutation issued while verification is Off must not
  // desync state that a later switch back to Warn/Enforce relies on.
  std::vector<MerkleTree::Hash> new_leaves;
  const bool track = integrity_.count(relation) > 0;
  if (verify_mode_ == VerifyMode::kEnforce && !track) {
    return Status::DataLoss(
        "integrity: inserting without local state; run SyncIntegrity() "
        "after Adopt()");
  }
  if (track) new_leaves.reserve(tuples.size());
  for (const rel::Tuple& tuple : tuples) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          ph->EncryptTuple(tuple, rng_));
    // Hash the exact bytes just appended to the request — the same
    // bytes the server will store and leaf-hash — with no second
    // serialization.
    size_t doc_begin = request.payload.size();
    doc.AppendTo(&request.payload);
    if (track) {
      new_leaves.push_back(
          MerkleTree::LeafHash(request.payload.data() + doc_begin,
                               request.payload.size() - doc_begin));
    }
  }
  // The search delta rides in the same request: the (tag -> positions)
  // pairs these tuples contribute at the leaf positions they land on.
  std::vector<crypto::SearchTree::Entry> search_delta;
  uint64_t append_begin = 0;
  if (track) {
    append_begin = integrity_.at(relation).tree.size();
    DBPH_ASSIGN_OR_RETURN(
        search_delta, BuildSearchEntries(*ph, relation, tuples, append_begin));
    protocol::AppendSearchEntries(search_delta, &request.payload);
  }
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kAppendOk));
  (void)response;
  if (track) {
    // Mirror the append (the server stores exactly these bytes, in this
    // order). Every append is an epoch, even an empty one — the server
    // applies the same rule. The root is re-blessed only with
    // verification on: Off promises the PR-4 wire behavior (no extra
    // round trips), and the next attested mutation re-signs anyway.
    IntegrityState& state = integrity_.at(relation);
    for (const auto& leaf : new_leaves) state.tree.AppendLeaf(leaf);
    DBPH_RETURN_IF_ERROR(state.search.ApplyAppendDelta(
        search_delta, append_begin, append_begin + tuples.size()));
    ++state.epoch;
    if (verify_mode_ != VerifyMode::kOff) {
      DBPH_RETURN_IF_ERROR(AttestCurrentRoot(relation));
    }
  }
  return Status::OK();
}

Result<size_t> Client::DeleteWhere(const std::string& relation,
                                   const std::string& attribute,
                                   const rel::Value& value) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  // Refuse before anything reaches the wire: once the server deletes,
  // an unanchored session could neither verify the manifest nor keep
  // the attested root current.
  if (verify_mode_ == VerifyMode::kEnforce &&
      integrity_.count(relation) == 0) {
    return Status::DataLoss(
        "integrity: deleting without local state; run SyncIntegrity() "
        "after Adopt()");
  }
  DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                        ph->EncryptQuery(relation, attribute, value));
  Envelope request;
  request.type = MessageType::kDeleteWhere;
  query.AppendTo(&request.payload);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kDeleteResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t removed, reader.ReadUint32());
  DBPH_RETURN_IF_ERROR(ApplyDeleteManifest(relation, query.trapdoor,
                                           static_cast<size_t>(removed),
                                           &reader));
  return static_cast<size_t>(removed);
}

Result<rel::Relation> Client::Recall(const std::string& relation) {
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph, SchemeFor(relation));
  Envelope request;
  request.type = MessageType::kFetchRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kFetchResult));

  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());
  std::vector<swp::EncryptedDocument> docs;
  docs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          swp::EncryptedDocument::ReadFrom(&reader));
    docs.push_back(std::move(doc));
  }
  // Recall is the completeness case: the proof must cover positions
  // [0, n) — the server cannot withhold a single row undetected.
  DBPH_RETURN_IF_ERROR(VerifyResultTrailer(relation, /*trapdoor=*/nullptr,
                                           docs, &reader,
                                           /*require_complete=*/true));
  rel::Relation out(relation, ph->schema());
  for (const auto& doc : docs) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, ph->DecryptTuple(doc));
    DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

Status Client::Flush() {
  Envelope request;
  request.type = MessageType::kFlush;
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kFlushOk));
  (void)response;
  return Status::OK();
}

Result<obs::RegistrySnapshot> Client::Stats() {
  Envelope request;
  request.type = MessageType::kStats;
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kStatsResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(obs::RegistrySnapshot snapshot,
                        obs::RegistrySnapshot::ReadFrom(&reader));
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after stats snapshot");
  }
  return snapshot;
}

Result<obs::leakage::LeakageReport> Client::LeakageReport() {
  Envelope request;
  request.type = MessageType::kLeakageReport;
  DBPH_ASSIGN_OR_RETURN(
      Envelope response,
      Call(transport_, request, MessageType::kLeakageReportResult));
  ByteReader reader(response.payload);
  DBPH_ASSIGN_OR_RETURN(obs::leakage::LeakageReport report,
                        obs::leakage::LeakageReport::ReadFrom(&reader));
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after leakage report");
  }
  return report;
}

Status Client::Drop(const std::string& relation) {
  Envelope request;
  request.type = MessageType::kDropRelation;
  request.payload = ToBytes(relation);
  DBPH_ASSIGN_OR_RETURN(Envelope response,
                        Call(transport_, request, MessageType::kDropOk));
  (void)response;
  integrity_.erase(relation);
  return Status::OK();
}

}  // namespace client
}  // namespace dbph
