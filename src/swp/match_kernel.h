#ifndef DBPH_SWP_MATCH_KERNEL_H_
#define DBPH_SWP_MATCH_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/hmac.h"
#include "swp/params.h"
#include "swp/scheme.h"

namespace dbph {
namespace swp {

/// \brief One candidate ciphertext word inside a contiguous arena:
/// `length` bytes starting at `offset`. The storage layer keeps every
/// relation's word ciphertexts in such an arena so a scan streams
/// linearly instead of pointer-chasing per-word heap vectors.
struct WordRef {
  uint32_t offset = 0;
  uint32_t length = 0;

  bool operator==(const WordRef& other) const = default;
};

/// \brief Walks a serialized EncryptedDocument and appends one WordRef
/// per word slot — offsets into `serialized` itself, nothing copied,
/// nothing allocated beyond `out`'s growth. Returns the word count.
///
/// Performs exactly the bounds checks EncryptedDocument::ReadFrom does,
/// so it fails on precisely the inputs ReadFrom fails on (callers that
/// need ReadFrom's exact error status re-parse on failure; the scan
/// paths do).
Result<size_t> CollectWordRefs(const Bytes& serialized,
                               std::vector<WordRef>* out);

/// \brief The hot-scan matcher: everything derivable from a (params,
/// trapdoor) pair, computed once and reused across every candidate word
/// of a scan — the precomputed HMAC key schedule (two SHA-256
/// compressions per eval instead of four plus a key-schedule rebuild)
/// and the XOR/message scratch buffers (zero per-word allocations).
///
/// Matches()/MatchMany() return results bit-identical to
/// MatchCipherWord (which is now a thin wrapper over this class); the
/// equivalence is asserted exhaustively in tests/swp_match_kernel_test.
///
/// Constant-time invariant: like the scalar path, the check-part
/// comparison accumulates a difference mask over all check bytes —
/// batching changes the schedule of PRF evaluations, never the
/// data-dependence of the comparison. A word's match time depends only
/// on lengths, not on how many check bytes happened to agree.
///
/// Not thread-safe (owns scratch); build one per scan shard.
class MatchContext {
 public:
  MatchContext(const SwpParams& params, const Trapdoor& trapdoor);

  /// Single-word check, zero allocations. Bit-identical to
  /// MatchCipherWord(params, trapdoor, cipher).
  bool Matches(const uint8_t* cipher, size_t len);
  bool Matches(const Bytes& cipher) {
    return Matches(cipher.data(), cipher.size());
  }

  /// \brief Batched check of `refs.size()` candidate words against the
  /// arena: match_out[i] is 1 when refs[i] matches, else 0. PRF
  /// evaluations run through the multi-way compression kernel, eight
  /// lanes at a time, with zero per-word allocations.
  ///
  /// Hostile refs are safe: a ref whose length differs from the
  /// trapdoor target never evaluates (exactly like the scalar length
  /// check), and a ref extending past the arena — malformed offsets
  /// from an untrusted source — is treated as a non-match without
  /// touching out-of-bounds memory. Returns the number of matches.
  size_t MatchMany(std::span<const uint8_t> arena,
                   std::span<const WordRef> refs, uint8_t* match_out);

  /// PRF evaluations performed since construction (the per-query
  /// `match_evals` the planner and obs stack account).
  uint64_t match_evals() const { return match_evals_; }

  const SwpParams& params() const { return params_; }

 private:
  bool EvalOne(const uint8_t* cipher);

  SwpParams params_;
  Bytes target_;
  crypto::HmacSha256Precomputed schedule_;
  size_t left_len_ = 0;    ///< target bytes before the check part
  size_t msg_len_ = 0;     ///< PRF message: left part + 4-byte counter
  bool viable_ = false;    ///< target longer than the check part
  uint64_t match_evals_ = 0;
  /// Lane-major scratch for batched PRF messages and digests.
  std::vector<uint8_t> scratch_;
  std::vector<uint32_t> candidates_;
};

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_MATCH_KERNEL_H_
