#include "swp/final_scheme.h"

#include "common/macros.h"
#include "swp/search.h"
#include "crypto/prf.h"

namespace dbph {
namespace swp {

Bytes FinalScheme::LeftPartKey(const Bytes& left) const {
  crypto::Prf f(keys_.word_key_key);
  return f.Eval(left, 32);
}

Result<Bytes> FinalScheme::EncryptWord(const crypto::StreamGenerator& stream,
                                       uint64_t position,
                                       const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  DBPH_ASSIGN_OR_RETURN(Bytes x, preencrypt_.Encrypt(word));
  Bytes left(x.begin(), x.begin() + static_cast<long>(params_.left_length()));
  return Xor(x, MakePad(stream, position, LeftPartKey(left)));
}

Result<Trapdoor> FinalScheme::MakeTrapdoor(const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  DBPH_ASSIGN_OR_RETURN(Bytes x, preencrypt_.Encrypt(word));
  Bytes left(x.begin(), x.begin() + static_cast<long>(params_.left_length()));
  Trapdoor t;
  t.key = LeftPartKey(left);
  t.target = std::move(x);
  return t;
}

bool FinalScheme::Matches(const Trapdoor& trapdoor,
                          const Bytes& cipher) const {
  if (cipher.size() != params_.word_length) return false;
  return MatchCipherWord(params_, trapdoor, cipher);
}

Result<Bytes> FinalScheme::DecryptWord(const crypto::StreamGenerator& stream,
                                       uint64_t position,
                                       const Bytes& cipher) const {
  DBPH_RETURN_IF_ERROR(CheckCipherLength(cipher));
  const size_t left_len = params_.left_length();

  Bytes s = stream.Block(position, left_len);
  Bytes left(left_len);
  for (size_t i = 0; i < left_len; ++i) left[i] = cipher[i] ^ s[i];

  crypto::Prf check(LeftPartKey(left));
  Bytes t = check.Eval(s, params_.check_length);
  Bytes right(params_.check_length);
  for (size_t i = 0; i < params_.check_length; ++i) {
    right[i] = cipher[left_len + i] ^ t[i];
  }
  return preencrypt_.Decrypt(Concat(left, right));
}

}  // namespace swp
}  // namespace dbph
