#ifndef DBPH_SWP_SEARCH_H_
#define DBPH_SWP_SEARCH_H_

#include <vector>

#include "crypto/hmac.h"
#include "swp/scheme.h"

namespace dbph {
namespace swp {

/// \brief An encrypted document: ordered ciphertext word slots plus the
/// nonce that seeded its word stream. The order carries no plaintext
/// meaning when the producer shuffles slots (the database PH does).
///
/// `tag` is an optional integrity MAC over (nonce | words), added by the
/// database PH when document authentication is enabled: the paper's Eve
/// is honest-but-curious, but a deployment should *detect* a server that
/// substitutes or splices ciphertexts. Empty = unauthenticated.
struct EncryptedDocument {
  Bytes nonce;
  std::vector<Bytes> words;
  Bytes tag;

  /// The MAC input: nonce and every word, length-delimited (so word
  /// boundaries are authenticated too, not just the concatenation).
  /// Reference layout only — tag computation streams through MacTag,
  /// which never materializes this buffer.
  Bytes MacInput() const;

  /// HMAC(key, MacInput()) without building MacInput(): the nonce and
  /// words stream incrementally into the precomputed schedule, so a tag
  /// check costs no serialization buffer and no key-schedule rebuild.
  /// Bit-identical to HmacSha256(key, MacInput()).
  Bytes MacTag(const crypto::HmacSha256Precomputed& mac_schedule) const;

  void AppendTo(Bytes* out) const;
  static Result<EncryptedDocument> ReadFrom(ByteReader* reader);
};

/// \brief Reads a count-prefixed document list (the wire shape shared by
/// select results, appends, and stored relations). The count comes from
/// untrusted input, so the reserve is capped by what the remaining
/// buffer could physically hold — kDocumentFramingBytes of framing
/// (nonce length, word count, tag length) per document minimum.
inline constexpr size_t kDocumentFramingBytes = 12;
Result<std::vector<EncryptedDocument>> ReadDocumentList(ByteReader* reader);

/// \brief The server-side match predicate, shared by all four schemes:
/// XOR the trapdoor target into the ciphertext and verify the check part
/// with the trapdoor key.
///
/// Deliberately a free function of (params, trapdoor, cipher) only — the
/// untrusted server holds no scheme keys, and this signature proves the
/// match needs none. False positives with probability 2^(-8m).
bool MatchCipherWord(const SwpParams& params, const Trapdoor& trapdoor,
                     const Bytes& cipher);

/// \brief Server-side scan of one document: slots whose ciphertext matches
/// the trapdoor. This is all an untrusted server can compute.
std::vector<size_t> SearchDocument(const SearchableScheme& scheme,
                                   const Trapdoor& trapdoor,
                                   const EncryptedDocument& doc);

/// \brief Keyless variant used by the server (word length may differ per
/// slot in variable-length mode; non-matching lengths never match).
std::vector<size_t> SearchDocument(const SwpParams& params,
                                   const Trapdoor& trapdoor,
                                   const EncryptedDocument& doc);

/// \brief Convenience: true when any slot matches.
bool DocumentContains(const SearchableScheme& scheme,
                      const Trapdoor& trapdoor,
                      const EncryptedDocument& doc);

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_SEARCH_H_
