#include "swp/search.h"

#include <algorithm>

#include "common/macros.h"
#include "swp/match_kernel.h"

namespace dbph {
namespace swp {

Bytes EncryptedDocument::MacInput() const {
  Bytes input;
  AppendLengthPrefixed(&input, nonce);
  AppendUint32(&input, static_cast<uint32_t>(words.size()));
  for (const Bytes& w : words) AppendLengthPrefixed(&input, w);
  return input;
}

Bytes EncryptedDocument::MacTag(
    const crypto::HmacSha256Precomputed& mac_schedule) const {
  crypto::HmacSha256Stream stream(&mac_schedule);
  stream.UpdateUint32(static_cast<uint32_t>(nonce.size()));
  stream.Update(nonce);
  stream.UpdateUint32(static_cast<uint32_t>(words.size()));
  for (const Bytes& w : words) {
    stream.UpdateUint32(static_cast<uint32_t>(w.size()));
    stream.Update(w);
  }
  return stream.Finish();
}

void EncryptedDocument::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, nonce);
  AppendUint32(out, static_cast<uint32_t>(words.size()));
  for (const Bytes& w : words) AppendLengthPrefixed(out, w);
  AppendLengthPrefixed(out, tag);
}

Result<EncryptedDocument> EncryptedDocument::ReadFrom(ByteReader* reader) {
  EncryptedDocument doc;
  DBPH_ASSIGN_OR_RETURN(doc.nonce, reader->ReadLengthPrefixed());
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  // Every word costs at least a 4-byte length prefix, so a count the
  // remaining buffer cannot hold is corrupt; never reserve for it.
  doc.words.reserve(std::min<size_t>(count, reader->remaining() / 4));
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes w, reader->ReadLengthPrefixed());
    doc.words.push_back(std::move(w));
  }
  DBPH_ASSIGN_OR_RETURN(doc.tag, reader->ReadLengthPrefixed());
  return doc;
}

Result<std::vector<EncryptedDocument>> ReadDocumentList(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  std::vector<EncryptedDocument> docs;
  docs.reserve(
      std::min<size_t>(count, reader->remaining() / kDocumentFramingBytes));
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(EncryptedDocument doc,
                          EncryptedDocument::ReadFrom(reader));
    docs.push_back(std::move(doc));
  }
  return docs;
}

bool MatchCipherWord(const SwpParams& params, const Trapdoor& trapdoor,
                     const Bytes& cipher) {
  // Thin wrapper over the scan kernel: one-shot contexts still beat the
  // old path (two compressions instead of four, no subvector copies),
  // and every caller shares one match implementation. Scans that check
  // many words against one trapdoor build a MatchContext once instead.
  MatchContext context(params, trapdoor);
  return context.Matches(cipher);
}

std::vector<size_t> SearchDocument(const SwpParams& params,
                                   const Trapdoor& trapdoor,
                                   const EncryptedDocument& doc) {
  std::vector<size_t> matches;
  for (size_t i = 0; i < doc.words.size(); ++i) {
    if (MatchCipherWord(params, trapdoor, doc.words[i])) matches.push_back(i);
  }
  return matches;
}

std::vector<size_t> SearchDocument(const SearchableScheme& scheme,
                                   const Trapdoor& trapdoor,
                                   const EncryptedDocument& doc) {
  std::vector<size_t> matches;
  for (size_t i = 0; i < doc.words.size(); ++i) {
    if (scheme.Matches(trapdoor, doc.words[i])) matches.push_back(i);
  }
  return matches;
}

bool DocumentContains(const SearchableScheme& scheme,
                      const Trapdoor& trapdoor,
                      const EncryptedDocument& doc) {
  for (const Bytes& w : doc.words) {
    if (scheme.Matches(trapdoor, w)) return true;
  }
  return false;
}

}  // namespace swp
}  // namespace dbph
