#include "swp/search.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace swp {

Bytes EncryptedDocument::MacInput() const {
  Bytes input;
  AppendLengthPrefixed(&input, nonce);
  AppendUint32(&input, static_cast<uint32_t>(words.size()));
  for (const Bytes& w : words) AppendLengthPrefixed(&input, w);
  return input;
}

void EncryptedDocument::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, nonce);
  AppendUint32(out, static_cast<uint32_t>(words.size()));
  for (const Bytes& w : words) AppendLengthPrefixed(out, w);
  AppendLengthPrefixed(out, tag);
}

Result<EncryptedDocument> EncryptedDocument::ReadFrom(ByteReader* reader) {
  EncryptedDocument doc;
  DBPH_ASSIGN_OR_RETURN(doc.nonce, reader->ReadLengthPrefixed());
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  // Every word costs at least a 4-byte length prefix, so a count the
  // remaining buffer cannot hold is corrupt; never reserve for it.
  doc.words.reserve(std::min<size_t>(count, reader->remaining() / 4));
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes w, reader->ReadLengthPrefixed());
    doc.words.push_back(std::move(w));
  }
  DBPH_ASSIGN_OR_RETURN(doc.tag, reader->ReadLengthPrefixed());
  return doc;
}

Result<std::vector<EncryptedDocument>> ReadDocumentList(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  std::vector<EncryptedDocument> docs;
  docs.reserve(
      std::min<size_t>(count, reader->remaining() / kDocumentFramingBytes));
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(EncryptedDocument doc,
                          EncryptedDocument::ReadFrom(reader));
    docs.push_back(std::move(doc));
  }
  return docs;
}

bool MatchCipherWord(const SwpParams& params, const Trapdoor& trapdoor,
                     const Bytes& cipher) {
  if (cipher.size() != trapdoor.target.size()) return false;
  if (trapdoor.target.size() <= params.check_length) return false;
  const size_t left_len = trapdoor.target.size() - params.check_length;
  Bytes d = Xor(cipher, trapdoor.target);
  Bytes s(d.begin(), d.begin() + static_cast<long>(left_len));
  Bytes t(d.begin() + static_cast<long>(left_len), d.end());
  crypto::Prf check(trapdoor.key);
  return ConstantTimeEqual(t, check.Eval(s, params.check_length));
}

std::vector<size_t> SearchDocument(const SwpParams& params,
                                   const Trapdoor& trapdoor,
                                   const EncryptedDocument& doc) {
  std::vector<size_t> matches;
  for (size_t i = 0; i < doc.words.size(); ++i) {
    if (MatchCipherWord(params, trapdoor, doc.words[i])) matches.push_back(i);
  }
  return matches;
}

std::vector<size_t> SearchDocument(const SearchableScheme& scheme,
                                   const Trapdoor& trapdoor,
                                   const EncryptedDocument& doc) {
  std::vector<size_t> matches;
  for (size_t i = 0; i < doc.words.size(); ++i) {
    if (scheme.Matches(trapdoor, doc.words[i])) matches.push_back(i);
  }
  return matches;
}

bool DocumentContains(const SearchableScheme& scheme,
                      const Trapdoor& trapdoor,
                      const EncryptedDocument& doc) {
  for (const Bytes& w : doc.words) {
    if (scheme.Matches(trapdoor, w)) return true;
  }
  return false;
}

}  // namespace swp
}  // namespace dbph
