#ifndef DBPH_SWP_BASIC_SCHEME_H_
#define DBPH_SWP_BASIC_SCHEME_H_

#include <string>

#include "swp/scheme.h"

namespace dbph {
namespace swp {

/// \brief Scheme I of SWP: C_i = W_i XOR <S_i, F_{k''}(S_i)> with one
/// global check key k''.
///
/// Searching requires revealing k'' — after a single query the server can
/// probe every position for any candidate word. Kept as a pedagogical
/// baseline and negative control for the games; never used by the
/// database PH.
class BasicScheme : public SearchableScheme {
 public:
  BasicScheme(SwpParams params, SwpKeys keys)
      : SearchableScheme(params, std::move(keys)) {}

  std::string Name() const override { return "swp-basic"; }

  Result<Bytes> EncryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& word) const override;
  Result<Trapdoor> MakeTrapdoor(const Bytes& word) const override;
  bool Matches(const Trapdoor& trapdoor, const Bytes& cipher) const override;
  bool SupportsDecryption() const override { return true; }
  Result<Bytes> DecryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& cipher) const override;
  bool HidesQueries() const override { return false; }
};

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_BASIC_SCHEME_H_
