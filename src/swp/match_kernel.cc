#include "swp/match_kernel.h"

#include <algorithm>
#include <cstring>

namespace dbph {
namespace swp {

namespace {

constexpr size_t kLanes = 8;
constexpr size_t kDigest = crypto::HmacSha256Precomputed::kDigestSize;

inline uint32_t Load32BE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

}  // namespace

Result<size_t> CollectWordRefs(const Bytes& serialized,
                               std::vector<WordRef>* out) {
  const uint8_t* data = serialized.data();
  const size_t size = serialized.size();
  size_t pos = 0;
  const auto read_u32 = [&](uint32_t* v) {
    if (size - pos < 4) return false;
    *v = Load32BE(data + pos);
    pos += 4;
    return true;
  };
  const auto skip = [&](size_t n) {
    if (size - pos < n) return false;
    pos += n;
    return true;
  };

  uint32_t nonce_len = 0;
  if (!read_u32(&nonce_len) || !skip(nonce_len)) {
    return Status::DataLoss("truncated document nonce");
  }
  uint32_t count = 0;
  if (!read_u32(&count)) return Status::DataLoss("truncated word count");
  out->reserve(out->size() + std::min<size_t>(count, (size - pos) / 4));
  const size_t first = out->size();
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t word_len = 0;
    if (!read_u32(&word_len) || size - pos < word_len) {
      out->resize(first);
      return Status::DataLoss("truncated word slot");
    }
    out->push_back({static_cast<uint32_t>(pos), word_len});
    pos += word_len;
  }
  uint32_t tag_len = 0;
  if (!read_u32(&tag_len) || !skip(tag_len)) {
    out->resize(first);
    return Status::DataLoss("truncated document tag");
  }
  return static_cast<size_t>(count);
}

MatchContext::MatchContext(const SwpParams& params, const Trapdoor& trapdoor)
    : params_(params), target_(trapdoor.target), schedule_(trapdoor.key) {
  viable_ = target_.size() > params_.check_length;
  if (viable_) {
    left_len_ = target_.size() - params_.check_length;
    msg_len_ = left_len_ + 4;
    // Lane-major message scratch plus one digest slab for the batch.
    scratch_.resize(kLanes * msg_len_ + kLanes * kDigest);
  }
}

bool MatchContext::EvalOne(const uint8_t* cipher) {
  ++match_evals_;
  uint8_t* msg = scratch_.data();
  for (size_t i = 0; i < left_len_; ++i) msg[i] = cipher[i] ^ target_[i];
  // T_0 covers check parts up to a digest; longer check parts extend in
  // counter mode exactly like HmacSha256Expand. The comparison
  // accumulates over every check byte — no early exit, constant time in
  // the contents.
  uint8_t digest[kDigest];
  uint8_t diff = 0;
  size_t produced = 0;
  uint32_t counter = 0;
  while (produced < params_.check_length) {
    uint8_t* ctr = msg + left_len_;
    ctr[0] = static_cast<uint8_t>(counter >> 24);
    ctr[1] = static_cast<uint8_t>(counter >> 16);
    ctr[2] = static_cast<uint8_t>(counter >> 8);
    ctr[3] = static_cast<uint8_t>(counter);
    ++counter;
    schedule_.Eval(msg, msg_len_, digest);
    const size_t take =
        std::min<size_t>(kDigest, params_.check_length - produced);
    const uint8_t* check = cipher + left_len_ + produced;
    const uint8_t* target_check = target_.data() + left_len_ + produced;
    for (size_t j = 0; j < take; ++j) {
      diff |= static_cast<uint8_t>(digest[j] ^ check[j] ^ target_check[j]);
    }
    produced += take;
  }
  return diff == 0;
}

bool MatchContext::Matches(const uint8_t* cipher, size_t len) {
  if (len != target_.size() || !viable_) return false;
  return EvalOne(cipher);
}

size_t MatchContext::MatchMany(std::span<const uint8_t> arena,
                               std::span<const WordRef> refs,
                               uint8_t* match_out) {
  std::memset(match_out, 0, refs.size());
  if (!viable_) return 0;
  const size_t target_len = target_.size();

  // Pass 1: length + bounds filter. Only in-bounds refs of exactly the
  // trapdoor's length ever reach the PRF — the same words the scalar
  // path would have evaluated.
  candidates_.clear();
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].length != target_len) continue;
    const uint64_t end =
        static_cast<uint64_t>(refs[i].offset) + refs[i].length;
    if (end > arena.size()) continue;  // hostile offset: never a match
    candidates_.push_back(static_cast<uint32_t>(i));
  }
  if (candidates_.empty()) return 0;

  // The wide check part falls back to the scalar counter-mode loop.
  if (params_.check_length > kDigest) {
    size_t matched = 0;
    for (uint32_t i : candidates_) {
      if (EvalOne(arena.data() + refs[i].offset)) {
        match_out[i] = 1;
        ++matched;
      }
    }
    return matched;
  }

  // Pass 2: batched PRF, eight lanes a pass. Messages are built into
  // lane-major scratch ((cipher XOR target) left part | counter 0),
  // digested by the multi-way compression kernel, then compared against
  // each word's check part with an accumulated difference mask.
  uint8_t* msgs = scratch_.data();
  uint8_t* digests = scratch_.data() + kLanes * msg_len_;
  const uint8_t* lane_ptrs[kLanes];
  size_t matched = 0;
  for (size_t base = 0; base < candidates_.size(); base += kLanes) {
    const size_t lanes = std::min(kLanes, candidates_.size() - base);
    for (size_t l = 0; l < lanes; ++l) {
      const uint8_t* cipher = arena.data() + refs[candidates_[base + l]].offset;
      uint8_t* msg = msgs + l * msg_len_;
      for (size_t i = 0; i < left_len_; ++i) msg[i] = cipher[i] ^ target_[i];
      std::memset(msg + left_len_, 0, 4);  // counter 0
      lane_ptrs[l] = msg;
    }
    schedule_.EvalMany(lane_ptrs, msg_len_, lanes, digests);
    match_evals_ += lanes;
    for (size_t l = 0; l < lanes; ++l) {
      const uint32_t ref_index = candidates_[base + l];
      const uint8_t* cipher = arena.data() + refs[ref_index].offset;
      const uint8_t* digest = digests + l * kDigest;
      const uint8_t* check = cipher + left_len_;
      const uint8_t* target_check = target_.data() + left_len_;
      uint8_t diff = 0;
      for (size_t j = 0; j < params_.check_length; ++j) {
        diff |= static_cast<uint8_t>(digest[j] ^ check[j] ^ target_check[j]);
      }
      if (diff == 0) {
        match_out[ref_index] = 1;
        ++matched;
      }
    }
  }
  return matched;
}

}  // namespace swp
}  // namespace dbph
