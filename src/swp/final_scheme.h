#ifndef DBPH_SWP_FINAL_SCHEME_H_
#define DBPH_SWP_FINAL_SCHEME_H_

#include <string>

#include "crypto/feistel.h"
#include "swp/scheme.h"

namespace dbph {
namespace swp {

/// \brief Scheme IV of SWP — the "final scheme" the database privacy
/// homomorphism is built on.
///
/// Encryption of word W at stream position i:
///   X = E''(W)                 deterministic pre-encryption (Feistel PRP)
///   <L | R> = X                |L| = n - m, |R| = m
///   k_L = f_{k'}(L)            per-word key from the LEFT PART ONLY
///   C = X XOR <S_i, F_{k_L}(S_i)>
///
/// Search trapdoor for W: (X, k_L). The server XORs C with X and verifies
/// the check half — matching any occurrence at any position, with false-
/// positive probability 2^(-8m).
///
/// Decryption by the data owner regenerates S_i, recovers L = C_L XOR S_i,
/// re-derives k_L, strips the check pad, and inverts E''. Keying off L
/// alone is exactly what makes this possible (the fix over scheme III).
class FinalScheme : public SearchableScheme {
 public:
  FinalScheme(SwpParams params, SwpKeys keys)
      : SearchableScheme(params, std::move(keys)),
        preencrypt_(keys_.preencrypt_key) {}

  std::string Name() const override { return "swp-final"; }

  Result<Bytes> EncryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& word) const override;
  Result<Trapdoor> MakeTrapdoor(const Bytes& word) const override;
  bool Matches(const Trapdoor& trapdoor, const Bytes& cipher) const override;
  bool SupportsDecryption() const override { return true; }
  Result<Bytes> DecryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& cipher) const override;
  bool HidesQueries() const override { return true; }

 private:
  /// k_L = f_{k'}(left part of the pre-encrypted word).
  Bytes LeftPartKey(const Bytes& left) const;

  crypto::FeistelPrp preencrypt_;
};

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_FINAL_SCHEME_H_
