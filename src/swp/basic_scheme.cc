#include "swp/basic_scheme.h"

#include "common/macros.h"
#include "swp/search.h"

namespace dbph {
namespace swp {

Result<Bytes> BasicScheme::EncryptWord(const crypto::StreamGenerator& stream,
                                       uint64_t position,
                                       const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  return Xor(word, MakePad(stream, position, keys_.check_key));
}

Result<Trapdoor> BasicScheme::MakeTrapdoor(const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  Trapdoor t;
  t.target = word;
  t.key = keys_.check_key;  // the global key leaks with the first query
  return t;
}

bool BasicScheme::Matches(const Trapdoor& trapdoor,
                          const Bytes& cipher) const {
  if (cipher.size() != params_.word_length) return false;
  return MatchCipherWord(params_, trapdoor, cipher);
}

Result<Bytes> BasicScheme::DecryptWord(const crypto::StreamGenerator& stream,
                                       uint64_t position,
                                       const Bytes& cipher) const {
  DBPH_RETURN_IF_ERROR(CheckCipherLength(cipher));
  return Xor(cipher, MakePad(stream, position, keys_.check_key));
}

}  // namespace swp
}  // namespace dbph
