#include "swp/hidden_scheme.h"

#include "common/macros.h"
#include "swp/search.h"
#include "crypto/prf.h"

namespace dbph {
namespace swp {

Result<Bytes> HiddenScheme::EncryptWord(const crypto::StreamGenerator& stream,
                                        uint64_t position,
                                        const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  DBPH_ASSIGN_OR_RETURN(Bytes x, preencrypt_.Encrypt(word));
  crypto::Prf f(keys_.word_key_key);
  Bytes word_key = f.Eval(x, 32);
  return Xor(x, MakePad(stream, position, word_key));
}

Result<Trapdoor> HiddenScheme::MakeTrapdoor(const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  DBPH_ASSIGN_OR_RETURN(Bytes x, preencrypt_.Encrypt(word));
  crypto::Prf f(keys_.word_key_key);
  Trapdoor t;
  t.key = f.Eval(x, 32);
  t.target = std::move(x);  // only the pre-encryption leaves the client
  return t;
}

bool HiddenScheme::Matches(const Trapdoor& trapdoor,
                          const Bytes& cipher) const {
  if (cipher.size() != params_.word_length) return false;
  return MatchCipherWord(params_, trapdoor, cipher);
}

Result<Bytes> HiddenScheme::DecryptWord(const crypto::StreamGenerator&,
                                        uint64_t, const Bytes&) const {
  return Status::Unimplemented(
      "scheme III cannot decrypt: the check key depends on the whole "
      "pre-encrypted word (use the final scheme)");
}

}  // namespace swp
}  // namespace dbph
