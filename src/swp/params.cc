#include "swp/params.h"

#include <cmath>

#include "crypto/hkdf.h"

namespace dbph {
namespace swp {

double SwpParams::FalsePositiveProbability() const {
  return std::pow(2.0, -8.0 * static_cast<double>(check_length));
}

Status SwpParams::Validate() const {
  if (word_length < 2) {
    return Status::InvalidArgument("word_length must be >= 2");
  }
  if (check_length < 1) {
    return Status::InvalidArgument("check_length must be >= 1");
  }
  if (check_length >= word_length) {
    return Status::InvalidArgument("check_length must be < word_length");
  }
  return Status::OK();
}

SwpKeys SwpKeys::Derive(const Bytes& master) {
  SwpKeys keys;
  keys.preencrypt_key = crypto::DeriveSubkey(master, "swp/preencrypt");
  keys.word_key_key = crypto::DeriveSubkey(master, "swp/word-key");
  keys.check_key = crypto::DeriveSubkey(master, "swp/check");
  keys.stream_key = crypto::DeriveSubkey(master, "swp/stream");
  return keys;
}

}  // namespace swp
}  // namespace dbph
