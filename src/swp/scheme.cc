#include "swp/scheme.h"

#include "common/macros.h"
#include "swp/basic_scheme.h"
#include "swp/controlled_scheme.h"
#include "swp/final_scheme.h"
#include "swp/hidden_scheme.h"

namespace dbph {
namespace swp {

void Trapdoor::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, target);
  AppendLengthPrefixed(out, key);
}

Result<Trapdoor> Trapdoor::ReadFrom(ByteReader* reader) {
  Trapdoor t;
  DBPH_ASSIGN_OR_RETURN(t.target, reader->ReadLengthPrefixed());
  DBPH_ASSIGN_OR_RETURN(t.key, reader->ReadLengthPrefixed());
  return t;
}

Status SearchableScheme::CheckWordLength(const Bytes& word) const {
  if (word.size() != params_.word_length) {
    return Status::InvalidArgument(
        "word must be exactly " + std::to_string(params_.word_length) +
        " bytes, got " + std::to_string(word.size()));
  }
  return Status::OK();
}

Status SearchableScheme::CheckCipherLength(const Bytes& cipher) const {
  if (cipher.size() != params_.word_length) {
    return Status::InvalidArgument("ciphertext word has wrong length");
  }
  return Status::OK();
}

Bytes SearchableScheme::MakePad(const crypto::StreamGenerator& stream,
                                uint64_t position,
                                const Bytes& check_prf_key) const {
  Bytes s = stream.Block(position, params_.left_length());
  crypto::Prf check(check_prf_key);
  Bytes t = check.Eval(s, params_.check_length);
  return Concat(s, t);
}

const char* SchemeVariantName(SchemeVariant variant) {
  switch (variant) {
    case SchemeVariant::kBasic:
      return "swp-basic";
    case SchemeVariant::kControlled:
      return "swp-controlled";
    case SchemeVariant::kHidden:
      return "swp-hidden";
    case SchemeVariant::kFinal:
      return "swp-final";
  }
  return "?";
}

Result<std::unique_ptr<SearchableScheme>> CreateScheme(
    SchemeVariant variant, const SwpParams& params, const Bytes& master) {
  DBPH_RETURN_IF_ERROR(params.Validate());
  if (master.empty()) {
    return Status::InvalidArgument("empty master key");
  }
  SwpKeys keys = SwpKeys::Derive(master);
  std::unique_ptr<SearchableScheme> scheme;
  switch (variant) {
    case SchemeVariant::kBasic:
      scheme = std::make_unique<BasicScheme>(params, std::move(keys));
      break;
    case SchemeVariant::kControlled:
      scheme = std::make_unique<ControlledScheme>(params, std::move(keys));
      break;
    case SchemeVariant::kHidden:
      scheme = std::make_unique<HiddenScheme>(params, std::move(keys));
      break;
    case SchemeVariant::kFinal:
      scheme = std::make_unique<FinalScheme>(params, std::move(keys));
      break;
  }
  return scheme;
}

}  // namespace swp
}  // namespace dbph
