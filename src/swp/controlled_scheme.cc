#include "swp/controlled_scheme.h"

#include "common/macros.h"
#include "swp/search.h"

namespace dbph {
namespace swp {

Bytes ControlledScheme::WordKey(const Bytes& word) const {
  crypto::Prf f(keys_.word_key_key);
  return f.Eval(word, 32);
}

Result<Bytes> ControlledScheme::EncryptWord(
    const crypto::StreamGenerator& stream, uint64_t position,
    const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  return Xor(word, MakePad(stream, position, WordKey(word)));
}

Result<Trapdoor> ControlledScheme::MakeTrapdoor(const Bytes& word) const {
  DBPH_RETURN_IF_ERROR(CheckWordLength(word));
  Trapdoor t;
  t.target = word;  // plaintext query: scheme II does not hide queries
  t.key = WordKey(word);
  return t;
}

bool ControlledScheme::Matches(const Trapdoor& trapdoor,
                          const Bytes& cipher) const {
  if (cipher.size() != params_.word_length) return false;
  return MatchCipherWord(params_, trapdoor, cipher);
}

Result<Bytes> ControlledScheme::DecryptWord(const crypto::StreamGenerator&,
                                            uint64_t, const Bytes&) const {
  return Status::Unimplemented(
      "scheme II cannot decrypt: the check key depends on the whole word "
      "(use the final scheme)");
}

}  // namespace swp
}  // namespace dbph
