#ifndef DBPH_SWP_SCHEME_H_
#define DBPH_SWP_SCHEME_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/prf.h"
#include "swp/params.h"

namespace dbph {
namespace swp {

/// \brief A search trapdoor handed to the untrusted server.
///
/// For the hidden/final schemes `target` is the *pre-encrypted* word
/// E''(W); for the basic/controlled schemes it is the plaintext word
/// itself (which is precisely why those schemes do not hide queries —
/// see SearchableScheme::HidesQueries).
struct Trapdoor {
  Bytes target;
  Bytes key;  ///< the F key the server uses for the check part

  void AppendTo(Bytes* out) const;
  static Result<Trapdoor> ReadFrom(ByteReader* reader);
};

/// \brief Interface over the four Song–Wagner–Perrig constructions.
///
/// A scheme encrypts fixed-length words position by position against a
/// per-document pseudorandom stream (the caller supplies the
/// StreamGenerator seeded with the document nonce). The server, given a
/// trapdoor, can test any ciphertext word for equality with the queried
/// word — and learns nothing else (modulo each scheme's documented leak).
///
/// Scheme overview (SWP, IEEE S&P 2000):
///   I   Basic       — fixed check key; no pre-encryption; searching one
///                     word lets the server test *any* word (k'' global).
///   II  Controlled  — per-word check keys k_i = f_{k'}(W_i); trapdoor
///                     only unlocks the queried word; query is plaintext.
///   III Hidden      — scheme II over X = E''(W); queries hidden, but the
///                     data owner can no longer decrypt (k_i needs all of
///                     X).
///   IV  Final       — k_i = f_{k'}(L(X)) depends only on the left part,
///                     restoring decryptability while keeping queries
///                     hidden. This is the scheme the database PH uses.
class SearchableScheme {
 public:
  virtual ~SearchableScheme() = default;

  virtual std::string Name() const = 0;
  const SwpParams& params() const { return params_; }

  /// Encrypts the word at stream position `position` of a document.
  /// `word` must be exactly params().word_length bytes.
  virtual Result<Bytes> EncryptWord(const crypto::StreamGenerator& stream,
                                    uint64_t position,
                                    const Bytes& word) const = 0;

  /// Builds the search trapdoor for `word`.
  virtual Result<Trapdoor> MakeTrapdoor(const Bytes& word) const = 0;

  /// Server-side test: does `cipher` encrypt the trapdoor's word?
  /// Position independent; false positives with probability 2^(-8m).
  virtual bool Matches(const Trapdoor& trapdoor,
                       const Bytes& cipher) const = 0;

  /// Whether the data owner can decrypt ciphertext words (schemes I, IV).
  virtual bool SupportsDecryption() const = 0;

  /// Inverts EncryptWord. kUnimplemented for schemes II and III.
  virtual Result<Bytes> DecryptWord(const crypto::StreamGenerator& stream,
                                    uint64_t position,
                                    const Bytes& cipher) const = 0;

  /// Whether the trapdoor hides the queried word (schemes III, IV).
  virtual bool HidesQueries() const = 0;

 protected:
  SearchableScheme(SwpParams params, SwpKeys keys)
      : params_(params), keys_(std::move(keys)) {}

  Status CheckWordLength(const Bytes& word) const;
  Status CheckCipherLength(const Bytes& cipher) const;

  /// <S_i | F_k(S_i)>: the pad XORed onto (pre-encrypted) words.
  Bytes MakePad(const crypto::StreamGenerator& stream, uint64_t position,
                const Bytes& check_prf_key) const;

  SwpParams params_;
  SwpKeys keys_;
};

/// Which of the four SWP constructions to instantiate.
enum class SchemeVariant { kBasic, kControlled, kHidden, kFinal };

const char* SchemeVariantName(SchemeVariant variant);

/// \brief Factory: builds a scheme with subkeys derived from `master`.
Result<std::unique_ptr<SearchableScheme>> CreateScheme(
    SchemeVariant variant, const SwpParams& params, const Bytes& master);

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_SCHEME_H_
