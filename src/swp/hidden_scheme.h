#ifndef DBPH_SWP_HIDDEN_SCHEME_H_
#define DBPH_SWP_HIDDEN_SCHEME_H_

#include <string>

#include "crypto/feistel.h"
#include "swp/scheme.h"

namespace dbph {
namespace swp {

/// \brief Scheme III of SWP ("hidden searches"): scheme II applied to the
/// deterministic pre-encryption X = E''(W), so trapdoors no longer reveal
/// the queried word.
///
/// Decryption is still impossible (k_X depends on all of X); the final
/// scheme restores it by keying off the left part only.
class HiddenScheme : public SearchableScheme {
 public:
  HiddenScheme(SwpParams params, SwpKeys keys)
      : SearchableScheme(params, std::move(keys)),
        preencrypt_(keys_.preencrypt_key) {}

  std::string Name() const override { return "swp-hidden"; }

  Result<Bytes> EncryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& word) const override;
  Result<Trapdoor> MakeTrapdoor(const Bytes& word) const override;
  bool Matches(const Trapdoor& trapdoor, const Bytes& cipher) const override;
  bool SupportsDecryption() const override { return false; }
  Result<Bytes> DecryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& cipher) const override;
  bool HidesQueries() const override { return true; }

 private:
  crypto::FeistelPrp preencrypt_;
};

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_HIDDEN_SCHEME_H_
