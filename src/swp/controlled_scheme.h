#ifndef DBPH_SWP_CONTROLLED_SCHEME_H_
#define DBPH_SWP_CONTROLLED_SCHEME_H_

#include <string>

#include "swp/scheme.h"

namespace dbph {
namespace swp {

/// \brief Scheme II of SWP ("controlled searching"): per-word check keys
/// k_W = f_{k'}(W), so a trapdoor only unlocks occurrences of the queried
/// word.
///
/// The query itself is still transmitted in plaintext, and decryption is
/// impossible by construction (recovering the check half of W requires
/// k_W, which requires all of W). The final scheme fixes both.
class ControlledScheme : public SearchableScheme {
 public:
  ControlledScheme(SwpParams params, SwpKeys keys)
      : SearchableScheme(params, std::move(keys)) {}

  std::string Name() const override { return "swp-controlled"; }

  Result<Bytes> EncryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& word) const override;
  Result<Trapdoor> MakeTrapdoor(const Bytes& word) const override;
  bool Matches(const Trapdoor& trapdoor, const Bytes& cipher) const override;
  bool SupportsDecryption() const override { return false; }
  Result<Bytes> DecryptWord(const crypto::StreamGenerator& stream,
                            uint64_t position,
                            const Bytes& cipher) const override;
  bool HidesQueries() const override { return false; }

 protected:
  /// k_W = f_{k'}(W).
  Bytes WordKey(const Bytes& word) const;
};

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_CONTROLLED_SCHEME_H_
