#ifndef DBPH_SWP_PARAMS_H_
#define DBPH_SWP_PARAMS_H_

#include <cstddef>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace swp {

/// \brief Parameters of a Song–Wagner–Perrig word encryption.
///
/// Every word is exactly `word_length` bytes (the database PH pads values
/// to this length). The ciphertext of a word splits as
/// <left | check> with `check_length` check bytes; a server-side match
/// verifies the check part, so the false-positive probability per word is
/// 2^(-8 * check_length).
struct SwpParams {
  size_t word_length = 16;
  size_t check_length = 4;

  /// left part width n - m.
  size_t left_length() const { return word_length - check_length; }

  /// Per-word false-positive probability 2^(-8m).
  double FalsePositiveProbability() const;

  /// word_length >= 2, 1 <= check_length < word_length.
  Status Validate() const;

  bool operator==(const SwpParams& other) const = default;
};

/// \brief The independent subkeys of the SWP schemes, all derived from one
/// master key (HKDF labels keep them cryptographically separated).
///
///  - `preencrypt_key` keys the deterministic pre-encryption E'' (schemes
///    III/IV) realized as a length-preserving Feistel PRP;
///  - `word_key_key` is k', keying f that derives per-word keys k_i;
///  - `check_key` is the fixed F key of the basic scheme (scheme I);
///  - `stream_key` seeds the pseudorandom stream generator G.
struct SwpKeys {
  Bytes preencrypt_key;
  Bytes word_key_key;
  Bytes check_key;
  Bytes stream_key;

  static SwpKeys Derive(const Bytes& master);
};

}  // namespace swp
}  // namespace dbph

#endif  // DBPH_SWP_PARAMS_H_
