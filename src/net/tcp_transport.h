#ifndef DBPH_NET_TCP_TRANSPORT_H_
#define DBPH_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "client/client.h"
#include "common/bytes.h"
#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"
#include "protocol/messages.h"

namespace dbph {
namespace net {

/// \brief Blocking socket transport for Alex: one framed request out, one
/// framed response back, behind the existing client::Transport signature —
/// Client works over the wire with zero API change.
///
/// Failure model: transport-level errors surface as serialized kError
/// envelopes carrying kUnavailable, which Client's response parsing turns
/// into ordinary Status errors. Reconnect-and-retry happens only when the
/// failure struck *before* the request was fully on the wire; once the
/// request may have reached the server, the call fails instead of risking
/// a duplicated non-idempotent operation (at-most-once delivery).
class TcpTransport : public std::enable_shared_from_this<TcpTransport> {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    size_t max_frame_bytes = protocol::kMaxFrameBytes;
    /// Extra connect attempts per round trip after a send-side failure.
    int reconnect_attempts = 1;
  };

  /// Connects eagerly so configuration errors surface immediately.
  static Result<std::shared_ptr<TcpTransport>> Connect(Options options);
  static Result<std::shared_ptr<TcpTransport>> Connect(const std::string& host,
                                                       uint16_t port);

  ~TcpTransport();

  /// Sends one serialized envelope, returns the serialized response
  /// envelope (possibly a locally fabricated kError). Thread-safe: calls
  /// serialize on an internal mutex, one round trip at a time.
  Bytes RoundTrip(const Bytes& request);

  /// Keys-free health check: sends kPing with a fresh cookie, expects a
  /// kPong echoing it byte for byte.
  Status Ping();

  /// Adapter for client::Client; the lambda keeps this object alive.
  client::Transport AsTransport();

  void Close();
  bool connected() const;

 private:
  explicit TcpTransport(Options options) : options_(std::move(options)) {}

  Status EnsureConnectedLocked();
  Status SendFrameLocked(const Bytes& body);
  Result<Bytes> RecvFrameLocked();

  Options options_;
  mutable std::mutex mutex_;
  UniqueFd fd_;
};

}  // namespace net
}  // namespace dbph

#endif  // DBPH_NET_TCP_TRANSPORT_H_
