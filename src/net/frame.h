#ifndef DBPH_NET_FRAME_H_
#define DBPH_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "common/bytes.h"
#include "common/result.h"
#include "protocol/messages.h"

namespace dbph {
namespace net {

/// The TCP stream framing: each frame is a big-endian uint32 length
/// followed by that many body bytes (one serialized protocol::Envelope).
/// The length prefix is attacker-controlled input; both directions reject
/// anything above the cap before allocating a body buffer, so a hostile
/// peer can pin at most one frame's worth of memory per connection.

/// \brief Appends one frame (header + body) to `out`.
/// Fails if `body` exceeds `max_frame_bytes` — callers must not frame
/// what the peer is required to reject.
Status AppendFrame(Bytes* out, const Bytes& body,
                   size_t max_frame_bytes = protocol::kMaxFrameBytes);

/// \brief Decodes the 4-byte big-endian frame length prefix — the single
/// definition of the header format shared by every decoder.
size_t DecodeFrameLength(const uint8_t header[4]);

/// \brief Incremental decoder for the read side of a connection.
///
/// Feed raw stream bytes in arbitrary chunkings; complete frames come out
/// in arrival order (multiple frames per Feed is how pipelining works).
/// A declared length above the cap poisons the reader permanently: stream
/// framing cannot be trusted after a violation, so the connection must be
/// torn down.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = protocol::kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `n` stream bytes. Returns the poisoning error (once set,
  /// every later call fails with it too).
  Status Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame body, or nullopt when none is ready.
  std::optional<Bytes> NextFrame();

  /// True while complete frames are queued for NextFrame.
  bool HasBufferedFrame() const { return !ready_.empty(); }

  /// Bytes of the partially received frame (header + body so far).
  size_t partial_bytes() const { return header_.size() + body_.size(); }

  /// Total bytes held: queued complete frames plus the partial frame.
  /// The event loop's read-side backpressure bound.
  size_t buffered_bytes() const { return ready_bytes_ + partial_bytes(); }

  bool poisoned() const { return !error_.ok(); }

 private:
  size_t max_frame_bytes_;
  Status error_ = Status::OK();
  Bytes header_;          // up to 4 length-prefix bytes
  bool have_length_ = false;
  size_t expected_ = 0;   // body length once the header is complete
  Bytes body_;            // body bytes received so far
  std::deque<Bytes> ready_;
  size_t ready_bytes_ = 0;  // sum of sizes in ready_
};

/// \brief Buffering encoder for the write side of a connection.
///
/// Enqueue whole frames; FlushTo drains as much as a non-blocking fd
/// accepts and keeps the rest for the next writable event.
class FrameWriter {
 public:
  explicit FrameWriter(size_t max_frame_bytes = protocol::kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  Status Enqueue(const Bytes& body);
  bool HasPending() const { return offset_ < pending_.size(); }
  size_t pending_bytes() const { return pending_.size() - offset_; }

  /// Writes pending bytes to a non-blocking fd. Returns OK on progress or
  /// EAGAIN (check HasPending afterwards); an error means the connection
  /// is dead.
  Status FlushTo(int fd);

 private:
  size_t max_frame_bytes_;
  Bytes pending_;
  size_t offset_ = 0;
};

}  // namespace net
}  // namespace dbph

#endif  // DBPH_NET_FRAME_H_
