#ifndef DBPH_NET_NET_SERVER_H_
#define DBPH_NET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "protocol/messages.h"

namespace dbph {
namespace server {
class UntrustedServer;
}  // namespace server

namespace net {

struct NetServerOptions {
  /// Address to bind; loopback by default (Eve serving the open internet
  /// is an explicit opt-in).
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back with NetServer::port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Beyond this many live connections, new accepts are closed on the
  /// spot (the client sees EOF on its first read).
  size_t max_connections = 64;
  /// Connections silent for this long are reaped. 0 disables reaping.
  int idle_timeout_ms = 60 * 1000;
  /// Per-frame cap; defaults to the shared protocol constant. Tests
  /// tighten it to exercise the rejection path cheaply.
  size_t max_frame_bytes = protocol::kMaxFrameBytes;
  /// Backpressure threshold: while a connection's unflushed response
  /// bytes exceed this, its inbound frames stay queued and its socket is
  /// not read, so a peer that pipelines without reading throttles itself
  /// (TCP flow control) instead of growing the server's buffers. 0 =
  /// one max-size frame plus header slack.
  size_t max_pending_write_bytes = 0;
  /// Plaintext-HTTP metrics listener on the same event loop: -1 disables
  /// it (default), 0 binds an ephemeral port (read it back with
  /// NetServer::metrics_http_port()), >0 binds that port. Any GET is
  /// answered with the Prometheus text rendering of the server's metrics
  /// snapshot and the connection is closed. Bound to bind_address, so it
  /// stays loopback unless the frame port was opened up too.
  int metrics_port = -1;
  /// Dispatch worker threads. 0 (default) dispatches every frame inline
  /// on the event-loop thread (the historical behavior). With N > 0,
  /// complete frames are handed to N worker threads: snapshot reads
  /// (selects, all-select batches, EXPLAIN, fetch, stats, leakage, ping)
  /// then execute concurrently against the server's published snapshot,
  /// while mutating frames serialize on its single-writer dispatch lock.
  /// Per-connection response order is preserved by keeping at most one
  /// frame in flight per connection; cross-connection requests
  /// parallelize freely.
  size_t read_workers = 0;
};

/// \brief The network face of Eve: an epoll/poll event loop hosting one
/// UntrustedServer behind the length-prefixed frame protocol.
///
/// One loop thread owns all sockets. Each connection carries a FrameReader
/// and a FrameWriter; every complete inbound frame is one serialized
/// protocol::Envelope, and responses are queued in arrival order — so
/// clients may pipeline any number of requests and responses always come
/// back in request order.
///
/// Dispatch has two modes. With read_workers == 0 (default) every frame is
/// dispatched synchronously on the loop thread through
/// UntrustedServer::HandleRequest. With read_workers > 0, frames are
/// handed to a small worker pool: snapshot reads execute concurrently
/// against the server's published snapshot (no dispatch lock — see
/// untrusted_server.h), and mutating frames serialize on its
/// single-writer dispatch lock. Either way this NetServer is the server's
/// one exclusive *mutation* dispatcher while running (the debug assert in
/// HandleRequest checks the dispatcher token, not the thread): no other
/// code path may submit mutations until Stop() unbinds it. Response order
/// per connection is preserved by allowing at most one in-flight frame
/// per connection; a worker's completed response returns to the loop
/// thread via the wake pipe and is enqueued there, so sockets are still
/// touched by the loop thread only.
///
/// Framing violations (a declared length above max_frame_bytes) kill the
/// connection: stream sync is unrecoverable. Malformed *envelopes* inside
/// well-formed frames get a kError envelope back and the connection lives.
///
/// Backpressure: a connection whose unflushed responses exceed
/// max_pending_write_bytes stops being read until the peer drains them,
/// so per-connection memory is bounded no matter how fast requests are
/// pipelined. A peer that half-closes (EOF) is served until every queued
/// response is flushed, then closed — without spinning the loop.
///
/// Leakage note: the eavesdropper's transcript of this wire — frame sizes,
/// counts, timing — is exactly the ObservationLog view plus traffic
/// metadata; nothing is encrypted at the transport layer (TLS is a future
/// layer), and nothing needs to be for the paper's model, where Eve
/// herself is the adversary.
class NetServer {
 public:
  /// `server` must outlive this object.
  NetServer(server::UntrustedServer* server, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the loop thread. Fails if already running
  /// or the port is taken.
  Status Start();

  /// Graceful shutdown: wakes the loop, which answers nothing further,
  /// best-effort flushes pending responses, closes every socket, and
  /// exits; joins the loop thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// The bound metrics port (valid after a successful Start when
  /// options.metrics_port >= 0; otherwise 0).
  uint16_t metrics_http_port() const { return metrics_port_; }

  struct Stats {
    uint64_t accepted = 0;         ///< connections accepted
    uint64_t rejected = 0;         ///< closed at accept: over the limit
    uint64_t frames_in = 0;        ///< complete request frames dispatched
    uint64_t frames_out = 0;       ///< response frames queued
    uint64_t timed_out = 0;        ///< connections reaped as idle
    uint64_t framing_errors = 0;   ///< connections killed for bad framing
    uint64_t backpressure_stalls = 0;  ///< reads paused on write budget
    uint64_t metrics_scrapes = 0;  ///< HTTP scrapes answered
  };
  Stats stats() const;

 private:
  struct Connection;
  struct HttpConnection;
  struct Poller;

  void Loop();
  void AcceptNew();
  void AcceptMetrics();
  /// One service pass on a metrics scrape connection; false = close.
  bool ServiceMetricsConnection(HttpConnection* conn, bool readable);
  void CloseMetricsConnection(int fd);
  /// One service pass: read (unless half-closed/backpressured), dispatch
  /// buffered frames within the write budget, flush. false = close.
  bool ServiceConnection(Connection* conn, bool readable);
  /// Dispatches queued request frames until the write budget is hit;
  /// false = close.
  bool DispatchBufferedFrames(Connection* conn);
  /// Queues one response frame (or the over-cap error envelope fallback)
  /// on the connection's writer; false = close.
  bool EnqueueResponse(Connection* conn, const Bytes& response);
  /// Non-blocking flush; refreshes the idle clock only on real progress.
  bool FlushProgress(Connection* conn);
  /// Worker-pool body: pop a frame, HandleRequest it, post the response
  /// to the completion queue, wake the loop.
  void WorkerLoop();
  /// Loop-thread side: drain completed worker responses into their
  /// connections' writers (dropping orphans whose connection died) and
  /// resume dispatch on those connections.
  void DrainCompletions();
  /// Re-arms the poller to the connection's current read/write interest.
  void UpdateInterest(Connection* conn);
  size_t WriteBudget() const;
  void CloseConnection(int fd);
  void ReapIdle(int64_t now_ms);
  static int64_t NowMs();

  server::UntrustedServer* server_;
  NetServerOptions options_;

  UniqueFd listen_fd_;
  UniqueFd metrics_listen_fd_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;

  std::unique_ptr<Poller> poller_;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<int, std::unique_ptr<HttpConnection>> http_connections_;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Worker-mode state (read_workers > 0). Work items carry the owning
  /// connection's generation id so a response whose connection closed
  /// (or whose fd was reused) while the worker ran is detectably orphan
  /// and dropped instead of landing on a stranger's socket.
  struct WorkItem {
    uint64_t conn_id = 0;
    int fd = -1;
    Bytes frame;
  };
  struct Completion {
    uint64_t conn_id = 0;
    int fd = -1;
    Bytes response;
  };
  std::vector<std::thread> workers_;
  std::atomic<bool> workers_stop_{false};
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_queue_;
  std::mutex done_mutex_;
  std::deque<Completion> done_queue_;
  uint64_t next_conn_id_ = 1;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> framing_errors_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};
  std::atomic<uint64_t> metrics_scrapes_{0};

  /// Registry instruments mirroring the atomics above, registered in
  /// Start() against the UntrustedServer's registry so one kStats /
  /// scrape response covers the transport too. Owned by the registry.
  struct NetInstruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* reaped_idle = nullptr;
    obs::Counter* framing_errors = nullptr;
    obs::Counter* backpressure_stalls = nullptr;
    obs::Counter* scrapes = nullptr;
    obs::Gauge* open_connections = nullptr;
  };
  NetInstruments ins_;
};

}  // namespace net
}  // namespace dbph

#endif  // DBPH_NET_NET_SERVER_H_
