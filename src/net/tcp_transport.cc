#include "net/tcp_transport.h"

#include <atomic>

#include "common/macros.h"

namespace dbph {
namespace net {

Result<std::shared_ptr<TcpTransport>> TcpTransport::Connect(Options options) {
  std::shared_ptr<TcpTransport> transport(
      new TcpTransport(std::move(options)));
  std::lock_guard<std::mutex> lock(transport->mutex_);
  DBPH_RETURN_IF_ERROR(transport->EnsureConnectedLocked());
  return transport;
}

Result<std::shared_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port) {
  Options options;
  options.host = host;
  options.port = port;
  return Connect(std::move(options));
}

TcpTransport::~TcpTransport() { Close(); }

void TcpTransport::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  fd_.Reset();
}

bool TcpTransport::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_.valid();
}

Status TcpTransport::EnsureConnectedLocked() {
  if (fd_.valid()) return Status::OK();
  DBPH_ASSIGN_OR_RETURN(fd_, ConnectTo(options_.host, options_.port));
  return Status::OK();
}

Status TcpTransport::SendFrameLocked(const Bytes& body) {
  Bytes wire;
  DBPH_RETURN_IF_ERROR(AppendFrame(&wire, body, options_.max_frame_bytes));
  return SendAll(fd_.get(), wire.data(), wire.size());
}

Result<Bytes> TcpTransport::RecvFrameLocked() {
  uint8_t header[4];
  DBPH_RETURN_IF_ERROR(RecvExact(fd_.get(), header, sizeof(header)));
  size_t length = DecodeFrameLength(header);
  if (length > options_.max_frame_bytes) {
    return Status::DataLoss("server frame exceeds the frame cap");
  }
  Bytes body(length);
  DBPH_RETURN_IF_ERROR(RecvExact(fd_.get(), body.data(), body.size()));
  return body;
}

Bytes TcpTransport::RoundTrip(const Bytes& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.reconnect_attempts; ++attempt) {
    last = EnsureConnectedLocked();
    if (!last.ok()) continue;
    last = SendFrameLocked(request);
    if (!last.ok()) {
      // The whole frame never made it out; a fresh connection may retry
      // safely (the server cannot have decoded a partial frame).
      fd_.Reset();
      continue;
    }
    auto response = RecvFrameLocked();
    if (response.ok()) return std::move(*response);
    // Request delivered, response lost: ambiguous. Fail rather than
    // re-execute a possibly non-idempotent operation.
    fd_.Reset();
    last = response.status();
    break;
  }
  return protocol::MakeErrorEnvelope(
             Status::Unavailable("transport to " + options_.host + ":" +
                                 std::to_string(options_.port) +
                                 " failed: " + last.ToString()))
      .Serialize();
}

Status TcpTransport::Ping() {
  // A process-unique cookie; the echo proves the reply is ours, not a
  // stale pipelined response.
  static std::atomic<uint64_t> counter{0};
  uint64_t nonce = counter.fetch_add(1, std::memory_order_relaxed) ^
                   reinterpret_cast<uintptr_t>(this);
  protocol::Envelope ping;
  ping.type = protocol::MessageType::kPing;
  AppendUint64(&ping.payload, nonce);

  auto response = protocol::Envelope::Parse(RoundTrip(ping.Serialize()));
  DBPH_RETURN_IF_ERROR(response.status());
  if (response->type == protocol::MessageType::kError) {
    return protocol::ParseErrorEnvelope(*response);
  }
  if (response->type != protocol::MessageType::kPong) {
    return Status::DataLoss("expected kPong from server");
  }
  if (response->payload != ping.payload) {
    return Status::DataLoss("pong cookie mismatch");
  }
  return Status::OK();
}

client::Transport TcpTransport::AsTransport() {
  std::shared_ptr<TcpTransport> self = shared_from_this();
  return [self](const Bytes& request) { return self->RoundTrip(request); };
}

}  // namespace net
}  // namespace dbph
