#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

namespace dbph {
namespace net {

namespace {

std::string Errno() { return std::string(std::strerror(errno)); }

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<UniqueFd> ListenOn(const std::string& address, uint16_t port,
                          int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable("socket: " + Errno());

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + address + "'");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable("bind " + address + ":" +
                               std::to_string(port) + ": " + Errno());
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Unavailable("listen: " + Errno());
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal("getsockname: " + Errno());
  }
  return ntohs(addr.sin_port);
}

Result<UniqueFd> ConnectTo(const std::string& host, uint16_t port) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &results);
  if (rc != 0) {
    return Status::Unavailable("resolve '" + host +
                               "': " + std::string(gai_strerror(rc)));
  }

  Status last = Status::Unavailable("no addresses for '" + host + "'");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Status::Unavailable("socket: " + Errno());
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " + Errno());
      continue;
    }
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(results);
    return fd;
  }
  ::freeaddrinfo(results);
  return last;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl O_NONBLOCK: " + Errno());
  }
  return Status::OK();
}

Status SendAll(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send: " + Errno());
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status RecvExact(int fd, uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd, data + got, n - got, 0);
    if (rc == 0) return Status::Unavailable("connection closed by peer");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv: " + Errno());
    }
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace dbph
