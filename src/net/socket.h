#ifndef DBPH_NET_SOCKET_H_
#define DBPH_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace net {

/// \brief Owning file descriptor; closes on destruction. Movable only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// \brief Creates a listening TCP socket bound to `address:port`
/// (SO_REUSEADDR; port 0 picks an ephemeral port — read it back with
/// LocalPort).
Result<UniqueFd> ListenOn(const std::string& address, uint16_t port,
                          int backlog);

/// \brief The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// \brief Blocking TCP connect to `host:port` (resolves names via
/// getaddrinfo, tries each address in order); TCP_NODELAY is set so small
/// request frames are not Nagle-delayed.
Result<UniqueFd> ConnectTo(const std::string& host, uint16_t port);

/// \brief Switches an fd to non-blocking mode (the event loop requires it).
Status SetNonBlocking(int fd);

/// \brief Blocking full-buffer send; retries on EINTR and short writes.
Status SendAll(int fd, const uint8_t* data, size_t n);

/// \brief Blocking read of exactly `n` bytes; a clean peer close mid-read
/// is an error (frames never arrive partially in a healthy stream).
Status RecvExact(int fd, uint8_t* data, size_t n);

}  // namespace net
}  // namespace dbph

#endif  // DBPH_NET_SOCKET_H_
