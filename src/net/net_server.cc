#include "net/net_server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/macros.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace net {

// ---------------------------------------------------------------- poller

/// Level-triggered readiness notification: epoll where available, poll(2)
/// elsewhere. Read interest drops while a connection is half-closed or
/// backpressured; write interest follows unflushed response bytes.
struct NetServer::Poller {
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

#ifdef __linux__
  UniqueFd epoll_fd;

  Status Init() {
    epoll_fd.Reset(::epoll_create1(0));
    if (!epoll_fd.valid()) {
      return Status::Internal("epoll_create1: " +
                              std::string(std::strerror(errno)));
    }
    return Status::OK();
  }

  void Control(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd.get(), op, fd, &ev);
  }

  void Add(int fd, bool want_read, bool want_write) {
    Control(EPOLL_CTL_ADD, fd, want_read, want_write);
  }
  void Update(int fd, bool want_read, bool want_write) {
    Control(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  void Remove(int fd) { ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr); }

  int Wait(int timeout_ms, std::vector<Event>* out) {
    epoll_event events[64];
    int n = ::epoll_wait(epoll_fd.get(), events, 64, timeout_ms);
    out->clear();
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & EPOLLERR) != 0;
      out->push_back(e);
    }
    return n;
  }
#else
  // Portable fallback: a pollfd set rebuilt incrementally.
  std::vector<pollfd> fds;

  Status Init() { return Status::OK(); }

  static short Events(bool want_read, bool want_write) {
    return static_cast<short>((want_read ? POLLIN : 0) |
                              (want_write ? POLLOUT : 0));
  }

  void Add(int fd, bool want_read, bool want_write) {
    fds.push_back({fd, Events(want_read, want_write), 0});
  }
  void Update(int fd, bool want_read, bool want_write) {
    for (auto& p : fds) {
      if (p.fd == fd) {
        p.events = Events(want_read, want_write);
        return;
      }
    }
  }
  void Remove(int fd) {
    fds.erase(std::remove_if(fds.begin(), fds.end(),
                             [fd](const pollfd& p) { return p.fd == fd; }),
              fds.end());
  }

  int Wait(int timeout_ms, std::vector<Event>* out) {
    int n = ::poll(fds.data(), fds.size(), timeout_ms);
    out->clear();
    if (n <= 0) return n;
    for (const auto& p : fds) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(e);
    }
    return n;
  }
#endif
};

// ------------------------------------------------------------ connection

struct NetServer::Connection {
  explicit Connection(UniqueFd fd_in, size_t max_frame_bytes)
      : fd(std::move(fd_in)),
        reader(max_frame_bytes),
        writer(max_frame_bytes) {}

  UniqueFd fd;
  FrameReader reader;
  FrameWriter writer;
  int64_t last_active_ms = 0;
  /// Generation id for worker-mode completion routing: fds are reused by
  /// the kernel, so a response is matched on (fd, id), never fd alone.
  uint64_t id = 0;
  bool read_closed = false;  ///< peer sent EOF; drain writes, then close
  bool in_flight = false;    ///< a worker holds this connection's frame
  bool reg_read = true;      ///< poller interest currently registered
  bool reg_write = false;
};

/// One Prometheus scrape: read a request until the blank line, answer
/// with the metrics snapshot, close. Deliberately minimal HTTP — no
/// keep-alive, no chunking — because scrapers speak HTTP/1.0 happily
/// and the connection lives for one round trip.
struct NetServer::HttpConnection {
  explicit HttpConnection(UniqueFd fd_in) : fd(std::move(fd_in)) {}

  /// Request headers larger than this kill the connection; a scrape
  /// request is a GET line plus a handful of headers.
  static constexpr size_t kMaxRequestBytes = 8 * 1024;

  UniqueFd fd;
  std::string request;
  std::string response;
  size_t written = 0;
  bool have_response = false;
  int64_t last_active_ms = 0;
};

// -------------------------------------------------------------- lifecycle

NetServer::NetServer(server::UntrustedServer* server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

int64_t NetServer::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status NetServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");
  stop_requested_.store(false, std::memory_order_release);

  DBPH_ASSIGN_OR_RETURN(
      listen_fd_,
      ListenOn(options_.bind_address, options_.port, options_.backlog));
  DBPH_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
  DBPH_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));

  if (options_.metrics_port >= 0) {
    auto listen = ListenOn(options_.bind_address,
                           static_cast<uint16_t>(options_.metrics_port),
                           options_.backlog);
    if (!listen.ok()) {
      listen_fd_.Reset();
      return listen.status();
    }
    metrics_listen_fd_ = std::move(listen).value();
    DBPH_RETURN_IF_ERROR(SetNonBlocking(metrics_listen_fd_.get()));
    DBPH_ASSIGN_OR_RETURN(metrics_port_, LocalPort(metrics_listen_fd_.get()));
  }

  // Transport-layer instruments live in the server's registry so one
  // stats surface (kStats, the scrape endpoint) covers net + dispatch +
  // storage together.
  obs::MetricsRegistry* registry = server_->metrics();
  ins_.accepted = registry->GetCounter("dbph_net_connections_accepted_total");
  ins_.rejected = registry->GetCounter("dbph_net_connections_rejected_total");
  ins_.frames_in = registry->GetCounter("dbph_net_frames_in_total");
  ins_.frames_out = registry->GetCounter("dbph_net_frames_out_total");
  ins_.reaped_idle =
      registry->GetCounter("dbph_net_connections_reaped_idle_total");
  ins_.framing_errors = registry->GetCounter("dbph_net_framing_errors_total");
  ins_.backpressure_stalls =
      registry->GetCounter("dbph_net_backpressure_stalls_total");
  ins_.scrapes = registry->GetCounter("dbph_net_metrics_scrapes_total");
  ins_.open_connections = registry->GetGauge("dbph_net_connections_open");

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    listen_fd_.Reset();
    return Status::Internal("pipe: " + std::string(std::strerror(errno)));
  }
  wake_read_.Reset(pipe_fds[0]);
  wake_write_.Reset(pipe_fds[1]);
  DBPH_RETURN_IF_ERROR(SetNonBlocking(wake_read_.get()));

  poller_ = std::make_unique<Poller>();
  DBPH_RETURN_IF_ERROR(poller_->Init());
  poller_->Add(listen_fd_.get(), true, false);
  poller_->Add(wake_read_.get(), true, false);
  if (metrics_listen_fd_.valid()) {
    poller_->Add(metrics_listen_fd_.get(), true, false);
  }

  // Debug contract: while this NetServer runs, it is the exclusive
  // MUTATION dispatcher — no other code path may submit mutating
  // requests (snapshot reads are exempt; see untrusted_server.h).
  server_->BindExclusiveDispatcher(this);

  if (options_.read_workers > 0) {
    workers_stop_.store(false, std::memory_order_release);
    workers_.reserve(options_.read_workers);
    for (size_t i = 0; i < options_.read_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (!loop_thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  uint8_t byte = 1;
  (void)!::write(wake_write_.get(), &byte, 1);
  loop_thread_.join();
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      workers_stop_.store(true, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    // Unanswered frames and unrouted responses die with their
    // connections — everything is closing anyway.
    work_queue_.clear();
    done_queue_.clear();
  }
  // CAS-unbind: releases only OUR binding. If a restarted NetServer (or
  // another one) already re-bound, its binding survives — the historical
  // blind store of nullptr let a stale Stop() erase the new server's
  // claim and disarm the exclusive-mutation-dispatcher assert.
  server_->UnbindExclusiveDispatcher(this);
  running_.store(false, std::memory_order_release);
  poller_.reset();
  connections_.clear();
  http_connections_.clear();
  listen_fd_.Reset();
  metrics_listen_fd_.Reset();
  wake_read_.Reset();
  wake_write_.Reset();
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  s.backpressure_stalls =
      backpressure_stalls_.load(std::memory_order_relaxed);
  s.metrics_scrapes = metrics_scrapes_.load(std::memory_order_relaxed);
  return s;
}

// -------------------------------------------------------------- the loop

void NetServer::Loop() {
  std::vector<Poller::Event> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Wake at least often enough to honour the idle deadline.
    int timeout = options_.idle_timeout_ms > 0
                      ? std::max(10, options_.idle_timeout_ms / 4)
                      : 1000;
    int n = poller_->Wait(timeout, &events);
    if (n < 0 && errno != EINTR) break;

    for (const auto& event : events) {
      if (event.fd == wake_read_.get()) {
        uint8_t drain[64];
        while (::read(wake_read_.get(), drain, sizeof(drain)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (event.fd == listen_fd_.get()) {
        if (event.readable) AcceptNew();
        continue;
      }
      if (metrics_listen_fd_.valid() &&
          event.fd == metrics_listen_fd_.get()) {
        if (event.readable) AcceptMetrics();
        continue;
      }
      if (auto http_it = http_connections_.find(event.fd);
          http_it != http_connections_.end()) {
        HttpConnection* http = http_it->second.get();
        bool alive = !event.error;
        if (alive) alive = ServiceMetricsConnection(http, event.readable);
        if (!alive) CloseMetricsConnection(event.fd);
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      bool alive = !event.error;
      if (alive) alive = ServiceConnection(conn, event.readable);
      if (!alive) CloseConnection(event.fd);
    }

    if (options_.idle_timeout_ms > 0) ReapIdle(NowMs());
  }

  // Graceful exit: route any already-computed worker responses, then one
  // best-effort flush of queued responses, then close.
  DrainCompletions();
  for (auto& [fd, conn] : connections_) {
    (void)conn->writer.FlushTo(fd);
  }
  connections_.clear();
  http_connections_.clear();
}

void NetServer::AcceptNew() {
  while (true) {
    int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) return;  // EAGAIN or transient error: back to the loop
    UniqueFd fd(raw);
    if (connections_.size() >= options_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ins_.rejected->Add();
      continue;  // fd closes on scope exit: the peer sees EOF
    }
    if (!SetNonBlocking(fd.get()).ok()) continue;
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(std::move(fd),
                                             options_.max_frame_bytes);
    conn->last_active_ms = NowMs();
    conn->id = next_conn_id_++;
    int key = conn->fd.get();
    poller_->Add(key, true, false);
    connections_.emplace(key, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    ins_.accepted->Add();
    ins_.open_connections->Set(static_cast<int64_t>(connections_.size()));
  }
}

void NetServer::AcceptMetrics() {
  // Scrape connections share the frame-side connection cap: a scraper
  // cannot starve query traffic of fds past max_connections total.
  while (true) {
    int raw = ::accept(metrics_listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) return;
    UniqueFd fd(raw);
    if (http_connections_.size() >= options_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ins_.rejected->Add();
      continue;
    }
    if (!SetNonBlocking(fd.get()).ok()) continue;
    auto conn = std::make_unique<HttpConnection>(std::move(fd));
    conn->last_active_ms = NowMs();
    int key = conn->fd.get();
    poller_->Add(key, true, false);
    http_connections_.emplace(key, std::move(conn));
  }
}

bool NetServer::ServiceMetricsConnection(HttpConnection* conn,
                                         bool readable) {
  if (readable && !conn->have_response) {
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->last_active_ms = NowMs();
        conn->request.append(buf, static_cast<size_t>(n));
        if (conn->request.size() > HttpConnection::kMaxRequestBytes) {
          return false;
        }
        continue;
      }
      if (n == 0) return false;  // EOF before a full request
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (conn->request.find("\r\n\r\n") != std::string::npos ||
        conn->request.find("\n\n") != std::string::npos) {
      // CollectStats is a lock-free snapshot read (it pins the published
      // server snapshot); scrapes never queue behind mutations.
      if (conn->request.compare(0, 4, "GET ") == 0) {
        std::string body = server_->CollectStats().RenderPrometheus();
        conn->response =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "Connection: close\r\n\r\n" + body;
        metrics_scrapes_.fetch_add(1, std::memory_order_relaxed);
        ins_.scrapes->Add();
      } else {
        conn->response =
            "HTTP/1.0 405 Method Not Allowed\r\n"
            "Content-Length: 0\r\nConnection: close\r\n\r\n";
      }
      conn->have_response = true;
      poller_->Update(conn->fd.get(), false, true);
    }
  }

  if (conn->have_response) {
    while (conn->written < conn->response.size()) {
      ssize_t n = ::send(conn->fd.get(), conn->response.data() + conn->written,
                         conn->response.size() - conn->written, MSG_NOSIGNAL);
      if (n > 0) {
        conn->written += static_cast<size_t>(n);
        conn->last_active_ms = NowMs();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return false;  // response fully flushed: close
  }
  return true;
}

void NetServer::CloseMetricsConnection(int fd) {
  poller_->Remove(fd);
  http_connections_.erase(fd);
}

size_t NetServer::WriteBudget() const {
  if (options_.max_pending_write_bytes > 0) {
    return options_.max_pending_write_bytes;
  }
  return options_.max_frame_bytes + 64 * 1024;
}

bool NetServer::ServiceConnection(Connection* conn, bool readable) {
  if (readable && !conn->read_closed) {
    uint8_t buf[64 * 1024];
    // The read phase stops at the budget too: a peer streaming frames
    // faster than we dispatch may not grow the reader's queue without
    // bound, nor monopolize the loop thread (level-triggered readiness
    // re-arms via UpdateInterest once the queue drains). The budget
    // counts COMPLETE queued frames only: a single frame larger than the
    // budget must keep reading to ever complete — gating on partial
    // bytes stalled such connections forever and the reaper then killed
    // them as "idle". Partial bytes stay bounded by max_frame_bytes
    // (FrameReader rejects larger declared lengths outright).
    while (conn->reader.buffered_bytes() - conn->reader.partial_bytes() <=
           WriteBudget()) {
      ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->last_active_ms = NowMs();
        if (!conn->reader.Feed(buf, static_cast<size_t>(n)).ok()) {
          framing_errors_.fetch_add(1, std::memory_order_relaxed);
          ins_.framing_errors->Add();
          return false;
        }
        continue;
      }
      if (n == 0) {
        // Half-close: answer what was pipelined, then close. Read
        // interest drops (see UpdateInterest) so the level-triggered
        // EOF cannot spin the loop.
        conn->read_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
  }

  // Dispatch and flush until either the write budget is exhausted even
  // after flushing (wait for a writable event) or no complete frames
  // remain (wait for more input). Each pass over budget-free buffered
  // frames consumes at least one, so this terminates.
  while (true) {
    if (!DispatchBufferedFrames(conn)) return false;
    if (!FlushProgress(conn)) return false;
    if (conn->in_flight) break;  // worker mode: resume on completion
    if (conn->writer.pending_bytes() > WriteBudget()) break;
    if (!conn->reader.HasBufferedFrame()) break;
  }

  if (conn->read_closed && !conn->in_flight && !conn->writer.HasPending() &&
      !conn->reader.HasBufferedFrame()) {
    return false;  // drained a half-closed peer: done
  }
  UpdateInterest(conn);
  return true;
}

bool NetServer::EnqueueResponse(Connection* conn, const Bytes& response) {
  if (!conn->writer.Enqueue(response).ok()) {
    // The response outgrew the frame cap (e.g. a fetch of a relation
    // larger than kMaxFrameBytes): answer in protocol with an error
    // envelope — always frameable — instead of killing the stream.
    Bytes error = protocol::MakeErrorEnvelope(
                      Status::OutOfRange(
                          "response exceeds the wire frame cap"))
                      .Serialize();
    if (!conn->writer.Enqueue(error).ok()) {
      framing_errors_.fetch_add(1, std::memory_order_relaxed);
      ins_.framing_errors->Add();
      return false;
    }
  }
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  ins_.frames_out->Add();
  return true;
}

bool NetServer::DispatchBufferedFrames(Connection* conn) {
  // Dispatch in arrival order; queued responses preserve that order,
  // which is the pipelining contract. Stop once the write budget is
  // spent — backpressure, not unbounded buffering.
  if (!workers_.empty()) {
    // Worker mode: at most one frame in flight per connection (order),
    // handed off instead of dispatched inline. The next frame goes out
    // when the completion comes back through DrainCompletions.
    if (!conn->in_flight && conn->writer.pending_bytes() <= WriteBudget()) {
      if (auto frame = conn->reader.NextFrame()) {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        ins_.frames_in->Add();
        conn->in_flight = true;
        {
          std::lock_guard<std::mutex> lock(work_mutex_);
          work_queue_.push_back({conn->id, conn->fd.get(), std::move(*frame)});
        }
        work_cv_.notify_one();
      }
    }
    return true;
  }
  while (conn->writer.pending_bytes() <= WriteBudget()) {
    auto frame = conn->reader.NextFrame();
    if (!frame) break;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    ins_.frames_in->Add();
    Bytes response = server_->HandleRequest(*frame, this);
    if (!EnqueueResponse(conn, response)) return false;
  }
  return true;
}

void NetServer::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [this] {
        return workers_stop_.load(std::memory_order_acquire) ||
               !work_queue_.empty();
      });
      if (workers_stop_.load(std::memory_order_acquire)) return;
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    // Reads run lock-free against the published snapshot; mutations
    // serialize on the server's dispatch lock. Either way this NetServer
    // is the dispatcher token the exclusive-mutation assert checks.
    Bytes response = server_->HandleRequest(item.frame, this);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_queue_.push_back({item.conn_id, item.fd, std::move(response)});
    }
    uint8_t byte = 1;
    (void)!::write(wake_write_.get(), &byte, 1);
  }
}

void NetServer::DrainCompletions() {
  while (true) {
    Completion done;
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      if (done_queue_.empty()) return;
      done = std::move(done_queue_.front());
      done_queue_.pop_front();
    }
    auto it = connections_.find(done.fd);
    if (it == connections_.end() || it->second->id != done.conn_id) {
      continue;  // orphan: the connection died (or the fd was reused)
    }
    Connection* conn = it->second.get();
    conn->in_flight = false;
    conn->last_active_ms = NowMs();
    if (!EnqueueResponse(conn, done.response)) {
      CloseConnection(done.fd);
      continue;
    }
    // Resume this connection: hand off its next buffered frame, flush,
    // re-arm interest (readable=false — no socket event happened).
    if (!ServiceConnection(conn, /*readable=*/false)) {
      CloseConnection(done.fd);
    }
  }
}

bool NetServer::FlushProgress(Connection* conn) {
  size_t before = conn->writer.pending_bytes();
  if (!conn->writer.FlushTo(conn->fd.get()).ok()) return false;
  // The idle clock ticks on progress only; a peer that never drains us
  // still times out.
  if (conn->writer.pending_bytes() < before) conn->last_active_ms = NowMs();
  return true;
}

void NetServer::UpdateInterest(Connection* conn) {
  // Read interest is live state, not a sticky flag: closed peers,
  // over-budget writers, and over-budget inbound queues pause reads;
  // anything else resumes them.
  bool want_read =
      !conn->read_closed && conn->writer.pending_bytes() <= WriteBudget() &&
      conn->reader.buffered_bytes() - conn->reader.partial_bytes() <=
          WriteBudget();
  bool want_write = conn->writer.HasPending();
  if (want_read != conn->reg_read || want_write != conn->reg_write) {
    // A live peer whose reads pause on the write/read budget is a
    // backpressure stall — the interesting one for capacity planning
    // (half-close read drops are lifecycle, not pressure).
    if (conn->reg_read && !want_read && !conn->read_closed) {
      backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
      ins_.backpressure_stalls->Add();
    }
    conn->reg_read = want_read;
    conn->reg_write = want_write;
    poller_->Update(conn->fd.get(), want_read, want_write);
  }
}

void NetServer::CloseConnection(int fd) {
  poller_->Remove(fd);
  connections_.erase(fd);
  ins_.open_connections->Set(static_cast<int64_t>(connections_.size()));
}

void NetServer::ReapIdle(int64_t now_ms) {
  std::vector<int> stale;
  for (const auto& [fd, conn] : connections_) {
    // A connection whose frame a worker is still computing is busy, not
    // idle, no matter how long the computation runs; its clock resumes
    // when the completion lands. (Slow-draining peers are different: the
    // clock ticks on write progress, so a peer that accepts bytes —
    // however slowly — stays alive, while one that never drains us still
    // times out.)
    if (conn->in_flight) continue;
    if (now_ms - conn->last_active_ms >= options_.idle_timeout_ms) {
      stale.push_back(fd);
    }
  }
  for (int fd : stale) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    ins_.reaped_idle->Add();
    CloseConnection(fd);
  }
  stale.clear();
  for (const auto& [fd, conn] : http_connections_) {
    if (now_ms - conn->last_active_ms >= options_.idle_timeout_ms) {
      stale.push_back(fd);
    }
  }
  for (int fd : stale) CloseMetricsConnection(fd);
}

}  // namespace net
}  // namespace dbph
