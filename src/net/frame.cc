#include "net/frame.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace dbph {
namespace net {

Status AppendFrame(Bytes* out, const Bytes& body, size_t max_frame_bytes) {
  if (body.size() > max_frame_bytes) {
    return Status::InvalidArgument("frame body exceeds the frame cap");
  }
  AppendUint32(out, static_cast<uint32_t>(body.size()));
  out->insert(out->end(), body.begin(), body.end());
  return Status::OK();
}

size_t DecodeFrameLength(const uint8_t header[4]) {
  return (static_cast<size_t>(header[0]) << 24) |
         (static_cast<size_t>(header[1]) << 16) |
         (static_cast<size_t>(header[2]) << 8) |
         static_cast<size_t>(header[3]);
}

Status FrameReader::Feed(const uint8_t* data, size_t n) {
  if (!error_.ok()) return error_;
  size_t pos = 0;
  while (pos < n) {
    if (!have_length_) {
      size_t want = 4 - header_.size();
      size_t take = std::min(want, n - pos);
      header_.insert(header_.end(), data + pos, data + pos + take);
      pos += take;
      if (header_.size() < 4) break;
      expected_ = DecodeFrameLength(header_.data());
      if (expected_ > max_frame_bytes_) {
        error_ = Status::InvalidArgument(
            "declared frame length exceeds the frame cap");
        return error_;
      }
      have_length_ = true;
      body_.clear();
      body_.reserve(expected_);
    }
    size_t want = expected_ - body_.size();
    size_t take = std::min(want, n - pos);
    body_.insert(body_.end(), data + pos, data + pos + take);
    pos += take;
    if (body_.size() == expected_) {
      ready_bytes_ += body_.size();
      ready_.push_back(std::move(body_));
      body_ = Bytes();
      header_.clear();
      have_length_ = false;
      expected_ = 0;
    }
  }
  return Status::OK();
}

std::optional<Bytes> FrameReader::NextFrame() {
  if (ready_.empty()) return std::nullopt;
  Bytes frame = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= frame.size();
  return frame;
}

Status FrameWriter::Enqueue(const Bytes& body) {
  // FlushTo compacts whenever it fully drains, so pending_ never carries
  // a fully consumed prefix here.
  return AppendFrame(&pending_, body, max_frame_bytes_);
}

Status FrameWriter::FlushTo(int fd) {
  while (offset_ < pending_.size()) {
    ssize_t n = ::send(fd, pending_.data() + offset_, pending_.size() - offset_,
                       MSG_NOSIGNAL);
    if (n > 0) {
      offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable("send failed: " +
                               std::string(std::strerror(errno)));
  }
  // Compact: always on full drain; on partial drains once the consumed
  // prefix is large enough that a long-lived never-fully-drained
  // connection cannot grow the buffer without bound.
  if (offset_ == pending_.size()) {
    pending_.clear();
    offset_ = 0;
  } else if (offset_ >= 64 * 1024) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(offset_));
    offset_ = 0;
  }
  return Status::OK();
}

}  // namespace net
}  // namespace dbph
