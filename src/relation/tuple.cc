#include "relation/tuple.h"

#include "common/macros.h"

namespace dbph {
namespace rel {

uint64_t Tuple::Hash() const {
  uint64_t h = 14695981039346656037ULL;
  for (const Value& v : values_) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

void Tuple::AppendTo(Bytes* out) const {
  AppendUint32(out, static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) v.AppendTo(out);
}

Result<Tuple> Tuple::ReadFrom(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Value v, Value::ReadFrom(reader));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToDisplayString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToDisplayString();
  }
  out += ")";
  return out;
}

}  // namespace rel
}  // namespace dbph
