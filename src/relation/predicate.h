#ifndef DBPH_RELATION_PREDICATE_H_
#define DBPH_RELATION_PREDICATE_H_

#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"

namespace dbph {
namespace rel {

/// \brief An exact-select condition σ_{attribute = value} — the class of
/// relational operations the paper's privacy homomorphism preserves.
struct ExactMatch {
  size_t attribute_index = 0;
  Value value;

  bool Evaluate(const Tuple& tuple) const {
    return tuple.at(attribute_index) == value;
  }

  bool operator==(const ExactMatch& other) const = default;
};

/// \brief A conjunction of exact matches (the client-side extension that
/// intersects per-condition results). An empty conjunction is TRUE.
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<ExactMatch> terms)
      : terms_(std::move(terms)) {}

  void Add(ExactMatch term) { terms_.push_back(std::move(term)); }
  const std::vector<ExactMatch>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  bool Evaluate(const Tuple& tuple) const {
    for (const auto& t : terms_) {
      if (!t.Evaluate(tuple)) return false;
    }
    return true;
  }

 private:
  std::vector<ExactMatch> terms_;
};

/// \brief Resolves an (attribute-name, value) pair against a schema,
/// checking existence, type agreement, and length bounds.
Result<ExactMatch> MakeExactMatch(const Schema& schema,
                                  const std::string& attribute,
                                  const Value& value);

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_PREDICATE_H_
