#ifndef DBPH_RELATION_RELATION_H_
#define DBPH_RELATION_RELATION_H_

#include <string>
#include <vector>

#include "relation/predicate.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace dbph {
namespace rel {

/// \brief A named relation: schema plus a bag of tuples.
///
/// This is the "R" of Definition 1.1. The engine implements the plaintext
/// side of the homomorphism: σ_{a=v}(R) via Select(). The database PH's
/// correctness tests check E_k(σ(R)) ≙ ψ(E_k(R)) against this.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  /// Validates against the schema and appends.
  Status Insert(Tuple tuple);

  /// Convenience: insert from values; returns the first error encountered.
  Status Insert(std::initializer_list<Value> values) {
    return Insert(Tuple(std::vector<Value>(values)));
  }

  /// Plaintext exact select σ_{attribute = value}. Returns the matching
  /// tuples as a new relation with the same schema.
  Result<Relation> Select(const std::string& attribute,
                          const Value& value) const;

  /// Select with a pre-resolved predicate.
  Relation Select(const ExactMatch& predicate) const;

  /// Select with a conjunction of exact matches.
  Relation Select(const Conjunction& conjunction) const;

  /// Multiset equality ignoring tuple order (used by the homomorphism
  /// property tests; ciphertext result sets come back unordered).
  bool SameTuples(const Relation& other) const;

  void AppendTo(Bytes* out) const;
  static Result<Relation> ReadFrom(ByteReader* reader);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_RELATION_H_
