#include "relation/csv.h"

#include <fstream>
#include <sstream>

#include "common/macros.h"

namespace dbph {
namespace rel {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one logical CSV record (handles quoted fields; `pos` advances
/// past the record's trailing newline).
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch next iteration
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

std::string WriteCsv(const Relation& relation) {
  std::ostringstream out;
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out << ",";
    out << QuoteField(schema.attribute(i).name);
  }
  out << "\n";
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ",";
      out << QuoteField(t.at(i).ToDisplayString());
    }
    out << "\n";
  }
  return out.str();
}

Result<Relation> ReadCsv(const std::string& name, const Schema& schema,
                         const std::string& csv_text) {
  size_t pos = 0;
  DBPH_ASSIGN_OR_RETURN(std::vector<std::string> header,
                        ParseRecord(csv_text, &pos));
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument("CSV header column count mismatch");
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.attribute(i).name) {
      return Status::InvalidArgument("CSV header mismatch at column " +
                                     std::to_string(i) + ": '" + header[i] +
                                     "' vs '" + schema.attribute(i).name +
                                     "'");
    }
  }

  Relation relation(name, schema);
  while (pos < csv_text.size()) {
    DBPH_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ParseRecord(csv_text, &pos));
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument("CSV row has wrong number of fields");
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      DBPH_ASSIGN_OR_RETURN(
          Value v, Value::Parse(schema.attribute(i).type, fields[i]));
      values.push_back(std::move(v));
    }
    DBPH_RETURN_IF_ERROR(relation.Insert(Tuple(std::move(values))));
  }
  return relation;
}

Result<Relation> LoadCsvFile(const std::string& name, const Schema& schema,
                             const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsv(name, schema, buffer.str());
}

Status SaveCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write CSV file: " + path);
  out << WriteCsv(relation);
  return Status::OK();
}

}  // namespace rel
}  // namespace dbph
