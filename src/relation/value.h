#ifndef DBPH_RELATION_VALUE_H_
#define DBPH_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace rel {

/// Attribute types supported by the relational engine. The paper's running
/// examples use fixed-width strings and integers; booleans and doubles are
/// provided for realistic workloads (e.g. the hospital outcome attribute).
enum class ValueType { kInt64, kString, kBool, kDouble };

const char* ValueTypeName(ValueType type);

/// \brief A dynamically typed attribute value.
///
/// Values are ordered and hashable within one type; comparing values of
/// different types is a programming error guarded by assertions in debug
/// builds and defined (type-tag ordering) in release builds.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(double v) : data_(v) {}

  /// Convenience named constructors.
  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Boolean(bool v) { return Value(v); }
  static Value Real(double v) { return Value(v); }

  ValueType type() const;

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  double AsDouble() const { return std::get<double>(data_); }

  /// Renders for display and CSV output ("42", "hello", "true", "1.5").
  std::string ToDisplayString() const;

  /// Canonical text encoding used when a value becomes (part of) an SWP
  /// word. Stable across platforms; ints in decimal, bools as 0/1, doubles
  /// via shortest round-trip formatting.
  std::string EncodeForWord() const;

  /// Parses the display encoding back into a typed value.
  static Result<Value> Parse(ValueType type, const std::string& text);

  /// Binary serialization (type tag + payload) for the wire protocol.
  void AppendTo(Bytes* out) const;
  static Result<Value> ReadFrom(ByteReader* reader);

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return data_ != other.data_; }
  bool operator<(const Value& other) const { return data_ < other.data_; }
  bool operator<=(const Value& other) const { return data_ <= other.data_; }
  bool operator>(const Value& other) const { return data_ > other.data_; }
  bool operator>=(const Value& other) const { return data_ >= other.data_; }

  /// Stable 64-bit hash (FNV-1a over the word encoding + type tag).
  uint64_t Hash() const;

 private:
  std::variant<int64_t, std::string, bool, double> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_VALUE_H_
