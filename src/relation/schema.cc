#include "relation/schema.h"

#include <algorithm>
#include <set>

#include "common/macros.h"

namespace dbph {
namespace rel {

size_t DefaultLength(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return 20;  // "-9223372036854775808"
    case ValueType::kBool:
      return 1;
    case ValueType::kDouble:
      return 24;
    case ValueType::kString:
      return 32;
  }
  return 32;
}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::set<std::string> names;
  for (auto& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (!names.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr.name);
    }
    if (attr.max_length == 0) attr.max_length = DefaultLength(attr.type);
  }
  return Schema(std::move(attributes));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

size_t Schema::MaxValueLength() const {
  size_t max_len = 0;
  for (const auto& attr : attributes_) {
    max_len = std::max(max_len, attr.max_length);
  }
  return max_len;
}

Status Schema::ValidateTuple(const std::vector<Value>& values) const {
  if (values.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(attributes_.size()) + " attributes");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].type() != attributes_[i].type) {
      return Status::InvalidArgument(
          "attribute '" + attributes_[i].name + "' expects " +
          ValueTypeName(attributes_[i].type) + ", got " +
          ValueTypeName(values[i].type()));
    }
    if (values[i].EncodeForWord().size() > attributes_[i].max_length) {
      return Status::OutOfRange("value '" + values[i].ToDisplayString() +
                                "' exceeds max length of attribute '" +
                                attributes_[i].name + "'");
    }
  }
  return Status::OK();
}

void Schema::AppendTo(Bytes* out) const {
  AppendUint32(out, static_cast<uint32_t>(attributes_.size()));
  for (const auto& attr : attributes_) {
    AppendLengthPrefixed(out, ToBytes(attr.name));
    out->push_back(static_cast<uint8_t>(attr.type));
    AppendUint32(out, static_cast<uint32_t>(attr.max_length));
  }
}

Result<Schema> Schema::ReadFrom(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  std::vector<Attribute> attrs;
  attrs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Attribute attr;
    DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
    attr.name = ToString(name);
    DBPH_ASSIGN_OR_RETURN(Bytes type, reader->ReadRaw(1));
    attr.type = static_cast<ValueType>(type[0]);
    DBPH_ASSIGN_OR_RETURN(uint32_t len, reader->ReadUint32());
    attr.max_length = len;
    attrs.push_back(std::move(attr));
  }
  return Schema::Create(std::move(attrs));
}

}  // namespace rel
}  // namespace dbph
