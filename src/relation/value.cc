#include "relation/value.h"

#include <charconv>
#include <cmath>
#include <ostream>

#include "common/macros.h"

namespace dbph {
namespace rel {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
    case ValueType::kDouble:
      return "double";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kInt64;
    case 1:
      return ValueType::kString;
    case 2:
      return ValueType::kBool;
    default:
      return ValueType::kDouble;
  }
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kString:
      return AsString();
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kDouble: {
      char buf[64];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), AsDouble());
      (void)ec;
      return std::string(buf, ptr);
    }
  }
  return "";
}

std::string Value::EncodeForWord() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool() ? "1" : "0";
    default:
      return ToDisplayString();
  }
}

Result<Value> Value::Parse(ValueType type, const std::string& text) {
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("not an int64: '" + text + "'");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(text);
    case ValueType::kBool:
      if (text == "true" || text == "1") return Value(true);
      if (text == "false" || text == "0") return Value(false);
      return Status::InvalidArgument("not a bool: '" + text + "'");
    case ValueType::kDouble: {
      double v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("not a double: '" + text + "'");
      }
      return Value(v);
    }
  }
  return Status::Internal("unreachable");
}

void Value::AppendTo(Bytes* out) const {
  out->push_back(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kInt64:
      AppendUint64(out, static_cast<uint64_t>(AsInt()));
      break;
    case ValueType::kString:
      AppendLengthPrefixed(out, ToBytes(AsString()));
      break;
    case ValueType::kBool:
      out->push_back(AsBool() ? 1 : 0);
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      double d = AsDouble();
      __builtin_memcpy(&bits, &d, sizeof(bits));
      AppendUint64(out, bits);
      break;
    }
  }
}

Result<Value> Value::ReadFrom(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(Bytes tag, reader->ReadRaw(1));
  switch (static_cast<ValueType>(tag[0])) {
    case ValueType::kInt64: {
      DBPH_ASSIGN_OR_RETURN(uint64_t v, reader->ReadUint64());
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kString: {
      DBPH_ASSIGN_OR_RETURN(Bytes s, reader->ReadLengthPrefixed());
      return Value(ToString(s));
    }
    case ValueType::kBool: {
      DBPH_ASSIGN_OR_RETURN(Bytes b, reader->ReadRaw(1));
      return Value(b[0] != 0);
    }
    case ValueType::kDouble: {
      DBPH_ASSIGN_OR_RETURN(uint64_t bits, reader->ReadUint64());
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
  }
  return Status::DataLoss("unknown value type tag");
}

uint64_t Value::Hash() const {
  std::string enc = EncodeForWord();
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;  // FNV prime
  };
  mix(static_cast<uint8_t>(type()));
  for (char c : enc) mix(static_cast<uint8_t>(c));
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToDisplayString();
}

}  // namespace rel
}  // namespace dbph
