#ifndef DBPH_RELATION_CSV_H_
#define DBPH_RELATION_CSV_H_

#include <string>

#include "common/result.h"
#include "relation/relation.h"

namespace dbph {
namespace rel {

/// \brief Serializes a relation to CSV (header row + display-encoded
/// values; fields containing commas/quotes/newlines are quoted).
std::string WriteCsv(const Relation& relation);

/// \brief Parses CSV text into a relation. The header must match the
/// schema's attribute names (order included); values are parsed by type.
Result<Relation> ReadCsv(const std::string& name, const Schema& schema,
                         const std::string& csv_text);

/// \brief Loads a relation from a CSV file on disk.
Result<Relation> LoadCsvFile(const std::string& name, const Schema& schema,
                             const std::string& path);

/// \brief Writes a relation to a CSV file on disk.
Status SaveCsvFile(const Relation& relation, const std::string& path);

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_CSV_H_
