#ifndef DBPH_RELATION_SCHEMA_H_
#define DBPH_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/value.h"

namespace dbph {
namespace rel {

/// \brief One attribute of a relation schema.
///
/// `max_length` bounds the *word encoding* of any value of this attribute
/// (e.g. string[9] in the paper's Emp example, or the maximum number of
/// decimal digits of an int). The database PH uses it to size fixed-length
/// words; the relational engine enforces it on insert.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;
  size_t max_length = 0;  ///< 0 = derive a type default (see DefaultLength)

  bool operator==(const Attribute& other) const = default;
};

/// \brief Default max encoding length per type: int64 = 20 (sign + 19
/// digits), bool = 1, double = 24, string = 32.
size_t DefaultLength(ValueType type);

/// \brief An ordered list of named, typed attributes.
class Schema {
 public:
  Schema() = default;

  /// Validates: non-empty, unique names, positive lengths (after applying
  /// defaults).
  static Result<Schema> Create(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// The longest `max_length` across attributes — the paper's "length of
  /// the longest attribute value" used to fix the global word length.
  size_t MaxValueLength() const;

  /// Checks that `values[i]` has the type and fits the length of
  /// attribute i.
  Status ValidateTuple(const std::vector<Value>& values) const;

  bool operator==(const Schema& other) const = default;

  void AppendTo(Bytes* out) const;
  static Result<Schema> ReadFrom(ByteReader* reader);

 private:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_SCHEMA_H_
