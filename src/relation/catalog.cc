#include "relation/catalog.h"

namespace dbph {
namespace rel {

Status Catalog::AddRelation(Relation relation) {
  std::string name = relation.name();
  auto [it, inserted] = relations_.emplace(name, std::move(relation));
  if (!inserted) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  return Status::OK();
}

void Catalog::PutRelation(Relation relation) {
  std::string name = relation.name();
  relations_.insert_or_assign(name, std::move(relation));
}

Result<const Relation*> Catalog::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return &it->second;
}

Result<Relation*> Catalog::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return &it->second;
}

Status Catalog::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, _] : relations_) names.push_back(name);
  return names;
}

}  // namespace rel
}  // namespace dbph
