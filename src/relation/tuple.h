#ifndef DBPH_RELATION_TUPLE_H_
#define DBPH_RELATION_TUPLE_H_

#include <initializer_list>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace dbph {
namespace rel {

/// \brief A row: an ordered list of values matching some schema.
///
/// Tuples are plain value objects; schema conformance is checked at the
/// Relation boundary (Relation::Insert).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& other) const = default;

  /// Lexicographic order — lets tuples live in ordered containers.
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  /// Combined hash of all values (order-sensitive).
  uint64_t Hash() const;

  void AppendTo(Bytes* out) const;
  static Result<Tuple> ReadFrom(ByteReader* reader);

  /// "(v1, v2, ...)" rendering for logs and examples.
  std::string ToDisplayString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_TUPLE_H_
