#include "relation/predicate.h"

#include "common/macros.h"

namespace dbph {
namespace rel {

Result<ExactMatch> MakeExactMatch(const Schema& schema,
                                  const std::string& attribute,
                                  const Value& value) {
  DBPH_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(attribute));
  const Attribute& attr = schema.attribute(index);
  if (value.type() != attr.type) {
    return Status::InvalidArgument(
        "predicate value type " + std::string(ValueTypeName(value.type())) +
        " does not match attribute '" + attribute + "' of type " +
        ValueTypeName(attr.type));
  }
  if (value.EncodeForWord().size() > attr.max_length) {
    return Status::OutOfRange("predicate value exceeds attribute length");
  }
  ExactMatch match;
  match.attribute_index = index;
  match.value = value;
  return match;
}

}  // namespace rel
}  // namespace dbph
