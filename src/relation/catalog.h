#ifndef DBPH_RELATION_CATALOG_H_
#define DBPH_RELATION_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"

namespace dbph {
namespace rel {

/// \brief A named collection of relations — Alex's plaintext database.
class Catalog {
 public:
  /// Fails with kAlreadyExists if a relation of that name is present.
  Status AddRelation(Relation relation);

  /// Replaces or inserts.
  void PutRelation(Relation relation);

  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  Status DropRelation(const std::string& name);

  std::vector<std::string> RelationNames() const;
  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace rel
}  // namespace dbph

#endif  // DBPH_RELATION_CATALOG_H_
