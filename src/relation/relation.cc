#include "relation/relation.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace rel {

Status Relation::Insert(Tuple tuple) {
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(tuple.values()));
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Result<Relation> Relation::Select(const std::string& attribute,
                                  const Value& value) const {
  DBPH_ASSIGN_OR_RETURN(ExactMatch match,
                        MakeExactMatch(schema_, attribute, value));
  return Select(match);
}

Relation Relation::Select(const ExactMatch& predicate) const {
  Relation out(name_, schema_);
  for (const Tuple& t : tuples_) {
    if (predicate.Evaluate(t)) out.tuples_.push_back(t);
  }
  return out;
}

Relation Relation::Select(const Conjunction& conjunction) const {
  Relation out(name_, schema_);
  for (const Tuple& t : tuples_) {
    if (conjunction.Evaluate(t)) out.tuples_.push_back(t);
  }
  return out;
}

bool Relation::SameTuples(const Relation& other) const {
  if (tuples_.size() != other.tuples_.size()) return false;
  std::vector<Tuple> a = tuples_;
  std::vector<Tuple> b = other.tuples_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

void Relation::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, ToBytes(name_));
  schema_.AppendTo(out);
  AppendUint32(out, static_cast<uint32_t>(tuples_.size()));
  for (const Tuple& t : tuples_) t.AppendTo(out);
}

Result<Relation> Relation::ReadFrom(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
  DBPH_ASSIGN_OR_RETURN(Schema schema, Schema::ReadFrom(reader));
  Relation out(ToString(name), std::move(schema));
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Tuple t, Tuple::ReadFrom(reader));
    DBPH_RETURN_IF_ERROR(out.Insert(std::move(t)));
  }
  return out;
}

}  // namespace rel
}  // namespace dbph
