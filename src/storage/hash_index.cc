#include "storage/hash_index.h"

#include <algorithm>

namespace dbph {
namespace storage {

const std::vector<uint64_t> HashIndex::kEmpty;

void HashIndex::Insert(const Bytes& key, uint64_t value) {
  map_[key].push_back(value);
  ++size_;
}

const std::vector<uint64_t>& HashIndex::Lookup(const Bytes& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

bool HashIndex::Contains(const Bytes& key) const {
  return map_.count(key) > 0;
}

bool HashIndex::Delete(const Bytes& key, uint64_t value) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto pos = std::find(it->second.begin(), it->second.end(), value);
  if (pos == it->second.end()) return false;
  it->second.erase(pos);
  --size_;
  if (it->second.empty()) map_.erase(it);
  return true;
}

size_t HashIndex::DeleteValues(const Bytes& key,
                               const std::unordered_set<uint64_t>& values) {
  auto it = map_.find(key);
  if (it == map_.end() || values.empty()) return 0;
  auto& list = it->second;
  size_t before = list.size();
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&values](uint64_t v) {
                              return values.count(v) > 0;
                            }),
             list.end());
  size_t removed = before - list.size();
  size_ -= removed;
  if (list.empty()) map_.erase(it);
  return removed;
}

size_t HashIndex::DeleteKey(const Bytes& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return 0;
  size_t removed = it->second.size();
  size_ -= removed;
  map_.erase(it);
  return removed;
}

std::vector<Bytes> HashIndex::Keys() const {
  std::vector<Bytes> keys;
  keys.reserve(map_.size());
  for (const auto& [k, _] : map_) keys.push_back(k);
  return keys;
}

}  // namespace storage
}  // namespace dbph
