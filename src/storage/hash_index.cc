#include "storage/hash_index.h"

#include <algorithm>

namespace dbph {
namespace storage {

const std::vector<uint64_t> HashIndex::kEmpty;

void HashIndex::Insert(const Bytes& key, uint64_t value) {
  map_[key].push_back(value);
  ++size_;
}

const std::vector<uint64_t>& HashIndex::Lookup(const Bytes& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

bool HashIndex::Contains(const Bytes& key) const {
  return map_.count(key) > 0;
}

bool HashIndex::Delete(const Bytes& key, uint64_t value) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto pos = std::find(it->second.begin(), it->second.end(), value);
  if (pos == it->second.end()) return false;
  it->second.erase(pos);
  --size_;
  if (it->second.empty()) map_.erase(it);
  return true;
}

std::vector<Bytes> HashIndex::Keys() const {
  std::vector<Bytes> keys;
  keys.reserve(map_.size());
  for (const auto& [k, _] : map_) keys.push_back(k);
  return keys;
}

}  // namespace storage
}  // namespace dbph
