#include "storage/heapfile.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace dbph {
namespace storage {

HeapFile::HeapFile(size_t page_size)
    : page_size_(std::max<size_t>(page_size, 64)) {}

bool HeapFile::FitsInPage(const Page& page, size_t len) const {
  if (page.oversized) return false;
  return page.free_start + len <= page.data.size();
}

RecordId HeapFile::Insert(const Bytes& record) {
  // Oversized records get a page of their own, sized to fit.
  if (record.size() > page_size_) {
    Page page;
    page.oversized = true;
    page.data = record;
    page.free_start = record.size();
    page.live_bytes = record.size();
    page.slots.push_back({0, static_cast<uint32_t>(record.size()), true});
    pages_.push_back(std::move(page));
    ++num_records_;
    live_bytes_ += record.size();
    return RecordId{static_cast<uint32_t>(pages_.size() - 1), 0};
  }

  // Find a page with room; compact-on-demand, else append a new page.
  // A simple last-page-first policy keeps inserts O(1) in the common case.
  size_t target = pages_.size();
  if (!pages_.empty()) {
    size_t last = pages_.size() - 1;
    if (FitsInPage(pages_[last], record.size())) {
      target = last;
    } else if (!pages_[last].oversized &&
               pages_[last].live_bytes + record.size() <=
                   pages_[last].data.size()) {
      Compact(&pages_[last]);
      target = last;
    }
  }
  if (target == pages_.size()) {
    Page page;
    page.data.resize(page_size_);
    pages_.push_back(std::move(page));
  }

  Page& page = pages_[target];
  Slot slot;
  slot.offset = static_cast<uint32_t>(page.free_start);
  slot.length = static_cast<uint32_t>(record.size());
  slot.live = true;
  std::memcpy(page.data.data() + page.free_start, record.data(),
              record.size());
  page.free_start += record.size();
  page.live_bytes += record.size();

  // Reuse a tombstoned slot index if available to keep the directory small.
  uint16_t slot_idx;
  auto dead = std::find_if(page.slots.begin(), page.slots.end(),
                           [](const Slot& s) { return !s.live; });
  if (dead != page.slots.end()) {
    slot_idx = static_cast<uint16_t>(dead - page.slots.begin());
    *dead = slot;
  } else {
    slot_idx = static_cast<uint16_t>(page.slots.size());
    page.slots.push_back(slot);
  }

  ++num_records_;
  live_bytes_ += record.size();
  return RecordId{static_cast<uint32_t>(target), slot_idx};
}

Result<Bytes> HeapFile::Get(RecordId rid) const {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page id");
  const Page& page = pages_[rid.page];
  if (rid.slot >= page.slots.size()) return Status::NotFound("bad slot id");
  const Slot& slot = page.slots[rid.slot];
  if (!slot.live) return Status::NotFound("record deleted");
  return Bytes(page.data.begin() + slot.offset,
               page.data.begin() + slot.offset + slot.length);
}

Status HeapFile::Delete(RecordId rid) {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page id");
  Page& page = pages_[rid.page];
  if (rid.slot >= page.slots.size()) return Status::NotFound("bad slot id");
  Slot& slot = page.slots[rid.slot];
  if (!slot.live) return Status::NotFound("record already deleted");
  slot.live = false;
  page.live_bytes -= slot.length;
  live_bytes_ -= slot.length;
  --num_records_;
  return Status::OK();
}

Result<RecordId> HeapFile::Update(RecordId rid, const Bytes& record) {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page id");
  Page& page = pages_[rid.page];
  if (rid.slot >= page.slots.size()) return Status::NotFound("bad slot id");
  Slot& slot = page.slots[rid.slot];
  if (!slot.live) return Status::NotFound("record deleted");

  if (record.size() <= slot.length) {
    std::memcpy(page.data.data() + slot.offset, record.data(), record.size());
    page.live_bytes -= slot.length - record.size();
    live_bytes_ -= slot.length - record.size();
    slot.length = static_cast<uint32_t>(record.size());
    return rid;
  }
  DBPH_RETURN_IF_ERROR(Delete(rid));
  return Insert(record);
}

void HeapFile::Compact(Page* page) {
  Bytes fresh(page->data.size());
  size_t write = 0;
  for (Slot& slot : page->slots) {
    if (!slot.live) continue;
    std::memcpy(fresh.data() + write, page->data.data() + slot.offset,
                slot.length);
    slot.offset = static_cast<uint32_t>(write);
    write += slot.length;
  }
  page->data = std::move(fresh);
  page->free_start = write;
}

std::vector<RecordId> HeapFile::AllRecords() const {
  std::vector<RecordId> out;
  out.reserve(num_records_);
  for (size_t p = 0; p < pages_.size(); ++p) {
    for (size_t s = 0; s < pages_[p].slots.size(); ++s) {
      if (pages_[p].slots[s].live) {
        out.push_back(RecordId{static_cast<uint32_t>(p),
                               static_cast<uint16_t>(s)});
      }
    }
  }
  return out;
}

}  // namespace storage
}  // namespace dbph
