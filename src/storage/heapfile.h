#ifndef DBPH_STORAGE_HEAPFILE_H_
#define DBPH_STORAGE_HEAPFILE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace storage {

/// \brief Identifies a record inside a HeapFile: page number + slot.
struct RecordId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const RecordId& other) const = default;
  bool operator<(const RecordId& other) const {
    return page != other.page ? page < other.page : slot < other.slot;
  }

  /// Packs into a 64-bit value for use in indexes.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId Unpack(uint64_t packed) {
    RecordId rid;
    rid.page = static_cast<uint32_t>(packed >> 16);
    rid.slot = static_cast<uint16_t>(packed & 0xffff);
    return rid;
  }
};

/// \brief Slotted-page record store.
///
/// The untrusted server keeps encrypted tuples in a HeapFile; the record id
/// is the server-visible identity of a ciphertext (what Eve can correlate
/// across query results — exactly the leakage the games measure).
///
/// Pages are fixed-size in-memory buffers with a classic slot directory:
/// record data grows from the front, the slot array addresses it, deleted
/// slots become tombstones and their space is reclaimed by page-local
/// compaction. Records larger than a page get a dedicated oversized page.
class HeapFile {
 public:
  static constexpr size_t kDefaultPageSize = 4096;

  explicit HeapFile(size_t page_size = kDefaultPageSize);

  /// Stores a record, returns its id.
  RecordId Insert(const Bytes& record);

  /// Fetches a record. kNotFound after deletion or for a bogus id.
  Result<Bytes> Get(RecordId rid) const;

  /// Tombstones a record. kNotFound when absent.
  Status Delete(RecordId rid);

  /// Overwrites in place when the new payload fits the old slot's space;
  /// otherwise deletes + reinserts and returns the (possibly new) id.
  Result<RecordId> Update(RecordId rid, const Bytes& record);

  /// Live record ids in storage order.
  std::vector<RecordId> AllRecords() const;

  size_t num_records() const { return num_records_; }
  size_t num_pages() const { return pages_.size(); }
  /// Total payload bytes currently live.
  size_t live_bytes() const { return live_bytes_; }

 private:
  struct Slot {
    uint32_t offset = 0;
    uint32_t length = 0;
    bool live = false;
  };
  struct Page {
    Bytes data;
    std::vector<Slot> slots;
    size_t free_start = 0;  // next write offset into data
    size_t live_bytes = 0;
    bool oversized = false;
  };

  /// Reclaims tombstoned space in `page` by sliding live records left.
  void Compact(Page* page);
  bool FitsInPage(const Page& page, size_t len) const;

  size_t page_size_;
  std::vector<Page> pages_;
  size_t num_records_ = 0;
  size_t live_bytes_ = 0;
};

}  // namespace storage
}  // namespace dbph

#endif  // DBPH_STORAGE_HEAPFILE_H_
