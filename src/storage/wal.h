#ifndef DBPH_STORAGE_WAL_H_
#define DBPH_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace storage {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a
/// byte range. Guards every WAL record against torn writes and bit rot.
uint32_t Crc32(const uint8_t* data, size_t n);
uint32_t Crc32(const Bytes& data);

/// \brief Writes `data` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target, fsync the directory. A crash
/// at any point leaves either the old file or the new one — never a
/// partial write and never nothing. Fails (rather than succeeding
/// non-durably) if the directory fsync fails.
Status AtomicWriteFile(const std::string& path, const Bytes& data);

/// \brief Reads a file into memory, EINTR-safe, with errno-carrying
/// errors (kNotFound when absent) — unlike ifstream, a mid-read I/O
/// error is reported, not silently treated as EOF.
Result<Bytes> ReadWholeFile(const std::string& path);

/// When to fsync WAL appends.
enum class WalSyncMode {
  /// fsync before Append returns: an acknowledged mutation survives any
  /// crash. One disk flush per mutation.
  kAlways,
  /// Appends are written but fsynced later (Sync(), a group-commit tick,
  /// or a checkpoint). Crash may lose the unsynced suffix — but replay
  /// still recovers a consistent prefix.
  kBatch,
};

/// \brief Append-only, CRC-guarded write-ahead log.
///
/// On-disk format: a sequence of records, no file header,
///
///   [u32 payload_length][u32 crc][u64 lsn][payload bytes]
///
/// (all integers big-endian, matching the wire protocol). The CRC covers
/// the lsn and the payload, so a torn header, torn body, or bit flip is
/// detected on scan. Payload lengths are attacker-/corruption-controlled
/// input and are rejected against protocol::kMaxFrameBytes *before* any
/// allocation, exactly like Envelope::Parse.
///
/// Recovery contract: Scan() returns the longest valid prefix of records
/// and the byte offset where validity ends; everything after the first
/// torn or corrupt record is dropped (a torn tail is the expected shape
/// of a crash mid-append). Open() truncates the file to that prefix so
/// subsequent appends extend a clean log.
class WriteAheadLog {
 public:
  struct Options {
    WalSyncMode sync_mode = WalSyncMode::kAlways;
  };

  /// One recovered record.
  struct Record {
    uint64_t lsn = 0;
    Bytes payload;
  };

  /// Result of scanning a WAL image.
  struct ScanResult {
    std::vector<Record> records;  ///< the valid prefix, in log order
    size_t valid_bytes = 0;       ///< offset where the valid prefix ends
    bool torn_tail = false;       ///< bytes after the prefix were dropped
  };

  /// Pure in-memory scan (also the fuzz surface: never crashes, never
  /// allocates more than the buffer holds).
  static ScanResult ScanBuffer(const Bytes& data);

  /// Scans a WAL file; kNotFound if it does not exist.
  static Result<ScanResult> ScanFile(const std::string& path);

  /// Opens `path` for appending, creating it if absent. Scans existing
  /// content, truncates any torn tail, and positions at the end of the
  /// valid prefix. Recovered records are available via TakeRecovered().
  static Result<WriteAheadLog> Open(const std::string& path, Options options);
  static Result<WriteAheadLog> Open(const std::string& path);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Appends one record. In kAlways mode the record is on stable storage
  /// when this returns; in kBatch mode it is written but possibly
  /// unsynced (call Sync() for a durability point).
  Status Append(uint64_t lsn, const Bytes& payload);

  /// fsync: everything appended so far becomes durable. The group-commit
  /// point for kBatch mode; a no-op when nothing is unsynced.
  Status Sync();

  /// Empties the log (after a checkpoint made its contents redundant)
  /// and syncs the truncation.
  Status Reset();

  void Close();

  /// Records recovered by Open() (moved out; call once).
  std::vector<Record> TakeRecovered() { return std::move(recovered_); }
  /// True when Open() had to drop a torn/corrupt tail.
  bool recovered_torn_tail() const { return torn_tail_; }

  size_t size_bytes() const { return size_bytes_; }
  uint64_t last_lsn() const { return last_lsn_; }
  uint64_t records_appended() const { return records_appended_; }
  /// Bytes written since the last fsync (0 = everything durable).
  size_t unsynced_bytes() const { return unsynced_bytes_; }

 private:
  WriteAheadLog() = default;

  int fd_ = -1;
  std::string path_;
  Options options_;
  std::vector<Record> recovered_;
  bool torn_tail_ = false;
  size_t size_bytes_ = 0;
  size_t unsynced_bytes_ = 0;
  uint64_t last_lsn_ = 0;
  uint64_t records_appended_ = 0;
};

}  // namespace storage
}  // namespace dbph

#endif  // DBPH_STORAGE_WAL_H_
