#ifndef DBPH_STORAGE_HASH_INDEX_H_
#define DBPH_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"

namespace dbph {
namespace storage {

/// \brief Unordered index from byte-string keys to record-id posting lists.
///
/// The bucketization and Damiani servers index ciphertext tuples by their
/// deterministic attribute labels; equality probes dominate, so a hash
/// index is the natural structure (the B+tree remains available when order
/// matters).
class HashIndex {
 public:
  void Insert(const Bytes& key, uint64_t value);

  /// All values for key (empty when absent).
  const std::vector<uint64_t>& Lookup(const Bytes& key) const;

  bool Contains(const Bytes& key) const;

  /// Removes one (key, value) pair; false when absent.
  bool Delete(const Bytes& key, uint64_t value);

  /// Removes every (key, value) pair whose value is in `values` — one
  /// pass over the key's posting list, preserving the survivors' order.
  /// Returns the number removed. The bulk form of Delete: O(list) total
  /// instead of O(list) per removed value.
  size_t DeleteValues(const Bytes& key,
                      const std::unordered_set<uint64_t>& values);

  /// Removes a key and its whole posting list; returns how many values
  /// that discarded.
  size_t DeleteKey(const Bytes& key);

  size_t num_keys() const { return map_.size(); }
  size_t size() const { return size_; }

  /// Distinct keys (unspecified order) — used by attack code that counts
  /// label multiplicities.
  std::vector<Bytes> Keys() const;

 private:
  struct BytesHash {
    size_t operator()(const Bytes& b) const {
      // FNV-1a
      uint64_t h = 1469598103934665603ULL;
      for (uint8_t byte : b) {
        h ^= byte;
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  std::unordered_map<Bytes, std::vector<uint64_t>, BytesHash> map_;
  size_t size_ = 0;
  static const std::vector<uint64_t> kEmpty;
};

}  // namespace storage
}  // namespace dbph

#endif  // DBPH_STORAGE_HASH_INDEX_H_
