#include "storage/wal.h"

#include <fcntl.h>
#include <libgen.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "protocol/messages.h"

namespace dbph {
namespace storage {

namespace {

/// Record header: u32 payload length + u32 crc + u64 lsn.
constexpr size_t kRecordHeaderBytes = 4 + 4 + 8;

uint32_t ReadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t ReadBe64(const uint8_t* p) {
  return (static_cast<uint64_t>(ReadBe32(p)) << 32) | ReadBe32(p + 4);
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const uint8_t* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

/// fsyncs the directory containing `path` so renames/creations in it are
/// durable. A failure here means the rename itself may not survive power
/// loss, so callers on the durability path must propagate it.
Status SyncParentDir(const std::string& path) {
  std::string copy = path;
  const char* dir = ::dirname(copy.data());
  int fd = ::open(dir, O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus(std::string("open dir '") + dir + "'");
  Status synced =
      ::fsync(fd) == 0 ? Status::OK() : ErrnoStatus("fsync dir");
  ::close(fd);
  return synced;
}

}  // namespace

Result<Bytes> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open '" + path + "'");
    return ErrnoStatus("open '" + path + "'");
  }
  Bytes data;
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read '" + path + "'");
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

uint32_t Crc32(const uint8_t* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const Bytes& data) { return Crc32(data.data(), data.size()); }

Status AtomicWriteFile(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open '" + tmp + "'");
  Status written = WriteAll(fd, data.data(), data.size());
  if (written.ok() && ::fsync(fd) != 0) written = ErrnoStatus("fsync");
  if (::close(fd) != 0 && written.ok()) written = ErrnoStatus("close");
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status renamed = ErrnoStatus("rename '" + tmp + "' -> '" + path + "'");
    ::unlink(tmp.c_str());
    return renamed;
  }
  // The rename is only durable once the directory entry is: a swallowed
  // failure here would let a checkpoint trim the WAL against a snapshot
  // that can vanish on power loss.
  return SyncParentDir(path);
}

WriteAheadLog::ScanResult WriteAheadLog::ScanBuffer(const Bytes& data) {
  ScanResult result;
  size_t pos = 0;
  while (data.size() - pos >= kRecordHeaderBytes) {
    const uint8_t* header = data.data() + pos;
    uint32_t length = ReadBe32(header);
    // Attacker-/corruption-controlled length: reject against the shared
    // frame cap before trusting it, exactly like Envelope::Parse.
    if (length > protocol::kMaxFrameBytes) break;
    if (data.size() - pos - kRecordHeaderBytes < length) break;  // torn body
    uint32_t stored_crc = ReadBe32(header + 4);
    // The CRC covers lsn + payload (everything after the crc field).
    uint32_t actual_crc = Crc32(header + 8, 8 + length);
    if (stored_crc != actual_crc) break;
    Record record;
    record.lsn = ReadBe64(header + 8);
    record.payload.assign(header + kRecordHeaderBytes,
                          header + kRecordHeaderBytes + length);
    result.records.push_back(std::move(record));
    pos += kRecordHeaderBytes + length;
  }
  result.valid_bytes = pos;
  result.torn_tail = pos != data.size();
  return result;
}

Result<WriteAheadLog::ScanResult> WriteAheadLog::ScanFile(
    const std::string& path) {
  DBPH_ASSIGN_OR_RETURN(Bytes data, ReadWholeFile(path));
  return ScanBuffer(data);
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  return Open(path, Options());
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          Options options) {
  Bytes existing;
  {
    auto read = ReadWholeFile(path);
    if (read.ok()) {
      existing = std::move(*read);
    } else if (read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
  }
  ScanResult scan = ScanBuffer(existing);

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open '" + path + "'");
  if (scan.torn_tail) {
    // Drop the torn/corrupt tail so appends extend a clean prefix.
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      Status truncated = ErrnoStatus("ftruncate '" + path + "'");
      ::close(fd);
      return truncated;
    }
    if (::fsync(fd) != 0) {
      Status synced = ErrnoStatus("fsync '" + path + "'");
      ::close(fd);
      return synced;
    }
  }
  if (Status dir_synced = SyncParentDir(path); !dir_synced.ok()) {
    ::close(fd);  // the log file's existence must itself be durable
    return dir_synced;
  }

  WriteAheadLog wal;
  wal.fd_ = fd;
  wal.path_ = path;
  wal.options_ = options;
  wal.torn_tail_ = scan.torn_tail;
  wal.size_bytes_ = scan.valid_bytes;
  if (!scan.records.empty()) wal.last_lsn_ = scan.records.back().lsn;
  wal.recovered_ = std::move(scan.records);
  return wal;
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept {
  *this = std::move(other);
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    options_ = other.options_;
    recovered_ = std::move(other.recovered_);
    torn_tail_ = other.torn_tail_;
    size_bytes_ = other.size_bytes_;
    unsynced_bytes_ = other.unsynced_bytes_;
    last_lsn_ = other.last_lsn_;
    records_appended_ = other.records_appended_;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() { Close(); }

void WriteAheadLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteAheadLog::Append(uint64_t lsn, const Bytes& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (payload.size() > protocol::kMaxFrameBytes) {
    return Status::InvalidArgument("WAL record exceeds kMaxFrameBytes");
  }
  // [len][crc][lsn][payload], crc over lsn + payload.
  Bytes record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendUint32(&record, static_cast<uint32_t>(payload.size()));
  Bytes covered;
  covered.reserve(8 + payload.size());
  AppendUint64(&covered, lsn);
  covered.insert(covered.end(), payload.begin(), payload.end());
  AppendUint32(&record, Crc32(covered));
  record.insert(record.end(), covered.begin(), covered.end());

  if (Status written = WriteAll(fd_, record.data(), record.size());
      !written.ok()) {
    // A partial write left torn bytes mid-file; with O_APPEND every later
    // record would land *after* them and be unreachable to recovery's
    // prefix scan. Roll the file back to the last good boundary — and if
    // even that fails, poison the log so no further append can be
    // acknowledged against a file we cannot reason about.
    if (::ftruncate(fd_, static_cast<off_t>(size_bytes_)) != 0) {
      Status poisoned = ErrnoStatus("ftruncate after failed append");
      Close();
      return poisoned;
    }
    return written;
  }
  size_bytes_ += record.size();
  unsynced_bytes_ += record.size();
  last_lsn_ = lsn;
  ++records_appended_;
  if (options_.sync_mode == WalSyncMode::kAlways) {
    DBPH_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (unsynced_bytes_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync '" + path_ + "'");
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (::ftruncate(fd_, 0) != 0) return ErrnoStatus("ftruncate '" + path_ + "'");
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync '" + path_ + "'");
  size_bytes_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

}  // namespace storage
}  // namespace dbph
