#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace dbph {
namespace storage {

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<Bytes> keys;
  // Leaf payload: postings[i] belongs to keys[i].
  std::vector<std::vector<uint64_t>> postings;
  // Internal payload: children.size() == keys.size() + 1; child i covers
  // [keys[i-1], keys[i]) with virtual -inf/+inf sentinels at the ends.
  std::vector<std::unique_ptr<Node>> children;
  // Leaf chain for range scans.
  Node* next = nullptr;
  Node* prev = nullptr;
};

BPlusTree::BPlusTree(size_t max_keys)
    : max_keys_(std::max<size_t>(max_keys, 3)),
      root_(std::make_unique<Node>()) {}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

namespace {

/// Index of the child subtree that may contain `key`: the number of
/// separators <= key.
size_t ChildIndex(const std::vector<Bytes>& separators, const Bytes& key) {
  return static_cast<size_t>(
      std::upper_bound(separators.begin(), separators.end(), key) -
      separators.begin());
}

/// Position of `key` in a sorted key vector, or the insert position.
size_t KeyPos(const std::vector<Bytes>& keys, const Bytes& key) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

BPlusTree::Node* BPlusTree::FindLeaf(const Bytes& key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndex(node->keys, key)].get();
  }
  return node;
}

void BPlusTree::Insert(const Bytes& key, uint64_t value) {
  // Descend, remembering the path so we can split bottom-up.
  std::vector<std::pair<Node*, size_t>> path;  // (parent, child index)
  Node* node = root_.get();
  while (!node->leaf) {
    size_t idx = ChildIndex(node->keys, key);
    path.emplace_back(node, idx);
    node = node->children[idx].get();
  }
  InsertIntoLeaf(node, key, value);

  // Split upwards while over capacity.
  while (node->keys.size() > max_keys_) {
    if (path.empty()) {
      SplitRoot();
      break;
    }
    auto [parent, idx] = path.back();
    path.pop_back();
    SplitChild(parent, idx);
    node = parent;
  }
}

void BPlusTree::InsertIntoLeaf(Node* leaf, const Bytes& key, uint64_t value) {
  size_t pos = KeyPos(leaf->keys, key);
  if (pos < leaf->keys.size() && leaf->keys[pos] == key) {
    leaf->postings[pos].push_back(value);
  } else {
    leaf->keys.insert(leaf->keys.begin() + static_cast<long>(pos), key);
    leaf->postings.insert(leaf->postings.begin() + static_cast<long>(pos),
                          std::vector<uint64_t>{value});
    ++num_keys_;
  }
  ++size_;
}

void BPlusTree::SplitChild(Node* parent, size_t idx) {
  Node* child = parent->children[idx].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->keys.size() / 2;

  Bytes separator;
  if (child->leaf) {
    // Right leaf keeps keys [mid, end); separator = its first key.
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + static_cast<long>(mid),
                       child->keys.end());
    right->postings.assign(child->postings.begin() + static_cast<long>(mid),
                           child->postings.end());
    child->keys.resize(mid);
    child->postings.resize(mid);
    // Chain.
    right->next = child->next;
    right->prev = child;
    if (child->next != nullptr) child->next->prev = right.get();
    child->next = right.get();
  } else {
    // Internal: the middle key moves up, it does not stay in either half.
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + static_cast<long>(mid) + 1,
                       child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + static_cast<long>(idx),
                      separator);
  parent->children.insert(
      parent->children.begin() + static_cast<long>(idx) + 1,
      std::move(right));
}

void BPlusTree::SplitRoot() {
  auto new_root = std::make_unique<Node>();
  new_root->leaf = false;
  new_root->children.push_back(std::move(root_));
  root_ = std::move(new_root);
  SplitChild(root_.get(), 0);
}

std::vector<uint64_t> BPlusTree::Lookup(const Bytes& key) const {
  const Node* leaf = FindLeaf(key);
  size_t pos = KeyPos(leaf->keys, key);
  if (pos < leaf->keys.size() && leaf->keys[pos] == key) {
    return leaf->postings[pos];
  }
  return {};
}

bool BPlusTree::Contains(const Bytes& key) const {
  const Node* leaf = FindLeaf(key);
  size_t pos = KeyPos(leaf->keys, key);
  return pos < leaf->keys.size() && leaf->keys[pos] == key;
}

bool BPlusTree::Delete(const Bytes& key, uint64_t value) {
  size_t removed = 0;
  RemoveFromSubtree(root_.get(), key, value, /*whole_key=*/false, &removed);
  // Collapse the root when it is an internal node with one child.
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
  }
  return removed > 0;
}

size_t BPlusTree::DeleteAll(const Bytes& key) {
  size_t removed = 0;
  RemoveFromSubtree(root_.get(), key, 0, /*whole_key=*/true, &removed);
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
  }
  return removed;
}

bool BPlusTree::RemoveFromSubtree(Node* node, const Bytes& key,
                                  uint64_t value, bool whole_key,
                                  size_t* removed) {
  if (node->leaf) {
    size_t pos = KeyPos(node->keys, key);
    if (pos >= node->keys.size() || node->keys[pos] != key) return false;
    auto& posting = node->postings[pos];
    if (whole_key) {
      *removed = posting.size();
      size_ -= posting.size();
      posting.clear();
    } else {
      auto it = std::find(posting.begin(), posting.end(), value);
      if (it == posting.end()) return false;
      posting.erase(it);
      *removed = 1;
      --size_;
    }
    if (posting.empty()) {
      node->keys.erase(node->keys.begin() + static_cast<long>(pos));
      node->postings.erase(node->postings.begin() + static_cast<long>(pos));
      --num_keys_;
    }
    return true;
  }

  size_t idx = ChildIndex(node->keys, key);
  Node* child = node->children[idx].get();
  bool did = RemoveFromSubtree(child, key, value, whole_key, removed);
  if (did && child->keys.size() < max_keys_ / 2) {
    FixUnderflow(node, idx);
  }
  return did;
}

void BPlusTree::FixUnderflow(Node* parent, size_t idx) {
  Node* child = parent->children[idx].get();
  const size_t min_keys = max_keys_ / 2;

  // Try borrowing from the left sibling.
  if (idx > 0) {
    Node* left = parent->children[idx - 1].get();
    if (left->keys.size() > min_keys) {
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->postings.insert(child->postings.begin(),
                               std::move(left->postings.back()));
        left->keys.pop_back();
        left->postings.pop_back();
        parent->keys[idx - 1] = child->keys.front();
      } else {
        // Rotate through the parent separator.
        child->keys.insert(child->keys.begin(), parent->keys[idx - 1]);
        parent->keys[idx - 1] = left->keys.back();
        left->keys.pop_back();
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        left->children.pop_back();
      }
      return;
    }
  }

  // Try borrowing from the right sibling.
  if (idx + 1 < parent->children.size()) {
    Node* right = parent->children[idx + 1].get();
    if (right->keys.size() > min_keys) {
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->postings.push_back(std::move(right->postings.front()));
        right->keys.erase(right->keys.begin());
        right->postings.erase(right->postings.begin());
        parent->keys[idx] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[idx]);
        parent->keys[idx] = right->keys.front();
        right->keys.erase(right->keys.begin());
        child->children.push_back(std::move(right->children.front()));
        right->children.erase(right->children.begin());
      }
      return;
    }
  }

  // Merge with a sibling. Normalize so we merge children[i] and
  // children[i+1] into children[i].
  size_t i = (idx > 0) ? idx - 1 : idx;
  Node* left = parent->children[i].get();
  Node* right = parent->children[i + 1].get();

  if (left->leaf) {
    left->keys.insert(left->keys.end(), right->keys.begin(),
                      right->keys.end());
    for (auto& p : right->postings) left->postings.push_back(std::move(p));
    left->next = right->next;
    if (right->next != nullptr) right->next->prev = left;
  } else {
    left->keys.push_back(parent->keys[i]);
    left->keys.insert(left->keys.end(), right->keys.begin(),
                      right->keys.end());
    for (auto& c : right->children) left->children.push_back(std::move(c));
  }
  parent->keys.erase(parent->keys.begin() + static_cast<long>(i));
  parent->children.erase(parent->children.begin() + static_cast<long>(i) + 1);
}

std::vector<std::pair<Bytes, uint64_t>> BPlusTree::Scan(
    const Bytes& lo, const Bytes& hi) const {
  std::vector<std::pair<Bytes, uint64_t>> out;
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < lo) continue;
      if (leaf->keys[i] > hi) return out;
      for (uint64_t v : leaf->postings[i]) out.emplace_back(leaf->keys[i], v);
    }
    leaf = leaf->next;
  }
  return out;
}

std::vector<std::pair<Bytes, uint64_t>> BPlusTree::ScanAll() const {
  std::vector<std::pair<Bytes, uint64_t>> out;
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  for (; node != nullptr; node = node->next) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      for (uint64_t v : node->postings[i]) out.emplace_back(node->keys[i], v);
    }
  }
  return out;
}

size_t BPlusTree::Depth() const {
  size_t d = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++d;
  }
  return d;
}

size_t BPlusTree::height() const { return Depth(); }

bool BPlusTree::ValidateNode(const Node* node, const Bytes* lo,
                             const Bytes* hi, size_t depth,
                             size_t expected_depth) const {
  // Keys sorted strictly.
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (!(node->keys[i - 1] < node->keys[i])) return false;
  }
  // Range constraints: lo <= key < hi.
  for (const Bytes& k : node->keys) {
    if (lo != nullptr && k < *lo) return false;
    if (hi != nullptr && !(k < *hi)) return false;
  }
  // Occupancy (root exempt).
  if (node != root_.get() && node->keys.size() < max_keys_ / 2) return false;
  if (node->keys.size() > max_keys_) return false;

  if (node->leaf) {
    if (depth != expected_depth) return false;
    if (node->postings.size() != node->keys.size()) return false;
    for (const auto& p : node->postings) {
      if (p.empty()) return false;
    }
    return true;
  }

  if (node->children.size() != node->keys.size() + 1) return false;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Bytes* child_lo = (i == 0) ? lo : &node->keys[i - 1];
    const Bytes* child_hi = (i == node->keys.size()) ? hi : &node->keys[i];
    if (!ValidateNode(node->children[i].get(), child_lo, child_hi, depth + 1,
                      expected_depth)) {
      return false;
    }
  }
  return true;
}

bool BPlusTree::Validate() const {
  size_t expected_depth = Depth();
  if (!ValidateNode(root_.get(), nullptr, nullptr, 1, expected_depth)) {
    return false;
  }
  // Leaf chain must enumerate exactly size_ pairs in sorted key order.
  auto all = ScanAll();
  if (all.size() != size_) return false;
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].first < all[i - 1].first) return false;
  }
  return true;
}

}  // namespace storage
}  // namespace dbph
