#ifndef DBPH_STORAGE_BTREE_H_
#define DBPH_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace dbph {
namespace storage {

/// \brief In-memory B+tree index from byte-string keys to posting lists of
/// 64-bit record ids.
///
/// Keys are unique in the tree; multiple record ids per key live in the
/// key's posting list (the classic secondary-index layout). Leaves are
/// chained for range scans. Nodes split at `max_keys` and re-balance
/// (borrow or merge) when they fall below `max_keys / 2`; the root is
/// exempt and collapses when it has a single child.
///
/// Used by: the plaintext baseline engine (attribute indexes), the
/// bucketization server (bucket-label index), and anywhere an ordered
/// map from bytes to record ids is needed.
class BPlusTree {
 public:
  /// `max_keys` is the node capacity (fanout - 1); must be >= 3.
  explicit BPlusTree(size_t max_keys = 64);
  ~BPlusTree();

  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Adds `value` to the posting list of `key` (creates the key if new).
  void Insert(const Bytes& key, uint64_t value);

  /// All record ids for `key` (empty when absent).
  std::vector<uint64_t> Lookup(const Bytes& key) const;

  /// True if the key exists.
  bool Contains(const Bytes& key) const;

  /// Removes one (key, value) pair. Returns false when not present.
  bool Delete(const Bytes& key, uint64_t value);

  /// Removes the key with its whole posting list; returns #values removed.
  size_t DeleteAll(const Bytes& key);

  /// All (key, value) pairs with lo <= key <= hi, in key order.
  std::vector<std::pair<Bytes, uint64_t>> Scan(const Bytes& lo,
                                               const Bytes& hi) const;

  /// Every (key, value) pair in key order.
  std::vector<std::pair<Bytes, uint64_t>> ScanAll() const;

  /// Number of (key, value) pairs.
  size_t size() const { return size_; }
  /// Number of distinct keys.
  size_t num_keys() const { return num_keys_; }
  /// Tree height (1 = just a root leaf).
  size_t height() const;

  /// Exhaustively checks the structural invariants (sorted keys, separator
  /// ranges, occupancy bounds, uniform depth, leaf chain). Test hook.
  bool Validate() const;

 private:
  struct Node;

  Node* FindLeaf(const Bytes& key) const;
  void InsertIntoLeaf(Node* leaf, const Bytes& key, uint64_t value);
  /// Splits `child` (index `idx` in `parent`) which has exceeded capacity.
  void SplitChild(Node* parent, size_t idx);
  void SplitRoot();
  bool RemoveFromSubtree(Node* node, const Bytes& key, uint64_t value,
                         bool whole_key, size_t* removed);
  void FixUnderflow(Node* parent, size_t idx);
  bool ValidateNode(const Node* node, const Bytes* lo, const Bytes* hi,
                    size_t depth, size_t expected_depth) const;
  size_t Depth() const;

  size_t max_keys_;
  size_t size_ = 0;
  size_t num_keys_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace storage
}  // namespace dbph

#endif  // DBPH_STORAGE_BTREE_H_
