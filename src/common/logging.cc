#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace dbph {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::atomic<LogLevel> g_level{
    ParseLogLevel(std::getenv("DBPH_LOG_LEVEL"), LogLevel::kWarning)};

/// ISO-8601 UTC with millisecond precision: 2026-08-07T12:34:56.789Z.
/// The one sanctioned system_clock use in the codebase — human-facing
/// timestamps; durations are always Stopwatch (steady_clock).
std::string Iso8601UtcNow() {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm utc{};
  ::gmtime_r(&seconds, &utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogLevel ParseLogLevel(const char* value, LogLevel fallback) {
  if (value == nullptr) return fallback;
  std::string text(value);
  for (char& c : text) c = static_cast<char>(std::tolower(c));
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarning;
  if (text == "error") return LogLevel::kError;
  return fallback;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << Iso8601UtcNow() << " [" << LevelName(level) << " tid="
          << std::this_thread::get_id() << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    // One stream insertion per line: concurrent threads may interleave
    // lines but never characters within a line.
    std::cerr << stream_.str() + "\n";
  }
}

}  // namespace internal
}  // namespace dbph
