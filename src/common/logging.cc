#include "common/logging.h"

#include <atomic>

namespace dbph {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace dbph
