#ifndef DBPH_COMMON_MACROS_H_
#define DBPH_COMMON_MACROS_H_

/// Error-propagation helpers for the Status/Result error model.
///
///   DBPH_RETURN_IF_ERROR(expr);          // expr yields a Status
///   DBPH_ASSIGN_OR_RETURN(auto v, expr); // expr yields a Result<T>

#define DBPH_CONCAT_IMPL(a, b) a##b
#define DBPH_CONCAT(a, b) DBPH_CONCAT_IMPL(a, b)

#define DBPH_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dbph::Status _dbph_status = (expr);            \
    if (!_dbph_status.ok()) return _dbph_status;     \
  } while (false)

#define DBPH_ASSIGN_OR_RETURN(decl, expr)                        \
  auto DBPH_CONCAT(_dbph_result_, __LINE__) = (expr);            \
  if (!DBPH_CONCAT(_dbph_result_, __LINE__).ok())                \
    return DBPH_CONCAT(_dbph_result_, __LINE__).status();        \
  decl = std::move(DBPH_CONCAT(_dbph_result_, __LINE__)).value()

#endif  // DBPH_COMMON_MACROS_H_
