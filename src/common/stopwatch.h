#ifndef DBPH_COMMON_STOPWATCH_H_
#define DBPH_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dbph {

/// \brief The project's one monotonic timer: steady_clock based, immune
/// to wall-clock steps (NTP, DST). Everything that measures a duration —
/// obs::ScopedStageTimer spans, the bench harnesses, the net loop's idle
/// clock — goes through this; std::chrono::system_clock is reserved for
/// timestamps shown to humans (the log line prefix).
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace dbph

#endif  // DBPH_COMMON_STOPWATCH_H_
