#ifndef DBPH_COMMON_STATUS_H_
#define DBPH_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dbph {

/// \brief Canonical error codes, modelled after absl::StatusCode.
///
/// The library does not use C++ exceptions; every fallible operation
/// returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kDataLoss = 8,
  kUnavailable = 9,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error value returned by fallible operations.
///
/// A Status is cheap to copy (code + message string) and is expected to be
/// checked by the caller; helper macros in macros.h propagate errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dbph

#endif  // DBPH_COMMON_STATUS_H_
