#ifndef DBPH_COMMON_RESULT_H_
#define DBPH_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dbph {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors absl::StatusOr<T>. Accessing value() on an error result is a
/// programming error; it aborts with the carried status in all build
/// modes (never silent undefined behaviour).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "FATAL: Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace dbph

#endif  // DBPH_COMMON_RESULT_H_
