#ifndef DBPH_COMMON_LOGGING_H_
#define DBPH_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace dbph {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
/// The initial level comes from the DBPH_LOG_LEVEL environment variable
/// (debug|info|warn|error, case-insensitive), default kWarning.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// The DBPH_LOG_LEVEL parser, exposed for tests and tooling: maps
/// "debug" / "info" / "warn" / "warning" / "error" (any case) to a
/// level; null or unrecognized input returns `fallback`.
LogLevel ParseLogLevel(const char* value, LogLevel fallback);

namespace internal {

/// Stream-style log sink that emits one line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dbph

#define DBPH_LOG(level)                                          \
  ::dbph::internal::LogMessage(::dbph::LogLevel::k##level,       \
                               __FILE__, __LINE__)

#endif  // DBPH_COMMON_LOGGING_H_
