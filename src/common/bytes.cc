#include "common/bytes.h"

#include <cassert>

#include "common/macros.h"

namespace dbph {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes Xor(const Bytes& a, const Bytes& b) {
  assert(a.size() == b.size());
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

void XorInPlace(Bytes* dst, const Bytes& src) {
  assert(dst->size() == src.size());
  for (size_t i = 0; i < src.size(); ++i) (*dst)[i] ^= src[i];
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

Bytes Concat(const Bytes& a, const Bytes& b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

void AppendUint32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void AppendUint64(Bytes* out, uint64_t v) {
  AppendUint32(out, static_cast<uint32_t>(v >> 32));
  AppendUint32(out, static_cast<uint32_t>(v));
}

void AppendLengthPrefixed(Bytes* out, const Bytes& payload) {
  AppendUint32(out, static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

Result<uint32_t> ByteReader::ReadUint32() {
  if (remaining() < 4) return Status::DataLoss("truncated uint32");
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadUint64() {
  DBPH_ASSIGN_OR_RETURN(uint32_t hi, ReadUint32());
  DBPH_ASSIGN_OR_RETURN(uint32_t lo, ReadUint32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<Bytes> ByteReader::ReadLengthPrefixed() {
  DBPH_ASSIGN_OR_RETURN(uint32_t n, ReadUint32());
  return ReadRaw(n);
}

Result<Bytes> ByteReader::ReadRaw(size_t n) {
  if (remaining() < n) return Status::DataLoss("truncated byte string");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace dbph
