#ifndef DBPH_COMMON_BYTES_H_
#define DBPH_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dbph {

/// Library-wide byte-string type. Ciphertexts, keys, words, trapdoors and
/// wire messages are all Bytes.
using Bytes = std::vector<uint8_t>;

/// \brief Converts a text string into bytes (no copy-free tricks; explicit).
Bytes ToBytes(std::string_view s);

/// \brief Converts bytes into a std::string (may contain NULs).
std::string ToString(const Bytes& b);

/// \brief Lower-case hex encoding ("deadbeef").
std::string HexEncode(const Bytes& b);

/// \brief Decodes a hex string; rejects odd length and non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// \brief Element-wise XOR. The inputs must have equal length.
Bytes Xor(const Bytes& a, const Bytes& b);

/// \brief XORs `src` into `dst` in place. Lengths must match.
void XorInPlace(Bytes* dst, const Bytes& src);

/// \brief Constant-time equality: the running time depends only on the
/// lengths, never on the contents. Use for MAC/tag comparison.
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// \brief Concatenation helper: a | b.
Bytes Concat(const Bytes& a, const Bytes& b);

/// \brief Appends big-endian 32-bit length prefix followed by the payload.
/// The framing used throughout the wire protocol and serializers.
void AppendLengthPrefixed(Bytes* out, const Bytes& payload);

/// \brief Appends a big-endian fixed-width integer.
void AppendUint32(Bytes* out, uint32_t v);
void AppendUint64(Bytes* out, uint64_t v);

/// \brief Cursor-style reader over a byte buffer, mirror of the Append*
/// helpers. All reads are bounds-checked and return errors on truncation.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<uint32_t> ReadUint32();
  Result<uint64_t> ReadUint64();
  Result<Bytes> ReadLengthPrefixed();
  /// Reads exactly n raw bytes.
  Result<Bytes> ReadRaw(size_t n);
  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace dbph

#endif  // DBPH_COMMON_BYTES_H_
