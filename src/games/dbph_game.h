#ifndef DBPH_GAMES_DBPH_GAME_H_
#define DBPH_GAMES_DBPH_GAME_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "crypto/random.h"
#include "dbph/scheme.h"
#include "games/stats.h"
#include "relation/relation.h"

namespace dbph {
namespace games {

/// \brief Everything Eve sees in one Definition 2.1 trial: the encrypted
/// table, the q encrypted queries, and each query's result (indices of
/// matching documents — the same identities a server-side execution
/// exposes).
struct Definition21View {
  const core::EncryptedRelation* ciphertext = nullptr;
  std::vector<core::EncryptedQuery> encrypted_queries;
  std::vector<std::vector<size_t>> results;
};

/// \brief An adversary for the paper's Definition 2.1 game.
class Definition21Adversary {
 public:
  virtual ~Definition21Adversary() = default;
  virtual std::string Name() const = 0;

  /// Step 1: two tables with equal cardinality (harness-enforced).
  virtual std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) = 0;

  /// Step 3, active case: the plaintext queries whose encryptions Eve
  /// obtains from the query-encryption oracle. At most `q` are used.
  virtual std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t q) = 0;

  /// Step 4: guess 1 or 2.
  virtual int Guess(const Definition21View& view, crypto::Rng* rng) = 0;
};

/// \brief Runs the Definition 2.1 game against our own database PH.
///
///   1. Eve chooses T1(R), T2(R) of equal cardinality;
///   2. Alex draws a fresh master key and encrypts T_i;
///   3. Eve receives `q` encrypted queries of her choice (the active
///      oracle of the definition) together with their results on the
///      ciphertext;
///   4. Eve guesses i.
///
/// With q = 0 this measures the construction's claimed security; with
/// q >= 1 it reproduces Theorem 2.1's impossibility.
Result<BinomialSummary> RunDefinition21Game(
    const core::DbphOptions& options, size_t q,
    Definition21Adversary* adversary, size_t trials, uint64_t seed);

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_DBPH_GAME_H_
