#ifndef DBPH_GAMES_SALARY_ATTACK_H_
#define DBPH_GAMES_SALARY_ATTACK_H_

#include <string>
#include <utility>

#include "baselines/bucket/bucket_scheme.h"
#include "baselines/damiani/hash_scheme.h"
#include "dbph/encrypted_relation.h"
#include "games/ind_game.h"

namespace dbph {
namespace games {

/// \brief The paper's Section 1 distinguishing attack, verbatim.
///
/// Eve submits
///   table 1: {(171, 4900), (481, 1200)}   — two different salaries
///   table 2: {(171, 4900), (481, 4900)}   — two equal salaries
/// and guesses from the weak salary labels: two *distinct* labels means
/// table 1, identical labels means table 2. Deterministic attribute-level
/// encryptions (bucketization, Damiani) lose with probability -> 1 (up to
/// interval/hash collisions of 1200 and 4900); our database PH presents
/// no repeats, so the same statistic degenerates to a coin flip.
std::pair<rel::Relation, rel::Relation> MakeSalaryTables();

/// ID/salary schema shared by the attack tables.
rel::Schema SalarySchema();

/// Against the Hacıgümüş bucketization scheme.
class BucketSalaryAdversary : public IndAdversary<baseline::BucketRelation> {
 public:
  std::string Name() const override { return "salary-vs-bucket"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  int Guess(const baseline::BucketRelation& view, crypto::Rng* rng) override;
};

/// Against the Damiani hash-index scheme.
class DamianiSalaryAdversary
    : public IndAdversary<baseline::HashedRelation> {
 public:
  std::string Name() const override { return "salary-vs-damiani"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  int Guess(const baseline::HashedRelation& view, crypto::Rng* rng) override;
};

/// The same strategy pointed at our database PH (negative control):
/// "identical values produce identical ciphertext words" is false for the
/// SWP-based construction, so Eve falls back to guessing.
class DbphSalaryAdversary : public IndAdversary<core::EncryptedRelation> {
 public:
  std::string Name() const override { return "salary-vs-dbph"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  int Guess(const core::EncryptedRelation& view, crypto::Rng* rng) override;
};

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_SALARY_ATTACK_H_
