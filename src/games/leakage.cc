#include "games/leakage.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/macros.h"
#include "crypto/random.h"

namespace dbph {
namespace games {

namespace {

double PartitionEntropyBits(const std::vector<size_t>& class_of,
                            size_t num_classes) {
  std::vector<size_t> sizes(num_classes, 0);
  for (size_t c : class_of) sizes[c]++;
  double n = static_cast<double>(class_of.size());
  double entropy = 0.0;
  for (size_t size : sizes) {
    if (size == 0) continue;
    double p = static_cast<double>(size) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

size_t CountSingletons(const std::vector<size_t>& class_of,
                       size_t num_classes) {
  std::vector<size_t> sizes(num_classes, 0);
  for (size_t c : class_of) sizes[c]++;
  size_t singles = 0;
  for (size_t size : sizes) {
    if (size == 1) ++singles;
  }
  return singles;
}

}  // namespace

Result<LeakageCurve> MeasureQueryLeakage(
    const rel::Relation& table,
    const std::vector<std::pair<std::string, rel::Value>>& workload,
    const core::DbphOptions& options, uint64_t seed) {
  crypto::HmacDrbg rng("leakage", seed);
  Bytes master = core::GenerateMasterKey(&rng);
  DBPH_ASSIGN_OR_RETURN(
      core::DatabasePh ph,
      core::DatabasePh::Create(table.schema(), master, options));
  DBPH_ASSIGN_OR_RETURN(core::EncryptedRelation enc,
                        ph.EncryptRelation(table, &rng));

  LeakageCurve curve;
  curve.documents = enc.size();

  // Eve's partition: class id per document, refined after each query.
  std::vector<size_t> class_of(enc.size(), 0);
  size_t num_classes = 1;
  curve.classes.push_back(num_classes);
  curve.entropy_bits.push_back(0.0);
  curve.singletons.push_back(CountSingletons(class_of, num_classes));

  for (const auto& [attribute, value] : workload) {
    DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery query,
                          ph.EncryptQuery(enc.name, attribute, value));
    std::vector<size_t> hits = ExecuteSelect(enc, query);
    std::set<size_t> matched(hits.begin(), hits.end());

    // Refine: split every class into (matched, unmatched) halves.
    std::map<std::pair<size_t, bool>, size_t> remap;
    std::vector<size_t> next(class_of.size());
    for (size_t doc = 0; doc < class_of.size(); ++doc) {
      auto key = std::make_pair(class_of[doc], matched.count(doc) > 0);
      auto [it, inserted] = remap.emplace(key, remap.size());
      next[doc] = it->second;
    }
    class_of = std::move(next);
    num_classes = remap.size();

    curve.classes.push_back(num_classes);
    curve.entropy_bits.push_back(PartitionEntropyBits(class_of, num_classes));
    curve.singletons.push_back(CountSingletons(class_of, num_classes));
  }
  return curve;
}

std::vector<std::pair<std::string, rel::Value>> SampleWorkload(
    const rel::Relation& table, size_t queries, uint64_t seed) {
  crypto::HmacDrbg rng("workload", seed);
  std::vector<std::pair<std::string, rel::Value>> workload;
  workload.reserve(queries);
  if (table.empty()) return workload;
  for (size_t i = 0; i < queries; ++i) {
    size_t attr = rng.NextBelow(table.schema().num_attributes());
    size_t row = rng.NextBelow(table.size());
    workload.emplace_back(table.schema().attribute(attr).name,
                          table.tuple(row).at(attr));
  }
  return workload;
}

SpectrumSummary SummarizeTagSpectrum(const std::vector<uint64_t>& counts) {
  SpectrumSummary summary;
  uint64_t modal = 0;
  for (uint64_t count : counts) {
    if (count == 0) continue;
    summary.total += count;
    summary.distinct++;
    if (count > modal) modal = count;
  }
  if (summary.total == 0 || summary.distinct == 0) return summary;
  double n = static_cast<double>(summary.total);
  for (uint64_t count : counts) {
    if (count == 0) continue;
    double p = static_cast<double>(count) / n;
    summary.entropy_bits -= p * std::log2(p);
  }
  summary.modal_rate = static_cast<double>(modal) / n;
  double blind = 1.0 / static_cast<double>(summary.distinct);
  summary.advantage = std::max(0.0, summary.modal_rate - blind);
  return summary;
}

}  // namespace games
}  // namespace dbph
