#ifndef DBPH_GAMES_STATS_H_
#define DBPH_GAMES_STATS_H_

#include <cstddef>
#include <string>

namespace dbph {
namespace games {

/// \brief Success counts of repeated game trials, with the statistics the
/// experiment reports derive from them.
struct BinomialSummary {
  size_t trials = 0;
  size_t successes = 0;

  double rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(successes) / trials;
  }

  /// 95% Wilson score interval for the success probability — robust for
  /// rates near 0 and 1, where the normal approximation breaks.
  double WilsonLow() const;
  double WilsonHigh() const;

  /// The distinguishing advantage 2p - 1 of an IND-game adversary (0 =
  /// blind guessing, 1 = always right).
  double Advantage() const { return 2.0 * rate() - 1.0; }
  double AdvantageLow() const { return 2.0 * WilsonLow() - 1.0; }
  double AdvantageHigh() const { return 2.0 * WilsonHigh() - 1.0; }

  /// True when the 95% interval excludes 1/2 — the adversary demonstrably
  /// beats guessing.
  bool BeatsGuessing() const { return WilsonLow() > 0.5; }

  /// "123/200 = 0.615 [0.545, 0.681]"
  std::string ToString() const;
};

/// \brief Two-sided binomial z-test p-value against H0: p = p0.
double BinomialZTestPValue(const BinomialSummary& summary, double p0);

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_STATS_H_
