#ifndef DBPH_GAMES_IND_GAME_H_
#define DBPH_GAMES_IND_GAME_H_

#include <functional>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/result.h"
#include "crypto/random.h"
#include "games/stats.h"
#include "relation/relation.h"

namespace dbph {
namespace games {

/// \brief The classical indistinguishability game of Definition 1.2,
/// lifted to tables and generic over the ciphertext view the scheme
/// exposes (bucket labels, hashed labels, SWP documents, ...).
///
/// Per trial:
///   1. Eve chooses two tables T1, T2 (same schema, same cardinality —
///      enforced by the harness, mirroring "plaintexts of the same
///      length");
///   2. Alex draws a fresh key, flips i, and encrypts T_i;
///   3. Eve sees the ciphertext view and guesses i.
///
/// No queries flow (q = 0): this is the passive baseline the Section 1
/// attacks already win against deterministic-index schemes.
template <typename View>
class IndAdversary {
 public:
  virtual ~IndAdversary() = default;
  virtual std::string Name() const = 0;

  /// Step 1. Must return same-schema, same-cardinality tables.
  virtual std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) = 0;

  /// Step 3. Returns 1 or 2.
  virtual int Guess(const View& view, crypto::Rng* rng) = 0;
};

/// Encrypts a relation under a *fresh key per trial*; the trial index is
/// provided so implementations can derive deterministic per-trial keys.
template <typename View>
using TrialEncryptor =
    std::function<Result<View>(const rel::Relation&, size_t trial,
                               crypto::Rng* rng)>;

/// \brief Runs `trials` independent games; deterministic in `seed`.
template <typename View>
Result<BinomialSummary> RunIndGame(const TrialEncryptor<View>& encrypt,
                                   IndAdversary<View>* adversary,
                                   size_t trials, uint64_t seed) {
  BinomialSummary summary;
  crypto::HmacDrbg rng("ind-game/" + adversary->Name(), seed);
  for (size_t trial = 0; trial < trials; ++trial) {
    auto [t1, t2] = adversary->ChooseTables(&rng);
    if (!(t1.schema() == t2.schema()) || t1.size() != t2.size()) {
      return Status::FailedPrecondition(
          "adversary must choose same-schema, same-cardinality tables");
    }
    int secret = rng.NextBool() ? 1 : 2;
    const rel::Relation& chosen = (secret == 1) ? t1 : t2;
    DBPH_ASSIGN_OR_RETURN(View view, encrypt(chosen, trial, &rng));
    int guess = adversary->Guess(view, &rng);
    ++summary.trials;
    if (guess == secret) ++summary.successes;
  }
  return summary;
}

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_IND_GAME_H_
