#ifndef DBPH_GAMES_LEAKAGE_H_
#define DBPH_GAMES_LEAKAGE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dbph/scheme.h"
#include "relation/relation.h"

namespace dbph {
namespace games {

/// \brief Quantifies how Eve's knowledge accumulates with the number of
/// observed queries — the quantitative counterpart of Theorem 2.1's
/// qualitative "insecure for q > 0".
///
/// Eve cannot read documents, but every executed query partitions them
/// into "matched" and "unmatched". Intersecting these membership
/// patterns over q queries refines a partition of the document set; the
/// finer the partition, the more plaintext structure has leaked (two
/// documents in different classes provably differ; a singleton class is
/// a fully re-identifiable individual, like John).
struct LeakageCurve {
  size_t documents = 0;
  /// classes[k] = number of distinguishable document classes after the
  /// first k queries (classes[0] == 1).
  std::vector<size_t> classes;
  /// Shannon entropy (bits) of the partition after k queries; upper
  /// bound log2(documents) = full identification of the equality
  /// structure.
  std::vector<double> entropy_bits;
  /// Number of singleton classes (fully isolated individuals) after k
  /// queries.
  std::vector<size_t> singletons;
};

/// \brief Encrypts `table` under a fresh key and replays `workload`
/// through the server-side psi, refining Eve's partition after each
/// query.
Result<LeakageCurve> MeasureQueryLeakage(
    const rel::Relation& table,
    const std::vector<std::pair<std::string, rel::Value>>& workload,
    const core::DbphOptions& options, uint64_t seed);

/// \brief Samples a realistic exact-select workload: each query picks a
/// random attribute and the value of a random existing tuple (so results
/// are non-trivial).
std::vector<std::pair<std::string, rel::Value>> SampleWorkload(
    const rel::Relation& table, size_t queries, uint64_t seed);

/// \brief Summary statistics of a trapdoor-tag frequency spectrum: the
/// histogram of how often each distinct (encrypted) query tag was
/// observed. This is the adversary's raw material for a frequency
/// attack — if one tag dominates, Eve predicts the next query (or maps
/// tags to public plaintext frequencies) far better than chance.
struct SpectrumSummary {
  /// Total observed queries (sum of counts).
  uint64_t total = 0;
  /// Distinct tags with a non-zero count.
  uint64_t distinct = 0;
  /// Empirical Shannon entropy of the tag distribution, in bits.
  /// log2(distinct) = uniform = least informative for Eve.
  double entropy_bits = 0.0;
  /// Share of the most frequent tag in [0, 1].
  double modal_rate = 0.0;
  /// Eve's frequency-attack advantage over blind guessing at
  /// predicting the next query tag: modal_rate - 1/distinct, clamped
  /// at 0. Uniform workloads score 0; a degenerate single-tag workload
  /// approaches 1.
  double advantage = 0.0;
};

/// \brief Computes the spectrum summary from per-tag observation counts
/// (zero entries are ignored). Shared by the offline games analyses and
/// the live obs::leakage auditor so both report the same estimator.
SpectrumSummary SummarizeTagSpectrum(const std::vector<uint64_t>& counts);

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_LEAKAGE_H_
