#include "games/hospital.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "client/client.h"
#include "common/macros.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace games {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema HospitalSchema() {
  auto schema = Schema::Create({
      {"id", ValueType::kInt64, 10},
      {"name", ValueType::kString, 12},
      {"hospital", ValueType::kInt64, 1},
      {"outcome", ValueType::kString, 7},
  });
  return *schema;
}

Result<Relation> GenerateHospitalTable(const HospitalModel& model,
                                       crypto::Rng* rng) {
  if (model.patients == 0) {
    return Status::InvalidArgument("need at least one patient");
  }
  double flow_sum = model.flows[0] + model.flows[1] + model.flows[2];
  if (std::fabs(flow_sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("hospital flows must sum to 1");
  }
  Relation table("Patients", HospitalSchema());
  for (size_t i = 0; i < model.patients; ++i) {
    double u = rng->NextDouble();
    int64_t hospital = u < model.flows[0]               ? 1
                       : u < model.flows[0] + model.flows[1] ? 2
                                                             : 3;
    std::string outcome =
        rng->NextDouble() < model.fatal_rate ? "fatal" : "healthy";
    // Synthetic distinct patient names.
    std::string name = "p" + std::to_string(i);
    DBPH_RETURN_IF_ERROR(table.Insert({Value::Int(static_cast<int64_t>(i)),
                                       Value::Str(name),
                                       Value::Int(hospital),
                                       Value::Str(outcome)}));
  }
  return table;
}

namespace {

double TrueFatalRatioH1(const Relation& table) {
  size_t h1 = 0, h1_fatal = 0;
  for (const auto& t : table.tuples()) {
    if (t.at(2) == Value::Int(1)) {
      ++h1;
      if (t.at(3) == Value::Str("fatal")) ++h1_fatal;
    }
  }
  return h1 == 0 ? 0.0 : static_cast<double>(h1_fatal) / h1;
}

}  // namespace

Result<HospitalInference> RunHospitalScenario(const HospitalModel& model,
                                              uint64_t seed) {
  crypto::HmacDrbg rng("hospital-scenario", seed);
  DBPH_ASSIGN_OR_RETURN(Relation table, GenerateHospitalTable(model, &rng));

  // Alex outsources and issues the paper's four queries via the server.
  server::UntrustedServer server;
  client::Client alex(
      rng.NextBytes(32),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  DBPH_RETURN_IF_ERROR(alex.Outsource(table));
  for (int64_t h = 1; h <= 3; ++h) {
    DBPH_RETURN_IF_ERROR(
        alex.Select("Patients", "hospital", Value::Int(h)).status());
  }
  DBPH_RETURN_IF_ERROR(
      alex.Select("Patients", "outcome", Value::Str("fatal")).status());

  // ---- Eve's side: only the observation log and the public priors. ----
  const auto& queries = server.observations().queries();
  if (queries.size() != 4) return Status::Internal("expected 4 queries");
  const double n = static_cast<double>(table.size());

  // Expected result fractions for the four semantic roles.
  struct Role {
    const char* label;
    double expected;
  };
  const Role roles[4] = {{"hospital=1", model.flows[0]},
                         {"hospital=2", model.flows[1]},
                         {"hospital=3", model.flows[2]},
                         {"outcome=fatal", model.fatal_rate}};

  // Greedy assignment of observed queries to roles by closest size match
  // ("from the size of the results ... Eve can guess the exact queries
  // with high confidence").
  std::array<int, 4> assignment = {-1, -1, -1, -1};  // role -> query index
  std::set<size_t> used;
  // Order roles by how distinctive their expected sizes are (all pairwise
  // distinct here); a simple greedy by minimal relative error suffices.
  for (int role = 0; role < 4; ++role) {
    double best_err = 1e18;
    int best_query = -1;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (used.count(qi) > 0) continue;
      double frac = static_cast<double>(queries[qi].result_size()) / n;
      double err = std::fabs(frac - roles[role].expected);
      if (err < best_err) {
        best_err = err;
        best_query = static_cast<int>(qi);
      }
    }
    assignment[static_cast<size_t>(role)] = best_query;
    used.insert(static_cast<size_t>(best_query));
  }

  HospitalInference inference;
  // Ground truth: Alex issued them in order h1, h2, h3, fatal.
  inference.queries_identified = assignment[0] == 0 && assignment[1] == 1 &&
                                 assignment[2] == 2 && assignment[3] == 3;

  // Intersect the (assigned) hospital-1 result with the fatal result.
  const auto& h1_obs = queries[static_cast<size_t>(assignment[0])];
  const auto& fatal_obs = queries[static_cast<size_t>(assignment[3])];
  auto common = server::ObservationLog::Intersect(h1_obs, fatal_obs);
  inference.estimated_fatal_ratio_h1 =
      h1_obs.result_size() == 0
          ? 0.0
          : static_cast<double>(common.size()) / h1_obs.result_size();
  inference.true_fatal_ratio_h1 = TrueFatalRatioH1(table);
  return inference;
}

Result<JohnInference> RunJohnAttack(const HospitalModel& model,
                                    uint64_t seed) {
  crypto::HmacDrbg rng("john-attack", seed);
  DBPH_ASSIGN_OR_RETURN(Relation table, GenerateHospitalTable(model, &rng));

  // Plant John at a random position.
  size_t john_index = rng.NextBelow(table.size());
  Relation with_john("Patients", HospitalSchema());
  JohnInference truth;
  for (size_t i = 0; i < table.size(); ++i) {
    rel::Tuple t = table.tuple(i);
    if (i == john_index) {
      std::vector<Value> values = t.values();
      values[1] = Value::Str("John");
      truth.true_hospital = values[2].AsInt();
      truth.true_outcome = values[3].AsString();
      t = rel::Tuple(std::move(values));
    }
    DBPH_RETURN_IF_ERROR(with_john.Insert(std::move(t)));
  }

  server::UntrustedServer server;
  client::Client alex(
      rng.NextBytes(32),
      [&server](const Bytes& request) { return server.HandleRequest(request); },
      &rng);
  DBPH_RETURN_IF_ERROR(alex.Outsource(with_john));

  // Eve's oracle access: she obtains encryptions of queries of her
  // choice (modeled via the client's scheme — in the paper, by sending
  // Alex "confusing messages"). She then runs them herself.
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph,
                        alex.SchemeFor("Patients"));
  auto run = [&](const std::string& attr,
                 const Value& value) -> Result<std::set<uint64_t>> {
    DBPH_ASSIGN_OR_RETURN(core::EncryptedQuery q,
                          ph->EncryptQuery("Patients", attr, value));
    DBPH_ASSIGN_OR_RETURN(auto docs, server.Select(q));
    (void)docs;
    const auto& obs = server.observations().queries().back();
    return std::set<uint64_t>(obs.matched_records.begin(),
                              obs.matched_records.end());
  };

  DBPH_ASSIGN_OR_RETURN(std::set<uint64_t> john_docs,
                        run("name", Value::Str("John")));
  JohnInference inference;
  inference.true_hospital = truth.true_hospital;
  inference.true_outcome = truth.true_outcome;
  if (john_docs.empty()) return inference;  // found_john stays false
  inference.found_john = true;

  for (int64_t h = 1; h <= 3; ++h) {
    DBPH_ASSIGN_OR_RETURN(std::set<uint64_t> docs,
                          run("hospital", Value::Int(h)));
    for (uint64_t rid : john_docs) {
      if (docs.count(rid) > 0) {
        inference.inferred_hospital = h;
        break;
      }
    }
  }
  DBPH_ASSIGN_OR_RETURN(std::set<uint64_t> fatal_docs,
                        run("outcome", Value::Str("fatal")));
  bool fatal = false;
  for (uint64_t rid : john_docs) {
    if (fatal_docs.count(rid) > 0) fatal = true;
  }
  inference.inferred_outcome = fatal ? "fatal" : "healthy";
  return inference;
}

}  // namespace games
}  // namespace dbph
