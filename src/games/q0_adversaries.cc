#include "games/q0_adversaries.h"

#include <bit>
#include <set>

namespace dbph {
namespace games {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

namespace {

Schema OneColumnSchema() {
  auto schema = Schema::Create({{"v", ValueType::kString, 8}});
  return *schema;
}

Relation TableOf(const std::vector<std::string>& values) {
  Relation t("T", OneColumnSchema());
  for (const auto& v : values) (void)t.Insert({Value::Str(v)});
  return t;
}

size_t TotalHammingWeight(const core::EncryptedRelation& view) {
  size_t weight = 0;
  for (const auto& doc : view.documents) {
    for (const auto& w : doc.words) {
      for (uint8_t b : w) weight += static_cast<size_t>(std::popcount(b));
    }
  }
  return weight;
}

size_t TotalCipherBits(const core::EncryptedRelation& view) {
  size_t bits = 0;
  for (const auto& doc : view.documents) {
    for (const auto& w : doc.words) bits += w.size() * 8;
  }
  return bits;
}

}  // namespace

std::pair<Relation, Relation> RandomGuessAdversary::ChooseTables(
    crypto::Rng*) {
  return {TableOf({"alpha", "beta"}), TableOf({"gamma", "delta"})};
}

int RandomGuessAdversary::Guess(const Definition21View&, crypto::Rng* rng) {
  return rng->NextBool() ? 1 : 2;
}

std::pair<Relation, Relation> RepeatDetectionAdversary::ChooseTables(
    crypto::Rng*) {
  // T1: four identical values; T2: four distinct values.
  return {TableOf({"same", "same", "same", "same"}),
          TableOf({"v1", "v2", "v3", "v4"})};
}

int RepeatDetectionAdversary::Guess(const Definition21View& view,
                                    crypto::Rng* rng) {
  std::set<Bytes> words;
  size_t total = 0;
  for (const auto& doc : view.ciphertext->documents) {
    for (const auto& w : doc.words) {
      words.insert(w);
      ++total;
    }
  }
  if (words.size() < total) return 1;  // repeats => the all-equal table
  return rng->NextBool() ? 1 : 2;
}

std::pair<Relation, Relation> ByteFrequencyAdversary::ChooseTables(
    crypto::Rng*) {
  return {TableOf({"aaaaaaaa", "aaaaaaaa"}), TableOf({"zzzzzzzz",
                                                      "zzzzzzzz"})};
}

int ByteFrequencyAdversary::Guess(const Definition21View& view,
                                  crypto::Rng*) {
  // 'a' = 0x61 has weight 3, 'z' = 0x7a has weight 5: if the cipher
  // leaked plaintext bias, T2's ciphertext would be heavier.
  size_t weight = TotalHammingWeight(*view.ciphertext);
  size_t bits = TotalCipherBits(*view.ciphertext);
  return 2 * weight > bits ? 2 : 1;
}

std::pair<Relation, Relation> HammingWeightAdversary::ChooseTables(
    crypto::Rng*) {
  // Extreme weight difference: 0x30 '0' (weight 2) vs 0x7f-ish text.
  return {TableOf({"00000000"}), TableOf({"~~~~~~~~"})};
}

int HammingWeightAdversary::Guess(const Definition21View& view,
                                  crypto::Rng*) {
  size_t weight = TotalHammingWeight(*view.ciphertext);
  size_t bits = TotalCipherBits(*view.ciphertext);
  return 2 * weight > bits ? 2 : 1;
}

std::pair<Relation, Relation> CrossDocumentXorAdversary::ChooseTables(
    crypto::Rng*) {
  // T1: two equal tuples; T2: two unrelated tuples. If word encryption
  // reused pads across documents, XOR of the two ciphertexts would
  // cancel to zero for T1.
  return {TableOf({"repeated", "repeated"}), TableOf({"first111",
                                                      "second22"})};
}

int CrossDocumentXorAdversary::Guess(const Definition21View& view,
                                     crypto::Rng* rng) {
  const auto& docs = view.ciphertext->documents;
  if (docs.size() >= 2 && !docs[0].words.empty() &&
      !docs[1].words.empty() &&
      docs[0].words[0].size() == docs[1].words[0].size()) {
    Bytes x = Xor(docs[0].words[0], docs[1].words[0]);
    bool all_zero = true;
    for (uint8_t b : x) {
      if (b != 0) all_zero = false;
    }
    if (all_zero) return 1;
  }
  return rng->NextBool() ? 1 : 2;
}

std::vector<std::unique_ptr<Definition21Adversary>>
MakeQ0AdversaryBattery() {
  std::vector<std::unique_ptr<Definition21Adversary>> battery;
  battery.push_back(std::make_unique<RandomGuessAdversary>());
  battery.push_back(std::make_unique<RepeatDetectionAdversary>());
  battery.push_back(std::make_unique<ByteFrequencyAdversary>());
  battery.push_back(std::make_unique<HammingWeightAdversary>());
  battery.push_back(std::make_unique<CrossDocumentXorAdversary>());
  return battery;
}

}  // namespace games
}  // namespace dbph
