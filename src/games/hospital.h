#ifndef DBPH_GAMES_HOSPITAL_H_
#define DBPH_GAMES_HOSPITAL_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/random.h"
#include "relation/relation.h"

namespace dbph {
namespace games {

/// \brief Parameters of the paper's Section 2 hospital scenario: three
/// competing hospitals with known patient-flow shares and a known
/// fatal/healthy outcome split.
struct HospitalModel {
  std::array<double, 3> flows = {0.2, 0.3, 0.5};
  double fatal_rate = 0.08;
  size_t patients = 1000;
};

/// Patients(id:int, name:string, hospital:int, outcome:string).
rel::Schema HospitalSchema();

/// \brief Samples a synthetic patient table from the model (the paper's
/// statistics database; no real data required — the attack depends only
/// on the marginals, which we match exactly in expectation).
Result<rel::Relation> GenerateHospitalTable(const HospitalModel& model,
                                            crypto::Rng* rng);

/// \brief What Eve infers from watching Alex's four queries (the paper's
/// workload: hospital=1, hospital=2, hospital=3, outcome='fatal').
struct HospitalInference {
  /// Eve's identification of which observed query is which plaintext
  /// query, from result sizes + known priors. queries_identified is true
  /// when all four were matched correctly.
  bool queries_identified = false;
  /// Eve's estimate of the fatal ratio in hospital 1 (the paper's
  /// headline leak), and the table's true value.
  double estimated_fatal_ratio_h1 = 0.0;
  double true_fatal_ratio_h1 = 0.0;

  double AbsoluteError() const {
    double d = estimated_fatal_ratio_h1 - true_fatal_ratio_h1;
    return d < 0 ? -d : d;
  }
};

/// \brief Runs the full passive scenario once:
/// Alex outsources a fresh hospital table (under a fresh key) and issues
/// the four queries through the untrusted server; Eve, knowing only the
/// model priors and the observation log (result sizes + record-id sets),
/// matches queries to semantics and intersects result sets to estimate
/// hospital 1's fatal ratio.
Result<HospitalInference> RunHospitalScenario(const HospitalModel& model,
                                              uint64_t seed);

/// \brief The John attack (active adversary): Eve uses the query-
/// encryption oracle to get trapdoors for sigma_{name:John} and
/// sigma_{hospital:X}, X in {1,2,3}, plus sigma_{outcome:fatal}, runs
/// them on the stored ciphertext, and intersects.
struct JohnInference {
  bool found_john = false;
  int64_t inferred_hospital = 0;
  std::string inferred_outcome;
  int64_t true_hospital = 0;
  std::string true_outcome;

  bool Correct() const {
    return found_john && inferred_hospital == true_hospital &&
           inferred_outcome == true_outcome;
  }
};

Result<JohnInference> RunJohnAttack(const HospitalModel& model,
                                    uint64_t seed);

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_HOSPITAL_H_
