#ifndef DBPH_GAMES_Q0_ADVERSARIES_H_
#define DBPH_GAMES_Q0_ADVERSARIES_H_

#include <memory>
#include <string>
#include <vector>

#include "games/dbph_game.h"

namespace dbph {
namespace games {

/// A battery of passive (q = 0) adversaries against the database PH —
/// the negative controls of experiment E7. Each implements a natural
/// ciphertext statistic; the construction's security claim predicts all
/// of them stay at advantage ~0.

/// Baseline: flips a coin.
class RandomGuessAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "random-guess"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t) override {
    return {};
  }
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

/// Chooses a table of all-equal values vs all-distinct values and looks
/// for repeated ciphertext words (wins against any deterministic
/// word encryption; the stream pad defeats it here).
class RepeatDetectionAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "repeat-detection"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t) override {
    return {};
  }
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

/// Compares the empirical byte distribution of the ciphertext against
/// 0.5 expected bit frequency; chooses tables with maximally skewed
/// plaintext bytes ('aaaa...' vs 'zzzz...').
class ByteFrequencyAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "byte-frequency"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t) override {
    return {};
  }
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

/// Computes total Hamming weight of the ciphertext and thresholds it
/// (plaintexts differ in weight by construction).
class HammingWeightAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "hamming-weight"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t) override {
    return {};
  }
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

/// XORs the first two documents' first words (exploits any structural
/// correlation between documents encrypted under the same key).
class CrossDocumentXorAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "cross-document-xor"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t) override {
    return {};
  }
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

/// All of the above, for sweep experiments.
std::vector<std::unique_ptr<Definition21Adversary>> MakeQ0AdversaryBattery();

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_Q0_ADVERSARIES_H_
